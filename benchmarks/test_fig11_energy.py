"""Figure 11 — energy evaluation of the V:N:M format.

Reproduced on a synthesised 768 x 768 BERT-base query-projection weight
(the trained-checkpoint substitution documented in DESIGN.md).  The
qualitative claims checked:

* unstructured ("ideal") selection dominates every structured policy;
* the V:N:M format sits between ideal and vector-wise pruning, and even
  V=128 retains more energy than vw_8 and vw_4;
* energy decreases with sparsity for every policy, and by 95% sparsity only
  a small fraction of the original energy remains (the paper's motivation
  for second-order methods).
"""

from repro.evaluation.figures import figure11_energy
from repro.evaluation.reporting import dominates, format_table, is_monotonic_decreasing

SPARSITIES = (0.5, 0.6, 0.75, 0.8, 0.9, 0.95)
V_VALUES = (1, 16, 32, 64, 128)
VW_LENGTHS = (4, 8, 16, 32)


def test_fig11_energy(run_once):
    study = run_once(
        figure11_energy, sparsities=SPARSITIES, v_values=V_VALUES, vw_lengths=VW_LENGTHS
    )

    headers = ["policy"] + [f"{int(s * 100)}%" for s in SPARSITIES]
    rows = [[label] + [round(e, 3) for e in series] for label, series in study.items()]
    print()
    print(
        format_table(
            headers,
            rows,
            title="Figure 11: energy of each selection policy on a 768x768 BERT-base layer",
        )
    )

    ideal = study["ideal"]

    # Energy decreases with sparsity for every policy, and the ideal policy
    # dominates every structured one (small tolerance for the padding of
    # non-divisible N:M group sizes, e.g. M=20 on 768 columns).
    for label, series in study.items():
        assert is_monotonic_decreasing(series, tolerance=0.01), label
        if label != "ideal":
            assert dominates(ideal, series, tolerance=0.03), label

    # V:N:M is robust to the vector size: even V=128 beats vw_8 and vw_4
    # (small tolerance at the 90/95% points where the N:M group size does
    # not divide the 768-wide layer and padding blurs the comparison).
    assert dominates(study["128:N:M"], study["vw_8"], tolerance=0.012)
    assert dominates(study["128:N:M"], study["vw_4"], tolerance=0.012)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(study["128:N:M"]) > mean(study["vw_8"])
    assert mean(study["128:N:M"]) > mean(study["vw_4"])

    # Longer dense vectors lose more energy (vw_4 >= vw_8 >= vw_16 >= vw_32).
    assert dominates(study["vw_4"], study["vw_8"], tolerance=1e-9)
    assert dominates(study["vw_8"], study["vw_16"], tolerance=1e-9)
    assert dominates(study["vw_16"], study["vw_32"], tolerance=1e-9)

    # Smaller V values sit closer to the ideal (1:N:M >= 64:N:M >= 128:N:M).
    assert dominates(study["1:N:M"], study["64:N:M"], tolerance=0.02)
    assert dominates(study["64:N:M"], study["128:N:M"], tolerance=0.02)

    # Magnitude-based selection bleeds energy quickly: at 50% sparsity some
    # energy is already gone, and at 95% only a small fraction remains.
    assert ideal[0] < 0.95
    assert ideal[-1] < 0.45
