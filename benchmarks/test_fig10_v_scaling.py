"""Figure 10 — impact of the vector size V and of wide shared-memory stores.

Checks on the 1024 x 4096 x 4096 BERT-large matrix:

* 128-bit output stores are never slower than 32-bit ones and the gap grows
  with sparsity, approaching the "up to 2x" the paper reports;
* larger V never hurts (the paper's V=128 curves sit at or above V=32);
* speedups rise with sparsity for every V.
"""

from repro.evaluation.figures import figure10_v_scaling
from repro.evaluation.reporting import format_table, is_monotonic_increasing

V_VALUES = (32, 64, 128)
PATTERNS = ((2, 7), (2, 8), (2, 10), (2, 20), (2, 40), (2, 100))


def test_fig10_v_scaling(run_once):
    results = run_once(figure10_v_scaling, v_values=V_VALUES, patterns=PATTERNS)

    rows = []
    for label, per_v in results.items():
        for v in V_VALUES:
            entry = per_v[v]
            rows.append(
                [
                    label,
                    v,
                    round(entry["stores_128bit"], 2),
                    round(entry["stores_32bit"], 2),
                    round(entry["stores_128bit"] / entry["stores_32bit"], 2),
                ]
            )
    print()
    print(
        format_table(
            ["V:N:M", "V", "speedup 128-bit stores", "speedup 32-bit stores", "128b/32b"],
            rows,
            title="Figure 10: V scaling and output-store width, 1024 x 4096 x 4096 (speedup vs cuBLAS)",
        )
    )

    for label, per_v in results.items():
        for v in V_VALUES:
            entry = per_v[v]
            # Wide stores never lose, and the advantage stays below ~2.5x.
            assert entry["stores_128bit"] >= entry["stores_32bit"]
            assert entry["stores_128bit"] / entry["stores_32bit"] < 2.5
        # Larger V never hurts at fixed sparsity (within 5%).
        assert per_v[128]["stores_128bit"] >= per_v[32]["stores_128bit"] * 0.95

    # The 128-bit advantage grows with sparsity (most visible at 2:100).
    advantage = [
        results[f"{n}:{m}"][128]["stores_128bit"] / results[f"{n}:{m}"][128]["stores_32bit"]
        for n, m in PATTERNS
    ]
    assert advantage[-1] == max(advantage)
    assert advantage[-1] > 1.5  # approaches the paper's "up to 2x"

    # Speedups rise with sparsity for every vector size.
    for v in V_VALUES:
        series = [results[f"{n}:{m}"][v]["stores_128bit"] for n, m in PATTERNS]
        assert is_monotonic_increasing(series, tolerance=0.1)
