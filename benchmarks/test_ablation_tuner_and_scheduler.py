"""Additional ablations called out in DESIGN.md (beyond the paper's figures).

* Template auto-tuning: how much the tuned configuration gains over the
  default instantiation across problem shapes (the reason Spatha is
  template-based).
* Structure-decay scheduler: gradual second-order pruning vs one-shot
  pruning at the same final sparsity (Section 6.1.1's motivation).
* Pair-wise vs combinatorial saliency solver: the scalable relaxation must
  stay close to the exact enumeration.
"""

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.kernels.common import GemmProblem
from repro.kernels.spatha import SpathaTuner
from repro.kernels.spatha.config import default_config
from repro.kernels.spatha.perf_model import estimate_time
from repro.pruning.second_order.proxy import QuadraticTask
from repro.pruning.second_order.saliency import solve_group_combinatorial, solve_group_pairwise
from repro.pruning.second_order.scheduler import gradual_vnm_prune, one_shot_vnm_prune


def test_ablation_template_tuning(run_once):
    """Tuning gains are largest for small/awkward GEMMs, small for big ones."""
    problems = [
        GemmProblem.from_nm(1024, 768, 1024, 2, 8, v=128, name="small"),
        GemmProblem.from_nm(1024, 4096, 4096, 2, 8, v=128, name="medium"),
        GemmProblem.from_nm(1024, 12288, 8192, 2, 8, v=128, name="large"),
    ]

    def run():
        tuner = SpathaTuner()
        rows = []
        for p in problems:
            default_time = estimate_time(p, config=default_config(p.v)).time_us
            record = tuner.tune(p)
            rows.append(
                {
                    "name": p.name,
                    "default_us": default_time,
                    "tuned_us": record.best_time_us,
                    "gain": default_time / record.best_time_us,
                    "search_space": len(record.results),
                    "best": record.best_config.describe(),
                }
            )
        return rows

    rows = run_once(run)
    print()
    print(
        format_table(
            ["problem", "default us", "tuned us", "gain", "candidates", "best config"],
            [[r["name"], round(r["default_us"], 1), round(r["tuned_us"], 1), round(r["gain"], 2),
              r["search_space"], r["best"]] for r in rows],
            title="Ablation: template auto-tuning vs default configuration",
        )
    )

    for r in rows:
        assert r["gain"] >= 1.0
        assert r["search_space"] >= 10
    # Tuning matters somewhere in the sweep (>= 5% on at least one shape).
    assert max(r["gain"] for r in rows) > 1.05


def test_ablation_structure_decay_scheduler(run_once):
    """Gradual (structure-decay) pruning beats or matches one-shot pruning."""

    def run():
        task = QuadraticTask.create(rows=64, cols=128, num_grad_samples=32, seed=3)
        one_shot = one_shot_vnm_prune(task.weights, v=32, n_target=1, m=8, grads=task.grads)
        gradual = gradual_vnm_prune(
            task.weights,
            v=32,
            n_target=1,
            m=8,
            steps=3,
            grads=task.grads,
            recovery_fn=lambda w, step: task.recovery_step(w),
        )
        return {
            "dense_f1": task.f1_score(task.weights),
            "one_shot_f1": task.f1_of_result(one_shot),
            "gradual_f1": task.f1_of_result(gradual.final),
            "schedule": gradual.schedule,
            "sparsity": gradual.final.sparsity,
        }

    result = run_once(run)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["dense F1", round(result["dense_f1"], 2)],
                ["one-shot 32:1:8 F1", round(result["one_shot_f1"], 2)],
                ["gradual 32:1:8 F1", round(result["gradual_f1"], 2)],
                ["N schedule", str(result["schedule"])],
                ["final sparsity", round(result["sparsity"], 3)],
            ],
            title="Ablation: structure-decay scheduler vs one-shot second-order pruning (87.5% sparsity)",
        )
    )

    assert result["sparsity"] == pytest.approx(1 - 1 / 8)
    assert result["schedule"][-1] == 1 and result["schedule"][0] > 1
    assert result["gradual_f1"] >= result["one_shot_f1"] - 0.25
    assert result["gradual_f1"] <= result["dense_f1"] + 0.5


def test_ablation_pairwise_vs_combinatorial_solver(run_once):
    """The pair-wise relaxation stays close to the exact enumeration."""

    def run():
        rng = np.random.default_rng(7)
        ratios = []
        for _ in range(50):
            grads = rng.normal(size=(24, 8))
            f_inv = np.linalg.inv(grads.T @ grads / 24 + 1e-3 * np.eye(8))
            w = rng.normal(size=8)
            exact = solve_group_combinatorial(w, f_inv, keep=2)
            greedy = solve_group_pairwise(w, f_inv, keep=2)
            ratios.append(greedy.saliency / max(exact.saliency, 1e-18))
        return np.asarray(ratios)

    ratios = run_once(run)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["groups evaluated", len(ratios)],
                ["exact optimum found (ratio == 1)", int(np.sum(ratios < 1.0 + 1e-9))],
                ["median saliency ratio", round(float(np.median(ratios)), 3)],
                ["worst saliency ratio", round(float(ratios.max()), 3)],
            ],
            title="Ablation: pair-wise solver vs exact m-combinatorial solver (2:8 groups)",
        )
    )

    assert np.median(ratios) < 1.6
    assert (ratios < 1.0 + 1e-9).mean() > 0.3
    assert ratios.max() < 6.0
