"""Figure 13 — comparison with existing dense and sparse libraries.

BERT-base and BERT-large encoder weight GEMMs (sequence length 512, batch
sizes 8 and 16), sparsity from 50% to 98%.  Claims checked per panel:

* Spatha's speedup over cuBLAS grows with sparsity, starts around 2x at 50%
  and reaches double digits (up to the ~25-27x the paper reports for the
  most favourable panels);
* cuSparseLt only exists at the 50% column and sits at/below Spatha there;
* Sputnik and CLASP only overtake cuBLAS at high sparsity (>= 90%) and
  saturate in the low single digits;
* Spatha dominates every other library at 90%+ sparsity.
"""

from repro.evaluation.figures import figure13_library_comparison
from repro.evaluation.reporting import crossover_index, format_table, is_monotonic_increasing

PATTERNS = ((2, 4), (2, 7), (2, 8), (2, 10), (2, 20), (2, 40), (2, 100))
SPARSITIES = [1 - n / m for n, m in PATTERNS]


def test_fig13_library_comparison(run_once):
    results = run_once(
        figure13_library_comparison,
        models=("bert-base", "bert-large"),
        batch_sizes=(8, 16),
        configurations=((64, 4), (128, 8)),
        patterns=PATTERNS,
    )

    print()
    for panel_key, panel in results.items():
        rows = []
        for sparsity in SPARSITIES:
            entry = panel[sparsity]
            rows.append(
                [
                    f"{int(round(sparsity * 100))}%",
                    round(entry["spatha"], 2),
                    round(entry.get("cusparselt", float("nan")), 2),
                    round(entry["sputnik"], 2),
                    round(entry["clasp"], 2),
                ]
            )
        print(
            format_table(
                ["sparsity", "Spatha", "cuSparseLt", "Sputnik", "CLASP"],
                rows,
                title=f"Figure 13 panel: {panel_key} (speedup vs cuBLAS)",
            )
        )
        print()

    best_spatha = 0.0
    for panel_key, panel in results.items():
        spatha = [panel[s]["spatha"] for s in SPARSITIES]
        sputnik = [panel[s]["sputnik"] for s in SPARSITIES]
        clasp = [panel[s]["clasp"] for s in SPARSITIES]
        best_spatha = max(best_spatha, spatha[-1])

        # Spatha: ~2x at 50%, monotone growth, double digits at 98%.
        assert 1.5 < spatha[0] <= 2.1, panel_key
        assert is_monotonic_increasing(spatha, tolerance=0.1), panel_key
        assert spatha[-1] > 10.0, panel_key

        # cuSparseLt appears only at 50% and does not beat Spatha there.
        assert "cusparselt" in panel[0.5] and all(
            "cusparselt" not in panel[s] for s in SPARSITIES[1:]
        ), panel_key
        assert panel[0.5]["cusparselt"] <= panel[0.5]["spatha"] + 1e-6, panel_key

        # Sputnik / CLASP: no win below 90% sparsity, low-single-digit caps.
        for series in (sputnik, clasp):
            idx = crossover_index(series, threshold=1.0)
            assert idx is None or SPARSITIES[idx] >= 0.9, panel_key
            assert max(series) < 8.0, panel_key

        # Spatha dominates every sparse competitor at >= 90% sparsity.
        for s in (0.9, 0.95, 0.98):
            assert panel[s]["spatha"] > panel[s]["sputnik"], panel_key
            assert panel[s]["spatha"] > panel[s]["clasp"], panel_key

    # The best panel reaches the >= 20x regime the paper highlights (27x).
    assert best_spatha > 20.0
