"""Figure 9 — column-loc ablation over the K sweep (BERT-large 1024 x K x 4096).

The paper's observations this benchmark checks:

* speedup over cuBLAS grows with K (arithmetic intensity) for every format;
* at large K the speedups approach but do not exceed the theoretical caps
  (~4.5x of 5x at 2:10, ~8.5x of 10x at 2:20, ~17.5x of 20x at 2:40,
  ~37x of 50x at 2:100);
* the column-loc structure's overhead is negligible at practical sparsities
  and only slightly more visible at 2:100.
"""

import pytest

from repro.evaluation.figures import figure9_columnloc_ablation
from repro.evaluation.reporting import format_table, is_monotonic_increasing, within_factor

#: Reduced K grid (subset of the paper's 16-point sweep) keeps the benchmark
#: under a few seconds while still exposing the small-K -> large-K trend.
K_VALUES = (768, 2304, 4608, 7680, 12288)
PATTERNS = ((2, 10), (2, 20), (2, 40), (2, 100))
PAPER_SPEEDUPS = {(2, 10): 4.5, (2, 20): 8.5, (2, 40): 17.5, (2, 100): 37.0}


def test_fig09_columnloc_ablation(run_once):
    results = run_once(figure9_columnloc_ablation, k_values=K_VALUES, patterns=PATTERNS, v=128)

    rows = []
    for label, per_k in results.items():
        for k, entry in sorted(per_k.items()):
            rows.append(
                [
                    label,
                    k,
                    round(entry["with_columnloc"], 2),
                    round(entry["without_columnloc"], 2),
                    round(100 * (1 - entry["with_columnloc"] / entry["without_columnloc"]), 1),
                    entry["cap"],
                ]
            )
    print()
    print(
        format_table(
            ["V:N:M", "K", "speedup w/ column-loc", "speedup w/o column-loc", "overhead %", "cap"],
            rows,
            title="Figure 9: column-loc ablation, 128:2:M on 1024 x K x 4096 (speedup vs cuBLAS)",
        )
    )

    for (n, m) in PATTERNS:
        label = f"{n}:{m}"
        per_k = results[label]
        speedups = [per_k[k]["with_columnloc"] for k in K_VALUES]
        cap = per_k[K_VALUES[0]]["cap"]

        # Speedup grows with K and stays below the theoretical cap.
        assert is_monotonic_increasing(speedups, tolerance=0.05 * cap)
        assert all(s <= cap for s in speedups)

        # At the largest K the speedup lands within 1.5x of the paper's value.
        assert within_factor(speedups[-1], PAPER_SPEEDUPS[(n, m)], 1.5)

        # The column-loc overhead never exceeds ~15% of the kernel time.
        for k in K_VALUES:
            overhead = 1 - per_k[k]["with_columnloc"] / per_k[k]["without_columnloc"]
            assert 0.0 <= overhead < 0.15

    # The overhead is relatively larger at 2:100 than at 2:10 (paper: "slightly
    # more noticeable when dealing with 2:100 sparsity").
    def relative_overhead(label):
        k = K_VALUES[-1]
        e = results[label][k]
        return 1 - e["with_columnloc"] / e["without_columnloc"]

    assert relative_overhead("2:100") >= relative_overhead("2:10") - 1e-6
