"""Table 1 — matrix shapes for mma.sp on Sparse Tensor Cores."""

from repro.evaluation.figures import table1_mma_shapes
from repro.evaluation.reporting import format_table


def test_table1_mma_shapes(run_once):
    rows = run_once(table1_mma_shapes)

    print()
    print(
        format_table(
            ["precision", "format", "supported shapes", "m", "n"],
            [[r["precision"], r["format"], r["supported_shapes"], r["m"], r["n"]] for r in rows],
            title="Table 1: mma.sp shapes on Sparse Tensor Cores",
        )
    )

    by_precision = {r["precision"]: r for r in rows}
    # Exactly the paper's table.
    assert by_precision["fp32"]["format"] == "1:2"
    assert by_precision["fp32"]["supported_shapes"] == "k8, k16"
    assert by_precision["fp16"]["format"] == "2:4"
    assert by_precision["fp16"]["supported_shapes"] == "k16, k32"
    assert by_precision["uint8"]["supported_shapes"] == "k32, k64"
    assert by_precision["uint4"]["supported_shapes"] == "k64, k128"
    # M and N dimensions fixed to 16 and 8 for every precision.
    assert all(r["m"] == 16 and r["n"] == 8 for r in rows)
