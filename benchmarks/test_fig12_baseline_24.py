"""Figure 12 — baseline performance at 50% sparsity (2:4 format).

BERT-base (768 x K x 4096) and BERT-large (1024 x K x 4096) weight GEMMs,
K swept over the paper's grid.  Claims checked:

* sparse-kernel performance improves with GEMM size (arithmetic intensity);
* Spatha reaches ~2x over cuBLAS at large K but never exceeds the 2x cap;
* Spatha is at least as fast as cuSparseLt everywhere, with the largest
  advantage (up to ~1.38x) on the small-K end;
* cuBLAS lands in the 40-80 TFLOP/s band of the paper's plot.
"""

from repro.evaluation.figures import figure12_baseline_24
from repro.evaluation.reporting import format_table, is_monotonic_increasing

K_VALUES = (768, 1536, 3072, 4608, 7680, 12288)


def test_fig12_baseline_24(run_once):
    results = run_once(figure12_baseline_24, k_values=K_VALUES)

    rows = []
    for model, per_k in results.items():
        for k in K_VALUES:
            e = per_k[k]
            rows.append(
                [
                    model,
                    k,
                    round(e["cublas_tflops"], 1),
                    round(e["spatha_tflops"], 1),
                    round(e["cusparselt_tflops"], 1),
                    round(e["spatha_speedup"], 2),
                    round(e["cusparselt_speedup"], 2),
                ]
            )
    print()
    print(
        format_table(
            ["model", "K", "cuBLAS TFLOP/s", "Spatha TFLOP/s", "cuSparseLt TFLOP/s",
             "Spatha speedup", "cuSparseLt speedup"],
            rows,
            title="Figure 12: 2:4 baseline comparison (speedup vs cuBLAS)",
        )
    )

    for model, per_k in results.items():
        spatha = [per_k[k]["spatha_speedup"] for k in K_VALUES]
        cusparselt = [per_k[k]["cusparselt_speedup"] for k in K_VALUES]
        cublas_tflops = [per_k[k]["cublas_tflops"] for k in K_VALUES]

        # Performance improves with the GEMM size and stays at/just below the
        # 2x hardware cap (a ~2% excursion is model noise from the different
        # tile heuristics of the dense baseline).
        assert is_monotonic_increasing(spatha, tolerance=0.05)
        assert all(1.0 < s <= 2.05 for s in spatha)
        assert all(0.9 < s <= 2.05 for s in cusparselt)

        # Spatha >= cuSparseLt at every size; advantage largest at small K
        # and bounded by ~1.45x (the paper reports up to 1.38x).
        ratios = [s / c for s, c in zip(spatha, cusparselt)]
        assert all(r >= 0.99 for r in ratios)
        assert max(ratios) <= 1.45
        assert ratios[0] >= ratios[-1] - 1e-6

        # Spatha approaches 2x at the largest size.
        assert spatha[-1] > 1.75

        # cuBLAS throughput in the plausible band of the paper's plot.
        assert all(35.0 < t < 85.0 for t in cublas_tflops)
