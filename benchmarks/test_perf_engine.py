"""Microbenchmarks of the vectorized execution engine.

Times the batched paths against their retained loop references on
moderately sized operands and asserts both the numerical equivalence and a
conservative speedup floor (the full-size numbers — including the 10x+
4096-cube SpMM — are produced by ``benchmarks/run_bench.py`` and recorded
in ``BENCH_engine.json``).

Wall-clock gates are timing-sensitive by nature, and shared CI runners
jitter enough to red-flag a correct PR.  Environment handling:

* locally (no ``CI`` variable): gates run with the strict floors;
* under ``CI=true`` (GitHub sets this automatically): the whole module
  **skips** unless ``PERF_GATES`` is set, so the blocking test jobs can
  never flake on scheduler noise;
* ``PERF_GATES=relaxed``: gates run with loosened floors/budgets — what
  the dedicated *non-blocking* perf job in ``.github/workflows/ci.yml``
  uses (regressions stay visible without gating merges);
* ``PERF_GATES=strict``: the local strict floors, anywhere.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.evaluation.reporting import format_table
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels.spatha import SpmmPlan, spmm_loop_reference
from repro.pruning.second_order.obs_vnm import (
    second_order_vnm_prune,
    second_order_vnm_prune_reference,
)

IN_CI = os.environ.get("CI", "").lower() in {"1", "true", "yes"}
PERF_GATES = os.environ.get("PERF_GATES", "").lower()
STRICT = PERF_GATES == "strict" or (not IN_CI and PERF_GATES != "relaxed")

#: Conservative local floor vs the near-noise floor the relaxed CI job
#: uses (the vectorized paths are typically >10x; even 1.05x would mean a
#: catastrophic regression, so the relaxed gate still catches real breaks).
SPEEDUP_FLOOR = 1.5 if STRICT else 1.05

# The perf marker (registered in pytest.ini) lets noisy environments
# deselect these with ``-m "not perf"`` without touching tier-1.
pytestmark = [
    pytest.mark.perf,
    pytest.mark.skipif(
        IN_CI and PERF_GATES not in {"strict", "relaxed"},
        reason="wall-clock perf gates skip on CI runners unless PERF_GATES is set "
        "(the non-blocking perf workflow job runs them with PERF_GATES=relaxed)",
    ),
]


def best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return min(times), result


def test_perf_spmm_plan_vs_loop(run_once):
    rng = np.random.default_rng(0)
    r = k = 1024
    c = 256
    dense = rng.normal(size=(r, k)).astype(np.float32)
    a = VNMSparseMatrix.from_dense(dense, v=16, n=2, m=4, strict=False)
    b = rng.normal(size=(k, c)).astype(np.float32)

    plan = SpmmPlan.for_matrix(a)
    plan.execute(b)  # warm: operand preparation paid once, like serving

    ref_t, ref_out = best_of(lambda: spmm_loop_reference(a, b))
    vec_t, vec_out = run_once(lambda: best_of(lambda: plan.execute(b)))

    print()
    print(
        format_table(
            ["op", "shape", "loop (ms)", "vectorized (ms)", "speedup"],
            [
                [
                    "spatha.spmm",
                    f"{r}x{k}x{c} 16:2:4",
                    round(ref_t * 1e3, 2),
                    round(vec_t * 1e3, 2),
                    round(ref_t / vec_t, 1),
                ]
            ],
            title="Vectorized engine microbenchmark (see run_bench.py for full sizes)",
        )
    )

    assert np.allclose(vec_out, ref_out, atol=1e-3, rtol=1e-5)
    # The full-size speedup is >10x (see BENCH_engine.json); at this reduced
    # size we only assert a conservative floor to keep the suite robust.
    assert ref_t / vec_t > SPEEDUP_FLOOR


def test_perf_second_order_vnm_vs_loop(run_once):
    rng = np.random.default_rng(1)
    w = rng.normal(size=(32, 64))

    ref_t, ref = best_of(lambda: second_order_vnm_prune_reference(w, v=8, n=2, m=8), repeats=2)
    vec_t, vec = run_once(lambda: best_of(lambda: second_order_vnm_prune(w, v=8, n=2, m=8)))

    print()
    print(
        format_table(
            ["op", "shape", "loop (ms)", "vectorized (ms)", "speedup"],
            [
                [
                    "second_order_vnm_prune",
                    "32x64 8:2:8",
                    round(ref_t * 1e3, 1),
                    round(vec_t * 1e3, 1),
                    round(ref_t / vec_t, 1),
                ]
            ],
        )
    )

    assert np.array_equal(vec.mask, ref.mask)
    assert np.allclose(vec.pruned_weights, ref.pruned_weights, atol=1e-10)
    # Typically >10x; the floor is deliberately loose so scheduler noise on
    # the single-core CI box cannot flake the gate.
    assert ref_t / vec_t > SPEEDUP_FLOOR


#: Wall-clock ceiling for the tier-1 serving subset.  The golden encoder
#: matrices are deliberately split (full grids marked ``slow``, smoke
#: subsets in tier-1); this gate fails if the tier-1 slice creeps past the
#: budget, e.g. because matrix cells lose their ``slow`` marker or grow
#: expensive fixtures.  Relaxed-mode CI triples the budget: the gate is
#: about runaway test growth, not about the runner's disk/CPU of the day.
SERVING_TIER1_BUDGET_S = 120.0 if STRICT else 360.0


def test_perf_serving_tier1_wallclock_budget(run_once):
    """Run the tier-1 ``tests/serving`` subset end to end and time it.

    Uses a subprocess so the measurement includes collection and fixture
    cost (what CI actually pays) and so pytest.ini's default ``-m "not
    slow"`` tier-1 selection applies; ``--durations`` is requested so a
    budget breach names the slow tests in the captured output.
    """
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    def run_subset():
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "tests/serving", "-q", "--durations=5",
             "-p", "no:cacheprovider"],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=10 * 60,
        )
        return time.perf_counter() - t0, proc

    elapsed, proc = run_once(run_subset)
    assert proc.returncode == 0, f"tier-1 serving subset failed:\n{proc.stdout}\n{proc.stderr}"
    assert "deselected" in proc.stdout  # the slow golden matrix stayed out
    assert elapsed < SERVING_TIER1_BUDGET_S, (
        f"tier-1 tests/serving took {elapsed:.1f}s (budget {SERVING_TIER1_BUDGET_S:.0f}s); "
        f"slowest tests:\n{proc.stdout}"
    )
