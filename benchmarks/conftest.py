"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints it in
a readable form (so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
report generator) and asserts the qualitative shape the paper reports.  The
``run_once`` helper wraps pytest-benchmark so that the (deterministic,
model-driven) experiment is executed exactly once per benchmark round.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return _run
