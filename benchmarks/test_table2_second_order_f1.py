"""Table 2 — second-order pruning accuracy (SQuAD F1 surrogate).

The SQuAD fine-tuning pipeline is replaced by the quadratic surrogate task
documented in DESIGN.md; the pruning policies and sparsity levels are the
paper's (1:N:M, 64:N:M, 128:N:M and vw_8 at 2:8 and 2:16).  Claims checked:

* every policy stays within a few points of the dense score at 2:8, and
  degrades moderately (not collapses) at 2:16;
* the plain 1:N:M format retains the most accuracy, larger V values pay a
  small additional penalty, mirroring the paper's ordering;
* 2:16 scores are lower than 2:8 scores for every policy.
"""

import pytest

from repro.evaluation.figures import table2_second_order_f1
from repro.evaluation.reporting import format_table

#: Paper Table 2 values, for the printed side-by-side comparison.
PAPER = {
    "75% (2:8)": {"1:N:M": 88.61, "64:N:M": 88.47, "128:N:M": 87.94, "vw_8": 88.55},
    "88% (2:16)": {"1:N:M": 87.73, "64:N:M": 86.50, "128:N:M": 85.01, "vw_8": 86.90},
}
PAPER_DENSE = 88.43


def test_table2_second_order_f1(run_once):
    result = run_once(table2_second_order_f1, patterns=((2, 8), (2, 16)), rows=128, cols=256)

    methods = ["1:N:M", "64:N:M", "128:N:M", "vw_8"]
    rows = []
    for sparsity_label, scores in result.scores.items():
        rows.append([sparsity_label + " (measured)"] + [round(scores[m], 2) for m in methods])
        rows.append([sparsity_label + " (paper)"] + [PAPER[sparsity_label][m] for m in methods])
    print()
    print(
        format_table(
            ["sparsity", *methods],
            rows,
            title=(
                f"Table 2: surrogate F1 (dense measured={result.dense_f1:.2f}, "
                f"paper dense={PAPER_DENSE})"
            ),
        )
    )

    assert result.dense_f1 == pytest.approx(PAPER_DENSE, abs=1.0)

    low, high = result.scores["75% (2:8)"], result.scores["88% (2:16)"]

    for scores, max_drop in ((low, 6.0), (high, 8.0)):
        for method in methods:
            drop = result.dense_f1 - scores[method]
            assert 0.0 <= drop <= max_drop, (method, drop)

    # 2:16 is harder than 2:8 for every policy.
    for method in methods:
        assert high[method] <= low[method] + 0.2, method

    # Ordering within the V:N:M family: smaller V retains more accuracy.
    for scores in (low, high):
        assert scores["1:N:M"] >= scores["64:N:M"] - 0.3
        assert scores["1:N:M"] >= scores["128:N:M"] - 0.3

    # All structured policies recover >= 90% of the dense score at 2:16
    # (the paper reports 96-99% recovery).
    for method in methods:
        assert high[method] / result.dense_f1 >= 0.90
