"""Figure 15 — end-to-end latency of sparse LLM inference.

BERT-large (batch 32), GPT-2-large (batch 8) and a single GPT-3 encoder
layer (batch 1), dense vs {64,128}:2:{8,16,32} sparsification of every
weight GEMM.  Claims checked:

* sparsification only shrinks the GEMM share of the latency (softmax /
  matmul / others are untouched);
* GEMM-time reductions land in the ~10x (BERT), ~11x (GPT-2) and ~11x
  (GPT-3) regime at 2:32;
* the end-to-end gain is bounded by the GEMM fraction: largest for GPT-3
  (GEMMs ~80% of the time), smallest for GPT-2 (~50-60%);
* deeper sparsity never increases latency.
"""

import pytest

from repro.evaluation.figures import FIGURE15_MODELS, figure15_end_to_end
from repro.evaluation.reporting import format_table

V_VALUES = (64, 128)
M_VALUES = (8, 16, 32)


def test_fig15_end_to_end(run_once):
    results = run_once(figure15_end_to_end, v_values=V_VALUES, m_values=M_VALUES)

    print()
    for model, plans in results.items():
        rows = []
        for plan, breakdown in plans.items():
            rows.append(
                [
                    plan,
                    round(breakdown["gemm"], 1),
                    round(breakdown["matmul"], 1),
                    round(breakdown["softmax"], 1),
                    round(breakdown["other"], 1),
                    round(breakdown["total"], 1),
                ]
            )
        print(
            format_table(
                ["plan", "GEMMs ms", "matmul ms", "softmax ms", "others ms", "total ms"],
                rows,
                title=f"Figure 15: {model} inference latency breakdown",
            )
        )
        print()

    for model, plans in results.items():
        dense = plans["dense"]

        # Sparse plans touch only the GEMM share.
        for plan, breakdown in plans.items():
            if plan == "dense":
                continue
            assert breakdown["gemm"] < dense["gemm"], (model, plan)
            for untouched in ("matmul", "softmax", "other"):
                assert breakdown[untouched] == pytest.approx(dense[untouched], rel=1e-6)

        # Latency decreases monotonically with sparsity for each V.
        for v in V_VALUES:
            totals = [plans[f"{v}:2:{m}"]["total"] for m in M_VALUES]
            assert all(b <= a + 1e-6 for a, b in zip(totals, totals[1:])), (model, v)

    # GEMM-time reduction at 64:2:32 lands in the ~7-16x band (paper: ~10-11x).
    gemm_reductions = {}
    e2e_speedups = {}
    for model, plans in results.items():
        dense, sparse = plans["dense"], plans["64:2:32"]
        gemm_reductions[model] = dense["gemm"] / sparse["gemm"]
        e2e_speedups[model] = dense["total"] / sparse["total"]
        assert 6.0 < gemm_reductions[model] < 16.0, model
        assert e2e_speedups[model] > 1.5, model

    # GPT-3 has the highest GEMM fraction, hence the largest end-to-end gain;
    # GPT-2 is the most limited by its non-GEMM share (paper Section 7.2.3).
    gemm_fraction = {
        model: plans["dense"]["gemm"] / plans["dense"]["total"] for model, plans in results.items()
    }
    assert gemm_fraction["gpt3-encoder"] > 0.75
    assert gemm_fraction["gpt3-encoder"] > gemm_fraction["bert-large"] > gemm_fraction["gpt2-large"]
    assert e2e_speedups["gpt3-encoder"] == max(e2e_speedups.values())
    assert e2e_speedups["gpt2-large"] == min(e2e_speedups.values())

    # The dense BERT-large latency lands in the same few-hundred-ms regime as
    # the paper's plot (batch 32, sequence length 512).
    assert 100.0 < results["bert-large"]["dense"]["total"] < 500.0
