#!/usr/bin/env python
"""Run the vectorized-engine microbenchmarks and write ``BENCH_engine.json``.

Every entry times a vectorized hot path against its retained loop reference
on full-size operands and records wall time, speedup and the numerical
deviation, giving future PRs a perf trajectory to regress against::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--output PATH]

``--quick`` shrinks the shapes (~2 s total) for smoke runs; the default
sizes include the headline case of the engine — ``spatha.spmm`` on a
4096 x 4096 V:N:M operand times a 4096-column RHS, where the planned,
batched pipeline replaces the seed's per-row-block Python loop.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels import cusparse, sputnik
from repro.kernels.dispatch import KernelDispatcher, SpmmOperand
from repro.kernels.spatha import SpmmPlan, spmm_loop_reference
from repro.models import TransformerEncoder, tiny_config
from repro.serving import (
    AsyncWindowBatcher,
    ContinuousBatcher,
    DecodeRequest,
    DecoderServingEngine,
    FaultInjector,
    FaultPlan,
    ModelServingEngine,
    Request,
    SchedulingConfig,
    ServingConfig,
    ServingEngine,
    ShardingConfig,
    bursty_arrivals,
    decode_reference,
    merge_arrivals,
    outcome_counts,
    pareto_lengths,
    simulate_slo,
)
from repro.pruning.second_order.fisher import (
    estimate_block_fisher,
    estimate_block_fisher_reference,
    synthetic_gradients,
)
from repro.pruning.second_order.obs_vnm import (
    second_order_nm_prune,
    second_order_nm_prune_reference,
    second_order_vnm_prune,
    second_order_vnm_prune_reference,
)


def _time(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _entry(op, shape, ref_fn, vec_fn, compare, ref_repeats=1, vec_repeats=3):
    # Interleave the ref/vec repeats so that on a shared machine a load
    # spike lands on both sides of the ratio instead of biasing whichever
    # phase it happens to hit; each side is still min-of-N.  When the
    # repeat counts differ (e.g. a 15 s loop reference timed once), the
    # leftover repeats of the longer side run after the paired ones.
    ref_t = vec_t = float("inf")
    ref_out = vec_out = None
    for i in range(max(ref_repeats, vec_repeats)):
        if i < ref_repeats:
            t, ref_out = _time(ref_fn, 1)
            ref_t = min(ref_t, t)
        if i < vec_repeats:
            t, vec_out = _time(vec_fn, 1)
            vec_t = min(vec_t, t)
    diff = compare(ref_out, vec_out)
    entry = {
        "op": op,
        "shape": shape,
        "reference_s": round(ref_t, 6),
        "vectorized_s": round(vec_t, 6),
        "speedup": round(ref_t / vec_t, 2),
        "max_abs_diff": float(diff),
        "bit_exact": bool(diff == 0.0),
        # Unrounded timings for derived metrics (throughput etc.).
        "_reference_s_raw": ref_t,
        "_vectorized_s_raw": vec_t,
    }
    print(
        f"{op:28s} {shape:28s} ref {ref_t:8.3f}s  vec {vec_t:8.3f}s  "
        f"speedup {entry['speedup']:7.2f}x  max|diff| {diff:.2e}"
    )
    return entry


def _array_diff(a, b):
    return np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)).max(
        initial=0.0
    )


def bench_spatha_spmm(entries, size, v, n, m, rng):
    dense = rng.normal(size=(size, size)).astype(np.float32)
    a = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
    b = rng.normal(size=(size, size)).astype(np.float32)
    plan = SpmmPlan.for_matrix(a)
    plan.execute(b)  # warm: preparation is paid once per operand
    entry = _entry(
        "spatha.spmm",
        f"{size}x{size}x{size} {v}:{n}:{m}",
        lambda: spmm_loop_reference(a, b),
        lambda: plan.execute(b),
        _array_diff,
    )
    entry["strategy"] = plan.resolve_strategy(size)
    if not entry["bit_exact"]:
        # Measured (not assumed): at this shape the auto chooser resolves
        # to the dense GEMM schedule — the gather schedule is fancy-index
        # bandwidth-bound here (~0.2 GB/s vs one ~100 GFLOP/s BLAS call)
        # and loses despite doing M/4 less arithmetic.  The dense GEMM
        # accumulates each fp32 dot product in a different order than the
        # block-loop reference, so the outputs differ by accumulation
        # reorder only; record the measured relative tolerance next to the
        # entry so the non-exact record is self-describing.
        ref = spmm_loop_reference(a, b)
        scale = float(np.abs(ref).max(initial=1.0))
        entry["reorder_rel_tol"] = float(entry["max_abs_diff"] / scale)
        entry["non_exact_reason"] = (
            "auto strategy resolves to the dense GEMM schedule (gather is "
            "memory-bound at this shape); fp32 accumulation order differs from "
            "the loop reference within the recorded relative tolerance"
        )
    entries.append(entry)


def bench_baseline_kernels(entries, size, rng):
    dense = (rng.normal(size=(size, size)) * (rng.random(size=(size, size)) < 0.1)).astype(
        np.float32
    )
    csr = CSRMatrix.from_dense(dense)
    b = rng.normal(size=(size, size // 4)).astype(np.float32)
    entries.append(
        _entry(
            "sputnik.spmm",
            f"{size}x{size}x{size // 4} d=0.10",
            lambda: sputnik.spmm_loop_reference(csr, b),
            lambda: sputnik.spmm(csr, b),
            _array_diff,
        )
    )

    # Small blocks: the interpreter-bound regime where the slot-batched
    # formulation engages (large blocks dispatch to the BLAS-bound loop).
    bsize = 8
    nb = size // bsize
    mask = rng.random(size=(nb, nb)) < 0.4
    blocked = dense * np.kron(mask, np.ones((bsize, bsize), dtype=np.float32))
    ell = BlockedEllMatrix.from_dense(blocked, b=bsize)
    entries.append(
        _entry(
            "cusparse.spmm",
            f"{size}x{size}x{size // 4} b={bsize}",
            lambda: cusparse.spmm_loop_reference(ell, b),
            lambda: cusparse.spmm(ell, b),
            _array_diff,
        )
    )


def bench_formats(entries, size, rng):
    dense = (rng.normal(size=(size, size)) * (rng.random(size=(size, size)) < 0.2)).astype(
        np.float32
    )
    csr = CSRMatrix.from_dense(dense)
    entries.append(
        _entry(
            "csr.to_dense",
            f"{size}x{size} d=0.20",
            csr.to_dense_reference,
            csr.to_dense,
            _array_diff,
            ref_repeats=3,
        )
    )

    entries.append(
        _entry(
            "cvse.from_dense",
            f"{size}x{size} l=8",
            lambda: CVSEMatrix.from_dense_reference(dense, l=8),
            lambda: CVSEMatrix.from_dense(dense, l=8),
            lambda r, v: _array_diff(r.data, v.data),
            ref_repeats=3,
        )
    )
    cvse = CVSEMatrix.from_dense(dense, l=8)
    entries.append(
        _entry(
            "cvse.to_dense",
            f"{size}x{size} l=8",
            cvse.to_dense_reference,
            cvse.to_dense,
            _array_diff,
            ref_repeats=3,
        )
    )

    ell = BlockedEllMatrix.from_dense(dense, b=16)
    entries.append(
        _entry(
            "blocked_ell.from_dense",
            f"{size}x{size} b=16",
            lambda: BlockedEllMatrix.from_dense_reference(dense, b=16),
            lambda: BlockedEllMatrix.from_dense(dense, b=16),
            lambda r, v: _array_diff(r.blocks, v.blocks),
            ref_repeats=3,
        )
    )
    entries.append(
        _entry(
            "blocked_ell.to_dense",
            f"{size}x{size} b=16",
            ell.to_dense_reference,
            ell.to_dense,
            _array_diff,
            ref_repeats=3,
        )
    )

    vnm = VNMSparseMatrix.from_dense(
        rng.normal(size=(size, size)).astype(np.float32), v=16, n=2, m=8, strict=False
    )
    entries.append(
        _entry(
            "vnm.storage_order_values",
            f"{size}x{size} 16:2:8",
            vnm.storage_order_values_reference,
            vnm.storage_order_values,
            _array_diff,
            ref_repeats=3,
        )
    )


def bench_pruning(entries, rows, cols, rng):
    w = rng.normal(size=(rows, cols))
    grads = synthetic_gradients(w, num_samples=16, seed=0)
    entries.append(
        _entry(
            "estimate_block_fisher",
            f"{rows}x{cols} bs=8 G=16",
            lambda: estimate_block_fisher_reference(grads, w.shape, block_size=8),
            lambda: estimate_block_fisher(grads, w.shape, block_size=8),
            lambda r, v: _array_diff(r.inverse_blocks, v.inverse_blocks),
        )
    )
    entries.append(
        _entry(
            "second_order_nm_prune",
            f"{rows}x{cols} 2:8",
            lambda: second_order_nm_prune_reference(w, n=2, m=8, grads=grads),
            lambda: second_order_nm_prune(w, n=2, m=8, grads=grads),
            lambda r, v: _array_diff(r.pruned_weights, v.pruned_weights),
            vec_repeats=1,
        )
    )
    entries.append(
        _entry(
            "second_order_vnm_prune",
            f"{rows}x{cols} 8:2:8",
            lambda: second_order_vnm_prune_reference(w, v=8, n=2, m=8, grads=grads),
            lambda: second_order_vnm_prune(w, v=8, n=2, m=8, grads=grads),
            lambda r, v: _array_diff(r.pruned_weights, v.pruned_weights),
            vec_repeats=1,
        )
    )


def bench_serving(entries, size, num_requests, tokens, rng):
    """Dynamic batching vs per-request dispatch (measured requests/s).

    Both paths execute the same requests through the same warmed dispatcher;
    the reference serves them one window per request, the batched path one
    window for all of them.  Outputs are bit-identical by construction
    (slab-exact batching), so the speedup is a pure throughput gain.
    """
    dense = rng.normal(size=(size, size)).astype(np.float32)
    a = VNMSparseMatrix.from_dense(dense, v=16, n=2, m=4, strict=False)
    requests = [
        Request(f"bench-{i:04d}", rng.normal(size=(tokens, size)).astype(np.float32))
        for i in range(num_requests)
    ]
    dispatcher = KernelDispatcher()
    engine = ServingEngine(a, dispatcher=dispatcher)
    # Warm the plan and the dispatch decision of the traffic's bucket so
    # neither path pays one-time preparation inside the timed region.
    engine.dispatcher.warm(engine.operand, cs=(engine.batcher.token_bucket(tokens),))

    def serve_sequential():
        out = {}
        for request in requests:
            out.update(engine.serve([request]))
        return np.concatenate([out[r.request_id] for r in requests])

    def serve_batched():
        out = engine.serve(requests)
        return np.concatenate([out[r.request_id] for r in requests])

    entry = _entry(
        "serving.dynamic_batching",
        f"{size}x{size} 16:2:4 {num_requests}r x {tokens}t",
        serve_sequential,
        serve_batched,
        _array_diff,
    )
    entry["requests_per_s_sequential"] = round(num_requests / entry["_reference_s_raw"], 1)
    entry["requests_per_s_batched"] = round(num_requests / entry["_vectorized_s_raw"], 1)
    print(
        f"{'':28s} {'':28s} throughput {entry['requests_per_s_sequential']:9.1f} -> "
        f"{entry['requests_per_s_batched']:9.1f} req/s"
    )
    entries.append(entry)


def bench_model_serving(entries, hidden, intermediate, num_layers, num_requests, lengths, rng):
    """Model-level serving: batched encoder windows vs per-request forwards.

    Every projection of a small BERT-shaped encoder is V:N:M-sparsified and
    the whole stack is served through ``ModelServingEngine``; the reference
    path serves one request per window (N sequential encoder forwards), the
    batched path serves the same requests in one window (one batched
    forward per exact-length bucket).  Outputs are bit-identical by
    construction — exact-length stacking plus slab-exact operators — so the
    measured requests/s gap is a pure dynamic-batching gain.
    """
    cfg = tiny_config(
        hidden_size=hidden, num_layers=num_layers, num_heads=4, intermediate_size=intermediate
    )
    encoder = TransformerEncoder.init(cfg, seed=0)
    sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
    engine = ModelServingEngine(encoder, warm_buckets=sorted(set(lengths)))
    requests = [
        Request(f"enc-{i:04d}", rng.normal(size=(lengths[i % len(lengths)], hidden)).astype(np.float32))
        for i in range(num_requests)
    ]

    def serve_sequential():
        out = {}
        for request in requests:
            out.update(engine.serve([request]))
        return np.concatenate([out[r.request_id] for r in requests])

    def serve_batched():
        out = engine.serve(requests)
        return np.concatenate([out[r.request_id] for r in requests])

    entry = _entry(
        "serving.encoder",
        f"h{hidden}/i{intermediate} L{num_layers} 16:2:8 {num_requests}r",
        serve_sequential,
        serve_batched,
        _array_diff,
    )
    entry["requests_per_s_sequential"] = round(num_requests / entry["_reference_s_raw"], 1)
    entry["requests_per_s_batched"] = round(num_requests / entry["_vectorized_s_raw"], 1)
    stats = engine.stats()
    entry["plan_cache"] = dict(stats["plan_cache"])
    print(
        f"{'':28s} {'':28s} throughput {entry['requests_per_s_sequential']:9.1f} -> "
        f"{entry['requests_per_s_batched']:9.1f} req/s  "
        f"(plan cache {stats['plan_cache']['hits']} hits / {stats['plan_cache']['misses']} misses)"
    )
    entries.append(entry)


def bench_model_serving_sharded(
    entries, hidden, intermediate, num_layers, num_requests, lengths, tp_degree, rng
):
    """Sharded serving: batched windows vs per-request forwards, both on a
    ``tp_degree``-way split encoder.

    The encoder is partitioned across ``tp_degree`` simulated devices by
    balanced min-cut placement (one kernel dispatcher per shard) and served
    through the same window loop as ``serving.encoder``; the reference path
    serves one request per window, the batched path serves the whole window
    at once, so the measured gap is the dynamic-batching gain *under
    sharding* and holds the >= 1.0 serving floor by construction.  Sharding
    itself is bit-neutral — each projection's SpMM runs unsplit on its
    owning shard — which the entry pins twice: sequential-vs-batched
    (``bit_exact``) and sharded-vs-single-device twin
    (``single_device_bit_exact``).  The interconnect cost the placement
    implies (ring all-reduces into spanning row-parallel projections,
    send/recv on other cut edges) is modelled, recorded on the trace, and
    reported as ``modelled_comm_fraction`` of total modelled kernel time.
    """
    def build_encoder():
        cfg = tiny_config(
            hidden_size=hidden, num_layers=num_layers, num_heads=4,
            intermediate_size=intermediate,
        )
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return encoder

    engine = ModelServingEngine(
        build_encoder(),
        config=ServingConfig(
            sharding=ShardingConfig(tp_degree=tp_degree), name="bench-sharded"
        ),
        warm_buckets=sorted(set(lengths)),
    )
    requests = [
        Request(f"shd-{i:04d}", rng.normal(size=(lengths[i % len(lengths)], hidden)).astype(np.float32))
        for i in range(num_requests)
    ]

    def serve_sequential():
        out = {}
        for request in requests:
            out.update(engine.serve([request]))
        return np.concatenate([out[r.request_id] for r in requests])

    def serve_batched():
        out = engine.serve(requests)
        return np.concatenate([out[r.request_id] for r in requests])

    entry = _entry(
        "serving.encoder_sharded",
        f"h{hidden}/i{intermediate} L{num_layers} tp{tp_degree} {num_requests}r",
        serve_sequential,
        serve_batched,
        _array_diff,
    )
    entry["requests_per_s_sequential"] = round(num_requests / entry["_reference_s_raw"], 1)
    entry["requests_per_s_batched"] = round(num_requests / entry["_vectorized_s_raw"], 1)

    # Bit-neutrality of the shard split itself: one more (untimed) batched
    # window against a single-device twin of the same initialisation.
    twin = build_encoder()
    twin.set_dispatcher(KernelDispatcher())
    sharded_out = serve_batched()
    twin_out = np.concatenate(
        [twin.forward(r.activations[None])[0] for r in requests]
    )
    single_diff = _array_diff(twin_out, sharded_out)
    entry["single_device_max_abs_diff"] = float(single_diff)
    entry["single_device_bit_exact"] = bool(single_diff == 0.0)

    stats = engine.stats()
    sharding = stats["sharding"]
    total_us = stats["modelled_kernel_time_us"]
    entry["sharding"] = {
        "tp_degree": sharding["tp_degree"],
        "placement_policy": sharding["placement_policy"],
        "load_balance": sharding["load_balance"],
        "cut_bytes_per_token": sharding["cut_bytes_per_token"],
        "comm_time_us": sharding["comm_time_us"],
        "modelled_comm_fraction": round(sharding["comm_time_us"] / total_us, 4)
        if total_us > 0
        else 0.0,
    }
    print(
        f"{'':28s} {'':28s} throughput {entry['requests_per_s_sequential']:9.1f} -> "
        f"{entry['requests_per_s_batched']:9.1f} req/s  "
        f"(load balance {sharding['load_balance']:.3f}, modelled comm "
        f"{entry['sharding']['modelled_comm_fraction'] * 100:.1f}%, "
        f"single-device {'bit-exact' if entry['single_device_bit_exact'] else 'DIVERGED'})"
    )
    entries.append(entry)


def bench_model_serving_padded(
    entries, hidden, intermediate, num_layers, num_requests, max_len, rng
):
    """Padded-ladder vs exact-length bucketing on ragged-length traffic.

    Request lengths are drawn uniformly from ``[1, max_len]`` — the
    realistic regime where exact-length bucketing degenerates to
    near-singleton buckets (most lengths appear once or twice per window)
    while the powers-of-two ladder consolidates them into a handful of
    padded buckets behind the attention mask.  Both engines serve the same
    requests on identically initialised encoders and outputs are
    bit-identical (both policies are exact per request).

    What the measured req/s gap is — and is not: the masked encoder
    deliberately executes every sequence at its true shape (that is what
    keeps the bits), so the *executed* GEMM work is the same in both
    modes.  The wall-clock gain is serving-overhead consolidation — ~10x
    fewer micro-batches means ~10x fewer per-batch rounds of validation,
    plan lookups, dispatch decisions, modelled-kernel estimation and trace
    records.  The fuller-kernel effect of padded buckets shows up in the
    *modelled* GPU trace (kernels charged at padded shapes), not in this
    CPU wall-clock number.
    """
    def build_engine(padding, name):
        cfg = tiny_config(
            hidden_size=hidden, num_layers=num_layers, num_heads=4,
            intermediate_size=intermediate,
        )
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return ModelServingEngine(encoder, config=ServingConfig(padding=padding, name=name))

    lengths = [int(t) for t in rng.integers(1, max_len + 1, size=num_requests)]
    requests = [
        Request(f"rag-{i:04d}", rng.normal(size=(t, hidden)).astype(np.float32))
        for i, t in enumerate(lengths)
    ]
    exact_engine = build_engine("exact", "bench-exact")
    padded_engine = build_engine("ladder", "bench-padded")

    def serve_exact():
        out = exact_engine.serve(requests)
        return np.concatenate([out[r.request_id] for r in requests])

    def serve_padded():
        out = padded_engine.serve(requests)
        return np.concatenate([out[r.request_id] for r in requests])

    # One throwaway window per engine outside the timed region: ragged
    # traffic makes the first exact-length window pay dispatch-signature
    # ranking for dozens of distinct bucket shapes (a one-time cost), and
    # the timed gap should be the steady-state consolidation gain only.
    serve_exact()
    serve_padded()

    entry = _entry(
        "serving.encoder_padded",
        f"h{hidden}/i{intermediate} L{num_layers} {num_requests}r<= {max_len}t",
        serve_exact,
        serve_padded,
        _array_diff,
        # Grouped execution equalises the GEMM work of the two modes, so
        # this entry measures pure per-batch overhead consolidation — a
        # few percent of a ~0.5 s region, the smallest contrast in the
        # whole sweep and below single-shot noise on a shared CPU.  It
        # needs the deepest paired min-of-N for the floor to converge.
        ref_repeats=7,
        vec_repeats=7,
    )
    exact_stats, padded_stats = exact_engine.stats(), padded_engine.stats()
    entry["requests_per_s_exact"] = round(num_requests / entry["_reference_s_raw"], 1)
    entry["requests_per_s_padded"] = round(num_requests / entry["_vectorized_s_raw"], 1)
    entry["distinct_lengths"] = len(set(lengths))
    entry["batches_exact_per_window"] = exact_stats["batches"] // max(
        1, exact_stats["requests"] // num_requests
    )
    entry["batches_padded_per_window"] = padded_stats["batches"] // max(
        1, padded_stats["requests"] // num_requests
    )
    entry["padding_fill"] = round(padded_stats["padding"]["fill"], 3)
    print(
        f"{'':28s} {'':28s} throughput {entry['requests_per_s_exact']:9.1f} -> "
        f"{entry['requests_per_s_padded']:9.1f} req/s  "
        f"({entry['batches_exact_per_window']} exact buckets -> "
        f"{entry['batches_padded_per_window']} padded, "
        f"fill {entry['padding_fill']:.2f})"
    )
    entries.append(entry)


def bench_model_serving_continuous(
    entries, hidden, intermediate, num_layers, num_requests, max_len, gap_us, window_us, rng
):
    """Continuous batching vs async windows at equal offered load (p99 latency).

    The same ragged arrival schedule (one request every ``gap_us``) is
    replayed through two ladder-mode engines on identically initialised
    encoders: the async policy holds each rung open ``window_us`` after its
    oldest arrival; the continuous policy steps the engine whenever the
    executor frees, admitting whatever has arrived by then.  Both replays
    execute the real masked forwards and charge each batch its *measured*
    wall-clock duration on a virtual serving clock, so per-request
    completion latency is measured execution under an analytic arrival
    process — deterministic load, real kernels.

    What the p99 gap is: an async request waits out its rung's window even
    when the executor sits idle; a continuous request waits only for the
    executor.  Throughput is equal by construction (same offered load, both
    policies serve every request), outputs are bit-identical (same
    execution path), so the tail-latency drop is pure scheduling.
    """
    def build_engine(batcher, name):
        cfg = tiny_config(
            hidden_size=hidden, num_layers=num_layers, num_heads=4,
            intermediate_size=intermediate,
        )
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return ModelServingEngine(
            encoder, batcher=batcher,
            config=ServingConfig(padding="ladder", name=name),
        )

    lengths = [int(t) for t in rng.integers(1, max_len + 1, size=num_requests)]
    requests = [
        Request(f"cont-{i:04d}", rng.normal(size=(t, hidden)).astype(np.float32),
                arrival_us=i * gap_us)
        for i, t in enumerate(lengths)
    ]
    async_engine = build_engine(AsyncWindowBatcher.ladder(window_us=window_us), "bench-async")
    cont_engine = build_engine(ContinuousBatcher.ladder(), "bench-continuous")
    latencies = {}

    def replay_async():
        """serve_arrivals with each closed batch timed on a virtual clock."""
        batcher, lat, out, gpu_free_us = async_engine.batcher, {}, {}, 0.0

        def run_due(now_us):
            nonlocal gpu_free_us
            for batch in batcher.drain_due(now_us):
                close_us = min(r.arrival_us for r in batch.requests) + batcher.window_us
                t0 = time.perf_counter()
                out.update(async_engine._execute_batch(batch))
                exec_us = (time.perf_counter() - t0) * 1e6
                finish_us = max(close_us, gpu_free_us) + exec_us
                gpu_free_us = finish_us
                for r in batch.requests:
                    lat[r.request_id] = finish_us - r.arrival_us

        for req in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
            run_due(req.arrival_us)
            async_engine.submit(req)
        while (deadline := batcher.next_deadline_us()) is not None:
            run_due(deadline)
        latencies["async"] = lat
        return np.concatenate([out[r.request_id] for r in requests])

    arrival_of = {r.request_id: r.arrival_us for r in requests}
    steps_in_replay = {}

    def replay_continuous():
        """The step loop: admit what has arrived, run one timed step, repeat."""
        batcher, lat, out, steps = cont_engine.batcher, {}, {}, 0
        order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        now_us, admitted = 0.0, 0
        while admitted < len(order) or batcher.pending:
            if not batcher.pending and order[admitted].arrival_us > now_us:
                now_us = order[admitted].arrival_us
            while admitted < len(order) and order[admitted].arrival_us <= now_us:
                cont_engine.submit(order[admitted])
                admitted += 1
            t0 = time.perf_counter()
            res = cont_engine.step(now_us)
            exec_us = (time.perf_counter() - t0) * 1e6
            now_us += exec_us  # the executor frees; next step admits up to here
            steps += 1
            out.update(res)
            for rid in res:
                lat[rid] = now_us - arrival_of[rid]
        latencies["continuous"] = lat
        steps_in_replay["continuous"] = steps
        return np.concatenate([out[r.request_id] for r in requests])

    # One throwaway replay per engine outside the timed/recorded region so
    # dispatch-signature ranking and plan builds are steady-state for both.
    replay_async()
    replay_continuous()

    entry = _entry(
        "serving.encoder_continuous",
        f"h{hidden}/i{intermediate} L{num_layers} {num_requests}r@{gap_us:.0f}us w{window_us:.0f}",
        replay_async,
        replay_continuous,
        _array_diff,
        # Like the padded entry, this compares two lean serving paths whose
        # wall-clock contrast is a few percent of a ~0.5 s replay — below
        # single-shot noise on a shared CPU — so it gets the deepest paired
        # min-of-N in the sweep.  Latencies below come from the last repeat
        # (virtual-clock values are stable across repeats once the engines
        # are warm).
        ref_repeats=7,
        vec_repeats=7,
    )
    p = lambda vals, q: round(float(np.percentile(list(vals), q)), 1)  # noqa: E731
    entry["offered_rps"] = round(1e6 / gap_us, 1)
    entry["window_us"] = window_us
    entry["p50_latency_us_async"] = p(latencies["async"].values(), 50)
    entry["p99_latency_us_async"] = p(latencies["async"].values(), 99)
    entry["p50_latency_us_continuous"] = p(latencies["continuous"].values(), 50)
    entry["p99_latency_us_continuous"] = p(latencies["continuous"].values(), 99)
    entry["steps_continuous"] = steps_in_replay["continuous"]
    # Feed the dispatcher's measurement loop and persist what it saw: one
    # extra replay with runtime observation on, OUTSIDE the timed/compared
    # region (measured reranks may legally switch backends, and observation
    # itself costs a clock read per kernel).  The recorded EWMAs show the
    # measured per-backend runtimes the ranking would blend in production.
    cont_engine.dispatcher.observe_runtimes = True
    replay_continuous()
    health = cont_engine.dispatcher.health_stats()
    entry["dispatch_observed"] = {
        "observations": health["observations"],
        "measured_reranks": health["measured_reranks"],
        "observed_backends": health["observed_backends"],
    }
    print(
        f"{'':28s} {'':28s} p99 latency {entry['p99_latency_us_async']:9.1f} -> "
        f"{entry['p99_latency_us_continuous']:9.1f} us "
        f"(p50 {entry['p50_latency_us_async']:.1f} -> {entry['p50_latency_us_continuous']:.1f}) "
        f"at {entry['offered_rps']:.0f} req/s offered"
    )
    entries.append(entry)


def bench_model_serving_faulted(
    entries, hidden, intermediate, num_layers, num_requests, max_len, gap_us,
    step_us, fault_seed, rng,
):
    """Encoder serving under seeded faults, deadlines and a bounded queue.

    The fault-tolerance measurement: the same ragged arrival schedule is
    served twice on identically initialised encoders — once fault-free and
    unconstrained (the reference), once with a seeded :class:`FaultPlan`
    armed on the dispatcher, per-request deadlines, and a bounded admission
    queue.  The faulted run reports the serving metrics of the chaos layer
    (availability, goodput on the deterministic step clock, p99 completion
    latency of the survivors) while the ``max_abs_diff`` column certifies
    the core guarantee: every request the faulted engine reports ``ok`` is
    bit-for-bit its fault-free output — failover and isolation never buy
    availability with numerics.
    """
    def build_engine(name, max_queue_depth=None):
        cfg = tiny_config(
            hidden_size=hidden, num_layers=num_layers, num_heads=4,
            intermediate_size=intermediate,
        )
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        batcher = ContinuousBatcher.ladder(max_queue_depth=max_queue_depth)
        return ModelServingEngine(
            encoder, batcher=batcher,
            config=ServingConfig(padding="ladder", name=name),
        )

    lengths = [int(t) for t in rng.integers(1, max_len + 1, size=num_requests)]
    payloads = [rng.normal(size=(t, hidden)).astype(np.float32) for t in lengths]

    def fresh_requests(with_deadlines):
        return [
            Request(
                f"flt-{i:04d}",
                payloads[i],
                arrival_us=i * gap_us,
                deadline_us=(i * gap_us + 12 * step_us) if with_deadlines else None,
            )
            for i in range(num_requests)
        ]

    faulted = {}

    def serve_fault_free():
        engine = build_engine("bench-fault-free")
        return engine.serve_continuous(fresh_requests(with_deadlines=False))

    def serve_faulted():
        engine = build_engine("bench-faulted", max_queue_depth=max(4, num_requests // 4))
        plan = FaultPlan.seeded(
            [b.name for b in engine.dispatcher.backends],
            seed=fault_seed,
            failure_rate=0.15,
        )
        FaultInjector(plan).arm(engine.dispatcher)
        out = engine.serve_continuous(fresh_requests(with_deadlines=True), step_us=step_us)
        faulted["engine"] = engine
        return out

    def ok_subset_diff(reference, survivors):
        # The ok requests must match the fault-free bits exactly; dropped
        # requests (failed / timed_out / shed) have no output to compare.
        return max(
            (_array_diff(reference[rid], out) for rid, out in survivors.items()),
            default=0.0,
        )

    entry = _entry(
        "serving.encoder_faulted",
        f"h{hidden}/i{intermediate} L{num_layers} {num_requests}r s{fault_seed}",
        serve_fault_free,
        serve_faulted,
        ok_subset_diff,
        ref_repeats=1,
        vec_repeats=1,
    )
    engine = faulted["engine"]
    counts = outcome_counts(engine.outcomes.values())
    completions = engine.completions
    ok_latencies = [
        completions[rid].completed_us - completions[rid].arrival_us
        for rid, o in engine.outcomes.items()
        if o.ok and rid in completions
    ]
    makespan_us = max(
        (c.completed_us for c in completions.values()), default=0.0
    ) or 1.0
    health = engine.stats()["dispatch_health"]
    entry["fault_seed"] = fault_seed
    entry["outcomes"] = counts
    entry["availability"] = round(counts["ok"] / num_requests, 4)
    entry["goodput_rps"] = round(counts["ok"] / (makespan_us * 1e-6), 1)
    entry["p99_latency_us"] = (
        round(float(np.percentile(ok_latencies, 99)), 1) if ok_latencies else 0.0
    )
    entry["failovers"] = health["failovers"]
    entry["quarantines"] = health["quarantines"]
    print(
        f"{'':28s} {'':28s} availability {entry['availability']:.3f}  "
        f"goodput {entry['goodput_rps']:.1f} req/s  "
        f"p99 {entry['p99_latency_us']:.1f} us  "
        f"({counts['failed']} failed / {counts['timed_out']} timed out / "
        f"{counts['shed']} shed, {entry['failovers']} failovers)"
    )
    entries.append(entry)


def bench_model_serving_slo(
    entries, hidden, features, num_low, num_high, max_tokens, rng,
):
    """Strict-priority SLO scheduling vs FCFS under a bursty two-tenant overload.

    The same merged trace — a best-effort tenant with Pareto-tailed lengths
    bursting far past capacity, plus a smaller high-priority tenant, both
    with tight deadlines and a bounded admission queue — replays twice
    through :func:`simulate_slo` (the real chunk planner and per-class
    admission arithmetic on the modelled kernel clock): once FCFS, once
    under ``SchedulingConfig(policy="priority")``.

    ``speedup`` for this entry is the high class's tail-latency ratio,
    FCFS p99 over priority p99 — not a wall-clock ratio.  Both replays
    serve the identical offered load through the same planner, so the tail
    the priority policy hands back to the paying class *is* what the
    scheduler buys; it is above 1.0 under overload by construction and,
    because the simulator is seeded end to end, exactly reproducible —
    which is what the trend gate pins.  ``bit_exact`` comes from a live
    priority-scheduled :class:`ModelServingEngine` pass: scheduling
    reorders execution, so every completed output must still equal the
    direct forward bit for bit.
    """
    dense = rng.normal(size=(hidden, features)).astype(np.float32)
    operand = SpmmOperand.from_vnm(
        VNMSparseMatrix.from_dense(dense, v=16, n=2, m=8, strict=False)
    )
    lengths = pareto_lengths(
        num_low, alpha=1.5, min_tokens=4, max_tokens=max_tokens, seed=3
    )
    trace = merge_arrivals(
        bursty_arrivals(
            num_low, base_rate_rps=50_000, burst_rate_rps=2_000_000,
            tokens=lengths, seed=1, deadline_after_us=300.0,
            prefix="low", priority_class=0,
        ),
        bursty_arrivals(
            num_high, base_rate_rps=20_000, burst_rate_rps=500_000,
            tokens=[8, 16], seed=2, deadline_after_us=300.0,
            prefix="high", priority_class=1,
        ),
    )
    scheduling = SchedulingConfig(policy="priority", class_weights=(1, 4))
    sim_kwargs = dict(max_queue_depth=24, shed_policy="drop-expired")

    ref_t, fcfs = _time(lambda: simulate_slo(operand, trace, **sim_kwargs), 1)
    vec_t, prio = _time(
        lambda: simulate_slo(operand, trace, scheduling=scheduling, **sim_kwargs), 1
    )
    fcfs_high, prio_high = fcfs.per_class()[1], prio.per_class()[1]
    prio_low = prio.per_class()[0]

    # The live-engine certificate: priority scheduling on a real encoder,
    # mixed classes, every output compared against the direct forward.
    cfg = tiny_config(
        hidden_size=hidden, num_layers=1, num_heads=4, intermediate_size=2 * hidden
    )
    encoder = TransformerEncoder.init(cfg, seed=0)
    sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
    engine = ModelServingEngine(
        encoder,
        batcher=ContinuousBatcher.ladder(scheduling=scheduling),
        config=ServingConfig(padding="ladder", name="bench-slo"),
    )
    live = [
        Request(
            f"slo-{i:03d}", rng.normal(size=(t, hidden)).astype(np.float32),
            priority_class=i % 2,
        )
        for i, t in enumerate([5, 9, 12, 7, 16, 3, 8, 11])
    ]
    out = engine.serve_continuous(live, step_us=25.0)
    diff = max(
        _array_diff(out[r.request_id], encoder.forward(r.activations[None])[0])
        for r in live
    )

    entry = {
        "op": "serving.encoder_slo",
        "shape": f"k{features} {num_low}+{num_high}r bursty/pareto d300us",
        "reference_s": round(ref_t, 6),
        "vectorized_s": round(vec_t, 6),
        "speedup": round(
            fcfs_high["p99_latency_us"] / prio_high["p99_latency_us"], 2
        ),
        "max_abs_diff": float(diff),
        "bit_exact": bool(diff == 0.0),
        "policy": "priority vs fcfs",
        "p99_latency_us_high_fcfs": round(fcfs_high["p99_latency_us"], 1),
        "p99_latency_us_high_priority": round(prio_high["p99_latency_us"], 1),
        "p99_latency_us_low_priority": round(prio_low["p99_latency_us"], 1),
        "shed_rate_low_priority": round(prio_low["shed_rate"], 4),
        "shed_rate_high_priority": round(prio_high["shed_rate"], 4),
        "violation_rate_high_priority": round(prio_high["violation_rate"], 4),
        "num_batches_priority": prio.num_batches,
    }
    print(
        f"{entry['op']:28s} {entry['shape']:28s} ref {ref_t:8.3f}s  vec {vec_t:8.3f}s  "
        f"speedup {entry['speedup']:7.2f}x  max|diff| {diff:.2e}"
    )
    print(
        f"{'':28s} {'':28s} high-class p99 {entry['p99_latency_us_high_fcfs']:.1f} -> "
        f"{entry['p99_latency_us_high_priority']:.1f} us  "
        f"(low shed {entry['shed_rate_low_priority']:.1%}, "
        f"high shed {entry['shed_rate_high_priority']:.1%})"
    )
    entries.append(entry)


def bench_decoder_continuous(
    entries, hidden, intermediate, num_layers, num_requests, max_prompt, new_tokens,
    gap_us, step_us, rng,
):
    """Paged-KV incremental decoding vs full causal recompute, bit-identical.

    The same decode jobs (ragged prompt lengths, a few requests sharing a
    prompt) run through two implementations of the identical mathematical
    sequence: the reference re-runs the whole causal forward from scratch
    for every generated token (:func:`decode_reference`, O(T^2) work per
    sequence), while :class:`DecoderServingEngine` appends one token per
    step to each request's paged KV cache and re-touches only the new row
    (O(T)).  Outputs are bit-for-bit equal by construction — the causal
    path *is* per-position execution over a scratch KV — so ``speedup``
    isolates pure recompute avoidance.

    Both sides get one throwaway replay before timing, so the timed region
    is steady state: dispatch rankings settled and the prefix cache warm
    (recurring prompts skip their prefill, the production claim for
    shared-prefix traffic).  Latency percentiles come from the engine's
    virtual step clock (``step_us`` per engine step against the arrival
    schedule), not wall time.
    """
    def fresh_encoder():
        cfg = tiny_config(
            hidden_size=hidden, num_layers=num_layers, num_heads=4,
            intermediate_size=intermediate,
        )
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return encoder

    lengths = [int(t) for t in rng.integers(1, max_prompt + 1, size=num_requests)]
    prompts = [rng.normal(size=(t, hidden)).astype(np.float32) for t in lengths]
    for i in range(3, num_requests, 4):  # every 4th request reuses prompt 0
        prompts[i] = prompts[0]
    requests = [
        DecodeRequest(f"dec-{i:04d}", prompts[i], new_tokens=new_tokens,
                      arrival_us=i * gap_us)
        for i in range(num_requests)
    ]

    ref_encoder = fresh_encoder()
    engine = DecoderServingEngine(fresh_encoder(), config=ServingConfig(block_size=16))

    def decode_recompute():
        return np.concatenate(
            [decode_reference(ref_encoder, p, new_tokens) for p in prompts]
        )

    def decode_cached():
        out = engine.serve_continuous(requests, step_us=step_us)
        return np.concatenate([out[r.request_id] for r in requests])

    decode_recompute()
    decode_cached()

    entry = _entry(
        "serving.decoder_continuous",
        f"h{hidden}/i{intermediate} L{num_layers} {num_requests}r p<={max_prompt}+{new_tokens}",
        decode_recompute,
        decode_cached,
        _array_diff,
        ref_repeats=3,
        vec_repeats=3,
    )
    total_tokens = num_requests * new_tokens
    entry["tokens_per_s_recompute"] = round(total_tokens / entry["_reference_s_raw"], 1)
    entry["tokens_per_s_cached"] = round(total_tokens / entry["_vectorized_s_raw"], 1)
    latencies = [
        c.completed_us - c.arrival_us for c in engine.completions.values()
    ]
    p = lambda q: round(float(np.percentile(latencies, q)), 1)  # noqa: E731
    entry["step_us"] = step_us
    entry["p50_latency_us_cached"] = p(50)
    entry["p99_latency_us_cached"] = p(99)
    cache = engine.cache_stats()
    entry["cache"] = {
        "peak_blocks_in_use": cache["peak_blocks_in_use"],
        "prefix_hits": cache["prefix_hits"],
        "cow_copies": cache["cow_copies"],
        "evictions": cache["evictions"],
    }
    entry["prefills_skipped"] = engine.prefills_skipped
    print(
        f"{'':28s} {'':28s} decode rate {entry['tokens_per_s_recompute']:9.1f} -> "
        f"{entry['tokens_per_s_cached']:9.1f} tok/s  "
        f"(p99 {entry['p99_latency_us_cached']:.1f} us, "
        f"{entry['cache']['prefix_hits']} prefix hits, "
        f"peak {entry['cache']['peak_blocks_in_use']} blocks)"
    )
    entries.append(entry)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small shapes (~2 s total)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    entries = []
    if args.quick:
        bench_spatha_spmm(entries, 512, 16, 2, 4, rng)
        bench_baseline_kernels(entries, 256, rng)
        bench_formats(entries, 256, rng)
        bench_pruning(entries, 16, 64, rng)
        bench_serving(entries, size=256, num_requests=16, tokens=4, rng=rng)
        bench_model_serving(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=12, lengths=[8, 8, 16], rng=rng,
        )
        bench_model_serving_sharded(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=12, lengths=[8, 8, 16], tp_degree=2, rng=rng,
        )
        bench_model_serving_padded(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=24, max_len=24, rng=rng,
        )
        bench_model_serving_continuous(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=24, max_len=24, gap_us=2000.0, window_us=50000.0, rng=rng,
        )
        bench_model_serving_faulted(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=24, max_len=24, gap_us=2000.0, step_us=2500.0,
            fault_seed=0, rng=rng,
        )
        bench_model_serving_slo(
            entries, hidden=64, features=128, num_low=60, num_high=16,
            max_tokens=32, rng=rng,
        )
        bench_decoder_continuous(
            entries, hidden=64, intermediate=128, num_layers=1,
            num_requests=8, max_prompt=12, new_tokens=4,
            gap_us=2000.0, step_us=1000.0, rng=rng,
        )
    else:
        # The acceptance case: 4096-cube, V:N:M = 16:2:4 (2:4 with V-blocked
        # column selection) — the regime where the seed loop pays one gather
        # per row block and the planned engine runs one large GEMM.
        bench_spatha_spmm(entries, 4096, 16, 2, 4, rng)
        bench_spatha_spmm(entries, 2048, 32, 2, 8, rng)
        bench_baseline_kernels(entries, 1024, rng)
        bench_formats(entries, 1024, rng)
        bench_pruning(entries, 32, 128, rng)
        # Decode-style traffic (many small requests) is where dynamic
        # batching pays on this CPU engine: per-request dispatch overhead
        # amortises across the window while outputs stay bit-identical.
        bench_serving(entries, size=1024, num_requests=64, tokens=4, rng=rng)
        # Model-level serving on a BERT-shaped (hidden x 4*hidden FFN)
        # encoder: one batched forward per exact-length bucket vs N
        # per-request forwards, bit-identical outputs either way.
        bench_model_serving(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=48, lengths=[8, 8, 8, 16, 16, 32], rng=rng,
        )
        # The same serving comparison with the encoder min-cut split across
        # four simulated devices: the batching gain survives sharding, the
        # split is bit-neutral against a single-device twin, and the entry
        # reports per-shard load balance plus the modelled interconnect
        # share of total kernel time.
        bench_model_serving_sharded(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=48, lengths=[8, 8, 8, 16, 16, 32], tp_degree=4, rng=rng,
        )
        # Ragged-length traffic (uniform 1..48): exact-length bucketing
        # fragments into near-singleton buckets, the padded ladder refills
        # them behind the attention mask at identical output bits.
        bench_model_serving_padded(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=64, max_len=48, rng=rng,
        )
        # Continuous batching vs async windows on the same ragged arrival
        # schedule: a request joins whatever its rung is doing the moment
        # the executor frees, instead of waiting out a 50 ms window — the
        # p99 completion latency drops by roughly the window while offered
        # load (and bits) stay identical.  The 50 req/s offered rate keeps
        # this encoder (~8 ms/request measured) under saturation: past
        # capacity both policies degenerate to executor queueing and the
        # scheduling comparison measures nothing.
        bench_model_serving_continuous(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=64, max_len=48, gap_us=20000.0, window_us=50000.0, rng=rng,
        )
        # The same encoder under seeded faults + deadlines + a bounded
        # queue: availability stays high (the ranking absorbs transient
        # failures bit-exactly) and the ok subset certifies the numerics.
        bench_model_serving_faulted(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=64, max_len=48, gap_us=20000.0, step_us=25000.0,
            fault_seed=0, rng=rng,
        )
        # SLO scheduling under a bursty two-tenant overload: the priority
        # policy returns the high class its p99 (the speedup is that tail
        # ratio on the deterministic modelled clock) while the sheds and
        # deadline violations concentrate in the best-effort class; a live
        # priority-scheduled engine pass certifies the bits.
        bench_model_serving_slo(
            entries, hidden=64, features=128, num_low=160, num_high=40,
            max_tokens=64, rng=rng,
        )
        # Decoder serving: each generated token re-touches the whole prefix
        # under recompute but only its own row under the paged KV cache —
        # the O(T^2) -> O(T) contrast the decoder engine exists for, at
        # bit-identical outputs (plus prefix-cache hits on shared prompts).
        bench_decoder_continuous(
            entries, hidden=256, intermediate=1024, num_layers=2,
            num_requests=16, max_prompt=32, new_tokens=8,
            gap_us=20000.0, step_us=10000.0, rng=rng,
        )

    for entry in entries:  # drop the raw-timing scratch keys from the record
        entry.pop("_reference_s_raw", None)
        entry.pop("_vectorized_s_raw", None)
    record = {
        "generated_by": "benchmarks/run_bench.py" + (" --quick" if args.quick else ""),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "benchmarks": entries,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    headline = entries[0]
    accuracy = (
        "bit-exact" if headline["bit_exact"] else f"max|diff| {headline['max_abs_diff']:.1e}"
    )
    print(
        f"headline: {headline['op']} {headline['shape']} — "
        f"{headline['speedup']}x over the seed loop ({accuracy})"
    )


if __name__ == "__main__":
    main()
