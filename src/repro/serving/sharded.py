"""Sharded multi-device dispatch for model serving.

:class:`ShardedDispatcher` splits a served encoder across ``num_shards``
simulated devices: every sparse projection is *owned* by exactly one shard
(one :class:`~repro.kernels.dispatch.KernelDispatcher` per device, each
with its own plan/decision caches and circuit breakers), and each
projection's SpMM routes to its owner.  Ownership comes from the balanced
min-cut placement of :mod:`repro.models.distributed` — per-shard modelled
FLOP load stays balanced while the activation bytes crossing shard
boundaries are minimised — and the traffic a placement implies (ring
all-reduces into row-parallel projections whose inputs span shards,
point-to-point send/recv for every other cut edge) is priced with the
:class:`~repro.hardware.spec.InterconnectSpec` ring model and recorded as
``comm``-category kernels on the serving trace.

The bit-exactness guarantee is preserved by construction: sharding changes
*where* each projection executes (which dispatcher owns its plan) and what
communication is modelled, never the arithmetic — each SpMM still runs
once, unsplit, through a standard :class:`KernelDispatcher`, so sharded
serving output is bit-for-bit the single-device ``encoder.forward``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.spec import NVLINK, GPUSpec, InterconnectSpec
from ..hardware.trace import KernelExecution
from ..kernels.dispatch import DispatchDecision, KernelDispatcher, SpmmOperand
from ..models.distributed import (
    CommEvent,
    Placement,
    encoder_layer_graph,
    partition_min_cut,
    partition_min_cut_reference,
    partition_round_robin,
    placement_comm_events,
)

#: Placement policies accepted by :meth:`ShardedDispatcher.bind_encoder`.
PLACEMENT_POLICIES = ("min_cut", "min_cut_reference", "round_robin")

_PLACEMENT_SOLVERS = {
    "min_cut": partition_min_cut,
    "min_cut_reference": partition_min_cut_reference,
    "round_robin": partition_round_robin,
}


class ShardedDispatcher:
    """Route each projection's SpMM to its owning shard.

    Drop-in compatible with the :class:`KernelDispatcher` surface the
    serving engines use (``execute`` / ``dispatch`` / ``estimate`` /
    ``warm`` / ``warm_many`` / ``health_stats`` / ``cache_stats`` /
    ``gpu``), so an engine built on a sharded dispatcher needs no special
    execution path.  Operands not bound to any shard fall back to shard 0,
    exactly like a single-device dispatcher.
    """

    def __init__(
        self,
        num_shards: int = 2,
        gpu: Optional[GPUSpec] = None,
        link: InterconnectSpec = NVLINK,
        placement_policy: str = "min_cut",
        name: str = "sharded",
        **dispatcher_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if placement_policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {placement_policy!r}; known: {PLACEMENT_POLICIES}"
            )
        self.num_shards = num_shards
        self.link = link
        self.placement_policy = placement_policy
        self.name = name
        self.shards: List[KernelDispatcher] = [
            KernelDispatcher(gpu=gpu, name=f"{name}.shard{i}", **dispatcher_kwargs)
            for i in range(num_shards)
        ]
        #: The placement solved by the last :meth:`bind_encoder` call.
        self.placement: Optional[Placement] = None
        #: Comm events one full forward pass implies under the placement.
        self.comm_events: Tuple[CommEvent, ...] = ()
        #: Operand identity -> owning shard index.
        self._owner: Dict[int, int] = {}
        #: Operand identity -> qualified layer name (diagnostics).
        self._layer: Dict[int, str] = {}
        #: Executes routed to each shard.
        self.shard_calls: List[int] = [0] * num_shards
        #: Modelled kernel time attributed to each shard (accumulated from
        #: the ``estimate`` calls the engines make when recording traffic).
        self.shard_modelled_us: List[float] = [0.0] * num_shards
        #: Cumulative modelled communication recorded via :meth:`comm_kernels`.
        self.comm_time_us = 0.0
        self.comm_calls = 0

    @property
    def gpu(self) -> GPUSpec:
        """The (shared) device model; all shards are identical devices."""
        return self.shards[0].gpu

    # ------------------------------------------------------------------
    # Placement binding
    # ------------------------------------------------------------------
    def bind_encoder(self, encoder) -> Placement:
        """Solve placement for ``encoder`` and take ownership of its operands.

        Builds the encoder's layer graph, partitions it with the configured
        policy, and maps every sparse projection's operand to its shard.
        Dense projections participate in the graph (they carry load and
        activation edges) but execute locally as before — only dispatched
        SpMMs route.  Returns the solved :class:`Placement`.
        """
        graph = encoder_layer_graph(encoder)
        placement = _PLACEMENT_SOLVERS[self.placement_policy](graph, self.num_shards)
        owner_by_name = placement.as_dict()
        self._owner.clear()
        self._layer.clear()
        for qualified, lin in encoder.named_linear_layers():
            operand = getattr(lin, "operand", None)
            if operand is None:
                continue
            self._owner[id(operand)] = owner_by_name[qualified]
            self._layer[id(operand)] = qualified
        self.placement = placement
        self.comm_events = placement_comm_events(placement)
        return placement

    def shard_of(self, operand: SpmmOperand) -> int:
        """Owning shard of an operand (0 for unbound operands)."""
        return self._owner.get(id(operand), 0)

    def layer_of(self, operand: SpmmOperand) -> Optional[str]:
        """Qualified layer name the operand was bound as, if any."""
        return self._layer.get(id(operand))

    # ------------------------------------------------------------------
    # KernelDispatcher-compatible surface
    # ------------------------------------------------------------------
    def execute(
        self, operand: SpmmOperand, b: np.ndarray, bias: Optional[np.ndarray] = None
    ) -> np.ndarray:
        shard = self.shard_of(operand)
        self.shard_calls[shard] += 1
        return self.shards[shard].execute(operand, b, bias=bias)

    def dispatch(self, operand: SpmmOperand, c: int) -> DispatchDecision:
        return self.shards[self.shard_of(operand)].dispatch(operand, c)

    def estimate(self, operand: SpmmOperand, c: int, backend: Optional[str] = None):
        shard = self.shard_of(operand)
        result = self.shards[shard].estimate(operand, c, backend=backend)
        self.shard_modelled_us[shard] += result.time_us
        return result

    def record_runtime(self, operand: SpmmOperand, c: int, backend: str, measured_us: float) -> None:
        self.shards[self.shard_of(operand)].record_runtime(operand, c, backend, measured_us)

    def warm(self, operand: SpmmOperand, cs: Sequence[int] = ()) -> None:
        self.shards[self.shard_of(operand)].warm(operand, cs)

    def warm_many(self, operands: Sequence[SpmmOperand], cs: Sequence[int] = ()) -> int:
        per_shard: Dict[int, List[SpmmOperand]] = {}
        for op in operands:
            per_shard.setdefault(self.shard_of(op), []).append(op)
        return sum(
            self.shards[shard].warm_many(ops, cs) for shard, ops in sorted(per_shard.items())
        )

    def health_stats(self) -> Dict[str, object]:
        """Circuit-breaker counters summed across shards.

        Scalar counters add up; ``quarantined`` unions (shard-qualified);
        ``observed_backends`` merges per backend name.
        """
        merged: Dict[str, object] = {
            "failures": 0,
            "failovers": 0,
            "quarantines": 0,
            "readmissions": 0,
            "quarantined": [],
            "observations": 0,
            "measured_reranks": 0,
            "observed_backends": {},
        }
        for i, shard in enumerate(self.shards):
            stats = shard.health_stats()
            for key in ("failures", "failovers", "quarantines", "readmissions",
                        "observations", "measured_reranks"):
                merged[key] += stats[key]
            merged["quarantined"].extend(f"shard{i}:{b}" for b in stats["quarantined"])
            for backend, agg in stats["observed_backends"].items():
                merged["observed_backends"].setdefault(backend, dict(agg))
        return merged

    def cache_stats(self) -> Dict[str, int]:
        """Decision/estimate-cache counters summed across shards."""
        totals: Dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.cache_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def clear_cache(self) -> None:
        for shard in self.shards:
            shard.clear_cache()

    # ------------------------------------------------------------------
    # Communication accounting
    # ------------------------------------------------------------------
    def comm_kernels(self, tokens: int, batch_size: int = 1) -> List[KernelExecution]:
        """Modelled comm kernels for one batch forward over ``tokens`` tokens.

        One ``comm``-category :class:`KernelExecution` per placement comm
        event; also advances the cumulative :attr:`comm_time_us` /
        :attr:`comm_calls` counters so engines without an execution trace
        (the decoder) still report communication totals.
        """
        kernels: List[KernelExecution] = []
        for event in self.comm_events:
            time_us = event.time_us(tokens, self.link)
            kernels.append(
                KernelExecution(
                    kernel="allreduce" if event.kind == "all_reduce" else "send_recv",
                    category="comm",
                    time_us=time_us,
                    bytes_moved=event.bytes_per_token * tokens,
                    meta={
                        "layer": event.layer,
                        "shards": list(event.shards),
                        "batch_size": batch_size,
                        "tokens": tokens,
                    },
                )
            )
            self.comm_time_us += time_us
        self.comm_calls += len(kernels)
        return kernels

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def sharding_stats(self) -> Dict[str, object]:
        """Per-shard load, placement quality and communication totals."""
        placement = self.placement
        modelled = list(self.shard_modelled_us)
        max_us, mean_us = max(modelled), sum(modelled) / len(modelled)
        return {
            "tp_degree": self.num_shards,
            "placement_policy": placement.policy if placement else self.placement_policy,
            "per_shard_calls": list(self.shard_calls),
            "per_shard_modelled_us": [round(us, 3) for us in modelled],
            "load_balance": round(max_us / mean_us, 4) if mean_us > 0 else (
                round(placement.load_balance, 4) if placement else None
            ),
            "cut_bytes_per_token": placement.cut_bytes_per_token if placement else 0.0,
            "comm_time_us": round(self.comm_time_us, 3),
            "comm_events": self.comm_calls,
        }
