"""Continuous batching: requests join and leave buckets between engine steps.

The windowed policies (fixed grid, async arrival deadlines) are
*closed-world*: a window drains, a batch runs, the next window opens —
a request arriving one microsecond after its bucket closed waits a full
window before it can execute.  Continuous batching removes the window
entirely (the iteration-level scheduling of Orca/vLLM, adapted to
encoder workloads where one request is one forward pass):

* the engine runs a ``step(now_us)`` loop; **admission happens between
  steps** — a request that arrived while the previous step was executing
  joins a compatible open bucket immediately, even though its new
  batchmates have been queued since earlier steps;
* each step re-buckets everything currently arrived (the deterministic
  ladder/exact grouping of :class:`~repro.serving.batcher.ShapeBucketBatcher`)
  and executes **one** batched (masked) forward: the single most urgent
  bucket chunk, oldest first (FCFS across rungs);
* completed sequences leave at the end of their step without blocking the
  rung — requests of the same rung that did not fit the chunk stay queued
  and are eligible again at the very next step, merged with whatever
  arrived meanwhile.

Scheduling is the *only* thing that changes.  Execution still runs through
the engines' ``_execute_batch`` (exact-length stacking, or the padded
ladder behind the additive attention mask), where every sequence executes
at its true shape — so continuous serving of N requests stays bit-for-bit
N sequential ``encoder.forward`` calls, regardless of arrival
interleaving or step cadence.  The property tests in
``tests/serving/test_continuous.py`` pin this across arrival orders, step
cadences and exact/ladder modes, together with the determinism of the
per-request :class:`CompletionRecord` metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .batcher import (
    DEFAULT_TOKEN_BUCKETS,
    BucketKey,
    MicroBatch,
    Request,
    ShapeBucketBatcher,
    _reject_non_finite,
)

#: Admission-control shedding policies.
SHED_REJECT_NEWEST = "reject-newest"
SHED_DROP_EXPIRED = "drop-expired"
SHED_POLICIES: Tuple[str, ...] = (SHED_REJECT_NEWEST, SHED_DROP_EXPIRED)


@dataclass(frozen=True)
class CompletionRecord:
    """Where and when one request completed in a continuous-serving run.

    Deterministic serving metadata: for a fixed arrival schedule and step
    cadence, every field is reproducible run to run (the scheduler has no
    hidden state and breaks every tie by ``request_id``).  Outputs are
    stronger still — bit-identical across *different* cadences and
    arrival interleavings — but the records describe scheduling, which
    legitimately depends on both.
    """

    #: The request this record describes.
    request_id: str
    #: Engine-wide index of the executed step that completed the request
    #: (idle polls do not count; ``step == 0`` is the first executed batch).
    step: int
    #: The engine clock (``now_us``) at the completing step.
    completed_us: float
    #: The bucket rung the request executed at (its padded token count).
    rung: int
    #: How many requests shared the completing micro-batch.
    batch_size: int
    #: The request's own arrival time, copied for convenience.
    arrival_us: float

    @property
    def wait_us(self) -> float:
        """Queueing delay: engine clock at completion minus arrival."""
        return self.completed_us - self.arrival_us


def plan_continuous_batch(
    items, key_of, arrival_of, id_of, max_batch_size: int
) -> Optional[Tuple[object, List]]:
    """Pick the single most urgent bucket chunk from ``items`` (FCFS).

    The continuous scheduling policy, shared by the live
    :class:`ContinuousBatcher` and the analytic replay in
    :func:`~repro.serving.simulate.simulate_serving` (the same sharing
    pattern as ``plan_batches`` / ``plan_async_closings``):

    1. group items by ``key_of(item)`` (the bucket identity);
    2. order each bucket by ``(arrival_of(item), id_of(item))`` — oldest
       first, ties broken by id so the plan is deterministic;
    3. chunk each bucket at ``max_batch_size`` (later members stay queued
       for the next step — they leave the rung open, not blocked);
    4. return the chunk whose oldest member has waited longest, breaking
       arrival ties by the oldest member's id (ids are unique across the
       candidate set, so the ``(arrival, id)`` rank is always total).

    Returns ``(key, chunk)``, or ``None`` when ``items`` is empty.
    """
    by_bucket = {}
    for item in items:
        by_bucket.setdefault(key_of(item), []).append(item)
    best = None
    for key, bucket_members in by_bucket.items():
        members = sorted(bucket_members, key=lambda it: (arrival_of(it), id_of(it)))
        chunk = members[:max_batch_size]
        rank = (arrival_of(chunk[0]), id_of(chunk[0]))
        if best is None or rank < best[0]:
            best = (rank, key, chunk)
    if best is None:
        return None
    return best[1], best[2]


class ContinuousBatcher(ShapeBucketBatcher):
    """Shape-bucketing batcher scheduled per engine step, not per window.

    Requests queue exactly as on the parent (``submit`` / ``submit_many``),
    but instead of draining whole windows the engine asks for **one**
    micro-batch per step (:meth:`next_batch`): the most urgent chunk among
    the requests that have *arrived* by ``now_us``.  Everything else stays
    queued with its id reserved — including same-rung requests beyond
    ``max_batch_size``, which become the oldest members of the rung's next
    chunk, merged with any later arrivals (the "join an open bucket
    mid-flight" behaviour continuous batching exists for).

    Construct with :meth:`ShapeBucketBatcher.ladder` for padded-rung
    serving (``ContinuousBatcher.ladder()``, the common case) or
    :meth:`ShapeBucketBatcher.exact_length` for exact-length-only
    stacking; both classmethods are inherited.

    Numerics are untouched: a chunk executes through the very same
    ``MicroBatch`` path as a windowed drain, so per-request outputs are
    invariant to arrival interleaving *and* to the step cadence, bit for
    bit.

    Admission control (overload shedding) is opt-in: with
    ``max_queue_depth`` set, a submit that would push the queue past the
    bound is shed deterministically.  ``shed_policy="reject-newest"``
    refuses the incoming request outright; ``"drop-expired"`` first evicts
    queued requests whose deadline has already passed at the incoming
    request's arrival time (they were doomed anyway) and only sheds the
    newcomer if the queue is still full.  Shed and evicted requests land
    in :meth:`take_shed` / :meth:`take_expired` so drivers can report
    their outcomes; the cumulative brownout counters are on
    :meth:`admission_stats`.
    """

    def __init__(
        self,
        token_buckets: Tuple[int, ...] = DEFAULT_TOKEN_BUCKETS,
        max_batch_size: int = 64,
        max_queue_depth: Optional[int] = None,
        shed_policy: str = SHED_REJECT_NEWEST,
    ) -> None:
        super().__init__(token_buckets=token_buckets, max_batch_size=max_batch_size)
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}")
        self.max_queue_depth = max_queue_depth
        self.shed_policy = shed_policy
        #: Requests shed/evicted since the last take_*; drivers drain these
        #: into RequestOutcomes.
        self.shed_log: List[Request] = []
        self.expired_log: List[Request] = []
        #: Cumulative brownout counters (never reset by take_*).
        self.total_shed = 0
        self.total_expired = 0

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Optional[BucketKey]:
        """Enqueue one request, or shed it under overload (returns ``None``).

        A shed request is still validated (type, finiteness, id clash) so
        shedding can never mask a malformed submission; it just never
        enters the queue, and is recorded for outcome reporting.
        """
        if self.max_queue_depth is None or self.pending < self.max_queue_depth:
            return super().submit(request)
        if not isinstance(request, Request):
            raise TypeError("submit expects a Request")
        if request.request_id in self._seen_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r} in this window")
        _reject_non_finite(request)
        if self.shed_policy == SHED_DROP_EXPIRED:
            expired = self.expire_due(request.arrival_us)
            self.expired_log.extend(expired)
            self.total_expired += len(expired)
            if self.pending < self.max_queue_depth:
                return super().submit(request)
        self.shed_log.append(request)
        self.total_shed += 1
        return None

    def submit_many(self, requests) -> None:
        """Enqueue several requests, shedding under overload per :meth:`submit`.

        Validation stays atomic (types, finiteness, duplicate ids — among
        themselves and against the queue — checked before anything is
        queued); admission is then applied per request in order, so under
        overload the earliest submissions win the queue slots.
        """
        batch = list(requests)
        for request in batch:
            if not isinstance(request, Request):
                raise TypeError("submit_many expects Request instances")
            _reject_non_finite(request)
        ids = [r.request_id for r in batch]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate request_ids within the submitted batch")
        clashes = self._seen_ids.intersection(ids)
        if clashes:
            raise ValueError(f"duplicate request_ids in this window: {sorted(clashes)}")
        for request in batch:
            self.submit(request)

    def take_shed(self) -> List[Request]:
        """Drain the shed log (requests refused admission since last call)."""
        out = self.shed_log
        self.shed_log = []
        return out

    def take_expired(self) -> List[Request]:
        """Drain the expiry log (requests evicted by drop-expired shedding)."""
        out = self.expired_log
        self.expired_log = []
        return out

    def admission_stats(self) -> Dict[str, object]:
        """Brownout counters for the engines' ``stats()``."""
        return {
            "max_queue_depth": self.max_queue_depth,
            "shed_policy": self.shed_policy,
            "shed": self.total_shed,
            "expired": self.total_expired,
            "pending": self.pending,
        }

    def arrived(self, now_us: float) -> List[Request]:
        """The queued requests whose ``arrival_us`` has passed at ``now_us``."""
        return [r for r in self._pending if r.arrival_us <= now_us]

    def next_batch(self, now_us: float) -> Optional[MicroBatch]:
        """Pop the single most urgent micro-batch at ``now_us`` (or ``None``).

        Deterministic FCFS across buckets (see :func:`plan_continuous_batch`);
        the chunk's requests leave the queue (their ids become reusable),
        everything else — later same-rung members included — stays queued
        for the next step.
        """
        planned = plan_continuous_batch(
            self.arrived(now_us),
            self.bucket_key,
            lambda r: r.arrival_us,
            lambda r: r.request_id,
            self.max_batch_size,
        )
        if planned is None:
            return None
        key, chunk = planned
        taken_ids = {r.request_id for r in chunk}
        self._pending = [r for r in self._pending if r.request_id not in taken_ids]
        self._seen_ids -= taken_ids
        return MicroBatch(key=key, requests=chunk)

    def next_event_us(self) -> Optional[float]:
        """The earliest instant any queued request becomes schedulable.

        ``None`` when the queue is empty; otherwise the minimum pending
        ``arrival_us``.  Drivers advance their clock here when a step finds
        nothing arrived yet.
        """
        if not self._pending:
            return None
        return min(r.arrival_us for r in self._pending)
