"""Continuous batching: requests join and leave buckets between engine steps.

The windowed policies (fixed grid, async arrival deadlines) are
*closed-world*: a window drains, a batch runs, the next window opens —
a request arriving one microsecond after its bucket closed waits a full
window before it can execute.  Continuous batching removes the window
entirely (the iteration-level scheduling of Orca/vLLM, adapted to
encoder workloads where one request is one forward pass):

* the engine runs a ``step(now_us)`` loop; **admission happens between
  steps** — a request that arrived while the previous step was executing
  joins a compatible open bucket immediately, even though its new
  batchmates have been queued since earlier steps;
* each step executes **one** batched (masked) forward: the single most
  urgent bucket chunk among everything arrived, oldest first (FCFS across
  rungs), under the deterministic ladder/exact grouping of
  :class:`~repro.serving.batcher.ShapeBucketBatcher`;
* completed sequences leave at the end of their step without blocking the
  rung — requests of the same rung that did not fit the chunk stay queued
  and are eligible again at the very next step, merged with whatever
  arrived meanwhile.

The scheduler state is *incremental*: per-bucket queues are kept sorted at
admission (insort by ``(arrival_us, request_id)``), urgency across rungs is
a lazily-pruned min-heap fed at admission, and taking a chunk is an O(chunk)
prefix removal.  A step therefore costs proportional to what it schedules,
not to what is queued — the earlier implementation re-bucketed and re-sorted
the whole pending list every step, which is what
:func:`plan_continuous_batch` (kept as the executable reference policy)
still spells out; the equivalence property test in
``tests/serving/test_continuous.py`` pins the two to the same chunk
sequence across randomized schedules, cadences and shed policies.

Scheduling is the *only* thing that changes.  Execution still runs through
the engines' ``_execute_batch`` (exact-length stacking, or the padded
ladder behind the additive attention mask), where every sequence executes
at its true shape — so continuous serving of N requests stays bit-for-bit
N sequential ``encoder.forward`` calls, regardless of arrival
interleaving or step cadence.  The property tests in
``tests/serving/test_continuous.py`` pin this across arrival orders, step
cadences and exact/ladder modes, together with the determinism of the
per-request :class:`CompletionRecord` metadata.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from heapq import heappop, heappush, nsmallest
from typing import Callable, Dict, List, Optional, Tuple

from .batcher import (
    DEFAULT_TOKEN_BUCKETS,
    BucketKey,
    MicroBatch,
    Request,
    ShapeBucketBatcher,
)

#: Admission-control shedding policies.
SHED_REJECT_NEWEST = "reject-newest"
SHED_DROP_EXPIRED = "drop-expired"
SHED_POLICIES: Tuple[str, ...] = (SHED_REJECT_NEWEST, SHED_DROP_EXPIRED)

#: SLO-aware chunk-selection policies (cross-class arbitration).
POLICY_FCFS = "fcfs"
POLICY_PRIORITY = "priority"
POLICY_WEIGHTED_FAIR = "weighted-fair"
SCHEDULING_POLICIES: Tuple[str, ...] = (POLICY_FCFS, POLICY_PRIORITY, POLICY_WEIGHTED_FAIR)

_NO_DEADLINE = float("inf")


@dataclass(frozen=True)
class SchedulingConfig:
    """SLO-aware scheduling knobs (:class:`ContinuousBatcher` and the
    engines' :class:`~repro.serving.config.ServingConfig`).

    ``policy`` arbitrates *across* priority classes; *within* the chosen
    class, chunk selection is always earliest-deadline-first (requests
    without a deadline rank last, then oldest arrival, ties by id):

    * ``"fcfs"`` (default) — classes are ignored entirely; the scheduler
      is exactly the :func:`plan_continuous_batch` policy of PR 5/7.
    * ``"priority"`` — strict priority: the highest populated class with
      schedulable work always wins (larger ``priority_class`` = more
      urgent; a steady stream of high-class work can starve class 0).
    * ``"weighted-fair"`` — deficit-style weighted fairness: the class
      with the smallest served-requests-to-weight ratio wins (ties go to
      the higher class), so best-effort traffic keeps a guaranteed share
      under sustained high-class load.  Requires ``class_weights``.

    ``preemption`` lets a higher class evict lower-class holders of a
    *full* rung (multi-step decode sequences): the victim releases its
    slot but keeps its KV blocks and re-queues at its original
    ``(arrival_us, request_id)`` rank, so it resumes deterministically and
    bit-exactly once a slot frees up.

    ``class_weights[c]`` is class ``c``'s weighted-fair share (and, with
    ``max_queue_depth``, its proportional slice of the admission bound);
    ``class_queue_depths[c]`` bounds class ``c``'s queue outright (``None``
    entries inherit the weighted split).  Classes beyond either tuple get
    weight 1 and no dedicated bound.
    """

    policy: str = POLICY_FCFS
    preemption: bool = False
    class_weights: Tuple[int, ...] = ()
    class_queue_depths: Tuple[Optional[int], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"policy must be one of {SCHEDULING_POLICIES}, got {self.policy!r}"
            )
        if not isinstance(self.class_weights, tuple):
            object.__setattr__(self, "class_weights", tuple(self.class_weights))
        if not isinstance(self.class_queue_depths, tuple):
            object.__setattr__(self, "class_queue_depths", tuple(self.class_queue_depths))
        for weight in self.class_weights:
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(f"class_weights must be ints >= 1, got {self.class_weights!r}")
        for depth in self.class_queue_depths:
            if depth is not None and (not isinstance(depth, int) or depth < 1):
                raise ValueError(
                    f"class_queue_depths entries must be None or ints >= 1, "
                    f"got {self.class_queue_depths!r}"
                )
        if self.policy == POLICY_WEIGHTED_FAIR and not self.class_weights:
            raise ValueError("weighted-fair scheduling requires class_weights")

    @property
    def active(self) -> bool:
        """True when any knob departs from plain FCFS scheduling."""
        return (
            self.policy != POLICY_FCFS
            or self.preemption
            or bool(self.class_weights)
            or bool(self.class_queue_depths)
        )

    @property
    def num_classes(self) -> int:
        """Classes the config explicitly names (≥ 1; class 0 always exists)."""
        return max(len(self.class_weights), len(self.class_queue_depths), 1)

    def weight_of(self, priority_class: int) -> int:
        """Weighted-fair share of one class (1 beyond ``class_weights``)."""
        if priority_class < len(self.class_weights):
            return self.class_weights[priority_class]
        return 1

    def queue_bound_of(
        self, priority_class: int, max_queue_depth: Optional[int] = None
    ) -> Optional[int]:
        """One class's admission bound (``None`` = no dedicated bound).

        An explicit ``class_queue_depths`` entry wins; otherwise, when both
        ``max_queue_depth`` and ``class_weights`` are set, the global bound
        is split proportionally to the weights (rounded up, so every
        weighted class can queue at least one request) — the class-weighted
        bounded queues of the SLO admission controller.  Shared by the
        batcher and :func:`~repro.serving.simulate.simulate_slo`.
        """
        depths = self.class_queue_depths
        if priority_class < len(depths) and depths[priority_class] is not None:
            return depths[priority_class]
        if max_queue_depth is not None and self.class_weights:
            share = self.weight_of(priority_class)
            return -(-max_queue_depth * share // sum(self.class_weights))  # ceil
        return None


@dataclass(frozen=True)
class CompletionRecord:
    """Where and when one request completed in a continuous-serving run.

    Deterministic serving metadata: for a fixed arrival schedule and step
    cadence, every field is reproducible run to run (the scheduler has no
    hidden state and breaks every tie by ``request_id``).  Outputs are
    stronger still — bit-identical across *different* cadences and
    arrival interleavings — but the records describe scheduling, which
    legitimately depends on both.
    """

    #: The request this record describes.
    request_id: str
    #: Engine-wide index of the executed step that completed the request
    #: (idle polls do not count; ``step == 0`` is the first executed batch).
    step: int
    #: The engine clock (``now_us``) at the completing step.
    completed_us: float
    #: The bucket rung the request executed at (its padded token count).
    rung: int
    #: How many requests shared the completing micro-batch.
    batch_size: int
    #: The request's own arrival time, copied for convenience.
    arrival_us: float

    @property
    def wait_us(self) -> float:
        """Queueing delay: engine clock at completion minus arrival."""
        return self.completed_us - self.arrival_us


def plan_continuous_batch(
    items, key_of, arrival_of, id_of, max_batch_size: int
) -> Optional[Tuple[object, List]]:
    """Pick the single most urgent bucket chunk from ``items`` (FCFS).

    The continuous scheduling policy as an executable specification — the
    *reference* sibling of the incremental :class:`ContinuousBatcher`
    (which must emit the identical chunk sequence; property-tested), and
    the planner the analytic replay in
    :func:`~repro.serving.simulate.simulate_serving` calls directly (the
    same sharing pattern as ``plan_batches`` / ``plan_async_closings``):

    1. group items by ``key_of(item)`` (the bucket identity);
    2. order each bucket by ``(arrival_of(item), id_of(item))`` — oldest
       first, ties broken by id so the plan is deterministic;
    3. chunk each bucket at ``max_batch_size`` (later members stay queued
       for the next step — they leave the rung open, not blocked);
    4. return the chunk whose oldest member has waited longest, breaking
       arrival ties by the oldest member's id (ids are unique across the
       candidate set, so the ``(arrival, id)`` rank is always total).

    Returns ``(key, chunk)``, or ``None`` when ``items`` is empty.
    """
    by_bucket = {}
    for item in items:
        by_bucket.setdefault(key_of(item), []).append(item)
    best = None
    for key, bucket_members in by_bucket.items():
        members = sorted(bucket_members, key=lambda it: (arrival_of(it), id_of(it)))
        chunk = members[:max_batch_size]
        rank = (arrival_of(chunk[0]), id_of(chunk[0]))
        if best is None or rank < best[0]:
            best = (rank, key, chunk)
    if best is None:
        return None
    return best[1], best[2]


#: Explicit alias for the reference policy (the incremental batcher's
#: equivalence partner in the property tests).
plan_continuous_batch_reference = plan_continuous_batch


def _wf_wins(challenger, incumbent, served_by_class, weights) -> bool:
    """Deficit-style weighted-fair arbitration between two classes.

    The class with the smaller ``served / weight`` ratio wins (compared by
    cross-multiplication so the decision is exact integer arithmetic, never
    float division); ties go to the *higher* class.  ``incumbent is None``
    always loses.
    """
    if incumbent is None:
        return True
    if challenger == incumbent:
        return False
    lhs = served_by_class.get(challenger, 0) * weights(incumbent)
    rhs = served_by_class.get(incumbent, 0) * weights(challenger)
    if lhs != rhs:
        return lhs < rhs
    return challenger > incumbent


def plan_slo_batch_reference(
    items,
    key_of,
    arrival_of,
    id_of,
    max_batch_size: int,
    class_of=None,
    deadline_of=None,
    policy: str = POLICY_FCFS,
    class_weights: Tuple[int, ...] = (),
    served_by_class=None,
    capacity_of=None,
) -> Optional[Tuple[object, List]]:
    """SLO-aware chunk selection as an executable specification (loop form).

    The :func:`plan_continuous_batch` contract grown three ways — this is
    the ``*_reference`` sibling of :func:`plan_slo_batch` (identical chunk
    sequences, property-tested in ``tests/serving/test_slo.py``):

    1. **Rung capacity.** ``capacity_of(key)``, when given, is the number
       of free slots on a rung; buckets at zero capacity are skipped
       entirely (their queues wait for a released slot) and a chunk is
       capped at ``min(max_batch_size, capacity_of(key))``.
    2. **Cross-class arbitration** (``policy``): ``"fcfs"`` ignores
       classes — the schedulable item with the oldest ``(arrival, id)``
       picks the winning bucket, exactly the continuous reference.
       ``"priority"`` restricts candidates to the highest schedulable
       class.  ``"weighted-fair"`` restricts to the class with the
       smallest ``served_by_class[c] / class_weights[c]`` ratio (exact
       integer comparison, ties to the higher class) — ``served_by_class``
       is the caller's cumulative served counter, read-only here.
    3. **EDF within the class**: candidates are ranked by
       ``(deadline_us or +inf, arrival_us, id)`` — tightest deadline
       first, deadline-free requests fall back to FCFS order.  The winning
       bucket is the one whose most urgent member wins, and its chunk is
       its candidates in that same urgency order, capped per (1).

    A non-FCFS chunk is **class-pure** (only the winning class's members),
    keeping strictness strict and the weighted-fair accounting exact.
    Returns ``(key, chunk)`` or ``None`` when nothing is schedulable.
    """
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(f"policy must be one of {SCHEDULING_POLICIES}, got {policy!r}")
    class_of = class_of if class_of is not None else (lambda item: 0)
    deadline_of = deadline_of if deadline_of is not None else (lambda item: None)
    served_by_class = served_by_class if served_by_class is not None else {}

    def capacity(key) -> int:
        cap = max_batch_size if capacity_of is None else min(max_batch_size, capacity_of(key))
        return max(cap, 0)

    schedulable = [item for item in items if capacity(key_of(item)) > 0]
    if not schedulable:
        return None

    if policy == POLICY_FCFS:
        candidates = schedulable

        def rank(item):
            return (arrival_of(item), id_of(item))

    else:
        if policy == POLICY_PRIORITY:
            winner = max(class_of(item) for item in schedulable)
        else:  # weighted-fair

            def weight(cls: int) -> int:
                return class_weights[cls] if cls < len(class_weights) else 1

            winner = None
            for cls in {class_of(item) for item in schedulable}:
                if _wf_wins(cls, winner, served_by_class, weight):
                    winner = cls
        candidates = [item for item in schedulable if class_of(item) == winner]

        def rank(item):
            deadline = deadline_of(item)
            return (
                deadline if deadline is not None else _NO_DEADLINE,
                arrival_of(item),
                id_of(item),
            )

    by_bucket = {}
    for item in candidates:
        by_bucket.setdefault(key_of(item), []).append(item)
    best = None
    for key, bucket_members in by_bucket.items():
        members = sorted(bucket_members, key=rank)
        chunk = members[: capacity(key)]
        head = rank(chunk[0])
        if best is None or head < best[0]:
            best = (head, key, chunk)
    return (best[1], best[2]) if best is not None else None


def plan_slo_batch(
    items,
    key_of,
    arrival_of,
    id_of,
    max_batch_size: int,
    class_of=None,
    deadline_of=None,
    policy: str = POLICY_FCFS,
    class_weights: Tuple[int, ...] = (),
    served_by_class=None,
    capacity_of=None,
) -> Optional[Tuple[object, List]]:
    """Single-pass implementation of :func:`plan_slo_batch_reference`.

    Same contract, cheaper work: one scan memoizes per-rung capacity and
    settles the winning class, a second scan tracks each bucket's most
    urgent head without sorting, and only the winning bucket's candidates
    are ordered — a partial sort capped at the chunk size
    (``heapq.nsmallest``) instead of the reference's full sort of every
    bucket.  Chunk sequences are pinned identical by the property test in
    ``tests/serving/test_slo.py``.
    """
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(f"policy must be one of {SCHEDULING_POLICIES}, got {policy!r}")
    class_of = class_of if class_of is not None else (lambda item: 0)
    deadline_of = deadline_of if deadline_of is not None else (lambda item: None)
    served_by_class = served_by_class if served_by_class is not None else {}

    caps: Dict[object, int] = {}

    def capacity(key) -> int:
        cap = caps.get(key)
        if cap is None:
            cap = max_batch_size if capacity_of is None else min(max_batch_size, capacity_of(key))
            caps[key] = cap = max(cap, 0)
        return cap

    if policy == POLICY_FCFS:

        def eligible(item) -> bool:
            return capacity(key_of(item)) > 0

        def rank(item):
            return (arrival_of(item), id_of(item))

    else:
        winner = None
        if policy == POLICY_PRIORITY:
            for item in items:
                cls = class_of(item)
                if (winner is None or cls > winner) and capacity(key_of(item)) > 0:
                    winner = cls
        else:  # weighted-fair

            def weight(cls: int) -> int:
                return class_weights[cls] if cls < len(class_weights) else 1

            for item in items:
                cls = class_of(item)
                if _wf_wins(cls, winner, served_by_class, weight) and capacity(key_of(item)) > 0:
                    winner = cls
        if winner is None:
            return None
        chosen = winner

        def eligible(item) -> bool:
            return class_of(item) == chosen and capacity(key_of(item)) > 0

        def rank(item):
            deadline = deadline_of(item)
            return (
                deadline if deadline is not None else _NO_DEADLINE,
                arrival_of(item),
                id_of(item),
            )

    members: Dict[object, List] = {}
    heads: Dict[object, Tuple] = {}
    best_key = None
    for item in items:
        if not eligible(item):
            continue
        key = key_of(item)
        item_rank = rank(item)
        members.setdefault(key, []).append(item)
        if key not in heads or item_rank < heads[key]:
            heads[key] = item_rank
        if best_key is None or heads[key] < heads[best_key]:
            best_key = key
    if best_key is None:
        return None
    chunk = nsmallest(capacity(best_key), members[best_key], key=rank)
    return best_key, chunk


def _arrival_rank(request: Request) -> Tuple[float, str]:
    """In-bucket scheduling order: oldest arrival first, ties by id."""
    return (request.arrival_us, request.request_id)


def _bucket_rank(key: BucketKey) -> Tuple[int, int]:
    """Deterministic bucket-key order (unique per key — it *is* the key)."""
    return (key.features, key.token_bucket)


class ContinuousBatcher(ShapeBucketBatcher):
    """Shape-bucketing batcher scheduled per engine step, not per window.

    Requests queue exactly as on the parent (``submit`` / ``submit_many``,
    which validate once and admit through :meth:`_admit`), but instead of
    draining whole windows the engine asks for **one** micro-batch per step
    (:meth:`next_batch`): the most urgent chunk among the requests that
    have *arrived* by ``now_us``.  Everything else stays queued with its id
    reserved — including same-rung requests beyond ``max_batch_size``,
    which become the oldest members of the rung's next chunk, merged with
    any later arrivals (the "join an open bucket mid-flight" behaviour
    continuous batching exists for).

    Scheduling state is incremental so the per-step cost tracks the chunk,
    not the queue: each bucket's queue is kept sorted by
    ``(arrival_us, request_id)`` at admission, cross-rung urgency is a
    lazily-pruned min-heap of arrival times fed at admission, deadlines
    live in a second lazy heap (so :meth:`expire_due` is a no-op when
    nothing carries a deadline), and taking a chunk is an O(chunk) prefix
    removal.  The emitted chunk sequence is identical to the
    :func:`plan_continuous_batch` reference, property-tested.

    Construct with :meth:`ShapeBucketBatcher.ladder` for padded-rung
    serving (``ContinuousBatcher.ladder()``, the common case) or
    :meth:`ShapeBucketBatcher.exact_length` for exact-length-only
    stacking; both classmethods are inherited.

    Numerics are untouched: a chunk executes through the very same
    ``MicroBatch`` path as a windowed drain, so per-request outputs are
    invariant to arrival interleaving *and* to the step cadence, bit for
    bit.

    Admission control (overload shedding) is opt-in: with
    ``max_queue_depth`` set, a submit that would push the queue past the
    bound is shed deterministically.  ``shed_policy="reject-newest"``
    refuses the incoming request outright; ``"drop-expired"`` first evicts
    queued requests whose deadline has already passed at the incoming
    request's arrival time (they were doomed anyway) and only sheds the
    newcomer if the queue is still full.  A shed request is still validated
    (type, finiteness, id clash) — shedding can never mask a malformed
    submission; it just never enters the queue.  Shed and evicted requests
    land in :meth:`take_shed` / :meth:`take_expired` so drivers can report
    their outcomes; the cumulative brownout counters are on
    :meth:`admission_stats`.

    Multi-step (decode) serving adds two opt-in dimensions.  **Rung
    occupancy**: a decode request keeps executing on its rung for many
    steps after it is popped; the driving engine marks the slot held with
    :meth:`acquire_slot` and returns it with :meth:`release_slot`, and
    :meth:`next_batch` admits into a rung only up to ``max_batch_size``
    minus its held slots (a full rung's queue simply waits — other rungs
    stay schedulable).  **KV-memory budget**: with ``kv_budget_blocks``
    set, admission also sheds a request whose projected KV footprint
    (``kv_cost(request)`` blocks, default 1) would push the total reserved
    past the budget; reservations are returned by :meth:`release_kv` when
    the engine frees the sequence's blocks (or immediately, for requests
    expired while still queued).  Both default off, leaving single-step
    engines untouched.
    """

    def __init__(
        self,
        token_buckets: Tuple[int, ...] = DEFAULT_TOKEN_BUCKETS,
        max_batch_size: int = 64,
        max_queue_depth: Optional[int] = None,
        shed_policy: str = SHED_REJECT_NEWEST,
        kv_budget_blocks: Optional[int] = None,
        kv_cost: Optional[Callable[[Request], int]] = None,
        scheduling: Optional[SchedulingConfig] = None,
    ) -> None:
        super().__init__(token_buckets=token_buckets, max_batch_size=max_batch_size)
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}")
        if kv_budget_blocks is not None and kv_budget_blocks < 1:
            raise ValueError("kv_budget_blocks must be >= 1 (or None for unbudgeted)")
        if scheduling is not None and not isinstance(scheduling, SchedulingConfig):
            raise TypeError(f"scheduling must be a SchedulingConfig, got {type(scheduling)}")
        self.max_queue_depth = max_queue_depth
        self.shed_policy = shed_policy
        self.kv_budget_blocks = kv_budget_blocks
        self._kv_cost_fn = kv_cost
        #: SLO-aware scheduling knobs (default: plain FCFS, classes ignored).
        self.scheduling = scheduling if scheduling is not None else SchedulingConfig()
        #: KV blocks reserved by admitted-but-not-yet-released requests.
        self.kv_reserved = 0
        self._kv_cost_by_id: Dict[str, int] = {}
        #: Rung slots held by in-flight multi-step sequences.
        self._occupancy: Dict[BucketKey, int] = {}
        #: Slot holders with their identity, for preemption arbitration:
        #: per-rung list of ``(priority_class, request_id)``.  Only fed when
        #: :meth:`acquire_slot` is told who is holding (decode engines).
        self._holders: Dict[BucketKey, List[Tuple[int, str]]] = {}
        #: Requests shed/evicted since the last take_*; drivers drain these
        #: into RequestOutcomes.
        self.shed_log: List[Request] = []
        self.expired_log: List[Request] = []
        #: Cumulative brownout counters (never reset by take_*).
        self.total_shed = 0
        self.total_expired = 0
        #: Per-priority-class brownout counters (same never-reset contract).
        self.total_shed_by_class: Dict[int, int] = {}
        self.total_expired_by_class: Dict[int, int] = {}
        #: Live queue depth per class (admission bookkeeping).
        self._pending_by_class: Dict[int, int] = {}
        #: Cumulative requests scheduled per class — the weighted-fair
        #: deficit state :func:`plan_slo_batch` arbitrates on.
        self._served_by_class: Dict[int, int] = {}
        # Incremental scheduler state.  The parent's flat ``_pending`` list
        # stays empty — these structures replace it (``_seen_ids`` is still
        # maintained for the parent's duplicate-id validation):
        #: per-bucket queues, each sorted by (arrival_us, request_id).
        self._buckets: Dict[BucketKey, List[Request]] = {}
        #: the bucket keys of ``_buckets`` kept sorted by ``_bucket_rank``:
        #: insort on bucket creation, binary-search removal on bucket drain,
        #: so :meth:`arrived` never re-sorts the key set per step.
        self._sorted_keys: List[BucketKey] = []
        #: live queued requests by id (also the queue-depth source of truth).
        self._by_id: Dict[str, Request] = {}
        #: admission sequence number per live id — heap entries carry the
        #: seq they were pushed with, so entries for departed (or re-used)
        #: ids are recognised as stale and pruned lazily.
        self._live_seq: Dict[str, int] = {}
        self._admit_seq = 0
        #: cross-rung urgency: min-heap of (arrival_us, request_id, seq, key).
        self._arrival_heap: List[Tuple[float, str, int, BucketKey]] = []
        #: expiry: min-heap of (deadline_us, request_id, seq); only fed by
        #: requests that actually carry a deadline.
        self._deadline_heap: List[Tuple[float, str, int]] = []

    # ------------------------------------------------------------------
    # Admission (validation happened in submit/submit_many)
    # ------------------------------------------------------------------
    def _kv_cost_of(self, request: Request) -> int:
        """Projected KV-block footprint of one request (0 when unbudgeted)."""
        if self.kv_budget_blocks is None:
            return 0
        cost = self._kv_cost_fn(request) if self._kv_cost_fn is not None else 1
        if cost < 1:
            raise ValueError(f"kv_cost must be >= 1 block, got {cost} for {request.request_id!r}")
        return cost

    def class_queue_bound(self, priority_class: int) -> Optional[int]:
        """The admission bound of one priority class (``None`` = unbounded);
        see :meth:`SchedulingConfig.queue_bound_of`."""
        return self.scheduling.queue_bound_of(priority_class, self.max_queue_depth)

    def _over_capacity(self, kv_cost: int, priority_class: int = 0) -> bool:
        if self.max_queue_depth is not None and self.pending >= self.max_queue_depth:
            return True
        bound = self.class_queue_bound(priority_class)
        if bound is not None and self._pending_by_class.get(priority_class, 0) >= bound:
            return True
        return (
            self.kv_budget_blocks is not None
            and self.kv_reserved + kv_cost > self.kv_budget_blocks
        )

    def _admit(self, request: Request) -> Optional[BucketKey]:
        """Admit or shed one validated request (``None`` when shed)."""
        kv_cost = self._kv_cost_of(request)
        cls = request.priority_class
        if self._over_capacity(kv_cost, cls):
            if self.shed_policy == SHED_DROP_EXPIRED:
                expired = self.expire_due(request.arrival_us)
                self.expired_log.extend(expired)
                self.total_expired += len(expired)
                for victim in expired:
                    victim_cls = victim.priority_class
                    self.total_expired_by_class[victim_cls] = (
                        self.total_expired_by_class.get(victim_cls, 0) + 1
                    )
            if self._over_capacity(kv_cost, cls):
                self.shed_log.append(request)
                self.total_shed += 1
                self.total_shed_by_class[cls] = self.total_shed_by_class.get(cls, 0) + 1
                return None
        return self._enqueue(request, kv_cost)

    def _enqueue(self, request: Request, kv_cost: int = 0) -> BucketKey:
        key = self.bucket_key(request)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
            insort(self._sorted_keys, key, key=_bucket_rank)
        insort(bucket, request, key=_arrival_rank)
        if kv_cost:
            self._kv_cost_by_id[request.request_id] = kv_cost
            self.kv_reserved += kv_cost
        self._admit_seq += 1
        seq = self._admit_seq
        rid = request.request_id
        self._seen_ids.add(rid)
        self._by_id[rid] = request
        self._live_seq[rid] = seq
        cls = request.priority_class
        self._pending_by_class[cls] = self._pending_by_class.get(cls, 0) + 1
        heappush(self._arrival_heap, (request.arrival_us, rid, seq, key))
        if request.deadline_us is not None:
            heappush(self._deadline_heap, (request.deadline_us, rid, seq))
        return key

    def _forget(self, request: Request) -> None:
        """Drop a departed request's liveness: its heap entries turn stale
        (pruned lazily on the next top access) and its id becomes reusable."""
        rid = request.request_id
        del self._by_id[rid]
        del self._live_seq[rid]
        self._seen_ids.discard(rid)
        cls = request.priority_class
        left = self._pending_by_class.get(cls, 0) - 1
        if left > 0:
            self._pending_by_class[cls] = left
        else:
            self._pending_by_class.pop(cls, None)

    def _remove_queued(self, request: Request) -> None:
        """Remove one queued request from the middle of its bucket (binary
        search on the sort key; ids are unique, so the found slot is the
        request itself), keeping any KV reservation it holds."""
        key = self.bucket_key(request)
        bucket = self._buckets[key]
        del bucket[bisect_left(bucket, _arrival_rank(request), key=_arrival_rank)]
        if not bucket:
            self._drop_bucket(key)
        self._forget(request)

    def _evict(self, request: Request) -> None:
        """Remove one queued request for good (expiry/shedding eviction)."""
        self._remove_queued(request)
        self.release_kv(request.request_id)  # never ran; reservation returns now

    def _drop_bucket(self, key: BucketKey) -> None:
        """Forget an emptied bucket (and its slot in the sorted key order)."""
        del self._buckets[key]
        del self._sorted_keys[bisect_left(self._sorted_keys, _bucket_rank(key), key=_bucket_rank)]

    def _live_arrival_top(self) -> Optional[Tuple[float, str, int, BucketKey]]:
        """The heap's oldest *live* entry — the globally most urgent queued
        request (and, the bucket queues being sorted on the same rank, the
        head of its bucket).  Stale entries are pruned on the way."""
        heap = self._arrival_heap
        while heap:
            entry = heap[0]
            if self._live_seq.get(entry[1]) == entry[2]:
                return entry
            heappop(heap)
        return None

    def take_shed(self) -> List[Request]:
        """Drain the shed log (requests refused admission since last call)."""
        out = self.shed_log
        self.shed_log = []
        return out

    def take_expired(self) -> List[Request]:
        """Drain the expiry log (requests evicted by drop-expired shedding)."""
        out = self.expired_log
        self.expired_log = []
        return out

    def per_class_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-priority-class admission counters, normalized.

        Always covers class 0 and every class the scheduling config names
        (zeroed when unused), plus any class actually observed queued, shed
        or expired — so a default FCFS engine reports
        ``{0: {"shed": 0, "expired": 0, "pending": 0}}`` and the schema
        never changes shape at runtime.
        """
        classes = set(range(self.scheduling.num_classes))
        classes.update(self._pending_by_class)
        classes.update(self.total_shed_by_class)
        classes.update(self.total_expired_by_class)
        return {
            cls: {
                "shed": self.total_shed_by_class.get(cls, 0),
                "expired": self.total_expired_by_class.get(cls, 0),
                "pending": self._pending_by_class.get(cls, 0),
            }
            for cls in sorted(classes)
        }

    def admission_stats(self) -> Dict[str, object]:
        """Brownout counters for the engines' ``stats()``."""
        return {
            "max_queue_depth": self.max_queue_depth,
            "shed_policy": self.shed_policy,
            "shed": self.total_shed,
            "expired": self.total_expired,
            "pending": self.pending,
            "kv_budget_blocks": self.kv_budget_blocks,
            "kv_reserved": self.kv_reserved,
            "occupied_slots": sum(self._occupancy.values()),
            "policy": self.scheduling.policy,
            "per_class": self.per_class_stats(),
        }

    # ------------------------------------------------------------------
    # Multi-step occupancy (decode engines)
    # ------------------------------------------------------------------
    def acquire_slot(self, key: BucketKey, request: Optional[Request] = None) -> None:
        """Mark one rung slot held by an in-flight multi-step sequence.

        Passing the holding ``request`` records who holds the slot, which
        is what preemption arbitrates on (:meth:`preemption_victim`);
        anonymous holders (the legacy call shape) can never be preempted.
        """
        self._occupancy[key] = self._occupancy.get(key, 0) + 1
        if request is not None:
            self._holders.setdefault(key, []).append(
                (request.priority_class, request.request_id)
            )

    def release_slot(self, key: BucketKey, request_id: Optional[str] = None) -> None:
        """Return a held rung slot (sequence completed, failed or evicted)."""
        held = self._occupancy.get(key, 0)
        if held <= 0:
            raise RuntimeError(f"no held slot to release on rung {key}")
        if held == 1:
            del self._occupancy[key]
        else:
            self._occupancy[key] = held - 1
        holders = self._holders.get(key)
        if holders and request_id is not None:
            holders[:] = [h for h in holders if h[1] != request_id]
            if not holders:
                del self._holders[key]

    def preemption_victim(self, key: BucketKey, priority_class: int) -> Optional[str]:
        """The id of the slot holder a ``priority_class`` arrival may evict.

        Deterministic choice among holders of strictly lower class: lowest
        class first, ties by smallest request id.  ``None`` when every
        holder is at least as important (no preemption).
        """
        candidates = [h for h in self._holders.get(key, ()) if h[0] < priority_class]
        return min(candidates)[1] if candidates else None

    def preemption_target(self, now_us: float) -> Optional[Tuple[BucketKey, Request]]:
        """The queued request that preemption should make room for, if any.

        With preemption enabled, plans the policy's chunk *ignoring* slot
        occupancy; when that chunk's rung is in fact fully held, its most
        urgent member is returned with the rung key — the driving engine
        then asks :meth:`preemption_victim` whom to evict.  ``None`` when
        preemption is off, nothing is queued, or the chosen rung has a free
        slot anyway (normal scheduling will take it).
        """
        if not self.scheduling.preemption:
            return None
        arrived = self.arrived(now_us)
        if not arrived:
            return None
        planned = plan_slo_batch(
            arrived,
            self.bucket_key,
            lambda r: r.arrival_us,
            lambda r: r.request_id,
            self.max_batch_size,
            class_of=lambda r: r.priority_class,
            deadline_of=lambda r: r.deadline_us,
            policy=self.scheduling.policy,
            class_weights=self.scheduling.class_weights,
            served_by_class=self._served_by_class,
        )
        if planned is None:
            return None
        key, chunk = planned
        if self.max_batch_size - self._occupancy.get(key, 0) > 0:
            return None
        return key, chunk[0]

    def requeue(self, request: Request) -> BucketKey:
        """Re-admit preempted work, bypassing admission control entirely.

        A preempted sequence was already admitted once (and still holds its
        KV reservation, tracked by the engine), so it must never be shed on
        the way back in.  It re-enters its bucket at its original
        ``(arrival_us, request_id)`` rank — the deterministic re-queue the
        preemption golden cells pin.
        """
        if request.request_id in self._seen_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        return self._enqueue(request, 0)

    def occupied_slots(self, key: BucketKey) -> int:
        """Slots currently held on one rung."""
        return self._occupancy.get(key, 0)

    def release_kv(self, request_id: str) -> int:
        """Return a request's KV-budget reservation; returns the blocks freed.

        Engines call this when the sequence's cache blocks are actually
        freed (completion or failure); queued-request expiry calls it
        internally.  Unknown ids are a harmless no-op (the request was
        admitted unbudgeted)."""
        cost = self._kv_cost_by_id.pop(request_id, 0)
        self.kv_reserved -= cost
        return cost

    # ------------------------------------------------------------------
    # Queue views
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of queued requests."""
        return len(self._by_id)

    def is_queued(self, request_id: str) -> bool:
        """Whether ``request_id`` is currently waiting in the queue."""
        return request_id in self._by_id

    def arrived(self, now_us: float) -> List[Request]:
        """The queued requests whose ``arrival_us`` has passed at ``now_us``
        (inclusive: a request arriving exactly at ``now_us`` is eligible).

        Arrived members form a prefix of each sorted bucket and the bucket
        keys are kept sorted incrementally (``_sorted_keys``), so this costs
        O(buckets log + arrived) — no per-call re-sort of the key set, which
        used to make every idle step O(B log B).  Returned in deterministic
        (bucket key, then (arrival, id)) order.
        """
        out: List[Request] = []
        for key in self._sorted_keys:
            bucket = self._buckets[key]
            out.extend(bucket[: bisect_right(bucket, now_us, key=lambda r: r.arrival_us)])
        return out

    def expire_due(self, now_us: float) -> List[Request]:
        """Remove and return queued requests whose deadline passed at ``now_us``.

        Same contract as the parent (``request_id`` order, evicted ids
        become reusable, expiry is strict ``deadline_us < now_us``), driven
        off the lazy deadline heap: when nothing queued carries a deadline
        — the common case — this is a constant-time no-op instead of a full
        queue scan per step.
        """
        heap = self._deadline_heap
        expired: List[Request] = []
        while heap:
            deadline, rid, seq = heap[0]
            if self._live_seq.get(rid) != seq:
                heappop(heap)
                continue
            if deadline >= now_us:
                break
            heappop(heap)
            request = self._by_id[rid]
            self._evict(request)
            expired.append(request)
        return sorted(expired, key=lambda r: r.request_id)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def next_batch(self, now_us: float) -> Optional[MicroBatch]:
        """Pop the single most urgent micro-batch at ``now_us`` (or ``None``).

        The :func:`plan_continuous_batch` policy, computed incrementally:
        the arrival heap's live top is the oldest arrived request overall —
        and therefore the head of its (sorted) bucket, whose arrived prefix,
        capped at ``max_batch_size``, is exactly the reference chunk.  The
        chunk's requests leave the queue (their ids become reusable);
        everything else — later same-rung members included — stays queued
        for the next step.  O(chunk) plus amortized heap maintenance.

        Rungs whose slots are all held by in-flight multi-step sequences
        (:meth:`acquire_slot`) are skipped — their queued heads wait for a
        released slot while other rungs keep scheduling; with no held slots
        (every single-step engine) the policy is exactly the reference.

        Under a non-FCFS :class:`SchedulingConfig` the chunk instead comes
        from :func:`plan_slo_batch` over the arrived set (priority or
        weighted-fair across classes, EDF within) — the policies share one
        planner, so the batcher can never drift from the property-tested
        reference.
        """
        if self.scheduling.policy != POLICY_FCFS:
            return self._next_batch_slo(now_us)
        deferred: List[Tuple[float, str, int, BucketKey]] = []
        result: Optional[MicroBatch] = None
        while True:
            top = self._live_arrival_top()
            if top is None or top[0] > now_us:
                break
            key = top[3]
            free = self.max_batch_size - self._occupancy.get(key, 0)
            if free <= 0:
                # Full rung: park its head entry aside and look at the next
                # most urgent request (possibly the same rung — parked one
                # at a time until another rung's head, or nothing, remains).
                deferred.append(heappop(self._arrival_heap))
                continue
            bucket = self._buckets[key]
            limit = min(free, len(bucket))
            cut = 0
            while cut < limit and bucket[cut].arrival_us <= now_us:
                cut += 1
            chunk = bucket[:cut]
            del bucket[:cut]
            if not bucket:
                self._drop_bucket(key)
            for request in chunk:
                self._forget(request)
            result = MicroBatch(key=key, requests=chunk)
            break
        for entry in deferred:
            heappush(self._arrival_heap, entry)
        if result is not None:
            for request in result.requests:  # FCFS chunks may mix classes
                cls = request.priority_class
                self._served_by_class[cls] = self._served_by_class.get(cls, 0) + 1
        return result

    def _next_batch_slo(self, now_us: float) -> Optional[MicroBatch]:
        """Non-FCFS scheduling: one :func:`plan_slo_batch` call per step.

        The SLO policies re-rank the whole arrived set (deadlines and the
        weighted-fair deficit both move between steps), so this path trades
        the FCFS fast path's O(chunk) incrementality for a planner pass
        over what has arrived — scheduling only; execution is untouched.
        """
        arrived = self.arrived(now_us)
        if not arrived:
            return None
        planned = plan_slo_batch(
            arrived,
            self.bucket_key,
            lambda r: r.arrival_us,
            lambda r: r.request_id,
            self.max_batch_size,
            class_of=lambda r: r.priority_class,
            deadline_of=lambda r: r.deadline_us,
            policy=self.scheduling.policy,
            class_weights=self.scheduling.class_weights,
            served_by_class=self._served_by_class,
            capacity_of=lambda key: self.max_batch_size - self._occupancy.get(key, 0),
        )
        if planned is None:
            return None
        key, chunk = planned
        for request in chunk:
            self._remove_queued(request)
        cls = chunk[0].priority_class  # non-FCFS chunks are class-pure
        self._served_by_class[cls] = self._served_by_class.get(cls, 0) + len(chunk)
        return MicroBatch(key=key, requests=chunk)

    def next_event_us(self) -> Optional[float]:
        """The earliest instant any queued request becomes schedulable.

        ``None`` when the queue is empty; otherwise the minimum pending
        ``arrival_us`` (the arrival heap's live top).  Drivers advance
        their clock here when a step finds nothing arrived yet.
        """
        top = self._live_arrival_top()
        return None if top is None else top[0]

    def drain(self) -> List[MicroBatch]:
        """Group everything queued into micro-batches and clear the queue.

        The parent's deterministic window-drain plan (bucket-key order, ids
        within a bucket), over the incremental state; all scheduler state is
        reset, ids become reusable.
        """
        items = list(self._by_id.values())
        self._buckets.clear()
        self._sorted_keys.clear()
        self._by_id.clear()
        self._live_seq.clear()
        self._pending_by_class.clear()
        self._arrival_heap.clear()
        self._deadline_heap.clear()
        self._seen_ids = set()
        for request in items:
            self.release_kv(request.request_id)
        return [
            MicroBatch(key=key, requests=members)
            for key, members in self.plan_batches(
                items, self.bucket_key, lambda r: r.request_id
            )
        ]
