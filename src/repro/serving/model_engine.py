"""Model-level serving: route whole encoder forward passes, not one layer.

:class:`~repro.serving.engine.ServingEngine` serves a single sparse
operator; real inference traffic wants the *model*.  ``ModelServingEngine``
closes that gap: requests are ragged ``(tokens, hidden)`` activation
sequences, micro-batches run one batched
:meth:`~repro.models.transformer.TransformerEncoder.forward` per bucket —
every sparse projection executing through the engine's kernel dispatcher on
its batched RHS path — and the results are split back per request.

Three serving-level resources are engine-scoped and shared across every
request the engine ever serves:

* **the kernel dispatcher** — injected into all sparse projections
  (:meth:`TransformerEncoder.set_dispatcher`), so the whole encoder shares
  one decision cache and one tuner, isolated from other engines;
* **the plan registry** — one warmed
  :class:`~repro.kernels.spatha.SpmmPlan` per sparse projection, looked up
  per micro-batch with hit/miss counters surfaced on :meth:`stats` (the
  cross-request plan-cache reuse the ROADMAP asks for);
* **the per-layer trace** — every micro-batch records one modelled
  :class:`~repro.hardware.trace.KernelExecution` per projection, so serving
  runs aggregate into the same per-layer breakdowns the evaluation harness
  uses (:meth:`per_layer_times`).

Bit-exactness is the core guarantee, now model-level: serving N requests
batched is bit-for-bit equal to N sequential ``encoder.forward`` calls.
Two batching policies deliver it:

* ``padding="exact"`` (default) stacks only *same-length* sequences.
  Every operator in the stack is slab-exact over the batch dimension — the
  dispatcher's batched SpMM path by construction, the dense layers via the
  batched-matmul formulation, and the attention matmuls / softmax /
  LayerNorm / GELU because they reduce within a slab — so same-length
  stacking needs no masking at all.  Under ragged traffic, though, most
  exact buckets stay near-empty.
* ``padding="ladder"`` rounds lengths up a powers-of-two bucket ladder,
  zero-pads each sequence to its rung, and runs one batched
  ``encoder.forward`` behind an additive attention mask
  (:func:`~repro.models.functional.padding_mask`): padded key positions
  get exactly zero softmax weight, the masked encoder executes every
  sequence at its true length (see :mod:`repro.models.attention` for why
  bitwise equality needs that, not just exact zeros), and the engine
  slices the valid rows back out.  Fuller buckets, same bits.

Orthogonally to the padding mode, three *scheduling* drivers decide when a
queued request executes: whole-window ``flush``/``serve``, async
arrival-deadline windows (``poll``/``serve_arrivals`` with an
:class:`~repro.serving.batcher.AsyncWindowBatcher`), and the
continuous-batching step loop (``step``/``serve_continuous`` with a
:class:`~repro.serving.continuous.ContinuousBatcher`, where requests join
open rungs between steps instead of waiting out a window).  Scheduling
never touches numerics, so the guarantee holds under all three.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .batcher import MicroBatch, Request, ShapeBucketBatcher
from .config import UNSET, ServingConfig, warn_deprecated_kwarg
from .continuous import CompletionRecord
from .engine import (
    AsyncDriverMixin,
    ContinuousDriverMixin,
    OutcomeTrackingMixin,
    StackBufferPool,
    admission_stats_of,
    continuous_stats_of,
    sharding_stats_of,
)
from .faults import RequestOutcome
from ..hardware.trace import ExecutionTrace
from ..kernels.dispatch import KernelDispatcher
from ..kernels.spatha import SpmmPlan
from ..models.functional import padding_mask
from ..models.layers import SparseLinear
from ..models.transformer import TransformerEncoder


class ModelServingEngine(OutcomeTrackingMixin, AsyncDriverMixin, ContinuousDriverMixin):
    """Dynamic-batching server for a whole :class:`TransformerEncoder`.

    Three scheduling drivers share the one execution path (and therefore
    the model-level bit-exactness guarantee): ``flush``/``serve`` close
    whole windows, ``poll``/``serve_arrivals`` close async arrival-deadline
    windows (pass an :class:`~repro.serving.batcher.AsyncWindowBatcher`),
    and ``step``/``serve_continuous`` run the continuous-batching step loop
    (pass a :class:`~repro.serving.continuous.ContinuousBatcher` — requests
    join open ladder rungs between steps instead of waiting out windows).

    An engine takes ownership of the encoder's execution routing:
    constructing it injects the engine's dispatcher into every sparse
    projection.  Constructing a *second* engine on the same encoder
    re-routes those layers to the newer engine; the displaced engine
    detects this on its next batch and raises rather than silently
    executing through (and tracing against) a dispatcher that is no longer
    wired in.  Use one engine per encoder, or re-create the engine.

    Parameters
    ----------
    encoder:
        The model to serve.  Its sparse projections are re-routed through
        this engine's dispatcher (cache scoping per engine).
    dispatcher:
        Kernel dispatcher to execute through.  Defaults to a *fresh*
        engine-private :class:`KernelDispatcher` — two engines never share
        memoized dispatch signatures unless explicitly given one dispatcher.
    batcher:
        Request batcher.  Defaults to exact-length bucketing
        (:meth:`ShapeBucketBatcher.exact_length`) in ``padding="exact"``
        mode and the powers-of-two ladder
        (:meth:`ShapeBucketBatcher.ladder`) in ``padding="ladder"`` mode;
        pass an :class:`~repro.serving.batcher.AsyncWindowBatcher` built
        the same way for arrival-deadline window closing via :meth:`poll`.
    padding:
        ``"exact"`` (default) refuses any batcher that would zero-pad a
        sequence; ``"ladder"`` pads to bucket rungs behind the attention
        mask.  Both are bit-exact per request; ladder mode trades a little
        padded compute for far fuller buckets under ragged traffic.
    warm:
        When True (default), eagerly build every sparse projection's SpMM
        plan and pre-rank the dispatch decisions of ``warm_buckets`` so the
        first window pays neither operand preparation nor the tuner sweep.
    warm_buckets:
        Token-bucket sizes (sequence lengths here) to pre-rank at
        construction.
    config:
        A :class:`~repro.serving.config.ServingConfig` consolidating the
        knobs above (padding mode, scheduling family for the default
        batcher, warming, sharding).  When its ``sharding`` block is
        enabled, the engine builds a
        :class:`~repro.serving.sharded.ShardedDispatcher` and solves
        min-cut placement for the encoder at construction.  Passing the
        deprecated ``padding=`` keyword alongside an explicit config is an
        error.
    """

    def __init__(
        self,
        encoder: TransformerEncoder,
        dispatcher: Optional[KernelDispatcher] = None,
        batcher: Optional[ShapeBucketBatcher] = None,
        padding=UNSET,
        warm: bool = True,
        warm_buckets: Sequence[int] = (),
        name: str = "encoder-serving",
        config: Optional[ServingConfig] = None,
    ) -> None:
        if not isinstance(encoder, TransformerEncoder):
            raise TypeError("encoder must be a TransformerEncoder")
        if padding is UNSET:
            padding = config.padding if config is not None else "exact"
        else:
            warn_deprecated_kwarg("padding", "padding", config)
        if padding not in ("exact", "ladder"):
            raise ValueError(f"padding must be 'exact' or 'ladder', got {padding!r}")
        self.config = config
        if config is not None:
            name = config.name or name
            warm = config.warm
            warm_buckets = config.warm_buckets or warm_buckets
            if batcher is None:
                batcher = config.build_batcher(kind="encoder")
            if dispatcher is None:
                dispatcher = config.build_dispatcher(name=name)
        self.encoder = encoder
        self.hidden_size = encoder.config.hidden_size
        self.name = name
        self.padding = padding
        self.dispatcher = (
            dispatcher if dispatcher is not None else KernelDispatcher(name=f"{name}.dispatcher")
        )
        encoder.set_dispatcher(self.dispatcher)
        # Sharded dispatchers solve placement for the encoder they serve:
        # every sparse operand is bound to its owning shard up front.
        bind_encoder = getattr(self.dispatcher, "bind_encoder", None)
        if bind_encoder is not None:
            bind_encoder(encoder)
        if batcher is not None:
            self.batcher = batcher
        elif padding == "ladder":
            self.batcher = ShapeBucketBatcher.ladder()
        else:
            self.batcher = ShapeBucketBatcher.exact_length()
        self.trace = ExecutionTrace()
        self.total_requests = 0
        self.total_batches = 0
        #: Token-level padding accounting (ladder mode; exact mode pads 0).
        self.total_valid_tokens = 0
        self.total_padded_tokens = 0
        #: Continuous-serving bookkeeping (populated by the step loop).
        self.steps_executed = 0
        self.completions: Dict[str, CompletionRecord] = {}
        #: Per-request terminal states (ok / failed / timed_out / shed).
        self.outcomes: Dict[str, RequestOutcome] = {}
        #: Engine-lifetime plan registry: qualified layer name -> SpmmPlan.
        self.plans: Dict[str, SpmmPlan] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        #: Step-loop amortization: pooled stacking buffers and memoized
        #: padding masks — both numerics-free (buffers are fully
        #: overwritten per batch; masks are pure functions of
        #: (rung, valid_lengths) and read-only downstream).
        self._stack_buffers = StackBufferPool()
        self._mask_cache: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        if warm:
            self.warm(warm_buckets)

    def _sparse_layers(self) -> List[Tuple[str, SparseLinear]]:
        """The encoder's *live* sparse projections.

        Looked up fresh on every use rather than snapshotted at
        construction: layers sparsified after the engine was built must be
        seen by the routing guard (they carry no engine dispatcher and have
        to fail loudly, not silently execute through the process default).
        """
        return list(self.encoder.named_sparse_layers())

    # ------------------------------------------------------------------
    # Warming / plan cache
    # ------------------------------------------------------------------
    def warm(self, buckets: Sequence[int] = ()) -> int:
        """Build every sparse projection's plan and pre-rank ``buckets``.

        Returns the number of operands warmed.  Warm-time plan builds are
        *not* counted as cache misses — the counters measure serving-time
        traffic, so a warmed engine serves with ``plan_misses == 0``.
        """
        warmed = self.dispatcher.warm_many(
            [lin.operand for _, lin in self._sparse_layers()], cs=buckets
        )
        self.plans.update(self.encoder.spmm_plan_registry())
        return warmed

    def _plan_for(self, qualified_name: str, layer: SparseLinear) -> SpmmPlan:
        """Registry lookup with hit/miss accounting (one per projection per batch).

        The registry does not shadow the execution path: its entries are
        the *same* objects the dispatcher's kernel path reaches through
        ``SpmmPlan.for_matrix`` (plans are memoized on the weight, and
        ``for_matrix`` on an already-planned weight returns that memo), so
        a registry hit is exactly "this batch reuses a previously built
        plan" — the cross-request reuse the counters exist to prove.  The
        identity is pinned by a test.
        """
        plan = self.plans.get(qualified_name)
        if plan is not None:
            self.plan_hits += 1
            return plan
        self.plan_misses += 1
        plan = SpmmPlan.for_matrix(layer.sparse_weight)
        self.plans[qualified_name] = plan
        return plan

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _validate(self, request: Request) -> None:
        if request.features != self.hidden_size:
            raise ValueError(
                f"{self.name}: request {request.request_id!r} has feature width "
                f"{request.features}, but the encoder's hidden size is {self.hidden_size}; "
                f"submit activations of shape (tokens, {self.hidden_size})"
            )

    def submit(self, request: Request) -> None:
        """Queue one request for the next flush/poll."""
        self._validate(request)
        self.batcher.submit(request)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _record_layer_executions(self, batch: MicroBatch) -> None:
        """Model one kernel launch per projection at the batch's true size."""
        seq = batch.key.token_bucket
        total_tokens = batch.batch_size * seq
        for qualified_name, lin in self.encoder.named_linear_layers():
            if isinstance(lin, SparseLinear):
                decision = self.dispatcher.dispatch(lin.operand, seq)
                modelled = self.dispatcher.estimate(
                    lin.operand, total_tokens, backend=decision.backend
                )
                backend = decision.backend
            else:
                modelled = lin.kernel_result(total_tokens, gpu=self.dispatcher.gpu)
                backend = "cublas-dense"
            execution = modelled.as_execution(category="gemm")
            execution.meta.update(
                {
                    "serving": self.name,
                    "layer": qualified_name,
                    "backend": backend,
                    "batch_size": batch.batch_size,
                    "tokens": seq,
                }
            )
            self.trace.record(execution)
        # Sharded serving: one comm-category kernel per collective the
        # placement implies for this batch's token volume.
        comm_kernels = getattr(self.dispatcher, "comm_kernels", None)
        if comm_kernels is not None:
            for execution in comm_kernels(total_tokens, batch.batch_size):
                execution.meta["serving"] = self.name
                self.trace.record(execution)

    def _padding_mask_for(self, batch: MicroBatch) -> np.ndarray:
        """The batch's additive attention mask, memoized per
        ``(rung, valid_lengths)``.

        Continuous traffic repeats a small set of length signatures step
        after step; the mask is a pure function of the signature and is
        only ever *read* downstream (attention adds it into fresh score
        tensors), so sharing one array across batches is numerics-free.
        """
        key = (batch.key.token_bucket, batch.valid_lengths)
        mask = self._mask_cache.get(key)
        if mask is None:
            if len(self._mask_cache) >= 512:
                self._mask_cache.clear()
            mask = padding_mask(batch.valid_lengths, batch.key.token_bucket)
            self._mask_cache[key] = mask
        return mask

    def _execute_batch(self, batch: MicroBatch) -> Dict[str, np.ndarray]:
        if batch.key.features != self.hidden_size:
            raise ValueError(
                f"{self.name}: micro-batch feature width ({batch.key.features}) does not "
                f"match the encoder hidden size ({self.hidden_size})"
            )
        padded = [r for r in batch.requests if r.tokens != batch.key.token_bucket]
        if padded and self.padding == "exact":
            # Without a mask, zero-padded key tokens would enter attention's
            # softmax denominators and silently perturb the real tokens.
            # Exact mode therefore refuses any batcher that pads.
            raise ValueError(
                f"{self.name}: requests {[r.request_id for r in padded]} would be "
                f"zero-padded from their true length to the {batch.key.token_bucket}-token "
                f"bucket, which is not numerics-neutral through attention/LayerNorm; "
                f"use an exact-length batcher (ShapeBucketBatcher.exact_length() / "
                f"AsyncWindowBatcher.exact_length()) or construct the engine with "
                f"padding='ladder' to serve padded buckets behind the attention mask"
            )
        for qualified_name, lin in self._sparse_layers():
            if lin.dispatcher is not self.dispatcher:
                # A newer engine (or a direct set_dispatcher call) re-routed
                # the encoder.  Executing anyway would populate the other
                # dispatcher's caches while this engine's trace reported its
                # own — silently wrong on both sides, so fail loudly.
                raise RuntimeError(
                    f"{self.name}: encoder layer {qualified_name!r} is no longer routed "
                    f"through this engine's dispatcher (another ModelServingEngine was "
                    f"constructed on the same encoder?); serve through the engine that "
                    f"owns the encoder, or build a fresh engine"
                )
            self._plan_for(qualified_name, lin)  # cross-request plan reuse
        hidden = batch.stacked_activations(  # (B, bucket, hidden), pooled
            out=self._stack_buffers.take(
                (batch.batch_size, batch.key.token_bucket, batch.key.features)
            )
        )
        if padded:
            # Ladder mode with real padding: run the one batched forward
            # behind the right-padding attention mask — padded keys get
            # exactly zero attention weight and the masked encoder executes
            # every sequence at its true length, so the valid rows sliced
            # out below are bit-for-bit the standalone forward.
            mask = self._padding_mask_for(batch)
            out = self.encoder.forward(hidden, attention_mask=mask)
        else:
            out = self.encoder.forward(hidden)  # (B, seq, hidden), slab-exact
        self._record_layer_executions(batch)
        self.total_batches += 1
        self.total_requests += batch.batch_size
        self.total_valid_tokens += batch.valid_tokens
        self.total_padded_tokens += batch.padded_tokens
        return batch.split_hidden(out)

    def flush(self) -> Dict[str, np.ndarray]:
        """Run everything queued through the encoder; ``{request_id: (tokens, hidden)}``."""
        results: Dict[str, np.ndarray] = {}
        self._drain_admission()
        for batch in self.batcher.drain():
            results.update(self._run_batch(batch))
        return results

    # poll() / serve_arrivals() are inherited from AsyncDriverMixin (the
    # async drivers are identical for the single-operator and model engines).

    def serve(self, requests: Iterable[Request]) -> Dict[str, np.ndarray]:
        """Submit a window's worth of requests and flush (atomic on intake)."""
        window = list(requests)
        for request in window:
            if isinstance(request, Request):
                self._validate(request)
        self.batcher.submit_many(window)
        return self.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def per_layer_times(self) -> Dict[str, float]:
        """Aggregated modelled time (us) per projection across all batches."""
        totals: Dict[str, float] = {}
        for execution in self.trace.executions:
            layer = execution.meta.get("layer")
            if layer is not None:
                totals[layer] = totals.get(layer, 0.0) + execution.time_us
        return totals

    def stats(self) -> Dict[str, object]:
        """Counters, cache traffic and the per-layer modelled breakdown."""
        return {
            "requests": self.total_requests,
            "batches": self.total_batches,
            "mean_batch_size": (self.total_requests / self.total_batches)
            if self.total_batches
            else 0.0,
            "padding": {
                "mode": self.padding,
                "valid_tokens": self.total_valid_tokens,
                "bucket_tokens": self.total_padded_tokens,
                # Fraction of bucket rows holding real tokens (1.0 = no padding).
                "fill": (self.total_valid_tokens / self.total_padded_tokens)
                if self.total_padded_tokens
                else 0.0,
            },
            "continuous": continuous_stats_of(self),
            "outcomes": self.outcome_stats(),
            "dispatch_health": self.dispatcher.health_stats(),
            "admission": admission_stats_of(self.batcher),
            "sharding": sharding_stats_of(self.dispatcher),
            "sparse_projections": len(self._sparse_layers()),
            "plan_cache": {
                "size": len(self.plans),
                "hits": self.plan_hits,
                "misses": self.plan_misses,
            },
            "dispatch_cache": self.dispatcher.cache_stats(),
            "modelled_kernel_time_us": self.trace.total_time_us,
            "per_layer_time_us": self.per_layer_times(),
        }
