"""Shape-bucketing dynamic batcher.

Inference traffic arrives as independent requests with ragged shapes (a
translation request is 17 tokens, the next one 243).  GPUs want one big
batched kernel.  The batcher bridges the two with the standard serving
trick (e.g. Triton's dynamic batcher): token counts are rounded up to a
small set of *bucket boundaries*, requests that land in the same bucket are
zero-padded to the boundary and stacked into one ``(B, K, C_bucket)`` RHS,
and the padding columns are trimmed away after execution.

This module holds the window-oriented batchers (whole-queue drains and the
async arrival-deadline :class:`AsyncWindowBatcher`); the window-free
continuous policy lives in :mod:`repro.serving.continuous` and reuses the
bucketing defined here.

Determinism is a design requirement, not an accident: within a drain, the
requests of a bucket are ordered by ``request_id`` (not arrival order), so
the same set of requests produces the same stacked operands — and therefore
bit-identical outputs — no matter how they were interleaved on arrival.
Zero-padding never perturbs a request's own numbers because every request
is *always* executed at its bucket shape, alone or batched; combined with
the dispatcher's slab-bit-exact batched execution this makes "batched ==
sequential" an exact identity, which the serving tests assert bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Token-count boundaries of the default bucket ladder (powers of two up to
#: a BERT-style maximum sequence length; larger requests get exact-shape
#: buckets of their own).
DEFAULT_TOKEN_BUCKETS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class Request:
    """One inference request: an activation matrix awaiting the sparse op.

    ``activations`` has shape ``(tokens, features)`` — the layer-facing
    layout; the batcher transposes into the kernel's ``(K, C)`` RHS form.
    ``deadline_us``, when set, is the last engine-clock instant at which
    the request may still complete; a request scheduled later than that is
    reported ``timed_out`` instead of executing.  ``priority_class`` is the
    request's tenant tier for SLO-aware scheduling — larger is more urgent
    (class 0 = best-effort); FCFS scheduling ignores it entirely.
    """

    request_id: str
    activations: np.ndarray
    arrival_us: float = 0.0
    deadline_us: Optional[float] = None
    priority_class: int = 0

    def __post_init__(self) -> None:
        arr = np.asarray(self.activations, dtype=np.float32)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError(
                f"activations must be (tokens >= 1, features), got {np.shape(self.activations)}"
            )
        if self.deadline_us is not None and self.deadline_us < self.arrival_us:
            raise ValueError(
                f"request {self.request_id!r}: deadline_us ({self.deadline_us}) precedes "
                f"arrival_us ({self.arrival_us})"
            )
        if not isinstance(self.priority_class, int) or self.priority_class < 0:
            raise ValueError(
                f"request {self.request_id!r}: priority_class must be a non-negative "
                f"int, got {self.priority_class!r}"
            )
        object.__setattr__(self, "activations", arr)

    def expired_at(self, now_us: float) -> bool:
        """True when the deadline has passed at ``now_us``.

        A request scheduled exactly at its deadline still completes on
        time, so expiry is strict: ``deadline_us < now_us``.
        """
        return self.deadline_us is not None and self.deadline_us < now_us

    @property
    def tokens(self) -> int:
        return self.activations.shape[0]

    @property
    def features(self) -> int:
        return self.activations.shape[1]


def _reject_non_finite(request: Request) -> None:
    """Refuse NaN/Inf payloads at intake, naming the offending request.

    One non-finite value would otherwise poison every batchmate's rows of
    the batched forward; rejecting at ``submit`` keeps the queue clean.
    (Values that only overflow under the kernels' fp16 rounding are still
    screened at execute time by the engines' poison isolation.)
    """
    if not np.isfinite(request.activations).all():
        raise ValueError(
            f"request {request.request_id!r} has non-finite activations (NaN/Inf); "
            f"rejected at submit to protect its batchmates"
        )


@dataclass(frozen=True)
class BucketKey:
    """Identity of a shape bucket: feature width x padded token count."""

    features: int
    token_bucket: int


@dataclass
class MicroBatch:
    """A bucket's worth of requests, ready for one batched kernel call."""

    key: BucketKey
    requests: List[Request] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def padded_tokens(self) -> int:
        """Total padded token count (``B * token_bucket``) — the batched C."""
        return self.batch_size * self.key.token_bucket

    @property
    def valid_lengths(self) -> Tuple[int, ...]:
        """Per-request true token counts, in batch order.

        The padded model-serving path turns these into the additive
        attention mask (:func:`~repro.models.functional.padding_mask`)
        that keeps padded key rows at exactly zero attention weight.
        """
        return tuple(req.tokens for req in self.requests)

    @property
    def valid_tokens(self) -> int:
        """Total true token count (``sum(valid_lengths)``)."""
        return sum(req.tokens for req in self.requests)

    def stacked_rhs(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """The batched RHS: ``(B, features, token_bucket)``.

        Each request's activations are transposed to ``(K, C)`` and padded
        with zero columns up to the bucket boundary.  Zero columns produce
        zero output columns that :meth:`split_output` trims away; they never
        touch the real columns (GEMM columns are independent).

        ``out``, when given, must be a float32 buffer of exactly that shape;
        it is *fully* overwritten (valid columns, then explicit zero
        padding), so a pooled buffer yields values identical to a fresh
        allocation.
        """
        key = self.key
        shape = (self.batch_size, key.features, key.token_bucket)
        if out is None:
            rhs = np.zeros(shape, dtype=np.float32)
            for i, req in enumerate(self.requests):
                rhs[i, :, : req.tokens] = req.activations.T
            return rhs
        if out.shape != shape or out.dtype != np.float32:
            raise ValueError(f"out must be float32 {shape}, got {out.dtype} {out.shape}")
        for i, req in enumerate(self.requests):
            t = req.tokens
            out[i, :, :t] = req.activations.T
            out[i, :, t:] = 0.0
        return out

    def stacked_activations(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """The batched layer-facing activations: ``(B, token_bucket, features)``.

        The model-serving layout (sequences stay un-transposed): each
        request's ``(tokens, features)`` activations occupy the leading rows
        of its slab, zero-padded down to the bucket boundary.  In
        exact-length mode no padding rows exist at all; in padded
        (``"ladder"``) mode the engine pairs this tensor with the
        :attr:`valid_lengths` attention mask, because bare zero rows would
        *not* be numerics-neutral through attention's softmax.

        ``out``, when given, must be a float32 buffer of exactly that shape;
        it is fully overwritten (valid rows, then explicit zero padding), so
        a pooled buffer yields values identical to a fresh allocation.
        """
        key = self.key
        shape = (self.batch_size, key.token_bucket, key.features)
        if out is None:
            out = np.zeros(shape, dtype=np.float32)
            for i, req in enumerate(self.requests):
                out[i, : req.tokens] = req.activations
            return out
        if out.shape != shape or out.dtype != np.float32:
            raise ValueError(f"out must be float32 {shape}, got {out.dtype} {out.shape}")
        for i, req in enumerate(self.requests):
            t = req.tokens
            out[i, :t] = req.activations
            out[i, t:] = 0.0
        return out

    def split_hidden(self, out: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a batched ``(B, token_bucket, features_out)`` result per request.

        The model-serving inverse of :meth:`stacked_activations`: trims the
        padding rows and returns ``{request_id: (tokens, features_out)}``.
        """
        out = np.asarray(out)
        if out.ndim != 3 or out.shape[:2] != (self.batch_size, self.key.token_bucket):
            raise ValueError(
                f"expected a ({self.batch_size}, {self.key.token_bucket}, F) batched output, "
                f"got {out.shape}"
            )
        return {
            req.request_id: out[i, : req.tokens].copy()
            for i, req in enumerate(self.requests)
        }

    def split_output(self, out: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a batched ``(B, R, token_bucket)`` result back per request.

        Returns ``{request_id: (tokens, R)}`` with the padding trimmed and
        the layer-facing orientation restored.
        """
        out = np.asarray(out)
        if out.ndim != 3 or out.shape[0] != self.batch_size:
            raise ValueError(
                f"expected a ({self.batch_size}, R, {self.key.token_bucket}) batched output, "
                f"got {out.shape}"
            )
        return {
            req.request_id: out[i, :, : req.tokens].T.copy()
            for i, req in enumerate(self.requests)
        }


class ShapeBucketBatcher:
    """Queue requests, drain them as deterministic shape-bucketed batches."""

    def __init__(
        self,
        token_buckets: Tuple[int, ...] = DEFAULT_TOKEN_BUCKETS,
        max_batch_size: int = 64,
    ) -> None:
        buckets = tuple(int(b) for b in token_buckets)
        if not buckets or any(b <= 0 for b in buckets):
            raise ValueError("token_buckets must be positive")
        if any(a >= b for a, b in zip(buckets, buckets[1:])):
            raise ValueError("token_buckets must be strictly increasing")
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self.token_buckets = buckets
        self.max_batch_size = max_batch_size
        self._pending: List[Request] = []
        self._seen_ids: set = set()

    @classmethod
    def exact_length(cls, max_batch_size: int = 64, **kwargs) -> "ShapeBucketBatcher":
        """A batcher that only stacks requests of *identical* token counts.

        With the ladder collapsed to ``(1,)`` every token count above 1 is
        its own exact singleton bucket, so no request is ever padded.  This
        is the conservative policy for model-level serving: an encoder's
        attention mixes information *across* the tokens of a sequence, so
        zero-padding is only safe behind an explicit attention mask (the
        engine's ``padding="ladder"`` mode); without one, exact-length
        buckets are the only bit-exact choice.  Works for subclasses too
        (``AsyncWindowBatcher.exact_length(window_us=...)``).
        """
        return cls(token_buckets=(1,), max_batch_size=max_batch_size, **kwargs)

    @classmethod
    def ladder(
        cls, min_rung: int = 8, max_rung: int = 4096, max_batch_size: int = 64, **kwargs
    ) -> "ShapeBucketBatcher":
        """A powers-of-two bucket ladder from ``min_rung`` up to ``max_rung``.

        The padded-bucket policy: token counts round *up* to the next rung
        (doubling steps bound padding waste at <2x while keeping the rung
        count logarithmic), requests above the top rung get exact singleton
        buckets as usual.  This is what ``padding="ladder"`` model serving
        batches with — ragged lengths that exact-length bucketing would
        scatter into near-empty buckets share a rung instead, and the
        attention mask keeps the padded rows at exactly zero weight.
        """
        if min_rung <= 0 or max_rung < min_rung:
            raise ValueError(f"need 0 < min_rung <= max_rung, got {min_rung}..{max_rung}")
        rungs = []
        rung = int(min_rung)
        while rung <= max_rung:
            rungs.append(rung)
            rung *= 2
        return cls(token_buckets=tuple(rungs), max_batch_size=max_batch_size, **kwargs)

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    def token_bucket(self, tokens: int) -> int:
        """The padded token count for a request of ``tokens`` tokens.

        The smallest bucket boundary >= ``tokens``; requests longer than
        the last boundary are served at their exact length (an unpadded
        singleton bucket per length).
        """
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        for boundary in self.token_buckets:
            if tokens <= boundary:
                return boundary
        return tokens

    def bucket_key(self, request: Request) -> BucketKey:
        """The bucket a request lands in."""
        return BucketKey(features=request.features, token_bucket=self.token_bucket(request.tokens))

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Optional[BucketKey]:
        """Enqueue one request; returns the bucket it will batch into.

        Validation (type, duplicate id, finiteness — the expensive scan)
        happens exactly once, here; admission itself goes through
        :meth:`_admit` so subclasses can add queue policy (bounded queues,
        shedding) without re-scanning the payload.
        """
        if not isinstance(request, Request):
            raise TypeError("submit expects a Request")
        if request.request_id in self._seen_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r} in this window")
        _reject_non_finite(request)
        return self._admit(request)

    def submit_many(self, requests) -> None:
        """Enqueue several requests atomically.

        Validates the whole batch (types, finiteness, duplicate ids — among
        themselves and against the queue) before enqueueing anything, so a
        rejected request never leaves earlier ones stranded in the queue.
        Each payload is scanned for non-finite values exactly once.
        """
        batch = list(requests)
        for request in batch:
            if not isinstance(request, Request):
                raise TypeError("submit_many expects Request instances")
            _reject_non_finite(request)
        ids = [r.request_id for r in batch]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate request_ids within the submitted batch")
        clashes = self._seen_ids.intersection(ids)
        if clashes:
            raise ValueError(f"duplicate request_ids in this window: {sorted(clashes)}")
        for request in batch:
            self._admit(request)

    def _admit(self, request: Request) -> Optional[BucketKey]:
        """Admit an already-validated request into the queue.

        The single admission choke point: ``submit`` and ``submit_many``
        validate, then hand over here.  Subclasses override this (not the
        submit methods) to layer queue policy on top — the continuous
        batcher's bounded-queue shedding returns ``None`` for a request it
        refuses.
        """
        self._seen_ids.add(request.request_id)
        self._pending.append(request)
        return self.bucket_key(request)

    @property
    def pending(self) -> int:
        """Number of queued requests."""
        return len(self._pending)

    def expire_due(self, now_us: float) -> List[Request]:
        """Remove and return queued requests whose deadline passed at ``now_us``.

        Deterministic (returned in ``request_id`` order); the evicted ids
        become reusable.  Deadline-less requests never expire.  Drivers
        call this before scheduling so an expired request neither occupies
        a batch slot nor holds its rung open.
        """
        expired = [r for r in self._pending if r.expired_at(now_us)]
        if expired:
            gone = {r.request_id for r in expired}
            self._pending = [r for r in self._pending if r.request_id not in gone]
            self._seen_ids -= gone
        return sorted(expired, key=lambda r: r.request_id)

    def plan_batches(self, items, key_of, id_of) -> List[Tuple[BucketKey, List]]:
        """The batching policy, shared by :meth:`drain` and the simulator.

        Groups ``items`` by ``key_of(item)``, orders each group by
        ``id_of(item)``, chunks at ``max_batch_size`` and emits the chunks
        in bucket-key order.  Deterministic: the same item set always plans
        identically, regardless of arrival order.
        """
        by_bucket: Dict[BucketKey, List] = {}
        for item in items:
            by_bucket.setdefault(key_of(item), []).append(item)
        batches: List[Tuple[BucketKey, List]] = []
        for key in sorted(by_bucket, key=lambda k: (k.features, k.token_bucket)):
            members = sorted(by_bucket[key], key=id_of)
            for lo in range(0, len(members), self.max_batch_size):
                batches.append((key, members[lo : lo + self.max_batch_size]))
        return batches

    def drain(self) -> List[MicroBatch]:
        """Group everything queued into micro-batches and clear the queue.

        Deterministic (see :meth:`plan_batches`): the same request set
        always drains identically, regardless of arrival order.
        """
        pending = self._pending
        self._pending = []
        self._seen_ids = set()
        return [
            MicroBatch(key=key, requests=members)
            for key, members in self.plan_batches(
                pending, self.bucket_key, lambda r: r.request_id
            )
        ]


class AsyncWindowBatcher(ShapeBucketBatcher):
    """Shape-bucketing batcher with arrival-deadline window closing.

    The fixed-window policy closes every bucket at multiples of the window
    length regardless of when its requests actually arrived.  This batcher
    closes each *bucket* asynchronously instead: a bucket's window opens
    when its oldest pending request arrives (``Request.arrival_us``) and the
    whole bucket closes once that request has waited ``window_us`` of
    simulated wall-clock time — deadlines track arrivals, not batch counts
    or a global grid, so a lone straggler is never held hostage to traffic
    in other buckets.

    The serving engines drive it with ``poll(now_us)``; numerics are
    untouched — a closed bucket drains through the exact same deterministic
    :meth:`ShapeBucketBatcher.plan_batches` policy, so per-request outputs
    stay invariant to arrival order *and* to the window size (the async
    property test pins this bit for bit).
    """

    def __init__(
        self,
        token_buckets: Tuple[int, ...] = DEFAULT_TOKEN_BUCKETS,
        max_batch_size: int = 64,
        window_us: float = 1000.0,
    ) -> None:
        super().__init__(token_buckets=token_buckets, max_batch_size=max_batch_size)
        if window_us < 0:
            raise ValueError("window_us must be non-negative")
        self.window_us = float(window_us)

    def due_keys(self, now_us: float) -> List[BucketKey]:
        """Buckets whose oldest request's deadline has passed at ``now_us``."""
        oldest: Dict[BucketKey, float] = {}
        for req in self._pending:
            key = self.bucket_key(req)
            oldest[key] = min(oldest.get(key, float("inf")), req.arrival_us)
        return sorted(
            (k for k, arrival in oldest.items() if arrival + self.window_us <= now_us),
            key=lambda k: (k.features, k.token_bucket),
        )

    def drain_due(self, now_us: float) -> List[MicroBatch]:
        """Drain only the buckets that are due at ``now_us``.

        Requests in buckets whose deadline has not yet passed stay queued
        (and keep their window-unique ids); a full :meth:`drain` at shutdown
        flushes whatever remains.
        """
        due = set(self.due_keys(now_us))
        if not due:
            return []
        taken = [r for r in self._pending if self.bucket_key(r) in due]
        self._pending = [r for r in self._pending if self.bucket_key(r) not in due]
        for req in taken:
            self._seen_ids.discard(req.request_id)
        return [
            MicroBatch(key=key, requests=members)
            for key, members in self.plan_batches(
                taken, self.bucket_key, lambda r: r.request_id
            )
        ]

    def next_deadline_us(self) -> Optional[float]:
        """The earliest pending close time (``None`` when the queue is empty).

        Drivers (the engines' run loops, the simulator) advance their clock
        to this instant to close windows exactly on schedule.
        """
        if not self._pending:
            return None
        return min(r.arrival_us for r in self._pending) + self.window_us
