"""Decoder serving: multi-step continuous batching over a paged KV cache.

The other engines serve *one-shot* requests — a request occupies its batch
slot for exactly one step.  Autoregressive decoding is different: a request
generates ``new_tokens`` positions one step at a time, each step attending
to every earlier position of its own sequence.  ``DecoderServingEngine``
serves that shape of traffic on top of the continuous-batching scheduler:

* **admission** pops queued prompts off the
  :class:`~repro.serving.continuous.ContinuousBatcher` exactly as the
  single-step engines do, but a popped request becomes a *resident*: it
  holds its ladder-rung slot (:meth:`ContinuousBatcher.acquire_slot`)
  across steps, so :meth:`ContinuousBatcher.next_batch` never over-admits
  a rung whose slots are occupied by in-flight decodes;
* **prefill** runs the prompt through
  :meth:`~repro.models.transformer.TransformerEncoder.forward_step`
  position by position into the engine's shared
  :class:`~repro.models.kv_cache.PagedKVCache` — fixed-size blocks,
  explicit alloc/free, reference counting (``cache_stats()`` reports the
  block-table accounting);
* **prefix sharing**: the first request of a prompt registers its prompt
  blocks (and the prompt's final-position output) under the prompt's
  content fingerprint; later requests submitted with the *same* prompt
  attach to those blocks and skip prefill entirely (``prefix_hits``),
  copy-on-write isolating the shared partial block on first append
  (``cow_copies``);
* **decode**: every engine step advances every resident by one token —
  the newest output feeds back as the next input (this substrate has no
  vocabulary, so "the generated token" is the hidden-state row itself);
  a resident that reaches ``new_tokens`` leaves its step with a
  :class:`~repro.serving.continuous.CompletionRecord`, frees its KV
  blocks, returns its rung slot and releases its KV-budget reservation.

Bit-exactness is inherited, not re-proven: the causal forward path is
*defined* as per-position true-shape execution over a scratch KV store
(see :mod:`repro.models.attention`), and ``forward_step`` against the
paged cache runs the very same operations at the very same shapes — the
cache only skips recomputing values recomputation would reproduce
identically.  So cached decoding is bit-for-bit the per-step full
recompute (:func:`decode_reference`), at every step, under any arrival
interleaving, step cadence and bucket policy — the golden matrix in
``tests/serving/test_decoder.py`` pins the whole grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from .batcher import BucketKey, Request
from .config import UNSET, ServingConfig, warn_deprecated_kwarg
from .continuous import CompletionRecord, ContinuousBatcher
from .engine import (
    OutcomeTrackingMixin,
    admission_stats_of,
    continuous_stats_of,
    sharding_stats_of,
)
from .faults import OUTCOME_FAILED, OUTCOME_OK, RequestOutcome
from ..kernels.dispatch import BackendExecutionError, KernelDispatcher
from ..models.functional import causal_mask
from ..models.kv_cache import PagedKVCache, prompt_fingerprint
from ..models.transformer import TransformerEncoder

__all__ = ["DecodeRequest", "DecoderServingEngine", "decode_reference"]


@dataclass(frozen=True)
class DecodeRequest:
    """One decode job: a prompt and how many positions to generate.

    ``prompt`` is the ``(prompt_tokens, hidden)`` activation sequence that
    seeds the decode (prompt_tokens >= 1); ``new_tokens`` is how many
    further positions to generate autoregressively.  The result delivered
    for the request has shape ``(new_tokens, hidden)``.
    """

    request_id: str
    prompt: np.ndarray
    new_tokens: int
    arrival_us: float = 0.0
    deadline_us: Optional[float] = None
    priority_class: int = 0

    def __post_init__(self) -> None:
        prompt = np.asarray(self.prompt, dtype=np.float32)
        if prompt.ndim != 2 or prompt.shape[0] == 0:
            raise ValueError(
                f"prompt must be (tokens >= 1, hidden), got {np.shape(self.prompt)}"
            )
        if self.new_tokens < 1:
            raise ValueError(f"new_tokens must be >= 1, got {self.new_tokens}")
        object.__setattr__(self, "prompt", prompt)

    def as_request(self) -> Request:
        """The scheduler-facing request (the prompt is what gets bucketed)."""
        return Request(
            request_id=self.request_id,
            activations=self.prompt,
            arrival_us=self.arrival_us,
            deadline_us=self.deadline_us,
            priority_class=self.priority_class,
        )


def decode_reference(
    encoder: TransformerEncoder, prompt: np.ndarray, new_tokens: int
) -> np.ndarray:
    """Cache-free decoding: full causal recompute of the sequence every step.

    The reference sibling of :class:`DecoderServingEngine`'s cached path
    (and the slow side of the decoder bench): step ``i`` re-runs the whole
    sequence so far — prompt plus every generated row — through
    ``encoder.forward`` under :func:`~repro.models.functional.causal_mask`
    and takes the final position's output as the next generated row.
    Returns the ``(new_tokens, hidden)`` stack of generated rows,
    bit-for-bit what the KV-cached engine delivers.
    """
    prompt = np.asarray(prompt, dtype=np.float32)
    if prompt.ndim != 2 or prompt.shape[0] == 0:
        raise ValueError(f"prompt must be (tokens >= 1, hidden), got {prompt.shape}")
    if new_tokens < 1:
        raise ValueError(f"new_tokens must be >= 1, got {new_tokens}")
    xs = prompt
    out = encoder.forward(xs[None], attention_mask=causal_mask(xs.shape[0]))[0]
    feed = out[-1]
    generated: List[np.ndarray] = []
    for _ in range(new_tokens):
        xs = np.concatenate([xs, feed[None]], axis=0)
        out = encoder.forward(xs[None], attention_mask=causal_mask(xs.shape[0]))[0]
        feed = out[-1]
        generated.append(feed)
    return np.stack(generated)


@dataclass
class _Resident:
    """One in-flight decode: rung slot held, KV sequence live."""

    request: Request
    key: BucketKey
    new_tokens: int
    #: The next step's input row, ``(1, hidden)`` — the prompt's final
    #: output after prefill, then each step's own output.
    feed: np.ndarray
    #: The sequence's paged-cache handle (``extend``/``view``).
    handle: object
    generated: List[np.ndarray] = field(default_factory=list)


class DecoderServingEngine(OutcomeTrackingMixin):
    """Continuous-batching decode server over one shared paged KV cache.

    Drive it like the other continuous engines — ``submit`` between steps,
    ``step(now_us)`` in a loop, or :meth:`serve_continuous` /
    :meth:`serve` to replay a whole request set — but submissions are
    :class:`DecodeRequest`\\ s and a request spans many steps:

    * a ``step`` first admits newly schedulable prompts (at most one
      micro-batch, exactly the single-step policy), prefilling each into
      the paged cache (or attaching to a registered prefix — see below)
      and pinning its rung slot;
    * then every *previously admitted* resident advances by one token;
      residents that reach their ``new_tokens`` complete, free their KV
      blocks and return their slot and KV-budget reservation.  The step
      returns the completed requests' ``(new_tokens, hidden)`` outputs.

    Prefix sharing: requests submitted with a byte-identical prompt share
    the prompt's cache blocks.  The first registers them (plus the
    prompt's final-position output) under the prompt's fingerprint; later
    ones attach and skip prefill entirely, and copy-on-write keeps their
    divergent decode tails isolated.  Because cached decode equals full
    recompute bit for bit, sharers' outputs are unchanged by the sharing —
    only ``cache_stats()['prefix_hits']`` tells them apart.

    A backend failure mid-prefill or mid-decode fails only that request
    (``outcomes`` records it; its blocks, slot and budget return
    immediately); batchmates advance undisturbed, bits intact, because
    residents never share mutable state — shared prefix blocks are
    copy-on-write.

    Parameters
    ----------
    encoder:
        The model decoded with.  Its sparse projections are re-routed
        through this engine's dispatcher.
    batcher:
        A :class:`~repro.serving.continuous.ContinuousBatcher` (default: a
        fresh ladder).  When ``kv_budget_blocks`` is set and no batcher is
        given, the default batcher is built with that budget and a cost
        function of ``ceil((prompt + new_tokens) / block_size)`` blocks.
    block_size / capacity_blocks:
        The shared :class:`~repro.models.kv_cache.PagedKVCache` geometry.
        Deprecated as direct keywords — set them on the
        :class:`~repro.serving.config.ServingConfig` instead.
    kv_budget_blocks:
        Optional admission-level KV budget (see
        :class:`~repro.serving.continuous.ContinuousBatcher`).  Deprecated
        as a direct keyword — set it on the config instead.
    config:
        A :class:`~repro.serving.config.ServingConfig` consolidating the
        KV geometry, admission control, warming and sharding knobs.
    """

    def __init__(
        self,
        encoder: TransformerEncoder,
        batcher: Optional[ContinuousBatcher] = None,
        dispatcher: Optional[KernelDispatcher] = None,
        block_size=UNSET,
        capacity_blocks=UNSET,
        kv_budget_blocks=UNSET,
        warm: bool = True,
        name: str = "decoder-serving",
        config: Optional[ServingConfig] = None,
    ) -> None:
        if not isinstance(encoder, TransformerEncoder):
            raise TypeError("encoder must be a TransformerEncoder")
        if block_size is UNSET:
            block_size = config.block_size if config is not None else 16
        else:
            warn_deprecated_kwarg("block_size", "block_size", config)
        if capacity_blocks is UNSET:
            capacity_blocks = config.capacity_blocks if config is not None else 512
        else:
            warn_deprecated_kwarg("capacity_blocks", "capacity_blocks", config)
        if kv_budget_blocks is UNSET:
            kv_budget_blocks = config.kv_budget_blocks if config is not None else None
        else:
            warn_deprecated_kwarg("kv_budget_blocks", "kv_budget_blocks", config)
        self.config = config
        if config is not None:
            name = config.name or name
            warm = config.warm
            if dispatcher is None:
                dispatcher = config.build_dispatcher(name=name)
        self.encoder = encoder
        self.hidden_size = encoder.config.hidden_size
        self.name = name
        self.dispatcher = (
            dispatcher if dispatcher is not None else KernelDispatcher(name=f"{name}.dispatcher")
        )
        encoder.set_dispatcher(self.dispatcher)
        # Sharded dispatchers solve placement for the encoder they serve.
        bind_encoder = getattr(self.dispatcher, "bind_encoder", None)
        if bind_encoder is not None:
            bind_encoder(encoder)
        self.kv = PagedKVCache(
            num_layers=len(encoder.layers),
            num_heads=encoder.config.num_heads,
            head_dim=encoder.config.head_dim,
            block_size=block_size,
            capacity_blocks=capacity_blocks,
        )
        if batcher is not None:
            self.batcher = batcher
        elif config is not None:
            self.batcher = config.build_batcher(kind="decoder", kv_cost=self._default_kv_cost)
        else:
            self.batcher = ContinuousBatcher.ladder(
                kv_budget_blocks=kv_budget_blocks, kv_cost=self._default_kv_cost
            )
        #: new_tokens per submitted request (alive until the request retires).
        self._new_tokens: Dict[str, int] = {}
        #: in-flight decodes, in admission order (the advance order).
        self._residents: Dict[str, _Resident] = {}
        #: preempted decodes parked with their KV blocks and generated state
        #: intact, keyed by request id; they resume bit-exactly when their
        #: re-queued request is scheduled again.
        self._preempted: Dict[str, _Resident] = {}
        self.total_requests = 0
        self.total_decode_steps = 0
        self.prefills = 0
        self.prefills_skipped = 0
        self.preemptions = 0
        self.resumes = 0
        #: Continuous-serving bookkeeping (same schema as the other engines).
        self.steps_executed = 0
        self.completions: Dict[str, CompletionRecord] = {}
        #: Per-request terminal states (ok / failed / timed_out / shed).
        self.outcomes: Dict[str, RequestOutcome] = {}
        if warm:
            self.dispatcher.warm_many(
                [lin.operand for _, lin in encoder.named_sparse_layers()], cs=(1,)
            )

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def _default_kv_cost(self, request: Request) -> int:
        """Projected block footprint: the whole sequence, prompt + decode."""
        total = request.tokens + self._new_tokens.get(request.request_id, 1)
        return -(-total // self.kv.block_size)

    def submit(self, request: DecodeRequest) -> Optional[BucketKey]:
        """Queue one decode job; returns its rung (``None`` when shed)."""
        if not isinstance(request, DecodeRequest):
            raise TypeError("submit expects a DecodeRequest")
        if request.prompt.shape[1] != self.hidden_size:
            raise ValueError(
                f"{self.name}: request {request.request_id!r} has feature width "
                f"{request.prompt.shape[1]}, but the encoder's hidden size is "
                f"{self.hidden_size}; submit prompts of shape (tokens, {self.hidden_size})"
            )
        inner = request.as_request()
        # The cost function reads new_tokens at admission time, so the
        # mapping must exist before the batcher sees the request.
        self._new_tokens[inner.request_id] = request.new_tokens
        try:
            key = self.batcher.submit(inner)
        except Exception:
            del self._new_tokens[inner.request_id]
            raise
        if key is None:  # shed at admission; outcome lands via take_shed()
            del self._new_tokens[inner.request_id]
        return key

    # ------------------------------------------------------------------
    # The multi-step loop
    # ------------------------------------------------------------------
    def step(self, now_us: float) -> Dict[str, np.ndarray]:
        """Admit at most one micro-batch, then advance every resident.

        Newly admitted requests prefill this step and start decoding on
        the *next* one (prefill writes their prompt positions; decode
        appends generated positions).  Returns the requests completed at
        this step: ``{request_id: (new_tokens, hidden)}``.
        """
        next_batch = getattr(self.batcher, "next_batch", None)
        if next_batch is None:
            raise TypeError(
                "DecoderServingEngine needs a step-schedulable batcher "
                "(ContinuousBatcher.ladder() / ContinuousBatcher.exact_length())"
            )
        self._drain_admission()
        self._expire_pending(now_us)
        self._preempt_for(now_us)
        step_index = self.steps_executed
        batch = next_batch(now_us)
        newly: List[_Resident] = []
        if batch is not None:
            for req in batch.requests:
                resident = self._admit_resident(req, batch.key, now_us)
                if resident is not None:
                    newly.append(resident)
        results = self._advance_residents(now_us, step_index)
        for resident in newly:
            self._residents[resident.request.request_id] = resident
        if batch is not None and step_index == self.steps_executed:
            # _advance_residents counts itself; an admission-only step
            # (prefill, nothing yet decoding) is still executed work.
            self.steps_executed += 1
        return results

    def _preempt_for(self, now_us: float) -> None:
        """Evict lower-class residents blocking the policy's chosen rung.

        Only acts when the batcher's :class:`SchedulingConfig` enables
        preemption: while the most urgent schedulable chunk sits on a fully
        held rung with a strictly lower-class holder, that holder releases
        its slot, parks in ``_preempted`` *keeping its KV blocks, feed and
        generated rows*, and its request re-queues at its original
        ``(arrival_us, request_id)`` rank — so the preempted decode resumes
        bit-exactly once a slot frees up again.  Occupancy strictly drops
        every iteration, so the loop terminates.
        """
        preemption_target = getattr(self.batcher, "preemption_target", None)
        if preemption_target is None:
            return
        while True:
            target = preemption_target(now_us)
            if target is None:
                return
            key, head = target
            victim_rid = self.batcher.preemption_victim(key, head.priority_class)
            if victim_rid is None or victim_rid not in self._residents:
                return
            resident = self._residents.pop(victim_rid)
            self.batcher.release_slot(key, victim_rid)
            self._preempted[victim_rid] = resident
            self.batcher.requeue(resident.request)
            self.preemptions += 1

    def _expire_pending(self, now_us: float) -> None:
        """Queue expiry, plus teardown of preempted-then-expired decodes.

        A preempted decode waits in the queue like any request, so its
        deadline can pass before a slot frees up; when the batcher evicts
        it, its parked KV blocks must be freed too (the eviction already
        returned its budget reservation).
        """
        super()._expire_pending(now_us)
        for rid in [r for r in self._preempted if not self.batcher.is_queued(r)]:
            del self._preempted[rid]
            self.kv.free(rid)
            self._new_tokens.pop(rid, None)

    def _admit_resident(
        self, req: Request, key: BucketKey, now_us: float
    ) -> Optional[_Resident]:
        """Prefill (or prefix-attach) one popped request; pin its rung slot."""
        rid = req.request_id
        parked = self._preempted.pop(rid, None)
        if parked is not None:
            # Resuming a preempted decode: KV blocks, feed and generated
            # rows were retained, so no prefill — just re-pin the slot.
            self.batcher.acquire_slot(key, req)
            self.resumes += 1
            return parked
        new_tokens = self._new_tokens.get(rid)
        if new_tokens is None:
            raise ValueError(
                f"{self.name}: request {rid!r} was queued without a decode length; "
                f"submit DecodeRequests through DecoderServingEngine.submit()"
            )
        handle = self.kv.create(rid)
        fingerprint = prompt_fingerprint(req.activations)
        try:
            entry = self.kv.attach_prefix(fingerprint, rid)
            if entry is not None:
                # Shared prompt: blocks attached, prefill skipped outright;
                # decoding seeds from the registered final-position output.
                feed = np.array(entry.last_output, dtype=np.float32, copy=True)
                self.prefills_skipped += 1
            else:
                for t in range(req.tokens):
                    feed = self.encoder.forward_step(req.activations[t][None], handle)
                self.kv.register_prefix(fingerprint, rid, feed)
                self.prefills += 1
        except BackendExecutionError as exc:
            self.kv.free(rid)
            self.batcher.release_kv(rid)
            self._new_tokens.pop(rid, None)
            self._record_outcome(rid, OUTCOME_FAILED, str(exc), now_us)
            return None
        self.batcher.acquire_slot(key, req)
        self.total_requests += 1
        return _Resident(
            request=req, key=key, new_tokens=new_tokens, feed=feed, handle=handle
        )

    def _advance_residents(self, now_us: float, step_index: int) -> Dict[str, np.ndarray]:
        """One decode token for every resident; returns the completions."""
        if not self._residents:
            return {}
        advancing = list(self._residents.values())
        batch_size = len(advancing)
        results: Dict[str, np.ndarray] = {}
        for resident in advancing:
            rid = resident.request.request_id
            try:
                out = self.encoder.forward_step(resident.feed, resident.handle)
            except BackendExecutionError as exc:
                self._retire(resident, OUTCOME_FAILED, str(exc), now_us)
                continue
            resident.feed = out
            resident.generated.append(out[0].copy())
            self.total_decode_steps += 1
            if len(resident.generated) == resident.new_tokens:
                results[rid] = np.stack(resident.generated)
                self._retire(resident, OUTCOME_OK, "", now_us)
                self.completions[rid] = CompletionRecord(
                    request_id=rid,
                    step=step_index,
                    completed_us=float(now_us),
                    rung=resident.key.token_bucket,
                    batch_size=batch_size,
                    arrival_us=resident.request.arrival_us,
                )
        self.steps_executed += 1
        return results

    def _retire(
        self, resident: _Resident, status: str, detail: str, now_us: float
    ) -> None:
        """Tear one resident down: blocks, rung slot, budget, outcome."""
        rid = resident.request.request_id
        del self._residents[rid]
        self.kv.free(rid)
        self.batcher.release_slot(resident.key, rid)
        self.batcher.release_kv(rid)
        self._new_tokens.pop(rid, None)
        self._record_outcome(rid, status, detail, now_us)

    # ------------------------------------------------------------------
    # Replay drivers
    # ------------------------------------------------------------------
    def serve_continuous(
        self, requests: Iterable[DecodeRequest], step_us: Optional[float] = None
    ) -> Dict[str, np.ndarray]:
        """Replay decode jobs against their arrival clock through the step loop.

        Same clock discipline as the single-step engines' driver — each
        iteration admits every request arrived by ``now``, runs one
        :meth:`step`, advances the clock by ``step_us`` after a step that
        did work and jumps to the next arrival otherwise — but the loop
        also runs while *residents* are still decoding, since a decode
        outlives the step that admitted it.  ``step_us=None`` takes the
        cadence from the engine's config (0 when unconfigured).
        """
        if step_us is None:
            step_us = self.config.step_us if self.config is not None else 0.0
        if step_us < 0:
            raise ValueError("step_us must be non-negative")
        queue = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        results: Dict[str, np.ndarray] = {}
        now = queue[0].arrival_us if queue else 0.0
        admitted = 0
        while admitted < len(queue) or self.batcher.pending or self._residents:
            while admitted < len(queue) and queue[admitted].arrival_us <= now:
                self.submit(queue[admitted])
                admitted += 1
            before = self.steps_executed
            results.update(self.step(now))
            if self.steps_executed != before:
                now += step_us
            else:
                upcoming = [
                    t
                    for t in (
                        queue[admitted].arrival_us if admitted < len(queue) else None,
                        self.batcher.next_event_us(),
                    )
                    if t is not None
                ]
                if not upcoming:
                    break
                now = max(now, min(upcoming))
        return results

    def serve(self, requests: Iterable[DecodeRequest]) -> Dict[str, np.ndarray]:
        """Convenience: replay a whole window back to back (``step_us=0``)."""
        return self.serve_continuous(requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """The shared paged cache's block-table accounting."""
        return self.kv.cache_stats()

    def stats(self) -> Dict[str, object]:
        """Counters, normalized admission/continuous schemas, cache accounting."""
        return {
            "requests": self.total_requests,
            "decode_steps": self.total_decode_steps,
            "prefills": self.prefills,
            "prefills_skipped": self.prefills_skipped,
            "residents": len(self._residents),
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "preempted_parked": len(self._preempted),
            "continuous": continuous_stats_of(self),
            "outcomes": self.outcome_stats(),
            "dispatch_health": self.dispatcher.health_stats(),
            "admission": admission_stats_of(self.batcher),
            "sharding": sharding_stats_of(self.dispatcher),
            "cache": self.cache_stats(),
        }
