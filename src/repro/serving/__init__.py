"""Dynamic-batching serving layer on top of the kernel dispatcher.

This package turns the per-call SpMM machinery into a request-serving
subsystem (the ROADMAP's "heavy traffic" direction):

* :mod:`~repro.serving.batcher` — shape-bucketing dynamic batcher: requests
  whose activation shapes fall into the same bucket are padded to the
  bucket boundary and stacked into one batched 3-D RHS.
* :mod:`~repro.serving.engine` — the execution front-end: drains the
  batcher, runs each micro-batch through the warmed
  :class:`~repro.kernels.dispatch.KernelDispatcher`, splits the batched
  output back per request, and records modelled kernel executions into an
  :class:`~repro.hardware.trace.ExecutionTrace`.
* :mod:`~repro.serving.simulate` — throughput/latency simulator for
  batch-window sweeps (requests/s vs window) on the modelled GPU.

The core guarantee, property-tested end to end: batched execution of N
compatible requests is bit-identical to N sequential single-request calls
(the engine canonicalises every request to its bucket shape, and the
dispatcher's batched path is slab-bit-exact).
"""

from .batcher import DEFAULT_TOKEN_BUCKETS, BucketKey, MicroBatch, Request, ShapeBucketBatcher
from .engine import ServingEngine
from .simulate import ServingSimReport, SimulatedRequest, simulate_serving, sweep_batch_windows, uniform_arrivals

__all__ = [
    "DEFAULT_TOKEN_BUCKETS",
    "BucketKey",
    "MicroBatch",
    "Request",
    "ShapeBucketBatcher",
    "ServingEngine",
    "ServingSimReport",
    "SimulatedRequest",
    "simulate_serving",
    "sweep_batch_windows",
    "uniform_arrivals",
]
