"""Dynamic-batching serving layer on top of the kernel dispatcher.

This package turns the per-call SpMM machinery into a request-serving
subsystem (the ROADMAP's "heavy traffic" direction):

* :mod:`~repro.serving.batcher` — shape-bucketing dynamic batcher: requests
  whose activation shapes fall into the same bucket are padded to the
  bucket boundary and stacked into one batched 3-D RHS.
* :mod:`~repro.serving.engine` — the execution front-end: drains the
  batcher, runs each micro-batch through the warmed
  :class:`~repro.kernels.dispatch.KernelDispatcher`, splits the batched
  output back per request, and records modelled kernel executions into an
  :class:`~repro.hardware.trace.ExecutionTrace`.
* :mod:`~repro.serving.model_engine` — model-level serving:
  :class:`ModelServingEngine` routes whole
  :class:`~repro.models.transformer.TransformerEncoder` forward passes
  through the dispatcher per micro-batch, with an engine-scoped plan
  registry (cross-request reuse, hit/miss counters) and a per-layer
  modelled trace.
* :mod:`~repro.serving.continuous` — continuous batching:
  :class:`ContinuousBatcher` schedules one micro-batch per engine step
  instead of per window, so requests join compatible open ladder rungs
  between steps (mid-flight admission) and completed sequences leave
  without blocking the rung; per-request
  :class:`~repro.serving.continuous.CompletionRecord` metadata is
  deterministic.
* :mod:`~repro.serving.decoder` — multi-step decode serving:
  :class:`DecoderServingEngine` keeps each request resident on its ladder
  rung for many steps, appending one token per step into a shared
  :class:`~repro.models.kv_cache.PagedKVCache` (block tables, prefix
  sharing, copy-on-write); cached decoding is bit-for-bit the per-step
  full causal recompute (:func:`decode_reference`).
* :mod:`~repro.serving.sharded` — multi-device serving:
  :class:`ShardedDispatcher` splits an encoder across N simulated devices
  by balanced min-cut placement (one kernel dispatcher per shard), routing
  each projection's SpMM to its owner and pricing the implied all-reduce /
  send-recv traffic with the interconnect ring model.
* :mod:`~repro.serving.config` — :class:`ServingConfig`, the one typed
  home for engine knobs (scheduling, padding, admission control, KV
  geometry, warming, sharding), plus the :func:`create_engine` factory.
* :mod:`~repro.serving.simulate` — throughput/latency simulator for
  batch-window sweeps (requests/s vs window) on the modelled GPU, with
  fixed-grid, async arrival-deadline, or window-free continuous
  scheduling.

The core guarantee, property-tested end to end: batched execution of N
compatible requests is bit-identical to N sequential single-request calls —
per operator (the engine canonicalises every request to its bucket shape,
and the dispatcher's batched path is slab-bit-exact) *and* per model, in
both batching modes (``padding="exact"`` stacks same-length sequences
only, where every operator of the encoder is slab-exact over the batch
dimension; ``padding="ladder"`` pads ragged sequences up a bucket ladder
behind the additive attention mask, whose right-padding structure the
masked encoder executes at true sequence lengths).
"""

from .batcher import (
    DEFAULT_TOKEN_BUCKETS,
    AsyncWindowBatcher,
    BucketKey,
    MicroBatch,
    Request,
    ShapeBucketBatcher,
)
from .config import (
    SCHEDULING_MODES,
    ServingConfig,
    ShardingConfig,
    create_engine,
)
from .continuous import (
    SCHEDULING_POLICIES,
    CompletionRecord,
    ContinuousBatcher,
    SchedulingConfig,
    plan_continuous_batch,
    plan_continuous_batch_reference,
    plan_slo_batch,
    plan_slo_batch_reference,
)
from .decoder import DecodeRequest, DecoderServingEngine, decode_reference
from .engine import ServingEngine
from .sharded import PLACEMENT_POLICIES, ShardedDispatcher
from .faults import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOME_STATES,
    OUTCOME_TIMED_OUT,
    BackendExecutionError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    RequestOutcome,
    outcome_counts,
)
from .model_engine import ModelServingEngine
from .simulate import (
    ChaosSimReport,
    ServingSimReport,
    SimulatedRequest,
    SLOSimReport,
    bursty_arrivals,
    diurnal_arrivals,
    merge_arrivals,
    pareto_lengths,
    per_class_breakdown,
    plan_async_closings,
    poisson_arrivals,
    simulate_chaos,
    simulate_serving,
    simulate_slo,
    sweep_batch_windows,
    sweep_slo_overload,
    uniform_arrivals,
)

__all__ = [
    "DEFAULT_TOKEN_BUCKETS",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "OUTCOME_SHED",
    "OUTCOME_STATES",
    "OUTCOME_TIMED_OUT",
    "PLACEMENT_POLICIES",
    "SCHEDULING_MODES",
    "SCHEDULING_POLICIES",
    "AsyncWindowBatcher",
    "BackendExecutionError",
    "BucketKey",
    "ChaosSimReport",
    "CompletionRecord",
    "ContinuousBatcher",
    "DecodeRequest",
    "DecoderServingEngine",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "MicroBatch",
    "ModelServingEngine",
    "Request",
    "RequestOutcome",
    "SLOSimReport",
    "SchedulingConfig",
    "ShapeBucketBatcher",
    "ShardedDispatcher",
    "ShardingConfig",
    "ServingConfig",
    "ServingEngine",
    "ServingSimReport",
    "SimulatedRequest",
    "bursty_arrivals",
    "create_engine",
    "decode_reference",
    "diurnal_arrivals",
    "merge_arrivals",
    "outcome_counts",
    "pareto_lengths",
    "per_class_breakdown",
    "plan_async_closings",
    "plan_continuous_batch",
    "plan_continuous_batch_reference",
    "plan_slo_batch",
    "plan_slo_batch_reference",
    "poisson_arrivals",
    "simulate_chaos",
    "simulate_serving",
    "simulate_slo",
    "sweep_batch_windows",
    "sweep_slo_overload",
    "uniform_arrivals",
]
