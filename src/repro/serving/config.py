"""Typed serving configuration and the engine factory.

The serving engines grew one keyword at a time — padding mode on the model
engine, KV geometry on the decoder, admission control on the continuous
batcher, now shard topology — until constructing a server meant threading
the same half-dozen knobs through three different signatures.
:class:`ServingConfig` consolidates them into one frozen dataclass accepted
by all three engines (``config=...``), with :func:`create_engine` as the
one-call front door.  The old keyword paths keep working: engine kwargs the
config subsumes (``padding=``, the decoder's ``block_size=`` /
``capacity_blocks=`` / ``kv_budget_blocks=``) are deprecated aliases that
emit :class:`DeprecationWarning` and conflict loudly with an explicit
``config``.

Scheduling is part of the config: ``scheduling`` picks which batcher family
an engine builds by default (``"window"`` whole-window flush, ``"async"``
arrival-deadline windows, ``"continuous"`` the per-step loop), and the
admission-control knobs (``max_queue_depth`` / ``shed_policy`` /
``kv_budget_blocks``) bind to the continuous batcher.  Sharding is too:
``sharding=ShardingConfig(tp_degree=4)`` makes the engines build a
:class:`~repro.serving.sharded.ShardedDispatcher` and solve min-cut
placement at construction.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from .batcher import AsyncWindowBatcher, ShapeBucketBatcher
from .continuous import (
    SHED_POLICIES,
    SHED_REJECT_NEWEST,
    ContinuousBatcher,
    SchedulingConfig,
)
from .sharded import PLACEMENT_POLICIES, ShardedDispatcher
from ..hardware.spec import NVLINK, GPUSpec, InterconnectSpec

#: Scheduling drivers a config can select for the default batcher.
SCHEDULING_MODES = ("window", "async", "continuous")

#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: deprecated aliases only warn when a caller actually used them.
UNSET = object()


def warn_deprecated_kwarg(kwarg: str, config_field: str, config) -> None:
    """Emit the legacy-kwarg warning; reject a conflicting explicit config."""
    warnings.warn(
        f"the {kwarg}= engine keyword is deprecated; pass "
        f"config=ServingConfig({config_field}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if config is not None:
        raise TypeError(
            f"cannot pass both config= and the deprecated {kwarg}= keyword; "
            f"set {config_field} on the ServingConfig"
        )


@dataclass(frozen=True)
class ShardingConfig:
    """Shard topology for multi-device serving.

    ``tp_degree=1`` (default) means unsharded single-device serving; above
    1 the engines build a :class:`~repro.serving.sharded.ShardedDispatcher`
    over that many simulated devices joined by ``link``, with projections
    assigned by ``placement_policy``.
    """

    tp_degree: int = 1
    link: InterconnectSpec = NVLINK
    placement_policy: str = "min_cut"

    def __post_init__(self) -> None:
        if self.tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        if self.placement_policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement_policy must be one of {PLACEMENT_POLICIES}, "
                f"got {self.placement_policy!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this config asks for an actual multi-shard split."""
        return self.tp_degree > 1

    def build_dispatcher(
        self, gpu: Optional[GPUSpec] = None, name: str = "sharded"
    ) -> ShardedDispatcher:
        """The sharded dispatcher this topology describes."""
        return ShardedDispatcher(
            num_shards=self.tp_degree,
            gpu=gpu,
            link=self.link,
            placement_policy=self.placement_policy,
            name=name,
        )


@dataclass(frozen=True)
class ServingConfig:
    """One typed home for every serving-engine knob.

    Attributes
    ----------
    name:
        Engine label (``None`` keeps each engine class's default).
    scheduling:
        Default-batcher family: ``"window"`` (whole-window ``flush``),
        ``"async"`` (arrival-deadline windows for ``poll``), or
        ``"continuous"`` (the per-step loop).  An explicitly passed
        ``batcher=`` always wins over this.
    padding:
        Model-engine batching policy: ``"exact"`` stacks same-length
        sequences only; ``"ladder"`` pads up the bucket ladder behind the
        attention mask.
    token_buckets:
        Bucket ladder override (``None`` keeps the scheduling family's
        default ladder).
    max_batch_size:
        Per-micro-batch size cap.
    window_us:
        Async-window close deadline (``scheduling="async"`` only).
    step_us:
        Default step cadence for ``serve_continuous`` replays.
    max_queue_depth / shed_policy / kv_budget_blocks:
        Continuous-batcher admission control (also the decoder's KV-budget
        admission); rejected when the selected scheduling cannot honour
        them.
    block_size / capacity_blocks:
        Decoder paged-KV-cache geometry.
    warm / warm_buckets:
        Eager plan building and the bucket sizes pre-ranked at
        construction.
    sharding:
        Shard topology (:class:`ShardingConfig`); ``tp_degree=1`` default
        is single-device.
    scheduling_policy:
        SLO-aware scheduling knobs
        (:class:`~repro.serving.continuous.SchedulingConfig`): cross-class
        arbitration (``"fcfs"`` / ``"priority"`` / ``"weighted-fair"``),
        preemption of held rungs, per-class queue bounds.  Anything beyond
        the FCFS default requires a continuous batcher.
    """

    name: Optional[str] = None
    scheduling: str = "window"
    padding: str = "exact"
    token_buckets: Optional[Tuple[int, ...]] = None
    max_batch_size: int = 64
    window_us: float = 1000.0
    step_us: float = 0.0
    max_queue_depth: Optional[int] = None
    shed_policy: str = SHED_REJECT_NEWEST
    kv_budget_blocks: Optional[int] = None
    block_size: int = 16
    capacity_blocks: int = 512
    warm: bool = True
    warm_buckets: Tuple[int, ...] = ()
    sharding: ShardingConfig = field(default_factory=ShardingConfig)
    scheduling_policy: SchedulingConfig = field(default_factory=SchedulingConfig)

    def __post_init__(self) -> None:
        if self.scheduling not in SCHEDULING_MODES:
            raise ValueError(
                f"scheduling must be one of {SCHEDULING_MODES}, got {self.scheduling!r}"
            )
        if self.padding not in ("exact", "ladder"):
            raise ValueError(f"padding must be 'exact' or 'ladder', got {self.padding!r}")
        if self.token_buckets is not None:
            object.__setattr__(self, "token_buckets", tuple(int(b) for b in self.token_buckets))
        object.__setattr__(self, "warm_buckets", tuple(int(b) for b in self.warm_buckets))
        if self.window_us < 0:
            raise ValueError("window_us must be non-negative")
        if self.step_us < 0:
            raise ValueError("step_us must be non-negative")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.block_size < 1 or self.capacity_blocks < 1:
            raise ValueError("block_size and capacity_blocks must be >= 1")
        if not isinstance(self.sharding, ShardingConfig):
            raise TypeError("sharding must be a ShardingConfig")
        if not isinstance(self.scheduling_policy, SchedulingConfig):
            raise TypeError("scheduling_policy must be a SchedulingConfig")

    # ------------------------------------------------------------------
    # Derived builders the engines call
    # ------------------------------------------------------------------
    def _admission_kwargs(self, kv_cost: Optional[Callable] = None) -> dict:
        return {
            "max_queue_depth": self.max_queue_depth,
            "shed_policy": self.shed_policy,
            "kv_budget_blocks": self.kv_budget_blocks,
            "kv_cost": kv_cost,
        }

    def build_batcher(self, kind: str = "operand", kv_cost: Optional[Callable] = None):
        """The default batcher for an engine of ``kind``.

        ``kind`` is ``"operand"`` (single-operator engine: plain bucket
        ladder), ``"encoder"`` (model engine: exact-length or ladder
        buckets per ``padding``) or ``"decoder"`` (always a continuous
        batcher, whatever ``scheduling`` says — decoding is inherently
        per-step).  Admission-control knobs require a continuous batcher
        and are rejected otherwise.
        """
        if kind not in ("operand", "encoder", "decoder"):
            raise ValueError(f"unknown engine kind {kind!r}")
        continuous = self.scheduling == "continuous" or kind == "decoder"
        if not continuous and (
            self.max_queue_depth is not None or self.kv_budget_blocks is not None
        ):
            raise ValueError(
                "max_queue_depth / kv_budget_blocks are admission-control knobs of the "
                "continuous batcher; set scheduling='continuous' to use them"
            )
        if not continuous and self.scheduling_policy.active:
            raise ValueError(
                "scheduling_policy (priority/weighted-fair/preemption/class bounds) "
                "needs the continuous batcher; set scheduling='continuous' to use it"
            )
        extra: dict = {"max_batch_size": self.max_batch_size}
        if continuous:
            cls = ContinuousBatcher
            extra.update(self._admission_kwargs(kv_cost))
            extra["scheduling"] = self.scheduling_policy
        elif self.scheduling == "async":
            cls = AsyncWindowBatcher
            extra["window_us"] = self.window_us
        else:
            cls = ShapeBucketBatcher
        if kind == "encoder" and self.padding == "exact":
            if self.token_buckets is not None:
                raise ValueError(
                    "token_buckets cannot be combined with padding='exact' "
                    "(exact mode serves every length at its own singleton bucket)"
                )
            return cls.exact_length(**extra)
        if self.token_buckets is not None:
            return cls(token_buckets=self.token_buckets, **extra)
        if kind in ("encoder", "decoder"):
            return cls.ladder(**extra)
        return cls(**extra)

    def build_dispatcher(self, gpu: Optional[GPUSpec] = None, name: str = "serving"):
        """A sharded dispatcher when sharding is enabled, else ``None``
        (the engine keeps its own single-device default)."""
        if not self.sharding.enabled:
            return None
        return self.sharding.build_dispatcher(gpu=gpu, name=f"{name}.sharded")


def create_engine(target, config: Optional[ServingConfig] = None, kind: Optional[str] = None, **kwargs):
    """Build the right serving engine for ``target`` from one config.

    ``target`` is an encoder (→ :class:`ModelServingEngine`; pass
    ``kind="decoder"`` for the KV-cache decode engine) or a sparse operand /
    :class:`~repro.formats.vnm.VNMSparseMatrix` (→ the single-operator
    :class:`ServingEngine`).  Extra keyword arguments (``dispatcher=``,
    ``batcher=``, ``bias=``, ...) pass through to the engine constructor
    and win over the config's defaults.
    """
    # Late imports: the engine modules import this one for the config type.
    from .decoder import DecoderServingEngine
    from .engine import ServingEngine
    from .model_engine import ModelServingEngine
    from ..models.transformer import TransformerEncoder

    config = config if config is not None else ServingConfig()
    if kind is None:
        kind = "encoder" if isinstance(target, TransformerEncoder) else "operand"
    if kind not in ("operand", "encoder", "decoder"):
        raise ValueError(
            f"unknown engine kind {kind!r}; expected 'operand', 'encoder' or 'decoder'"
        )
    if kind == "operand":
        return ServingEngine(target, config=config, **kwargs)
    if not isinstance(target, TransformerEncoder):
        raise TypeError(f"kind={kind!r} needs a TransformerEncoder target, got {type(target).__name__}")
    if kind == "encoder":
        return ModelServingEngine(target, config=config, **kwargs)
    return DecoderServingEngine(target, config=config, **kwargs)
