"""Seeded fault injection and request outcomes for the serving stack.

The serving layers built so far are happy-path only: every ``raise`` is
input validation, and a single backend exception would take down a whole
micro-batch.  This module supplies the two halves of the fault-tolerance
story:

* **Deterministic fault injection** — a :class:`FaultPlan` decides, purely
  from ``(backend name, call index)``, whether a backend call fails
  (:class:`~repro.kernels.dispatch.BackendExecutionError`) or suffers a
  modelled latency spike.  Plans are either written out explicitly as
  :class:`FaultSpec` entries (the pinned-outcome tests) or generated from a
  seed (:meth:`FaultPlan.seeded`) with a per-backend sub-seeded
  ``default_rng`` — no wall-clock, no global RNG state, so a plan replays
  identically run after run.  A :class:`FaultInjector` arms a
  :class:`~repro.kernels.dispatch.KernelDispatcher` by wrapping each
  registered backend in a :class:`FaultyBackend` proxy that consults the
  plan before delegating to the real entry point — injected failures
  therefore exercise the *real* failover/quarantine machinery.

* **Request outcomes** — :class:`RequestOutcome` names the four terminal
  states of a served request (``ok`` / ``failed`` / ``timed_out`` /
  ``shed``).  The engines record one per request instead of silently
  reporting successes only; a request reported ``ok`` is still bit-for-bit
  its sequential forward (the proxies never touch numerics — a call either
  raises before the backend runs or returns the backend's exact bits).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..kernels.dispatch import Backend, BackendExecutionError, KernelDispatcher

#: Terminal request states (the only values a RequestOutcome may carry).
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_TIMED_OUT = "timed_out"
OUTCOME_SHED = "shed"
OUTCOME_STATES: Tuple[str, ...] = (OUTCOME_OK, OUTCOME_FAILED, OUTCOME_TIMED_OUT, OUTCOME_SHED)

#: FaultSpec kinds.
FAULT_TRANSIENT = "transient"
FAULT_PERSISTENT = "persistent"
FAULT_LATENCY = "latency"
FAULT_KINDS: Tuple[str, ...] = (FAULT_TRANSIENT, FAULT_PERSISTENT, FAULT_LATENCY)


@dataclass(frozen=True)
class RequestOutcome:
    """The terminal state of one served request.

    ``ok`` — completed; its output is bit-for-bit the sequential forward.
    ``failed`` — its payload was non-finite or every backend candidate
    failed on it; batchmates were unaffected (poison isolation).
    ``timed_out`` — its deadline passed before it could execute.
    ``shed`` — admission control rejected it under overload.
    """

    request_id: str
    status: str
    #: Human-readable cause ("" for plain successes).
    detail: str = ""
    #: Engine clock at which the outcome was decided.
    completed_us: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATES:
            raise ValueError(f"status must be one of {OUTCOME_STATES}, got {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK


def outcome_counts(outcomes: Iterable[RequestOutcome]) -> Dict[str, int]:
    """Count outcomes per terminal state (all four keys always present)."""
    counts = {state: 0 for state in OUTCOME_STATES}
    for outcome in outcomes:
        counts[outcome.status] += 1
    return counts


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what happens to a backend at which calls.

    ``transient`` faults fail ``count`` consecutive calls starting at
    ``at_call`` (0-indexed per backend); ``persistent`` faults fail every
    call from ``at_call`` on (the quarantine-forcing case); ``latency``
    faults add ``latency_us`` of modelled time to the matching calls
    without failing them.
    """

    backend: str
    kind: str
    at_call: int = 0
    count: int = 1
    latency_us: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.at_call < 0:
            raise ValueError("at_call must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.kind == FAULT_LATENCY and self.latency_us <= 0:
            raise ValueError("latency faults need latency_us > 0")

    def applies(self, call_index: int) -> bool:
        """True when this spec covers the backend's ``call_index``-th call."""
        if self.kind == FAULT_PERSISTENT:
            return call_index >= self.at_call
        return self.at_call <= call_index < self.at_call + self.count


@dataclass(frozen=True)
class FaultDecision:
    """What the plan says about one backend call."""

    fail: bool = False
    latency_us: float = 0.0


class FaultPlan:
    """A replayable schedule of faults, keyed by (backend, call index).

    The plan is pure data: :meth:`decide` is a deterministic function of
    its arguments, so the same plan driven by the same call sequence
    produces the same faults — the property every chaos test leans on.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError("FaultPlan takes FaultSpec entries")
        self.seed = int(seed)

    @classmethod
    def seeded(
        cls,
        backends: Sequence[str],
        seed: int,
        failure_rate: float = 0.05,
        latency_rate: float = 0.0,
        latency_us: float = 500.0,
        horizon: int = 256,
    ) -> "FaultPlan":
        """Generate a random-but-replayable plan from a seed.

        Each backend gets its own ``default_rng([seed, crc32(name)])``
        stream, so the faults drawn for one backend are independent of how
        many other backends exist or the order they are listed in — the
        plan for ``("a", "b")`` restricted to ``"a"`` equals the plan for
        ``("a",)``.  Over the first ``horizon`` calls of each backend, a
        call fails transiently with probability ``failure_rate`` and takes
        a ``latency_us`` spike with probability ``latency_rate``.
        """
        if not 0.0 <= failure_rate <= 1.0 or not 0.0 <= latency_rate <= 1.0:
            raise ValueError("rates must be within [0, 1]")
        if failure_rate + latency_rate > 1.0:
            raise ValueError("failure_rate + latency_rate must be <= 1")
        if horizon < 0:
            raise ValueError("horizon must be >= 0")
        specs: List[FaultSpec] = []
        for name in sorted(set(backends)):
            rng = np.random.default_rng([int(seed), zlib.crc32(name.encode("utf-8"))])
            draws = rng.random(horizon)
            for idx in range(horizon):
                u = float(draws[idx])
                if u < failure_rate:
                    specs.append(FaultSpec(backend=name, kind=FAULT_TRANSIENT, at_call=idx))
                elif u < failure_rate + latency_rate:
                    specs.append(
                        FaultSpec(
                            backend=name,
                            kind=FAULT_LATENCY,
                            at_call=idx,
                            latency_us=latency_us,
                        )
                    )
        return cls(specs, seed=seed)

    def decide(self, backend: str, call_index: int) -> FaultDecision:
        """The fault (if any) for ``backend``'s ``call_index``-th call."""
        fail = False
        latency = 0.0
        for spec in self.specs:
            if spec.backend != backend or not spec.applies(call_index):
                continue
            if spec.kind == FAULT_LATENCY:
                latency += spec.latency_us
            else:
                fail = True
        return FaultDecision(fail=fail, latency_us=latency)

    def backends(self) -> Tuple[str, ...]:
        """Backend names this plan ever touches (sorted)."""
        return tuple(sorted({spec.backend for spec in self.specs}))


class FaultyBackend(Backend):
    """A registered backend wrapped to consult the fault plan first.

    Numerics-transparent by construction: ``supports`` / ``estimate`` /
    ``execute`` delegate to the wrapped backend's own entry points, so a
    call the plan leaves alone returns the wrapped backend's exact bits,
    and an injected fault raises *before* the backend runs.
    """

    def __init__(self, inner: Backend, injector: "FaultInjector") -> None:
        self.inner = inner
        self.name = inner.name
        self.format = inner.format
        self._injector = injector

    def supports(self, operand) -> bool:
        return self.inner.supports(operand)

    def estimate(self, operand, c, gpu):
        return self.inner.estimate(operand, c, gpu)

    def execute(self, operand, b: np.ndarray) -> np.ndarray:
        decision, call_index = self._injector.on_call(self.name)
        if decision.fail:
            raise BackendExecutionError(
                f"injected fault on {self.name} (call {call_index})", backend=self.name
            )
        return self.inner.execute(operand, b)

    def __getattr__(self, attr):
        # Backend-specific extras (e.g. SpathaPlanBackend.plan) pass through.
        return getattr(self.inner, attr)


class FaultInjector:
    """Drives a :class:`FaultPlan` against live dispatcher backends.

    The injector owns the per-backend call counters (the plan itself stays
    immutable data) and the arming/disarming of a dispatcher.  Counters
    advance once per *attempted* execute of a wrapped backend, so the call
    indices the plan is keyed on are exactly the indices a replay sees.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._calls: Dict[str, int] = {}
        self.injected_failures = 0
        self.injected_latency_us = 0.0

    def on_call(self, backend: str) -> Tuple[FaultDecision, int]:
        """Advance ``backend``'s call counter and look up its fault."""
        index = self._calls.get(backend, 0)
        self._calls[backend] = index + 1
        decision = self.plan.decide(backend, index)
        if decision.fail:
            self.injected_failures += 1
        self.injected_latency_us += decision.latency_us
        return decision, index

    def calls(self, backend: str) -> int:
        """Executes attempted on ``backend`` so far."""
        return self._calls.get(backend, 0)

    def wrap(self, backend: Backend) -> FaultyBackend:
        """Wrap one backend (idempotent: an already-wrapped one is returned)."""
        if isinstance(backend, FaultyBackend):
            return backend
        return FaultyBackend(backend, self)

    def arm(self, dispatcher: KernelDispatcher) -> "FaultInjector":
        """Wrap every registered backend of ``dispatcher`` in place.

        Decisions memoize only backend *names*, never objects, so armed and
        disarmed dispatchers share the same decision cache — arming changes
        execution behaviour, not routing.
        """
        dispatcher.backends = [self.wrap(b) for b in dispatcher.backends]
        return self

    def disarm(self, dispatcher: KernelDispatcher) -> "FaultInjector":
        """Restore the dispatcher's original (unwrapped) backends."""
        dispatcher.backends = [
            b.inner if isinstance(b, FaultyBackend) else b for b in dispatcher.backends
        ]
        return self

    def stats(self) -> Dict[str, object]:
        """Injection counters: calls per backend plus totals."""
        return {
            "calls": dict(sorted(self._calls.items())),
            "injected_failures": self.injected_failures,
            "injected_latency_us": self.injected_latency_us,
        }


__all__ = [
    "OUTCOME_OK",
    "OUTCOME_FAILED",
    "OUTCOME_TIMED_OUT",
    "OUTCOME_SHED",
    "OUTCOME_STATES",
    "FAULT_TRANSIENT",
    "FAULT_PERSISTENT",
    "FAULT_LATENCY",
    "FAULT_KINDS",
    "BackendExecutionError",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "RequestOutcome",
    "outcome_counts",
]
