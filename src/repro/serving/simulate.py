"""Throughput/latency simulation of the dynamic-batching server.

The engine executes real numerics; this module answers the capacity
question — *what does a batch window buy on the modelled GPU?* — without
moving any data.  Requests are replayed against a windowed batching policy:
arrivals inside ``[w*T, (w+1)*T)`` are closed into micro-batches at the
window boundary, each micro-batch costs the dispatched backend's modelled
kernel time at the batch's true column count, and a single serial executor
(one GPU stream) drains the batches.  Every simulated launch is recorded as
a :class:`~repro.hardware.trace.KernelExecution` so serving sweeps produce
the same trace records as the figure-level evaluation harness.

Larger windows trade queueing delay for kernel efficiency: the modelled
SpMM time is strongly sublinear in C (fixed launch/tile overheads amortise,
tiles fill), so batching B requests costs far less than B single calls.
``sweep_batch_windows`` exposes exactly the requests/s-vs-window curve the
ROADMAP asks sweeps to report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batcher import BucketKey, ShapeBucketBatcher
from .continuous import plan_continuous_batch
from ..hardware.trace import ExecutionTrace
from ..kernels.dispatch import KernelDispatcher, SpmmOperand


@dataclass(frozen=True)
class SimulatedRequest:
    """A request reduced to what the simulator needs: size and arrival."""

    request_id: str
    tokens: int
    arrival_us: float = 0.0

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise ValueError("tokens must be positive")
        if self.arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")


def uniform_arrivals(
    num_requests: int,
    rate_rps: float,
    tokens: Sequence[int],
    prefix: str = "req",
) -> List[SimulatedRequest]:
    """Evenly spaced arrivals at ``rate_rps`` with cycling token counts."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if not tokens:
        raise ValueError("tokens must be non-empty")
    gap_us = 1e6 / rate_rps
    return [
        SimulatedRequest(
            request_id=f"{prefix}-{i:06d}",
            tokens=int(tokens[i % len(tokens)]),
            arrival_us=i * gap_us,
        )
        for i in range(num_requests)
    ]


@dataclass
class ServingSimReport:
    """Outcome of one simulated serving run."""

    window_us: float
    num_requests: int
    num_batches: int
    makespan_us: float
    #: Completion latency (finish - arrival) per request, microseconds.
    latencies_us: Dict[str, float] = field(default_factory=dict)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    #: Window-closing policy the run used ("fixed" grid or "async" deadlines).
    window_policy: str = "fixed"
    #: Bucket policy the run used ("ladder" padded rungs or "exact" lengths).
    bucketing: str = "ladder"

    @property
    def throughput_rps(self) -> float:
        """Served requests per second over the simulated makespan."""
        if self.makespan_us <= 0:
            return 0.0
        return self.num_requests / (self.makespan_us * 1e-6)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def mean_latency_us(self) -> float:
        values = list(self.latencies_us.values())
        return float(np.mean(values)) if values else 0.0

    @property
    def p95_latency_us(self) -> float:
        values = list(self.latencies_us.values())
        return float(np.percentile(values, 95)) if values else 0.0

    @property
    def p99_latency_us(self) -> float:
        """Tail completion latency — the metric continuous batching targets."""
        values = list(self.latencies_us.values())
        return float(np.percentile(values, 99)) if values else 0.0

    @property
    def kernel_time_us(self) -> float:
        """Total modelled kernel time (the GPU-busy portion of the makespan)."""
        return self.trace.total_time_us

    def summary(self) -> Dict[str, object]:
        """Flat record for tables/JSON (one row of the window sweep)."""
        return {
            "window_us": self.window_us,
            "window_policy": self.window_policy,
            "bucketing": self.bucketing,
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "throughput_rps": round(self.throughput_rps, 1),
            "mean_latency_us": round(self.mean_latency_us, 1),
            "p95_latency_us": round(self.p95_latency_us, 1),
            "p99_latency_us": round(self.p99_latency_us, 1),
            "kernel_time_us": round(self.kernel_time_us, 1),
        }


def plan_async_closings(
    requests: Sequence[SimulatedRequest],
    window_us: float,
    bucket_of,
) -> List[Tuple[float, List[SimulatedRequest]]]:
    """Arrival-deadline window closings, per bucket.

    The async policy of :class:`~repro.serving.batcher.AsyncWindowBatcher`,
    replayed analytically: each *bucket's* window opens when its first
    request arrives and closes exactly ``window_us`` later (requests
    arriving strictly within the open window join it); there is no global
    grid and no count trigger.  Returns ``(close_us, members)`` pairs
    sorted by close time so a serial executor can drain them in order.

    Boundary semantics match the live batcher: ``drain_due`` considers a
    window due at ``arrival + window_us <= now``, and ``serve_arrivals``
    polls *before* submitting each arrival — so a request arriving exactly
    at a closing deadline misses that window and opens the next one.
    """
    by_bucket: Dict[object, List[SimulatedRequest]] = {}
    for req in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
        by_bucket.setdefault(bucket_of(req), []).append(req)
    closings: List[Tuple[float, List[SimulatedRequest]]] = []
    for members in by_bucket.values():
        window: List[SimulatedRequest] = []
        deadline = float("-inf")
        for req in members:
            if not window or req.arrival_us >= deadline:
                if window:
                    closings.append((deadline, window))
                window = [req]
                deadline = req.arrival_us + window_us
            else:
                window.append(req)
        if window:
            closings.append((deadline, window))
    closings.sort(key=lambda cw: (cw[0], cw[1][0].request_id))
    return closings


def simulate_serving(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    window_us: float,
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    window_policy: str = "fixed",
    bucketing: str = "ladder",
) -> ServingSimReport:
    """Replay ``requests`` through a windowed dynamic batcher on the model.

    ``window_us <= 0`` means no batching: every request is dispatched alone
    the moment it arrives (the per-request baseline of the sweeps).  The
    exception is ``window_policy="continuous"``, which has no windows to
    disable — it ignores ``window_us`` entirely (every window value,
    including 0, produces the same run; the value is only recorded on the
    report for sweep alignment).

    ``window_policy`` selects how windows close when batching is on:
    ``"fixed"`` closes every bucket at multiples of ``window_us`` (the grid
    policy), ``"async"`` closes each bucket on its own arrival deadline —
    first arrival + ``window_us`` — so queueing delay is bounded by the
    window for *every* request instead of depending on where in the grid it
    happened to arrive (see :func:`plan_async_closings`), and
    ``"continuous"`` has no windows at all: whenever the executor frees, it
    forms one batch from *everything arrived by that instant* (the FCFS
    chunk policy of
    :func:`~repro.serving.continuous.plan_continuous_batch`, mirroring the
    live ``ContinuousBatcher``) and runs it immediately.  Under continuous
    scheduling ``window_us`` is recorded but never waited on — a request's
    queueing delay is bounded by the executor's busy time, not by a window,
    which is exactly the tail-latency gap the policy exists to close.

    ``bucketing`` selects how requests group inside a closing, mirroring
    the model engine's ``padding`` modes: ``"ladder"`` rounds token counts
    up the batcher's rungs (padded buckets — each batch costs the kernel at
    its *padded* column count, the price of fuller batches), ``"exact"``
    only groups identical token counts (no padded columns, but ragged
    traffic fragments into near-singleton batches).  Both compose with
    either ``window_policy``, so exact/padded x fixed/async sweeps run side
    by side.
    """
    if window_policy not in {"fixed", "async", "continuous"}:
        raise ValueError(
            f"unknown window_policy {window_policy!r}; use 'fixed', 'async' or 'continuous'"
        )
    if bucketing not in {"ladder", "exact"}:
        raise ValueError(f"unknown bucketing {bucketing!r}; use 'ladder' or 'exact'")
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    batcher = batcher if batcher is not None else ShapeBucketBatcher()
    if not requests:
        raise ValueError("requests must be non-empty")

    def bucket_tokens(tokens: int) -> int:
        return tokens if bucketing == "exact" else batcher.token_bucket(tokens)

    trace = ExecutionTrace()
    latencies: Dict[str, float] = {}
    num_batches = 0
    gpu_free_us = 0.0
    makespan_us = 0.0

    def execute_chunk(key: BucketKey, chunk: List[SimulatedRequest], ready_us: float) -> float:
        """Run one planned chunk on the serial executor; returns its finish time."""
        nonlocal num_batches, gpu_free_us, makespan_us
        c_total = len(chunk) * key.token_bucket
        decision = dispatcher.dispatch(operand, key.token_bucket)
        modelled = dispatcher.estimate(operand, c_total, backend=decision.backend)
        start_us = max(ready_us, gpu_free_us)
        finish_us = start_us + modelled.time_us
        gpu_free_us = finish_us
        makespan_us = max(makespan_us, finish_us)
        num_batches += 1
        execution = modelled.as_execution(category="gemm")
        execution.meta.update(
            {
                "backend": decision.backend,
                "batch_size": len(chunk),
                "token_bucket": key.token_bucket,
                "start_us": start_us,
            }
        )
        trace.record(execution)
        for req in chunk:
            latencies[req.request_id] = finish_us - req.arrival_us
        return finish_us

    if window_policy == "continuous":
        # Executor-driven, no windows: whenever the executor frees, admit
        # everything that has arrived by that instant and run the single
        # most urgent bucket chunk (the live ContinuousBatcher's policy).
        order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        pending: List[SimulatedRequest] = []
        admitted = 0
        while admitted < len(order) or pending:
            now_us = gpu_free_us
            if not pending and order[admitted].arrival_us > now_us:
                now_us = order[admitted].arrival_us
            while admitted < len(order) and order[admitted].arrival_us <= now_us:
                pending.append(order[admitted])
                admitted += 1
            key, chunk = plan_continuous_batch(
                pending,
                key_of=lambda r: BucketKey(
                    features=operand.k, token_bucket=bucket_tokens(r.tokens)
                ),
                arrival_of=lambda r: r.arrival_us,
                id_of=lambda r: r.request_id,
                max_batch_size=batcher.max_batch_size,
            )
            taken = {r.request_id for r in chunk}
            pending = [r for r in pending if r.request_id not in taken]
            execute_chunk(key, chunk, now_us)
        return ServingSimReport(
            window_us=window_us,
            num_requests=len(requests),
            num_batches=num_batches,
            makespan_us=makespan_us,
            latencies_us=latencies,
            trace=trace,
            window_policy=window_policy,
            bucketing=bucketing,
        )

    # Close windows at multiples of window_us (fixed), at per-bucket arrival
    # deadlines (async), or per request when batching is disabled; within a
    # closing, group with the batcher's deterministic bucketing.
    if window_us <= 0:
        closings: List[Tuple[float, List[SimulatedRequest]]] = [
            (req.arrival_us, [req])
            for req in sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        ]
    elif window_policy == "async":
        closings = plan_async_closings(
            requests, window_us, bucket_of=lambda r: bucket_tokens(r.tokens)
        )
    else:
        grouped: Dict[int, List[SimulatedRequest]] = {}
        for req in requests:
            grouped.setdefault(int(req.arrival_us // window_us), []).append(req)
        closings = [
            ((w + 1) * window_us, members) for w, members in sorted(grouped.items())
        ]

    for close_us, members in closings:
        # Exactly the real batcher's grouping policy (shared implementation),
        # applied to the simulated requests.
        planned = batcher.plan_batches(
            members,
            key_of=lambda r: BucketKey(
                features=operand.k, token_bucket=bucket_tokens(r.tokens)
            ),
            id_of=lambda r: r.request_id,
        )
        for key, chunk in planned:
            execute_chunk(key, chunk, close_us)

    return ServingSimReport(
        window_us=window_us,
        num_requests=len(requests),
        num_batches=num_batches,
        makespan_us=makespan_us,
        latencies_us=latencies,
        trace=trace,
        window_policy=window_policy,
        bucketing=bucketing,
    )


def sweep_batch_windows(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    windows_us: Sequence[float],
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    window_policy: str = "fixed",
    bucketing: str = "ladder",
) -> List[ServingSimReport]:
    """Requests/s vs batch window: one simulated run per window setting.

    A shared dispatcher keeps the decision/tuner caches warm across the
    sweep, mirroring a long-running server.  ``window_policy`` and
    ``bucketing`` are forwarded to :func:`simulate_serving` (``"async"``
    sweeps arrival-deadline closing instead of the fixed grid,
    ``"continuous"`` sweeps the window-free step scheduler — one identical
    row per window value, since nothing waits on the window; ``"exact"``
    sweeps exact-length buckets instead of the padded ladder).
    """
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    return [
        simulate_serving(
            operand,
            requests,
            window_us=w,
            dispatcher=dispatcher,
            batcher=batcher,
            window_policy=window_policy,
            bucketing=bucketing,
        )
        for w in windows_us
    ]
