"""Throughput/latency simulation of the dynamic-batching server.

The engine executes real numerics; this module answers the capacity
question — *what does a batch window buy on the modelled GPU?* — without
moving any data.  Requests are replayed against a windowed batching policy:
arrivals inside ``[w*T, (w+1)*T)`` are closed into micro-batches at the
window boundary, each micro-batch costs the dispatched backend's modelled
kernel time at the batch's true column count, and a single serial executor
(one GPU stream) drains the batches.  Every simulated launch is recorded as
a :class:`~repro.hardware.trace.KernelExecution` so serving sweeps produce
the same trace records as the figure-level evaluation harness.

Larger windows trade queueing delay for kernel efficiency: the modelled
SpMM time is strongly sublinear in C (fixed launch/tile overheads amortise,
tiles fill), so batching B requests costs far less than B single calls.
``sweep_batch_windows`` exposes exactly the requests/s-vs-window curve the
ROADMAP asks sweeps to report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .batcher import BucketKey, ShapeBucketBatcher
from .config import ServingConfig
from .continuous import (
    SHED_POLICIES,
    SHED_DROP_EXPIRED,
    SchedulingConfig,
    plan_continuous_batch,
    plan_slo_batch,
)
from .faults import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOME_STATES,
    OUTCOME_TIMED_OUT,
    FaultPlan,
)
from ..hardware.trace import ExecutionTrace
from ..kernels.dispatch import KernelDispatcher, SpmmOperand


@dataclass(frozen=True)
class SimulatedRequest:
    """A request reduced to what the simulator needs: size, arrival, deadline."""

    request_id: str
    tokens: int
    arrival_us: float = 0.0
    #: Last instant the request may still complete (None = no deadline).
    deadline_us: Optional[float] = None
    #: Tenant tier for SLO-aware scheduling (larger = more urgent).
    priority_class: int = 0

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise ValueError("tokens must be positive")
        if self.arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")
        if self.deadline_us is not None and self.deadline_us < self.arrival_us:
            raise ValueError(
                f"request {self.request_id!r}: deadline_us precedes arrival_us"
            )
        if not isinstance(self.priority_class, int) or self.priority_class < 0:
            raise ValueError(
                f"request {self.request_id!r}: priority_class must be a "
                f"non-negative int, got {self.priority_class!r}"
            )


def uniform_arrivals(
    num_requests: int,
    rate_rps: float,
    tokens: Sequence[int],
    prefix: str = "req",
) -> List[SimulatedRequest]:
    """Evenly spaced arrivals at ``rate_rps`` with cycling token counts."""
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if not tokens:
        raise ValueError("tokens must be non-empty")
    gap_us = 1e6 / rate_rps
    return [
        SimulatedRequest(
            request_id=f"{prefix}-{i:06d}",
            tokens=int(tokens[i % len(tokens)]),
            arrival_us=i * gap_us,
        )
        for i in range(num_requests)
    ]


def poisson_arrivals(
    num_requests: int,
    rate_rps: float,
    tokens: Sequence[int],
    seed: int = 0,
    deadline_after_us: Optional[float] = None,
    prefix: str = "req",
    priority_class: int = 0,
) -> List[SimulatedRequest]:
    """Seeded Poisson arrivals at mean ``rate_rps`` with cycling token counts.

    The bursty counterpart of :func:`uniform_arrivals` (exponential
    inter-arrival gaps drawn from ``default_rng(seed)`` — fully replayable),
    used by the chaos scenarios: a Poisson stream at the same mean rate
    produces the transient queue build-ups that exercise admission control.
    ``deadline_after_us`` stamps every request with a deadline that many
    microseconds after its arrival.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if not tokens:
        raise ValueError("tokens must be non-empty")
    if deadline_after_us is not None and deadline_after_us < 0:
        raise ValueError("deadline_after_us must be non-negative")
    rng = np.random.default_rng(int(seed))
    arrivals = np.cumsum(rng.exponential(1e6 / rate_rps, size=num_requests))
    return _stamp_requests(arrivals, tokens, deadline_after_us, prefix, priority_class)


def _stamp_requests(
    arrivals_us,
    tokens: Sequence[int],
    deadline_after_us: Optional[float],
    prefix: str,
    priority_class: int,
) -> List[SimulatedRequest]:
    """Turn a generated arrival-time sequence into stamped requests."""
    return [
        SimulatedRequest(
            request_id=f"{prefix}-{i:06d}",
            tokens=int(tokens[i % len(tokens)]),
            arrival_us=float(t),
            deadline_us=(
                float(t) + deadline_after_us if deadline_after_us is not None else None
            ),
            priority_class=priority_class,
        )
        for i, t in enumerate(arrivals_us)
    ]


def _check_traffic_args(
    num_requests: int, tokens: Sequence[int], deadline_after_us: Optional[float]
) -> None:
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not tokens:
        raise ValueError("tokens must be non-empty")
    if deadline_after_us is not None and deadline_after_us < 0:
        raise ValueError("deadline_after_us must be non-negative")


def bursty_arrivals(
    num_requests: int,
    base_rate_rps: float,
    burst_rate_rps: float,
    tokens: Sequence[int],
    mean_dwell_us: float = 50_000.0,
    seed: int = 0,
    deadline_after_us: Optional[float] = None,
    prefix: str = "req",
    priority_class: int = 0,
) -> List[SimulatedRequest]:
    """Seeded two-state MMPP (on-off) arrivals: Poisson bursts over a base.

    The bursty traffic model of production multi-tenant serving: the
    arrival process alternates between a *base* state (rate
    ``base_rate_rps``) and a *burst* state (``burst_rate_rps``), dwelling
    in each for an exponential time of mean ``mean_dwell_us``; within a
    state, arrivals are Poisson at that state's rate.  The crossing gap at
    a state switch is discarded and redrawn at the new rate, which is
    exact for Poisson processes (memorylessness), so the sample path is a
    true Markov-modulated Poisson process — and fully replayable from
    ``seed``.  The long-run mean rate is the average of the two rates; the
    variance of windowed counts is strictly super-Poisson whenever the
    rates differ (the burstiness the statistical tests check).
    """
    _check_traffic_args(num_requests, tokens, deadline_after_us)
    if base_rate_rps <= 0 or burst_rate_rps <= 0:
        raise ValueError("base_rate_rps and burst_rate_rps must be positive")
    if mean_dwell_us <= 0:
        raise ValueError("mean_dwell_us must be positive")
    rng = np.random.default_rng(int(seed))
    rates = (base_rate_rps, burst_rate_rps)
    state = 0
    t = 0.0
    state_end = float(rng.exponential(mean_dwell_us))
    arrivals: List[float] = []
    while len(arrivals) < num_requests:
        gap = float(rng.exponential(1e6 / rates[state]))
        if t + gap <= state_end:
            t += gap
            arrivals.append(t)
        else:
            t = state_end
            state = 1 - state
            state_end = t + float(rng.exponential(mean_dwell_us))
    return _stamp_requests(arrivals, tokens, deadline_after_us, prefix, priority_class)


def diurnal_arrivals(
    num_requests: int,
    peak_rate_rps: float,
    trough_rate_rps: float,
    tokens: Sequence[int],
    period_us: float = 1e6,
    seed: int = 0,
    deadline_after_us: Optional[float] = None,
    prefix: str = "req",
    priority_class: int = 0,
) -> List[SimulatedRequest]:
    """Seeded diurnal (sinusoidal-rate) arrivals via Poisson thinning.

    A non-homogeneous Poisson process whose instantaneous rate swings
    sinusoidally between ``trough_rate_rps`` and ``peak_rate_rps`` with
    period ``period_us`` (the day/night cycle, compressed to simulation
    scale).  Implemented by thinning: candidates arrive at the peak rate
    and are accepted with probability ``rate(t) / peak`` — the standard
    exact sampler for time-varying Poisson processes, deterministic from
    ``seed``.
    """
    _check_traffic_args(num_requests, tokens, deadline_after_us)
    if trough_rate_rps <= 0 or peak_rate_rps < trough_rate_rps:
        raise ValueError("need 0 < trough_rate_rps <= peak_rate_rps")
    if period_us <= 0:
        raise ValueError("period_us must be positive")
    rng = np.random.default_rng(int(seed))
    t = 0.0
    arrivals: List[float] = []
    while len(arrivals) < num_requests:
        t += float(rng.exponential(1e6 / peak_rate_rps))
        rate = trough_rate_rps + (peak_rate_rps - trough_rate_rps) * 0.5 * (
            1.0 + np.sin(2.0 * np.pi * t / period_us)
        )
        if rng.uniform() < rate / peak_rate_rps:
            arrivals.append(t)
    return _stamp_requests(arrivals, tokens, deadline_after_us, prefix, priority_class)


def pareto_lengths(
    num_requests: int,
    alpha: float = 1.5,
    min_tokens: int = 1,
    max_tokens: int = 512,
    seed: int = 0,
) -> List[int]:
    """Seeded heavy-tailed (Pareto) token counts, clipped to a ceiling.

    Sequence lengths in production traffic are heavy-tailed: most requests
    are short, a few are enormous.  Draws ``min_tokens * (1 + Pareto(alpha))``
    — a Pareto distribution with scale ``min_tokens`` and tail index
    ``alpha`` (smaller alpha = heavier tail) — and clips at ``max_tokens``
    (real servers cap context length).  Feed the result to any arrival
    generator's ``tokens=`` (lengths cycle, and the list is exactly
    ``num_requests`` long, so each request gets its own draw).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if min_tokens < 1 or max_tokens < min_tokens:
        raise ValueError("need 1 <= min_tokens <= max_tokens")
    rng = np.random.default_rng(int(seed))
    draws = min_tokens * (1.0 + rng.pareto(alpha, size=num_requests))
    return [int(min(float(max_tokens), d)) for d in draws]


def merge_arrivals(*streams: Sequence[SimulatedRequest]) -> List[SimulatedRequest]:
    """Merge per-tenant arrival streams into one multi-tenant trace.

    Each stream keeps its own ids (use distinct ``prefix``es per tenant)
    and priority classes; the merge is sorted by ``(arrival_us,
    request_id)`` — the scheduler-facing order.  Duplicate ids across
    streams are rejected (they would collide in the engines' queues).
    """
    merged: List[SimulatedRequest] = [req for stream in streams for req in stream]
    seen = set()
    for req in merged:
        if req.request_id in seen:
            raise ValueError(
                f"duplicate request_id {req.request_id!r} across merged streams; "
                f"give each tenant its own prefix"
            )
        seen.add(req.request_id)
    return sorted(merged, key=lambda r: (r.arrival_us, r.request_id))


@dataclass
class ServingSimReport:
    """Outcome of one simulated serving run."""

    window_us: float
    num_requests: int
    num_batches: int
    makespan_us: float
    #: Completion latency (finish - arrival) per request, microseconds.
    latencies_us: Dict[str, float] = field(default_factory=dict)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    #: Window-closing policy the run used ("fixed" grid or "async" deadlines).
    window_policy: str = "fixed"
    #: Bucket policy the run used ("ladder" padded rungs or "exact" lengths).
    bucketing: str = "ladder"

    @property
    def throughput_rps(self) -> float:
        """Served requests per second over the simulated makespan."""
        if self.makespan_us <= 0:
            return 0.0
        return self.num_requests / (self.makespan_us * 1e-6)

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0

    @property
    def mean_latency_us(self) -> float:
        values = list(self.latencies_us.values())
        return float(np.mean(values)) if values else 0.0

    @property
    def p95_latency_us(self) -> float:
        values = list(self.latencies_us.values())
        return float(np.percentile(values, 95)) if values else float("nan")

    @property
    def p99_latency_us(self) -> float:
        """Tail completion latency — the metric continuous batching targets.

        ``NaN`` when no request completed: an empty run has *no data*, not a
        zero-microsecond tail — ``0.0`` here once let empty chaos runs sail
        through latency floors (``tools/check_bench_trend.py`` now treats
        NaN as "no data" and warns instead of passing).
        """
        values = list(self.latencies_us.values())
        return float(np.percentile(values, 99)) if values else float("nan")

    @property
    def p999_latency_us(self) -> float:
        """Extreme-tail completion latency (ROADMAP item 3 asks for p999)."""
        values = list(self.latencies_us.values())
        return float(np.percentile(values, 99.9)) if values else float("nan")

    @property
    def kernel_time_us(self) -> float:
        """Total modelled kernel time (the GPU-busy portion of the makespan)."""
        return self.trace.total_time_us

    def summary(self) -> Dict[str, object]:
        """Flat record for tables/JSON (one row of the window sweep)."""
        return {
            "window_us": self.window_us,
            "window_policy": self.window_policy,
            "bucketing": self.bucketing,
            "requests": self.num_requests,
            "batches": self.num_batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "throughput_rps": round(self.throughput_rps, 1),
            "mean_latency_us": round(self.mean_latency_us, 1),
            "p95_latency_us": round(self.p95_latency_us, 1),
            "p99_latency_us": round(self.p99_latency_us, 1),
            "p999_latency_us": round(self.p999_latency_us, 1),
            "kernel_time_us": round(self.kernel_time_us, 1),
        }


def plan_async_closings(
    requests: Sequence[SimulatedRequest],
    window_us: float,
    bucket_of,
) -> List[Tuple[float, List[SimulatedRequest]]]:
    """Arrival-deadline window closings, per bucket.

    The async policy of :class:`~repro.serving.batcher.AsyncWindowBatcher`,
    replayed analytically: each *bucket's* window opens when its first
    request arrives and closes exactly ``window_us`` later (requests
    arriving strictly within the open window join it); there is no global
    grid and no count trigger.  Returns ``(close_us, members)`` pairs
    sorted by close time so a serial executor can drain them in order.

    Boundary semantics match the live batcher: ``drain_due`` considers a
    window due at ``arrival + window_us <= now``, and ``serve_arrivals``
    polls *before* submitting each arrival — so a request arriving exactly
    at a closing deadline misses that window and opens the next one.
    """
    by_bucket: Dict[object, List[SimulatedRequest]] = {}
    for req in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
        by_bucket.setdefault(bucket_of(req), []).append(req)
    closings: List[Tuple[float, List[SimulatedRequest]]] = []
    for members in by_bucket.values():
        window: List[SimulatedRequest] = []
        deadline = float("-inf")
        for req in members:
            if not window or req.arrival_us >= deadline:
                if window:
                    closings.append((deadline, window))
                window = [req]
                deadline = req.arrival_us + window_us
            else:
                window.append(req)
        if window:
            closings.append((deadline, window))
    closings.sort(key=lambda cw: (cw[0], cw[1][0].request_id))
    return closings


#: How a :class:`~repro.serving.config.ServingConfig`'s scheduling mode maps
#: onto the simulator's window policies.
_POLICY_OF_SCHEDULING = {"window": "fixed", "async": "async", "continuous": "continuous"}


def simulate_serving(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    window_us: float,
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    window_policy: Optional[str] = None,
    bucketing: Optional[str] = None,
    config: Optional[ServingConfig] = None,
) -> ServingSimReport:
    """Replay ``requests`` through a windowed dynamic batcher on the model.

    ``config`` lets one :class:`~repro.serving.config.ServingConfig` drive
    the simulator the same way it drives the live engines: ``scheduling``
    picks the window policy (window→fixed, async→async,
    continuous→continuous), ``padding`` picks the bucketing mode,
    ``token_buckets`` / ``max_batch_size`` shape the default batcher, and
    ``sharding`` builds a sharded dispatcher.  Explicitly passed
    ``window_policy`` / ``bucketing`` / ``dispatcher`` / ``batcher``
    arguments win over the config.

    ``window_us <= 0`` means no batching: every request is dispatched alone
    the moment it arrives (the per-request baseline of the sweeps).  The
    exception is ``window_policy="continuous"``, which has no windows to
    disable — it ignores ``window_us`` entirely (every window value,
    including 0, produces the same run; the value is only recorded on the
    report for sweep alignment).

    ``window_policy`` selects how windows close when batching is on:
    ``"fixed"`` closes every bucket at multiples of ``window_us`` (the grid
    policy), ``"async"`` closes each bucket on its own arrival deadline —
    first arrival + ``window_us`` — so queueing delay is bounded by the
    window for *every* request instead of depending on where in the grid it
    happened to arrive (see :func:`plan_async_closings`), and
    ``"continuous"`` has no windows at all: whenever the executor frees, it
    forms one batch from *everything arrived by that instant* (the FCFS
    chunk policy of
    :func:`~repro.serving.continuous.plan_continuous_batch`, mirroring the
    live ``ContinuousBatcher``) and runs it immediately.  Under continuous
    scheduling ``window_us`` is recorded but never waited on — a request's
    queueing delay is bounded by the executor's busy time, not by a window,
    which is exactly the tail-latency gap the policy exists to close.

    ``bucketing`` selects how requests group inside a closing, mirroring
    the model engine's ``padding`` modes: ``"ladder"`` rounds token counts
    up the batcher's rungs (padded buckets — each batch costs the kernel at
    its *padded* column count, the price of fuller batches), ``"exact"``
    only groups identical token counts (no padded columns, but ragged
    traffic fragments into near-singleton batches).  Both compose with
    either ``window_policy``, so exact/padded x fixed/async sweeps run side
    by side.
    """
    if config is not None:
        if window_policy is None:
            window_policy = _POLICY_OF_SCHEDULING[config.scheduling]
        if bucketing is None:
            bucketing = config.padding
        if dispatcher is None:
            dispatcher = config.build_dispatcher(name="simulate")
        if batcher is None:
            buckets = {"token_buckets": config.token_buckets} if config.token_buckets else {}
            batcher = ShapeBucketBatcher(max_batch_size=config.max_batch_size, **buckets)
    window_policy = window_policy if window_policy is not None else "fixed"
    bucketing = bucketing if bucketing is not None else "ladder"
    if window_policy not in {"fixed", "async", "continuous"}:
        raise ValueError(
            f"unknown window_policy {window_policy!r}; use 'fixed', 'async' or 'continuous'"
        )
    if bucketing not in {"ladder", "exact"}:
        raise ValueError(f"unknown bucketing {bucketing!r}; use 'ladder' or 'exact'")
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    batcher = batcher if batcher is not None else ShapeBucketBatcher()
    if not requests:
        raise ValueError("requests must be non-empty")

    def bucket_tokens(tokens: int) -> int:
        return tokens if bucketing == "exact" else batcher.token_bucket(tokens)

    trace = ExecutionTrace()
    latencies: Dict[str, float] = {}
    num_batches = 0
    gpu_free_us = 0.0
    makespan_us = 0.0

    def execute_chunk(key: BucketKey, chunk: List[SimulatedRequest], ready_us: float) -> float:
        """Run one planned chunk on the serial executor; returns its finish time."""
        nonlocal num_batches, gpu_free_us, makespan_us
        c_total = len(chunk) * key.token_bucket
        decision = dispatcher.dispatch(operand, key.token_bucket)
        modelled = dispatcher.estimate(operand, c_total, backend=decision.backend)
        start_us = max(ready_us, gpu_free_us)
        finish_us = start_us + modelled.time_us
        gpu_free_us = finish_us
        makespan_us = max(makespan_us, finish_us)
        num_batches += 1
        execution = modelled.as_execution(category="gemm")
        execution.meta.update(
            {
                "backend": decision.backend,
                "batch_size": len(chunk),
                "token_bucket": key.token_bucket,
                "start_us": start_us,
            }
        )
        trace.record(execution)
        for req in chunk:
            latencies[req.request_id] = finish_us - req.arrival_us
        return finish_us

    if window_policy == "continuous":
        # Executor-driven, no windows: whenever the executor frees, admit
        # everything that has arrived by that instant and run the single
        # most urgent bucket chunk (the live ContinuousBatcher's policy).
        order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        pending: List[SimulatedRequest] = []
        admitted = 0
        while admitted < len(order) or pending:
            now_us = gpu_free_us
            if not pending and order[admitted].arrival_us > now_us:
                now_us = order[admitted].arrival_us
            while admitted < len(order) and order[admitted].arrival_us <= now_us:
                pending.append(order[admitted])
                admitted += 1
            key, chunk = plan_continuous_batch(
                pending,
                key_of=lambda r: BucketKey(
                    features=operand.k, token_bucket=bucket_tokens(r.tokens)
                ),
                arrival_of=lambda r: r.arrival_us,
                id_of=lambda r: r.request_id,
                max_batch_size=batcher.max_batch_size,
            )
            taken = {r.request_id for r in chunk}
            pending = [r for r in pending if r.request_id not in taken]
            execute_chunk(key, chunk, now_us)
        return ServingSimReport(
            window_us=window_us,
            num_requests=len(requests),
            num_batches=num_batches,
            makespan_us=makespan_us,
            latencies_us=latencies,
            trace=trace,
            window_policy=window_policy,
            bucketing=bucketing,
        )

    # Close windows at multiples of window_us (fixed), at per-bucket arrival
    # deadlines (async), or per request when batching is disabled; within a
    # closing, group with the batcher's deterministic bucketing.
    if window_us <= 0:
        closings: List[Tuple[float, List[SimulatedRequest]]] = [
            (req.arrival_us, [req])
            for req in sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        ]
    elif window_policy == "async":
        closings = plan_async_closings(
            requests, window_us, bucket_of=lambda r: bucket_tokens(r.tokens)
        )
    else:
        grouped: Dict[int, List[SimulatedRequest]] = {}
        for req in requests:
            grouped.setdefault(int(req.arrival_us // window_us), []).append(req)
        closings = [
            ((w + 1) * window_us, members) for w, members in sorted(grouped.items())
        ]

    for close_us, members in closings:
        # Exactly the real batcher's grouping policy (shared implementation),
        # applied to the simulated requests.
        planned = batcher.plan_batches(
            members,
            key_of=lambda r: BucketKey(
                features=operand.k, token_bucket=bucket_tokens(r.tokens)
            ),
            id_of=lambda r: r.request_id,
        )
        for key, chunk in planned:
            execute_chunk(key, chunk, close_us)

    return ServingSimReport(
        window_us=window_us,
        num_requests=len(requests),
        num_batches=num_batches,
        makespan_us=makespan_us,
        latencies_us=latencies,
        trace=trace,
        window_policy=window_policy,
        bucketing=bucketing,
    )


def sweep_batch_windows(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    windows_us: Sequence[float],
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    window_policy: str = "fixed",
    bucketing: str = "ladder",
) -> List[ServingSimReport]:
    """Requests/s vs batch window: one simulated run per window setting.

    A shared dispatcher keeps the decision/tuner caches warm across the
    sweep, mirroring a long-running server.  ``window_policy`` and
    ``bucketing`` are forwarded to :func:`simulate_serving` (``"async"``
    sweeps arrival-deadline closing instead of the fixed grid,
    ``"continuous"`` sweeps the window-free step scheduler — one identical
    row per window value, since nothing waits on the window; ``"exact"``
    sweeps exact-length buckets instead of the padded ladder).
    """
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    return [
        simulate_serving(
            operand,
            requests,
            window_us=w,
            dispatcher=dispatcher,
            batcher=batcher,
            window_policy=window_policy,
            bucketing=bucketing,
        )
        for w in windows_us
    ]


def per_class_breakdown(
    outcomes: Dict[str, str],
    classes: Dict[str, int],
    latencies_us: Dict[str, float],
    num_classes: int = 1,
) -> Dict[int, Dict[str, object]]:
    """Per-priority-class outcome/latency blocks, normalized.

    One block per class covering outcome counts, shed/violation rates and
    p50/p99/p999 completion latency.  Always covers classes
    ``0..num_classes-1`` even when unused (zero counts, ``NaN``
    percentiles — "no data", never "zero latency"), plus every class
    actually observed, so the schema is stable whether or not the run used
    priority classes at all.  Shared by :class:`ChaosSimReport` and
    :class:`SLOSimReport`.
    """
    ids = set(range(max(num_classes, 1)))
    ids.update(classes.values())
    by_class: Dict[int, List[str]] = {cls: [] for cls in ids}
    for rid, cls in classes.items():
        by_class[cls].append(rid)
    blocks: Dict[int, Dict[str, object]] = {}
    for cls in sorted(ids):
        rids = by_class[cls]
        counts = {state: 0 for state in OUTCOME_STATES}
        for rid in rids:
            status = outcomes.get(rid)
            if status is not None:
                counts[status] += 1
        lat = [latencies_us[rid] for rid in rids if rid in latencies_us]

        def pct(q: float) -> float:
            return float(np.percentile(lat, q)) if lat else float("nan")

        n = len(rids)
        blocks[cls] = {
            "requests": n,
            **counts,
            "shed_rate": counts[OUTCOME_SHED] / n if n else 0.0,
            "violation_rate": counts[OUTCOME_TIMED_OUT] / n if n else 0.0,
            "p50_latency_us": pct(50),
            "p99_latency_us": pct(99),
            "p999_latency_us": pct(99.9),
        }
    return blocks


@dataclass
class ChaosSimReport:
    """Outcome of one chaos scenario: availability, goodput, tails, health.

    Everything is derived from the per-request terminal states and the
    completion latencies of the ``ok`` requests.  Deterministic: the same
    (requests, fault plan, knobs) replays to the identical report.
    """

    seed: int
    num_requests: int
    makespan_us: float
    #: Terminal state per request id (one of OUTCOME_STATES).
    outcomes: Dict[str, str] = field(default_factory=dict)
    #: Completion latency (finish - arrival) of the ok requests only.
    latencies_us: Dict[str, float] = field(default_factory=dict)
    #: Priority class per request id (empty = every request was class 0).
    classes: Dict[str, int] = field(default_factory=dict)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    #: Circuit-breaker traffic of the modelled executor.
    failovers: int = 0
    quarantines: int = 0
    readmissions: int = 0
    injected_failures: int = 0
    injected_latency_us: float = 0.0

    def counts(self) -> Dict[str, int]:
        """Requests per terminal state (all four keys always present)."""
        out = {state: 0 for state in OUTCOME_STATES}
        for status in self.outcomes.values():
            out[status] += 1
        return out

    def per_class(self) -> Dict[int, Dict[str, object]]:
        """Per-priority-class counts/rates/percentiles (normalized: a
        class-free run reports one zero-padded class-0 block)."""
        return per_class_breakdown(self.outcomes, self.classes, self.latencies_us)

    @property
    def availability(self) -> float:
        """Fraction of requests that completed ``ok``."""
        return self.counts()[OUTCOME_OK] / self.num_requests if self.num_requests else 0.0

    @property
    def goodput_rps(self) -> float:
        """``ok`` completions per second of simulated makespan."""
        if self.makespan_us <= 0:
            return 0.0
        return self.counts()[OUTCOME_OK] / (self.makespan_us * 1e-6)

    @property
    def shed_rate(self) -> float:
        """Fraction of requests refused by admission control."""
        return self.counts()[OUTCOME_SHED] / self.num_requests if self.num_requests else 0.0

    def _percentile(self, q: float) -> float:
        # NaN, not 0.0, on empty samples: "nothing completed" must never be
        # reportable as "zero latency" (the bench-trend gate skips NaN with
        # a warning instead of treating it as a passing floor).
        values = list(self.latencies_us.values())
        return float(np.percentile(values, q)) if values else float("nan")

    @property
    def p50_latency_us(self) -> float:
        return self._percentile(50)

    @property
    def p99_latency_us(self) -> float:
        return self._percentile(99)

    @property
    def p999_latency_us(self) -> float:
        return self._percentile(99.9)

    def summary(self) -> Dict[str, object]:
        """Flat record for tables/JSON (one chaos-scenario row)."""
        counts = self.counts()
        return {
            "seed": self.seed,
            "requests": self.num_requests,
            "availability": round(self.availability, 4),
            "goodput_rps": round(self.goodput_rps, 1),
            "shed_rate": round(self.shed_rate, 4),
            "ok": counts[OUTCOME_OK],
            "failed": counts[OUTCOME_FAILED],
            "timed_out": counts[OUTCOME_TIMED_OUT],
            "shed": counts[OUTCOME_SHED],
            "p50_latency_us": round(self.p50_latency_us, 1),
            "p99_latency_us": round(self.p99_latency_us, 1),
            "p999_latency_us": round(self.p999_latency_us, 1),
            "failovers": self.failovers,
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "injected_failures": self.injected_failures,
            "per_class": self.per_class(),
        }


def simulate_chaos(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    plan: FaultPlan,
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    bucketing: str = "ladder",
    max_queue_depth: Optional[int] = None,
    shed_policy: str = "reject-newest",
    failure_threshold: int = 3,
    probe_interval: int = 4,
) -> ChaosSimReport:
    """Replay a fault + overload scenario through the continuous scheduler.

    The measurement surface of the fault-tolerance layer: the executor runs
    the same window-free FCFS chunk policy as ``simulate_serving``'s
    continuous mode, but consults a :class:`~repro.serving.faults.FaultPlan`
    per (backend, call index) — a failed attempt costs its modelled time
    and the executor walks down the dispatch ranking exactly like
    :meth:`KernelDispatcher.execute` (circuit breaker included:
    ``failure_threshold`` consecutive failures quarantine a backend,
    ``probe_interval`` passed-over executes later it gets one probe).
    Admission control (``max_queue_depth`` / ``shed_policy``) sheds under
    overload, and deadlines are enforced both at scheduling time (expired
    requests never occupy a batch slot) and at completion time (a chunk
    finishing past a member's deadline reports it ``timed_out``).

    Deterministic end to end: no wall-clock, no global RNG — the same
    inputs replay to the identical :class:`ChaosSimReport`.
    """
    if bucketing not in {"ladder", "exact"}:
        raise ValueError(f"unknown bucketing {bucketing!r}; use 'ladder' or 'exact'")
    if shed_policy not in SHED_POLICIES:
        raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}")
    if max_queue_depth is not None and max_queue_depth < 1:
        raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
    if failure_threshold < 1 or probe_interval < 1:
        raise ValueError("failure_threshold and probe_interval must be >= 1")
    if not requests:
        raise ValueError("requests must be non-empty")
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    batcher = batcher if batcher is not None else ShapeBucketBatcher()

    def bucket_tokens(tokens: int) -> int:
        return tokens if bucketing == "exact" else batcher.token_bucket(tokens)

    trace = ExecutionTrace()
    outcomes: Dict[str, str] = {}
    latencies: Dict[str, float] = {}
    report = ChaosSimReport(seed=plan.seed, num_requests=len(requests), makespan_us=0.0)
    report.classes = {req.request_id: req.priority_class for req in requests}
    # Modelled executor health state (mirrors KernelDispatcher's breaker).
    calls: Dict[str, int] = {}
    streaks: Dict[str, int] = {}
    quarantine: Dict[str, int] = {}
    gpu_free_us = 0.0
    makespan_us = 0.0

    def execute_chunk(key: BucketKey, chunk: List[SimulatedRequest], ready_us: float) -> None:
        nonlocal gpu_free_us, makespan_us
        c_total = len(chunk) * key.token_bucket
        decision = dispatcher.dispatch(operand, key.token_bucket)
        ranked = [decision.backend] + [
            name for name, _ in decision.ranking if name != decision.backend
        ]
        admitted: List[str] = []
        deferred: List[str] = []
        for name in ranked:
            remaining = quarantine.get(name)
            if remaining is None or remaining <= 0:
                admitted.append(name)
            else:
                quarantine[name] = remaining - 1
                deferred.append(name)
        start_us = max(ready_us, gpu_free_us)
        elapsed_us = 0.0
        served: Optional[str] = None
        first_failed = False
        for name in admitted + deferred:
            index = calls.get(name, 0)
            calls[name] = index + 1
            fault = plan.decide(name, index)
            modelled = dispatcher.estimate(operand, c_total, backend=name)
            elapsed_us += modelled.time_us + fault.latency_us
            report.injected_latency_us += fault.latency_us
            if fault.fail:
                report.injected_failures += 1
                first_failed = True
                streaks[name] = streaks.get(name, 0) + 1
                if name in quarantine:
                    quarantine[name] = probe_interval
                elif streaks[name] >= failure_threshold:
                    quarantine[name] = probe_interval
                    report.quarantines += 1
                continue
            streaks.pop(name, None)
            if name in quarantine:
                del quarantine[name]
                report.readmissions += 1
            if first_failed:
                report.failovers += 1
            served = name
            execution = modelled.as_execution(category="gemm")
            execution.meta.update(
                {
                    "backend": name,
                    "batch_size": len(chunk),
                    "token_bucket": key.token_bucket,
                    "start_us": start_us,
                }
            )
            trace.record(execution)
            break
        finish_us = start_us + elapsed_us
        gpu_free_us = finish_us
        makespan_us = max(makespan_us, finish_us)
        for req in chunk:
            if served is None:
                outcomes[req.request_id] = OUTCOME_FAILED
            elif req.deadline_us is not None and finish_us > req.deadline_us:
                outcomes[req.request_id] = OUTCOME_TIMED_OUT
            else:
                outcomes[req.request_id] = OUTCOME_OK
                latencies[req.request_id] = finish_us - req.arrival_us

    order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
    pending: List[SimulatedRequest] = []
    admitted_idx = 0
    while admitted_idx < len(order) or pending:
        now_us = gpu_free_us
        if not pending and admitted_idx < len(order) and order[admitted_idx].arrival_us > now_us:
            now_us = order[admitted_idx].arrival_us
        while admitted_idx < len(order) and order[admitted_idx].arrival_us <= now_us:
            req = order[admitted_idx]
            admitted_idx += 1
            if max_queue_depth is not None and len(pending) >= max_queue_depth:
                if shed_policy == SHED_DROP_EXPIRED:
                    doomed = [
                        p
                        for p in pending
                        if p.deadline_us is not None and p.deadline_us < req.arrival_us
                    ]
                    if doomed:
                        gone = {p.request_id for p in doomed}
                        pending = [p for p in pending if p.request_id not in gone]
                        for p in doomed:
                            outcomes[p.request_id] = OUTCOME_TIMED_OUT
                if max_queue_depth is not None and len(pending) >= max_queue_depth:
                    outcomes[req.request_id] = OUTCOME_SHED
                    continue
            pending.append(req)
        # Scheduling-time deadline enforcement: expired requests never
        # occupy a batch slot.
        expired = [p for p in pending if p.deadline_us is not None and p.deadline_us < now_us]
        if expired:
            gone = {p.request_id for p in expired}
            pending = [p for p in pending if p.request_id not in gone]
            for p in expired:
                outcomes[p.request_id] = OUTCOME_TIMED_OUT
        if not pending:
            continue
        key, chunk = plan_continuous_batch(
            pending,
            key_of=lambda r: BucketKey(features=operand.k, token_bucket=bucket_tokens(r.tokens)),
            arrival_of=lambda r: r.arrival_us,
            id_of=lambda r: r.request_id,
            max_batch_size=batcher.max_batch_size,
        )
        taken = {r.request_id for r in chunk}
        pending = [r for r in pending if r.request_id not in taken]
        execute_chunk(key, chunk, now_us)

    report.makespan_us = makespan_us
    report.outcomes = outcomes
    report.latencies_us = latencies
    report.trace = trace
    return report


@dataclass
class SLOSimReport:
    """Outcome of one SLO-scheduling run: per-class tails, sheds, violations.

    The per-class counterpart of :class:`ChaosSimReport` (same outcome
    vocabulary, same NaN-on-empty percentile convention): everything the
    brownout/overload sweeps read — shed and deadline-violation rates and
    p50/p99/p999 completion latency — is available both globally and
    broken out by priority class (:meth:`per_class`).  Deterministic: the
    same (requests, scheduling, knobs) replays to the identical report.
    """

    policy: str
    num_requests: int
    makespan_us: float
    load_factor: float = 1.0
    num_batches: int = 0
    #: Terminal state per request id (one of OUTCOME_STATES).
    outcomes: Dict[str, str] = field(default_factory=dict)
    #: Completion latency (finish - arrival) of the ok requests only.
    latencies_us: Dict[str, float] = field(default_factory=dict)
    #: Priority class per request id.
    classes: Dict[str, int] = field(default_factory=dict)
    #: Classes the scheduling config names (normalizes :meth:`per_class`).
    num_classes: int = 1
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)

    def counts(self) -> Dict[str, int]:
        """Requests per terminal state (all four keys always present)."""
        out = {state: 0 for state in OUTCOME_STATES}
        for status in self.outcomes.values():
            out[status] += 1
        return out

    def per_class(self) -> Dict[int, Dict[str, object]]:
        """Per-priority-class counts/rates/percentiles, normalized (zeroed
        blocks for configured-but-unused classes)."""
        return per_class_breakdown(
            self.outcomes, self.classes, self.latencies_us, self.num_classes
        )

    @property
    def availability(self) -> float:
        """Fraction of requests that completed ``ok``."""
        return self.counts()[OUTCOME_OK] / self.num_requests if self.num_requests else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of requests refused by admission control."""
        return self.counts()[OUTCOME_SHED] / self.num_requests if self.num_requests else 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of requests that missed their deadline."""
        return (
            self.counts()[OUTCOME_TIMED_OUT] / self.num_requests
            if self.num_requests
            else 0.0
        )

    def _percentile(self, q: float) -> float:
        values = list(self.latencies_us.values())
        return float(np.percentile(values, q)) if values else float("nan")

    @property
    def p50_latency_us(self) -> float:
        return self._percentile(50)

    @property
    def p99_latency_us(self) -> float:
        return self._percentile(99)

    @property
    def p999_latency_us(self) -> float:
        return self._percentile(99.9)

    def summary(self) -> Dict[str, object]:
        """Flat record for tables/JSON (one row of an overload sweep)."""
        counts = self.counts()
        return {
            "policy": self.policy,
            "load_factor": self.load_factor,
            "requests": self.num_requests,
            "batches": self.num_batches,
            "availability": round(self.availability, 4),
            "shed_rate": round(self.shed_rate, 4),
            "violation_rate": round(self.violation_rate, 4),
            "ok": counts[OUTCOME_OK],
            "timed_out": counts[OUTCOME_TIMED_OUT],
            "shed": counts[OUTCOME_SHED],
            "p50_latency_us": round(self.p50_latency_us, 1),
            "p99_latency_us": round(self.p99_latency_us, 1),
            "p999_latency_us": round(self.p999_latency_us, 1),
            "per_class": self.per_class(),
        }


def simulate_slo(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    scheduling: Optional[SchedulingConfig] = None,
    dispatcher: Optional[KernelDispatcher] = None,
    batcher: Optional[ShapeBucketBatcher] = None,
    bucketing: str = "ladder",
    max_queue_depth: Optional[int] = None,
    shed_policy: str = "reject-newest",
    load_factor: float = 1.0,
) -> SLOSimReport:
    """Replay a traffic trace through the real SLO scheduler, per class.

    The capacity-question surface of SLO-aware scheduling: the executor
    runs the same serial modelled-GPU clock as ``simulate_serving``'s
    continuous mode, but chunk selection is :func:`plan_slo_batch` under
    ``scheduling`` — the *identical* planner the live
    :class:`~repro.serving.continuous.ContinuousBatcher` schedules with,
    weighted-fair deficit state included — and admission control applies
    the same per-class queue bounds
    (:meth:`SchedulingConfig.queue_bound_of`).  Deadlines are enforced at
    scheduling time (expired requests never occupy a slot) and at
    completion time; both report ``timed_out`` — the *violations* of the
    per-class SLO report.

    ``load_factor`` compresses the trace's arrival times by that factor
    (deadline offsets preserved), so overload and brownout behaviour can
    be swept from one base trace (:func:`sweep_slo_overload`).
    Deterministic end to end: no wall clock, no global RNG.
    """
    if bucketing not in {"ladder", "exact"}:
        raise ValueError(f"unknown bucketing {bucketing!r}; use 'ladder' or 'exact'")
    if shed_policy not in SHED_POLICIES:
        raise ValueError(f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}")
    if max_queue_depth is not None and max_queue_depth < 1:
        raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
    if load_factor <= 0:
        raise ValueError("load_factor must be positive")
    if not requests:
        raise ValueError("requests must be non-empty")
    scheduling = scheduling if scheduling is not None else SchedulingConfig()
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    batcher = batcher if batcher is not None else ShapeBucketBatcher()
    if load_factor != 1.0:
        requests = [
            SimulatedRequest(
                request_id=r.request_id,
                tokens=r.tokens,
                arrival_us=r.arrival_us / load_factor,
                deadline_us=(
                    r.arrival_us / load_factor + (r.deadline_us - r.arrival_us)
                    if r.deadline_us is not None
                    else None
                ),
                priority_class=r.priority_class,
            )
            for r in requests
        ]

    def bucket_tokens(tokens: int) -> int:
        return tokens if bucketing == "exact" else batcher.token_bucket(tokens)

    trace = ExecutionTrace()
    outcomes: Dict[str, str] = {}
    latencies: Dict[str, float] = {}
    served_by_class: Dict[int, int] = {}
    pending_by_class: Dict[int, int] = {}
    gpu_free_us = 0.0
    makespan_us = 0.0
    num_batches = 0

    def over_capacity(cls: int, queued: int) -> bool:
        if max_queue_depth is not None and queued >= max_queue_depth:
            return True
        bound = scheduling.queue_bound_of(cls, max_queue_depth)
        return bound is not None and pending_by_class.get(cls, 0) >= bound

    def drop(reqs: List[SimulatedRequest], pending: List[SimulatedRequest]):
        gone = {r.request_id for r in reqs}
        for r in reqs:
            pending_by_class[r.priority_class] -= 1
        return [p for p in pending if p.request_id not in gone]

    def execute_chunk(key: BucketKey, chunk: List[SimulatedRequest], ready_us: float) -> None:
        nonlocal gpu_free_us, makespan_us, num_batches
        c_total = len(chunk) * key.token_bucket
        decision = dispatcher.dispatch(operand, key.token_bucket)
        modelled = dispatcher.estimate(operand, c_total, backend=decision.backend)
        start_us = max(ready_us, gpu_free_us)
        finish_us = start_us + modelled.time_us
        gpu_free_us = finish_us
        makespan_us = max(makespan_us, finish_us)
        num_batches += 1
        execution = modelled.as_execution(category="gemm")
        execution.meta.update(
            {
                "backend": decision.backend,
                "batch_size": len(chunk),
                "token_bucket": key.token_bucket,
                "start_us": start_us,
            }
        )
        trace.record(execution)
        for req in chunk:
            if req.deadline_us is not None and finish_us > req.deadline_us:
                outcomes[req.request_id] = OUTCOME_TIMED_OUT
            else:
                outcomes[req.request_id] = OUTCOME_OK
                latencies[req.request_id] = finish_us - req.arrival_us

    order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
    pending: List[SimulatedRequest] = []
    admitted_idx = 0
    while admitted_idx < len(order) or pending:
        now_us = gpu_free_us
        if not pending and admitted_idx < len(order) and order[admitted_idx].arrival_us > now_us:
            now_us = order[admitted_idx].arrival_us
        while admitted_idx < len(order) and order[admitted_idx].arrival_us <= now_us:
            req = order[admitted_idx]
            admitted_idx += 1
            cls = req.priority_class
            if over_capacity(cls, len(pending)):
                if shed_policy == SHED_DROP_EXPIRED:
                    doomed = [
                        p
                        for p in pending
                        if p.deadline_us is not None and p.deadline_us < req.arrival_us
                    ]
                    if doomed:
                        pending = drop(doomed, pending)
                        for p in doomed:
                            outcomes[p.request_id] = OUTCOME_TIMED_OUT
                if over_capacity(cls, len(pending)):
                    outcomes[req.request_id] = OUTCOME_SHED
                    continue
            pending.append(req)
            pending_by_class[cls] = pending_by_class.get(cls, 0) + 1
        # Scheduling-time deadline enforcement.
        expired = [p for p in pending if p.deadline_us is not None and p.deadline_us < now_us]
        if expired:
            pending = drop(expired, pending)
            for p in expired:
                outcomes[p.request_id] = OUTCOME_TIMED_OUT
        if not pending:
            continue
        key, chunk = plan_slo_batch(
            pending,
            key_of=lambda r: BucketKey(features=operand.k, token_bucket=bucket_tokens(r.tokens)),
            arrival_of=lambda r: r.arrival_us,
            id_of=lambda r: r.request_id,
            max_batch_size=batcher.max_batch_size,
            class_of=lambda r: r.priority_class,
            deadline_of=lambda r: r.deadline_us,
            policy=scheduling.policy,
            class_weights=scheduling.class_weights,
            served_by_class=served_by_class,
        )
        pending = drop(chunk, pending)
        for req in chunk:
            served_by_class[req.priority_class] = (
                served_by_class.get(req.priority_class, 0) + 1
            )
        execute_chunk(key, chunk, now_us)

    return SLOSimReport(
        policy=scheduling.policy,
        num_requests=len(requests),
        makespan_us=makespan_us,
        load_factor=load_factor,
        num_batches=num_batches,
        outcomes=outcomes,
        latencies_us=latencies,
        classes={req.request_id: req.priority_class for req in requests},
        num_classes=scheduling.num_classes,
        trace=trace,
    )


def sweep_slo_overload(
    operand: SpmmOperand,
    requests: Sequence[SimulatedRequest],
    load_factors: Sequence[float],
    scheduling: Optional[SchedulingConfig] = None,
    dispatcher: Optional[KernelDispatcher] = None,
    **kwargs,
) -> List[SLOSimReport]:
    """Overload/brownout sweep: one :func:`simulate_slo` run per load factor.

    Each factor compresses the base trace's arrival times by that much
    (2.0 = twice the offered load), so a single seeded trace answers the
    brownout question — *which class sheds, and whose tail blows up, as
    load climbs past capacity?*  A shared dispatcher keeps the
    decision/tuner caches warm across the sweep, mirroring a long-running
    server.
    """
    if not load_factors:
        raise ValueError("load_factors must be non-empty")
    dispatcher = dispatcher if dispatcher is not None else KernelDispatcher()
    return [
        simulate_slo(
            operand,
            requests,
            scheduling=scheduling,
            dispatcher=dispatcher,
            load_factor=factor,
            **kwargs,
        )
        for factor in load_factors
    ]
