"""The serving execution front-end.

``ServingEngine`` glues the pieces into a request/response loop around one
sparse operator (a pruned weight and optional bias — one ``SparseLinear``'s
worth of work, which is what LLM serving fans out millions of times):

1. requests are queued into the :class:`~repro.serving.batcher.ShapeBucketBatcher`;
2. ``flush`` drains the queue into shape-bucketed micro-batches, executes
   each as one batched 3-D kernel call through the (warmed)
   :class:`~repro.kernels.dispatch.KernelDispatcher`, and splits the result
   back per request;
3. every batched call is also recorded into an
   :class:`~repro.hardware.trace.ExecutionTrace` with the dispatched
   backend's modelled time at the batch's true column count, so serving
   runs produce the same trace records the evaluation harness aggregates.

Because every request executes at its bucket shape and the dispatcher's
batched path is slab-bit-exact, ``serve(requests)`` returns bit-identical
outputs whether the requests arrive together, in any order, or one by one —
and under any of the three scheduling drivers defined here (whole-window
``flush``, async-window ``poll``, continuous ``step``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from .batcher import MicroBatch, Request, ShapeBucketBatcher
from .config import ServingConfig
from .continuous import CompletionRecord
from .faults import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOME_TIMED_OUT,
    RequestOutcome,
    outcome_counts,
)
from ..formats.vnm import VNMSparseMatrix
from ..hardware.trace import ExecutionTrace
from ..kernels.dispatch import (
    BackendExecutionError,
    KernelDispatcher,
    SpmmOperand,
    default_dispatcher,
)


def admission_stats_of(batcher) -> Dict[str, object]:
    """The batcher's admission counters, normalized to one schema.

    Engines' ``stats()['admission']`` always carries these keys: batchers
    without admission control (plain :class:`ShapeBucketBatcher`, async
    windows) report zeroed counters with ``shed_policy: None`` rather than
    the key going missing — consumers keyed on ``stats()['admission']``
    must not break when the serving policy changes underneath them.
    """
    stats_fn = getattr(batcher, "admission_stats", None)
    if stats_fn is not None:
        return stats_fn()
    return {
        "max_queue_depth": None,
        "shed_policy": None,
        "shed": 0,
        "expired": 0,
        "pending": getattr(batcher, "pending", 0),
        "kv_budget_blocks": None,
        "kv_reserved": 0,
        "occupied_slots": 0,
        "policy": None,
        "per_class": {0: {"shed": 0, "expired": 0, "pending": 0}},
    }


def continuous_stats_of(engine) -> Dict[str, object]:
    """The step-loop counters every engine's ``stats()['continuous']`` emits.

    Same normalization contract as :func:`admission_stats_of`: the key is
    always present with the same schema, zeroed when the engine has never
    stepped."""
    return {
        "steps": getattr(engine, "steps_executed", 0),
        "completions": len(getattr(engine, "completions", ())),
    }


def sharding_stats_of(dispatcher) -> Dict[str, object]:
    """The shard-topology block every engine's ``stats()['sharding']`` emits.

    Same normalization contract as :func:`admission_stats_of`: a sharded
    dispatcher reports its per-shard load, placement quality and modelled
    communication; a plain single-device dispatcher reports the zeroed
    ``tp_degree=1`` schema rather than the key going missing.
    """
    stats_fn = getattr(dispatcher, "sharding_stats", None)
    if stats_fn is not None:
        return stats_fn()
    return {
        "tp_degree": 1,
        "placement_policy": None,
        "per_shard_calls": [],
        "per_shard_modelled_us": [],
        "load_balance": None,
        "cut_bytes_per_token": 0.0,
        "comm_time_us": 0.0,
        "comm_events": 0,
    }


class StackBufferPool:
    """Reusable float32 stacking buffers, keyed by exact shape.

    The engines stack every micro-batch into a fresh zeroed tensor; under
    continuous serving that is one or two allocations per step for the same
    handful of (batch, bucket) shapes.  The pool hands back the same buffer
    for the same shape instead.  Numerics-free by construction: the
    ``MicroBatch`` stackers *fully* overwrite a provided buffer (valid
    cells, then explicit zero padding), so pooled and fresh buffers hold
    identical values, and no kernel backend retains a reference to its RHS
    (they all convert or copy), so reuse across steps cannot alias.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffers: Dict[tuple, np.ndarray] = {}

    def take(self, shape: tuple) -> np.ndarray:
        """A float32 buffer of ``shape`` (contents arbitrary — overwrite it)."""
        buf = self._buffers.get(shape)
        if buf is None:
            if len(self._buffers) >= self.capacity:
                self._buffers.clear()
            buf = np.empty(shape, dtype=np.float32)
            self._buffers[shape] = buf
        return buf


class OutcomeTrackingMixin:
    """Fault-tolerant batch execution and per-request outcome bookkeeping.

    Host classes provide ``batcher`` and ``_execute_batch`` and initialise
    ``outcomes`` (a ``{request_id: RequestOutcome}`` dict).  The mixin
    wraps ``_execute_batch`` into :meth:`_run_batch`, which

    * screens **poisoned payloads** — a request whose activations are
      non-finite is recorded ``failed`` and removed before the batched
      forward, so it can never leak NaN into its batchmates' rows;
    * isolates **execution failures** — when every dispatch candidate
      fails (:class:`~repro.kernels.dispatch.BackendExecutionError`), the
      micro-batch is bisected and each half retried, narrowing down to the
      poisonous request(s); since batched execution is bit-identical to
      sequential execution, the surviving requests' outputs are unchanged
      by the split;
    * records a :class:`~repro.serving.faults.RequestOutcome` per request
      (``ok`` / ``failed`` here; the deadline and admission hooks below
      add ``timed_out`` / ``shed``).

    Only ``BackendExecutionError`` is treated as a request-level fault;
    configuration errors (shape mismatches, routing guards) still raise.
    """

    def _record_outcome(
        self, request_id: str, status: str, detail: str = "", now_us: float = 0.0
    ) -> None:
        self.outcomes[request_id] = RequestOutcome(
            request_id=request_id, status=status, detail=detail, completed_us=float(now_us)
        )

    def _run_batch(self, batch: MicroBatch, now_us: float = 0.0) -> Dict[str, np.ndarray]:
        """Execute one micro-batch tolerantly; returns the ok requests' outputs."""
        healthy = []
        for req in batch.requests:
            if np.isfinite(req.activations).all():
                healthy.append(req)
            else:
                self._record_outcome(
                    req.request_id,
                    OUTCOME_FAILED,
                    "non-finite payload isolated from its micro-batch",
                    now_us,
                )
        results: Dict[str, np.ndarray] = {}
        if healthy:
            if len(healthy) < batch.batch_size:
                batch = MicroBatch(key=batch.key, requests=healthy)
            self._run_tolerant(batch, now_us, results)
        return results

    def _run_tolerant(
        self, batch: MicroBatch, now_us: float, results: Dict[str, np.ndarray]
    ) -> None:
        try:
            out = self._execute_batch(batch)
        except BackendExecutionError as exc:
            if batch.batch_size == 1:
                req = batch.requests[0]
                self._record_outcome(req.request_id, OUTCOME_FAILED, str(exc), now_us)
                return
            # Bisect: batched == sequential bit-exactness means re-running a
            # half reproduces its requests' bits exactly, so isolation never
            # perturbs the survivors.
            mid = batch.batch_size // 2
            self._run_tolerant(MicroBatch(key=batch.key, requests=batch.requests[:mid]), now_us, results)
            self._run_tolerant(MicroBatch(key=batch.key, requests=batch.requests[mid:]), now_us, results)
            return
        for req in batch.requests:
            self._record_outcome(req.request_id, OUTCOME_OK, "", now_us)
        results.update(out)

    def _expire_pending(self, now_us: float) -> None:
        """Evict deadline-passed queued requests, recording ``timed_out``.

        The outcome's clock is the request's own deadline (the instant it
        became undeliverable), so the record is invariant to how late the
        driver's next step happened to run.
        """
        expire_due = getattr(self.batcher, "expire_due", None)
        if expire_due is None:
            return
        for req in expire_due(now_us):
            self._record_outcome(
                req.request_id,
                OUTCOME_TIMED_OUT,
                f"deadline {req.deadline_us:.1f}us passed before execution",
                req.deadline_us,
            )

    def _drain_admission(self) -> None:
        """Collect shed/evicted requests from an admission-control batcher."""
        take_shed = getattr(self.batcher, "take_shed", None)
        if take_shed is not None:
            for req in take_shed():
                self._record_outcome(
                    req.request_id,
                    OUTCOME_SHED,
                    "rejected by admission control (queue full)",
                    req.arrival_us,
                )
        take_expired = getattr(self.batcher, "take_expired", None)
        if take_expired is not None:
            for req in take_expired():
                self._record_outcome(
                    req.request_id,
                    OUTCOME_TIMED_OUT,
                    "evicted by drop-expired shedding",
                    req.deadline_us if req.deadline_us is not None else req.arrival_us,
                )

    def outcome_stats(self) -> Dict[str, int]:
        """Outcome counts per terminal state (all four keys present)."""
        return outcome_counts(self.outcomes.values())


class ContinuousDriverMixin:
    """The continuous-batching step loop shared by the serving engines.

    Host classes provide ``batcher``, ``submit`` and ``_execute_batch``
    (and initialise ``steps_executed`` / ``completions``); the mixin turns
    a step-schedulable batcher
    (:class:`~repro.serving.continuous.ContinuousBatcher`) into the
    continuous serving loop: admission between steps, deterministic
    re-bucketing, one batched (masked) forward per step.  Like the async
    windows, the policy is scheduling-only — outputs stay bit-identical to
    a single-window ``serve`` of the same request set, for every arrival
    interleaving and step cadence.
    """

    def step(self, now_us: float) -> Dict[str, np.ndarray]:
        """Execute at most one micro-batch at ``now_us``.

        Admits nothing itself — callers ``submit`` arrivals between steps
        (that is the continuous-batching contract: a request submitted
        before this call joins its rung's chunk immediately, even though
        its batchmates have been queued since earlier steps).  Returns the
        completed requests' outputs (``{}`` on an idle step) and records a
        :class:`~repro.serving.continuous.CompletionRecord` per completed
        request in :attr:`completions`.
        """
        next_batch = getattr(self.batcher, "next_batch", None)
        if next_batch is None:
            raise TypeError(
                "step() needs a step-schedulable batcher (ContinuousBatcher); "
                "use flush() with a plain ShapeBucketBatcher or poll() with an "
                "AsyncWindowBatcher"
            )
        # Outcome hooks: collect what admission control shed at submit time
        # and evict deadline-passed requests before they occupy batch slots.
        self._drain_admission()
        self._expire_pending(now_us)
        batch = next_batch(now_us)
        if batch is None:
            return {}
        results = self._run_batch(batch, now_us)
        step_index = self.steps_executed
        self.steps_executed += 1
        for req in batch.requests:
            # CompletionRecords describe *successful* completions; failed
            # batchmates get a RequestOutcome instead.
            if req.request_id not in results:
                continue
            self.completions[req.request_id] = CompletionRecord(
                request_id=req.request_id,
                step=step_index,
                completed_us=float(now_us),
                rung=batch.key.token_bucket,
                batch_size=batch.batch_size,
                arrival_us=req.arrival_us,
            )
        return results

    def serve_continuous(
        self, requests: Iterable[Request], step_us: Optional[float] = None
    ) -> Dict[str, np.ndarray]:
        """Replay requests against their arrival clock through the step loop.

        The continuous counterpart of ``serve_arrivals``: the clock opens at
        the first arrival, each iteration admits every request that has
        arrived by ``now``, and :meth:`step` executes one micro-batch;
        after an executed step the clock advances by ``step_us`` (the step
        cadence — ``0.0`` means steps run back to back; ``None`` reads the
        engine config's ``step_us``), and an idle step
        jumps the clock to the next pending arrival.  Runs until every
        request has completed — including requests ``submit``-ted directly
        onto the engine beforehand (their ``arrival_us`` is honoured via
        the batcher's ``next_event_us``, mirroring how ``serve_arrivals``
        drains pre-queued deadlines).

        Intake is streaming, not atomic: each request is validated when its
        arrival is admitted, so a malformed request fails at its own
        arrival after earlier requests have already been served.
        """
        if step_us is None:
            config = getattr(self, "config", None)
            step_us = config.step_us if config is not None else 0.0
        if step_us < 0:
            raise ValueError("step_us must be non-negative")
        if not hasattr(self.batcher, "next_batch"):
            raise TypeError(
                "serve_continuous() needs a step-schedulable batcher "
                "(ContinuousBatcher.ladder() / ContinuousBatcher.exact_length())"
            )
        queue = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        results: Dict[str, np.ndarray] = {}
        now = queue[0].arrival_us if queue else 0.0
        admitted = 0
        while admitted < len(queue) or self.batcher.pending:
            while admitted < len(queue) and queue[admitted].arrival_us <= now:
                self.submit(queue[admitted])
                admitted += 1
            out = self.step(now)
            if out:
                results.update(out)
                now += step_us
            else:
                # Idle step: nothing arrived yet — jump to the earliest
                # upcoming arrival (explicit list or pre-queued on the
                # batcher).  Both are strictly > now, so the loop advances.
                upcoming = [
                    t
                    for t in (
                        queue[admitted].arrival_us if admitted < len(queue) else None,
                        self.batcher.next_event_us(),
                    )
                    if t is not None
                ]
                if not upcoming:
                    break
                now = max(now, min(upcoming))
        return results


class AsyncDriverMixin:
    """The async window drivers shared by the serving engines.

    Host classes provide ``batcher``, ``submit`` and ``_execute_batch``;
    the mixin turns a deadline-aware batcher
    (:class:`~repro.serving.batcher.AsyncWindowBatcher`) into a polling
    loop.  Window timing only changes *when* a request executes, never its
    numbers, so outputs stay bit-identical to a single-window ``serve`` of
    the same request set.
    """

    def poll(self, now_us: float) -> Dict[str, np.ndarray]:
        """Execute only the async windows that are due at ``now_us``.

        Buckets whose oldest request has not yet waited out the window stay
        queued for a later poll (or a final ``flush``).
        """
        drain_due = getattr(self.batcher, "drain_due", None)
        if drain_due is None:
            raise TypeError(
                "poll() needs a deadline-aware batcher (AsyncWindowBatcher); "
                "use flush() with a plain ShapeBucketBatcher"
            )
        self._expire_pending(now_us)
        results: Dict[str, np.ndarray] = {}
        for batch in drain_due(now_us):
            results.update(self._run_batch(batch, now_us))
        return results

    def serve_arrivals(self, requests: Iterable[Request]) -> Dict[str, np.ndarray]:
        """Replay requests against their arrival clock through async windows.

        Each request is submitted at its ``arrival_us`` (closing any windows
        due by then), and the remaining deadlines are polled once arrivals
        are exhausted.
        """
        results: Dict[str, np.ndarray] = {}
        for request in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
            results.update(self.poll(request.arrival_us))
            self.submit(request)
        while True:
            deadline = self.batcher.next_deadline_us()
            if deadline is None:
                break
            results.update(self.poll(deadline))
        return results


class ServingEngine(OutcomeTrackingMixin, AsyncDriverMixin, ContinuousDriverMixin):
    """Dynamic-batching server for one sparse linear operator.

    Three scheduling drivers share the one execution path (and therefore
    the bit-exactness guarantee): ``flush``/``serve`` close whole windows,
    ``poll``/``serve_arrivals`` close async arrival-deadline windows
    (:class:`~repro.serving.batcher.AsyncWindowBatcher`), and
    ``step``/``serve_continuous`` run the continuous-batching step loop
    (:class:`~repro.serving.continuous.ContinuousBatcher`).

    Parameters
    ----------
    operand:
        The sparse LHS, either an :class:`SpmmOperand` or a bare
        :class:`VNMSparseMatrix` (wrapped automatically).
    bias:
        Optional output bias fused into every request's result.
    dispatcher:
        Kernel dispatcher to execute through (defaults to the shared
        process-wide one).
    batcher:
        Shape-bucketing batcher (defaults to the standard bucket ladder).
    warm:
        When True (default) the operand's execution plan is built eagerly
        so the first window does not pay operand preparation.
    warm_buckets:
        Token-bucket sizes whose dispatch decisions are pre-ranked at
        construction, so the first request of those shapes also skips the
        cost-model sweep (pass the bucket ladder you expect traffic on).
    config:
        A :class:`~repro.serving.config.ServingConfig` consolidating the
        knobs above: it supplies the default batcher (per its
        ``scheduling`` mode), name, warming policy and — when its sharding
        block is enabled — a sharded dispatcher.  Explicitly passed
        ``dispatcher``/``batcher`` win over the config's defaults.
    """

    def __init__(
        self,
        operand,
        bias: Optional[np.ndarray] = None,
        dispatcher: Optional[KernelDispatcher] = None,
        batcher: Optional[ShapeBucketBatcher] = None,
        warm: bool = True,
        warm_buckets: Sequence[int] = (),
        name: str = "serving",
        config: Optional["ServingConfig"] = None,
    ) -> None:
        self.config = config
        if config is not None:
            name = config.name or name
            warm = config.warm
            warm_buckets = config.warm_buckets or warm_buckets
            if batcher is None:
                batcher = config.build_batcher(kind="operand")
            if dispatcher is None:
                dispatcher = config.build_dispatcher(name=name)
        if isinstance(operand, VNMSparseMatrix):
            operand = SpmmOperand.from_vnm(operand, name=name)
        if not isinstance(operand, SpmmOperand):
            raise TypeError("operand must be an SpmmOperand or VNMSparseMatrix")
        self.operand = operand
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float32)
        self.dispatcher = dispatcher if dispatcher is not None else default_dispatcher()
        self.batcher = batcher if batcher is not None else ShapeBucketBatcher()
        self.name = name
        self.trace = ExecutionTrace()
        self.total_requests = 0
        self.total_batches = 0
        #: Continuous-serving bookkeeping (populated by the step loop).
        self.steps_executed = 0
        self.completions: Dict[str, CompletionRecord] = {}
        #: Per-request terminal states (ok / failed / timed_out / shed).
        self.outcomes: Dict[str, RequestOutcome] = {}
        self._stack_buffers = StackBufferPool()
        if warm:
            self.dispatcher.warm(self.operand, cs=warm_buckets)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    @classmethod
    def for_layer(cls, layer, **kwargs) -> "ServingEngine":
        """Build an engine serving a :class:`~repro.models.layers.SparseLinear`.

        Rejects layer types without a dispatchable operand up front (a
        ``DenseLinear`` used to die later with an opaque ``AttributeError``)
        and stamps the layer's input width on the engine so mismatched
        requests fail at intake with a readable message instead of deep
        inside the kernel with a broadcast error.
        """
        operand = getattr(layer, "operand", None)
        if not isinstance(operand, SpmmOperand):
            raise TypeError(
                f"for_layer needs a layer exposing a dispatchable SpmmOperand "
                f"(e.g. SparseLinear), got {type(layer).__name__}; wrap dense "
                f"layers' weights in an SpmmOperand and use ServingEngine(...) directly"
            )
        return cls(
            operand=operand,
            bias=layer.bias,
            dispatcher=kwargs.pop("dispatcher", layer.dispatcher),
            name=kwargs.pop("name", layer.name),
            **kwargs,
        )

    def submit(self, request: Request) -> None:
        """Queue one request for the next flush."""
        if request.features != self.operand.k:
            raise ValueError(
                f"request features ({request.features}) != operand K ({self.operand.k})"
            )
        self.batcher.submit(request)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(self, batch: MicroBatch) -> Dict[str, np.ndarray]:
        if batch.key.features != self.operand.k:
            # Requests that bypassed submit() (queued straight on the
            # batcher) used to surface here as an opaque broadcast error
            # deep inside the chosen kernel.
            raise ValueError(
                f"{self.name}: micro-batch feature width ({batch.key.features}) does not "
                f"match the served layer's input width (operand K = {self.operand.k}); "
                f"submit requests with activations of shape (tokens, {self.operand.k})"
            )
        rhs = batch.stacked_rhs(  # (B, K, C_bucket), pooled across steps
            out=self._stack_buffers.take(
                (batch.batch_size, batch.key.features, batch.key.token_bucket)
            )
        )
        out = self.dispatcher.execute(self.operand, rhs, bias=self.bias)
        decision = self.dispatcher.dispatch(self.operand, batch.key.token_bucket)
        modelled = self.dispatcher.estimate(
            self.operand, batch.padded_tokens, backend=decision.backend
        )
        execution = modelled.as_execution(category="gemm")
        execution.meta.update(
            {
                "serving": self.name,
                "backend": decision.backend,
                "batch_size": batch.batch_size,
                "token_bucket": batch.key.token_bucket,
            }
        )
        self.trace.record(execution)
        self.total_batches += 1
        self.total_requests += batch.batch_size
        return batch.split_output(out)

    def flush(self) -> Dict[str, np.ndarray]:
        """Execute everything queued; returns ``{request_id: output}``.

        Outputs have shape ``(tokens, R)`` per request (padding trimmed).
        """
        results: Dict[str, np.ndarray] = {}
        self._drain_admission()
        for batch in self.batcher.drain():
            results.update(self._run_batch(batch))
        return results

    def serve(self, requests: Iterable[Request]) -> Dict[str, np.ndarray]:
        """Convenience: submit a window's worth of requests and flush.

        Atomic on intake: the whole window is validated before anything is
        queued, so a rejected request cannot strand earlier ones in the
        queue to leak into an unrelated later flush.
        """
        batch = list(requests)
        for request in batch:
            if isinstance(request, Request) and request.features != self.operand.k:
                raise ValueError(
                    f"request features ({request.features}) != operand K ({self.operand.k})"
                )
        self.batcher.submit_many(batch)
        return self.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters + the modelled-kernel trace summary."""
        return {
            "requests": self.total_requests,
            "batches": self.total_batches,
            "mean_batch_size": (self.total_requests / self.total_batches)
            if self.total_batches
            else 0.0,
            "continuous": continuous_stats_of(self),
            "outcomes": self.outcome_stats(),
            "dispatch_health": self.dispatcher.health_stats(),
            "admission": admission_stats_of(self.batcher),
            "sharding": sharding_stats_of(self.dispatcher),
            "modelled_kernel_time_us": self.trace.total_time_us,
            "trace": self.trace.summary(),
        }
