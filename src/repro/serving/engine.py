"""The serving execution front-end.

``ServingEngine`` glues the pieces into a request/response loop around one
sparse operator (a pruned weight and optional bias — one ``SparseLinear``'s
worth of work, which is what LLM serving fans out millions of times):

1. requests are queued into the :class:`~repro.serving.batcher.ShapeBucketBatcher`;
2. ``flush`` drains the queue into shape-bucketed micro-batches, executes
   each as one batched 3-D kernel call through the (warmed)
   :class:`~repro.kernels.dispatch.KernelDispatcher`, and splits the result
   back per request;
3. every batched call is also recorded into an
   :class:`~repro.hardware.trace.ExecutionTrace` with the dispatched
   backend's modelled time at the batch's true column count, so serving
   runs produce the same trace records the evaluation harness aggregates.

Because every request executes at its bucket shape and the dispatcher's
batched path is slab-bit-exact, ``serve(requests)`` returns bit-identical
outputs whether the requests arrive together, in any order, or one by one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from .batcher import MicroBatch, Request, ShapeBucketBatcher
from ..formats.vnm import VNMSparseMatrix
from ..hardware.trace import ExecutionTrace
from ..kernels.dispatch import KernelDispatcher, SpmmOperand, default_dispatcher


class ServingEngine:
    """Dynamic-batching server for one sparse linear operator.

    Parameters
    ----------
    operand:
        The sparse LHS, either an :class:`SpmmOperand` or a bare
        :class:`VNMSparseMatrix` (wrapped automatically).
    bias:
        Optional output bias fused into every request's result.
    dispatcher:
        Kernel dispatcher to execute through (defaults to the shared
        process-wide one).
    batcher:
        Shape-bucketing batcher (defaults to the standard bucket ladder).
    warm:
        When True (default) the operand's execution plan is built eagerly
        so the first window does not pay operand preparation.
    warm_buckets:
        Token-bucket sizes whose dispatch decisions are pre-ranked at
        construction, so the first request of those shapes also skips the
        cost-model sweep (pass the bucket ladder you expect traffic on).
    """

    def __init__(
        self,
        operand,
        bias: Optional[np.ndarray] = None,
        dispatcher: Optional[KernelDispatcher] = None,
        batcher: Optional[ShapeBucketBatcher] = None,
        warm: bool = True,
        warm_buckets: Sequence[int] = (),
        name: str = "serving",
    ) -> None:
        if isinstance(operand, VNMSparseMatrix):
            operand = SpmmOperand.from_vnm(operand, name=name)
        if not isinstance(operand, SpmmOperand):
            raise TypeError("operand must be an SpmmOperand or VNMSparseMatrix")
        self.operand = operand
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float32)
        self.dispatcher = dispatcher if dispatcher is not None else default_dispatcher()
        self.batcher = batcher if batcher is not None else ShapeBucketBatcher()
        self.name = name
        self.trace = ExecutionTrace()
        self.total_requests = 0
        self.total_batches = 0
        if warm:
            self.dispatcher.warm(self.operand, cs=warm_buckets)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    @classmethod
    def for_layer(cls, layer, **kwargs) -> "ServingEngine":
        """Build an engine serving a :class:`~repro.models.layers.SparseLinear`."""
        return cls(
            operand=layer.operand,
            bias=layer.bias,
            dispatcher=kwargs.pop("dispatcher", layer.dispatcher),
            name=kwargs.pop("name", layer.name),
            **kwargs,
        )

    def submit(self, request: Request) -> None:
        """Queue one request for the next flush."""
        if request.features != self.operand.k:
            raise ValueError(
                f"request features ({request.features}) != operand K ({self.operand.k})"
            )
        self.batcher.submit(request)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_batch(self, batch: MicroBatch) -> Dict[str, np.ndarray]:
        rhs = batch.stacked_rhs()  # (B, K, C_bucket)
        out = self.dispatcher.execute(self.operand, rhs, bias=self.bias)
        decision = self.dispatcher.dispatch(self.operand, batch.key.token_bucket)
        modelled = self.dispatcher.estimate(
            self.operand, batch.padded_tokens, backend=decision.backend
        )
        execution = modelled.as_execution(category="gemm")
        execution.meta.update(
            {
                "serving": self.name,
                "backend": decision.backend,
                "batch_size": batch.batch_size,
                "token_bucket": batch.key.token_bucket,
            }
        )
        self.trace.record(execution)
        self.total_batches += 1
        self.total_requests += batch.batch_size
        return batch.split_output(out)

    def flush(self) -> Dict[str, np.ndarray]:
        """Execute everything queued; returns ``{request_id: output}``.

        Outputs have shape ``(tokens, R)`` per request (padding trimmed).
        """
        results: Dict[str, np.ndarray] = {}
        for batch in self.batcher.drain():
            results.update(self._execute_batch(batch))
        return results

    def serve(self, requests: Iterable[Request]) -> Dict[str, np.ndarray]:
        """Convenience: submit a window's worth of requests and flush.

        Atomic on intake: the whole window is validated before anything is
        queued, so a rejected request cannot strand earlier ones in the
        queue to leak into an unrelated later flush.
        """
        batch = list(requests)
        for request in batch:
            if isinstance(request, Request) and request.features != self.operand.k:
                raise ValueError(
                    f"request features ({request.features}) != operand K ({self.operand.k})"
                )
        self.batcher.submit_many(batch)
        return self.flush()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Counters + the modelled-kernel trace summary."""
        return {
            "requests": self.total_requests,
            "batches": self.total_batches,
            "mean_batch_size": (self.total_requests / self.total_batches)
            if self.total_batches
            else 0.0,
            "modelled_kernel_time_us": self.trace.total_time_us,
            "trace": self.trace.summary(),
        }
