"""One entry point per figure/table of the paper's evaluation.

Each function regenerates the data behind one figure or table (the mapping
is recorded in DESIGN.md's experiment index) and returns plain data
structures; the corresponding benchmark in ``benchmarks/`` runs the
function, prints the table and asserts the qualitative shape the paper
reports.  Keeping the logic here (rather than in the benchmarks) makes the
experiments importable from the examples and the tests as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .sweeps import dense_baseline, k_sweep, library_point, sparsity_sweep, spatha_point
from ..hardware.isa import SPARSE_MMA_SHAPES
from ..hardware.spec import GPUSpec, rtx3090
from ..kernels.common import GemmProblem
from ..kernels.spatha import Spatha, theoretical_speedup_cap
from ..kernels.spatha.config import default_config
from ..models.config import BERT_BASE, BERT_LARGE, GPT2_LARGE, GPT3_175B, ModelConfig
from ..models.latency import SparsityPlan, latency_breakdown_ms, model_inference_trace
from ..models.workloads import K_SWEEP, synthetic_bert_weight
from ..pruning.energy import energy_study
from ..pruning.masks import apply_mask
from ..pruning.second_order.obs_vnm import SecondOrderConfig, second_order_nm_prune, second_order_vnm_prune
from ..pruning.second_order.fisher import synthetic_gradients
from ..pruning.second_order.proxy import QuadraticTask
from ..pruning.vector_wise import vector_wise_mask


# ----------------------------------------------------------------------
# Table 1 — mma.sp instruction shapes
# ----------------------------------------------------------------------

def table1_mma_shapes() -> List[Dict[str, object]]:
    """The supported mma.sp shapes per precision (paper Table 1)."""
    rows: List[Dict[str, object]] = []
    from ..hardware.isa import NATIVE_NM_PATTERN

    for precision, shapes in SPARSE_MMA_SHAPES.items():
        n, m = NATIVE_NM_PATTERN[precision]
        rows.append(
            {
                "precision": precision,
                "format": f"{n}:{m}",
                "supported_shapes": ", ".join(f"k{s.k}" for s in shapes),
                "m": shapes[0].m,
                "n": shapes[0].n,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 9 — column-loc ablation over the K sweep
# ----------------------------------------------------------------------

def figure9_columnloc_ablation(
    k_values: Sequence[int] = K_SWEEP,
    patterns: Sequence[Tuple[int, int]] = ((2, 10), (2, 20), (2, 40), (2, 100)),
    v: int = 128,
    r: int = 1024,
    c: int = 4096,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over cuBLAS with and without the column-loc structure.

    Returns ``{"2:10": {K: {"with_columnloc": x, "without_columnloc": y,
    "cap": M/N}}, ...}`` for the BERT-large-shaped GEMM ``1024 x K x 4096``.
    """
    gpu = gpu or rtx3090()
    spatha = Spatha(gpu=gpu, autotune=False)
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for n, m in patterns:
        label = f"{n}:{m}"
        out[label] = {}
        for k in k_values:
            problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
            dense = dense_baseline(problem, gpu=gpu)
            cfg = default_config(v)
            with_cloc = spatha.estimate(problem, config=cfg)
            without_cloc = spatha.estimate(problem, config=cfg.with_options(use_column_loc=False))
            out[label][k] = {
                "with_columnloc": dense.time_us / with_cloc.time_us,
                "without_columnloc": dense.time_us / without_cloc.time_us,
                "cap": theoretical_speedup_cap(n, m),
            }
    return out


# ----------------------------------------------------------------------
# Figure 10 — V scaling and output-store width
# ----------------------------------------------------------------------

def figure10_v_scaling(
    v_values: Sequence[int] = (32, 64, 128),
    patterns: Sequence[Tuple[int, int]] = ((2, 7), (2, 8), (2, 10), (2, 20), (2, 40), (2, 100)),
    r: int = 1024,
    k: int = 4096,
    c: int = 4096,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over cuBLAS per (sparsity, V) for 32- and 128-bit stores.

    Returns ``{"2:8": {64: {"stores_128bit": x, "stores_32bit": y}}, ...}``.
    """
    gpu = gpu or rtx3090()
    spatha = Spatha(gpu=gpu, autotune=False)
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for n, m in patterns:
        label = f"{n}:{m}"
        out[label] = {}
        for v in v_values:
            problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
            dense = dense_baseline(problem, gpu=gpu)
            cfg = default_config(v)
            wide = spatha.estimate(problem, config=cfg.with_options(wide_output_stores=True))
            narrow = spatha.estimate(problem, config=cfg.with_options(wide_output_stores=False))
            out[label][v] = {
                "stores_128bit": dense.time_us / wide.time_us,
                "stores_32bit": dense.time_us / narrow.time_us,
            }
    return out


# ----------------------------------------------------------------------
# Figure 11 — energy study
# ----------------------------------------------------------------------

def figure11_energy(
    weight: Optional[np.ndarray] = None,
    sparsities: Sequence[float] = (0.5, 0.6, 0.75, 0.8, 0.9, 0.95),
    v_values: Sequence[int] = (1, 16, 32, 64, 128),
    vw_lengths: Sequence[int] = (4, 8, 16, 32),
    seed: int = 8,
) -> Dict[str, List[float]]:
    """Energy retained by each selection policy (paper Figure 11).

    By default runs on a synthesised 768x768 BERT-base query projection
    (the trained checkpoint substitution documented in DESIGN.md).
    """
    if weight is None:
        weight = synthetic_bert_weight(seed=seed)
    return energy_study(weight, sparsities=sparsities, v_values=v_values, vw_lengths=vw_lengths)


# ----------------------------------------------------------------------
# Figure 12 — 2:4 baseline comparison
# ----------------------------------------------------------------------

def figure12_baseline_24(
    k_values: Sequence[int] = K_SWEEP,
    models: Sequence[str] = ("bert-base", "bert-large"),
    c: int = 4096,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """TFLOPS and speedups of cuBLAS / cuSparseLt / Spatha at 2:4 sparsity.

    Returns ``{"bert-large": {K: {"cublas_tflops": ..., "spatha_tflops": ...,
    "spatha_speedup": ..., "cusparselt_speedup": ...}}}``.
    """
    gpu = gpu or rtx3090()
    spatha = Spatha(gpu=gpu)
    out: Dict[str, Dict[int, Dict[str, float]]] = {}
    for model in models:
        r = BERT_BASE.hidden_size if model == "bert-base" else BERT_LARGE.hidden_size
        out[model] = {}
        for k in k_values:
            problem = GemmProblem.from_nm(r=r, k=k, c=c, n=2, m=4, v=128)
            dense = dense_baseline(problem, gpu=gpu)
            sp = spatha_point(problem, spatha, dense)
            cl = library_point(problem, "cusparselt", dense, gpu=gpu)
            out[model][k] = {
                "cublas_tflops": dense.tflops_dense_equivalent,
                "spatha_tflops": sp.tflops_dense_equivalent,
                "cusparselt_tflops": cl.tflops_dense_equivalent,
                "spatha_speedup": sp.speedup_vs_dense,
                "cusparselt_speedup": cl.speedup_vs_dense,
            }
    return out


# ----------------------------------------------------------------------
# Figure 13 — comparison with dense and sparse libraries
# ----------------------------------------------------------------------

FIGURE13_PATTERNS: Tuple[Tuple[int, int], ...] = ((2, 4), (2, 7), (2, 8), (2, 10), (2, 20), (2, 40), (2, 100))


def figure13_library_comparison(
    models: Sequence[str] = ("bert-base", "bert-large"),
    batch_sizes: Sequence[int] = (8, 16),
    configurations: Sequence[Tuple[int, int]] = ((64, 4), (128, 8)),
    patterns: Sequence[Tuple[int, int]] = FIGURE13_PATTERNS,
    seq_len: int = 512,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Speedup over cuBLAS of every library across sparsity levels.

    One panel per (model, batch size, V/vw configuration), matching the
    paper's 2 x 4 grid.  The panel key is
    ``"{model}/bs={bs}/{V}:N:M,vw_{l}"`` and each panel maps sparsity ->
    {library: speedup}.
    """
    gpu = gpu or rtx3090()
    spatha = Spatha(gpu=gpu)
    out: Dict[str, Dict[float, Dict[str, float]]] = {}
    for model in models:
        config = BERT_BASE if model == "bert-base" else BERT_LARGE
        # Representative weight GEMM of the encoder: the FFN output
        # projection (hidden x intermediate), matching the R=hidden,
        # K=scaled-up-inner-dimension shape the paper's microbenchmarks use.
        r, k = config.hidden_size, config.intermediate_size
        for bs in batch_sizes:
            c = bs * seq_len
            for v, vw in configurations:
                panel_key = f"{model}/bs={bs}/{v}:N:M,vw_{vw}"
                panel: Dict[float, Dict[str, float]] = {}
                for n, m in patterns:
                    sparsity = 1.0 - n / m
                    problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
                    dense = dense_baseline(problem, gpu=gpu)
                    entry: Dict[str, float] = {"cublas": 1.0}
                    entry["spatha"] = spatha_point(problem, spatha, dense).speedup_vs_dense
                    if (n, m) == (2, 4):
                        entry["cusparselt"] = library_point(problem, "cusparselt", dense, gpu=gpu).speedup_vs_dense
                    entry["sputnik"] = library_point(problem, "sputnik", dense, gpu=gpu).speedup_vs_dense
                    entry["clasp"] = library_point(
                        problem, "clasp", dense, gpu=gpu, vector_length=vw
                    ).speedup_vs_dense
                    panel[sparsity] = entry
                out[panel_key] = panel
    return out


# ----------------------------------------------------------------------
# Table 2 — second-order pruning accuracy (SQuAD F1 surrogate)
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    """F1 surrogate per (sparsity, method), plus the dense reference."""

    dense_f1: float
    scores: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for sparsity_label, methods in self.scores.items():
            row: Dict[str, object] = {"sparsity": sparsity_label}
            row.update(methods)
            rows.append(row)
        return rows


def table2_second_order_f1(
    patterns: Sequence[Tuple[int, int]] = ((2, 8), (2, 16)),
    rows: int = 128,
    cols: int = 256,
    num_grad_samples: int = 48,
    seed: int = 0,
) -> Table2Result:
    """Second-order pruning accuracy comparison (paper Table 2).

    The SQuAD fine-tuning pipeline is replaced by the quadratic surrogate
    task (see DESIGN.md); the comparison covers the same four policies:
    plain 1:N:M, 64:N:M, 128:N:M and vector-wise vw_8.
    """
    task = QuadraticTask.create(rows=rows, cols=cols, num_grad_samples=num_grad_samples, seed=seed)
    grads = task.grads
    weights = task.weights
    config = SecondOrderConfig(method="auto", apply_update=True, num_grad_samples=num_grad_samples, seed=seed)

    result = Table2Result(dense_f1=task.f1_score(weights))
    for n, m in patterns:
        label = f"{int(round((1 - n / m) * 100))}% ({n}:{m})"
        methods: Dict[str, float] = {}

        nm_res = second_order_nm_prune(weights, n=n, m=m, config=config, grads=grads)
        methods["1:N:M"] = task.f1_of_result(nm_res)

        for v in (64, 128):
            if weights.shape[0] % v:
                continue
            v_res = second_order_vnm_prune(weights, v=v, n=n, m=m, config=config, grads=grads)
            methods[f"{v}:N:M"] = task.f1_of_result(v_res)

        # vw_8: vector-wise pruning with curvature-aware (OBD) vector scores,
        # the second-order analogue the paper applies to this baseline.
        sparsity = 1.0 - n / m
        saliency = 0.5 * weights**2 * task.hessian_diag
        vw_mask = vector_wise_mask(np.sqrt(np.maximum(saliency, 0.0)), sparsity, l=8, norm="l2")
        vw_masked = apply_mask(weights, vw_mask)
        methods["vw_8"] = task.f1_score(vw_masked)

        result.scores[label] = methods
    return result


# ----------------------------------------------------------------------
# Figure 15 — end-to-end LLM inference latency
# ----------------------------------------------------------------------

FIGURE15_MODELS: Tuple[Tuple[str, ModelConfig, int, Optional[int]], ...] = (
    ("bert-large", BERT_LARGE, 32, None),
    ("gpt2-large", GPT2_LARGE, 8, None),
    ("gpt3-encoder", GPT3_175B, 1, 1),
)


def figure15_end_to_end(
    v_values: Sequence[int] = (64, 128),
    m_values: Sequence[int] = (8, 16, 32),
    models: Sequence[Tuple[str, ModelConfig, int, Optional[int]]] = FIGURE15_MODELS,
    seq_len: Optional[int] = None,
    gpu: Optional[GPUSpec] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """End-to-end latency breakdown per model and sparsification plan.

    Returns ``{model: {plan_label: {"gemm": ms, "matmul": ms, "softmax": ms,
    "other": ms, "total": ms}}}`` where the plans are ``dense`` plus
    ``{V}:2:{M}`` for every requested V and M — the bars of Figure 15.
    """
    gpu = gpu or rtx3090()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, config, batch_size, num_layers in models:
        spatha = Spatha(gpu=gpu)
        seq = seq_len or min(config.max_seq_len, 512 if "bert" in name else config.max_seq_len)
        plans: List[SparsityPlan] = [SparsityPlan()]
        for v in v_values:
            for m in m_values:
                plans.append(SparsityPlan(v=v, n=2, m=m))
        out[name] = {}
        for plan in plans:
            trace = model_inference_trace(
                config,
                batch_size=batch_size,
                seq_len=seq,
                plan=plan,
                num_layers=num_layers,
                gpu=gpu,
                spatha=spatha,
            )
            breakdown = latency_breakdown_ms(trace)
            breakdown["total"] = trace.total_time_ms
            out[name][plan.label] = breakdown
    return out
