"""Result formatting and persistence for the experiment harness.

Every benchmark regenerates a figure or table of the paper; this module
renders those results as aligned text tables (what the benchmark harness
prints), converts them to flat row dictionaries (what the CSV/JSON dumps
contain) and provides the qualitative shape checks (monotonicity, ordering,
crossover) that the benchmarks assert — the reproduction's stand-in for
"does the plot look like the paper's plot".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table (markdown-ish, monospace friendly)."""
    headers = [str(h) for h in headers]
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have as many cells as there are headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def rows_from_mapping(data: Mapping[object, Mapping[str, Number]], key_name: str = "key") -> List[Dict[str, object]]:
    """Flatten ``{key: {column: value}}`` into a list of row dictionaries."""
    rows = []
    for key, columns in data.items():
        row: Dict[str, object] = {key_name: key}
        row.update(columns)
        rows.append(row)
    return rows


def save_json(data: object, path: Union[str, Path]) -> Path:
    """Persist a result structure as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=_json_default))
    return path


def save_csv(rows: Sequence[Mapping[str, object]], path: Union[str, Path]) -> Path:
    """Persist flat rows as CSV (header from the union of keys)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    keys: List[str] = []
    for row in rows:
        for key in row:
            if key not in keys:
                keys.append(key)
    lines = [",".join(keys)]
    for row in rows:
        lines.append(",".join(str(row.get(k, "")) for k in keys))
    path.write_text("\n".join(lines) + "\n")
    return path


def _json_default(obj: object) -> object:
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "__dict__"):
        return {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    return str(obj)


# ----------------------------------------------------------------------
# Qualitative shape checks (what the benchmarks assert)
# ----------------------------------------------------------------------

def is_monotonic_increasing(values: Sequence[Number], tolerance: float = 0.0) -> bool:
    """True when the sequence never decreases by more than ``tolerance``."""
    values = list(values)
    return all(values[i + 1] >= values[i] - tolerance for i in range(len(values) - 1))


def is_monotonic_decreasing(values: Sequence[Number], tolerance: float = 0.0) -> bool:
    """True when the sequence never increases by more than ``tolerance``."""
    values = list(values)
    return all(values[i + 1] <= values[i] + tolerance for i in range(len(values) - 1))


def dominates(upper: Sequence[Number], lower: Sequence[Number], tolerance: float = 0.0) -> bool:
    """True when ``upper[i] >= lower[i] - tolerance`` for every index."""
    upper = list(upper)
    lower = list(lower)
    if len(upper) != len(lower):
        raise ValueError("series must have the same length")
    return all(u >= l - tolerance for u, l in zip(upper, lower))


def crossover_index(series: Sequence[Number], threshold: float = 1.0) -> Optional[int]:
    """Index of the first element exceeding ``threshold`` (None if never).

    Used to check statements like "library X only outperforms cuBLAS above
    90% sparsity": the crossover of its speedup series over 1.0 must land at
    or beyond the 90% entry.
    """
    for i, value in enumerate(series):
        if value > threshold:
            return i
    return None


def within_factor(measured: float, reference: float, factor: float) -> bool:
    """True when ``measured`` is within ``[reference/factor, reference*factor]``."""
    if reference <= 0 or measured <= 0 or factor < 1.0:
        raise ValueError("measured/reference must be positive and factor >= 1")
    return reference / factor <= measured <= reference * factor
