"""Parameter-sweep helpers shared by the figure-level harnesses.

The paper's evaluation is a collection of sweeps: over the inner dimension
K (Figures 9 and 12), over sparsity levels (Figures 10, 11 and 13), over
vector sizes V (Figure 10) and over sparsification plans (Figure 15).  The
helpers here run those sweeps against the kernel models and return plain
dictionaries/lists that the reporting layer turns into tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.spec import GPUSpec, rtx3090
from ..kernels import clasp, cublas, cusparselt, sputnik
from ..kernels.common import GemmProblem, KernelResult
from ..kernels.spatha import Spatha
from ..kernels.spatha.config import KernelConfig, default_config


@dataclass
class SweepPoint:
    """One (problem, library) measurement of a sweep."""

    problem: GemmProblem
    library: str
    time_us: float
    speedup_vs_dense: float
    tflops_dense_equivalent: float
    extra: Dict[str, object] = field(default_factory=dict)


def dense_baseline(problem: GemmProblem, gpu: Optional[GPUSpec] = None) -> KernelResult:
    """The cuBLAS result every speedup in a sweep is normalised to."""
    dense_problem = GemmProblem(
        r=problem.r, k=problem.k, c=problem.c, precision=problem.precision, name=problem.name
    )
    return cublas.estimate_time(dense_problem, gpu=gpu or rtx3090())


def spatha_point(
    problem: GemmProblem,
    spatha: Spatha,
    dense: KernelResult,
    config: Optional[KernelConfig] = None,
) -> SweepPoint:
    """Measure Spatha on one problem and normalise against ``dense``."""
    result = spatha.estimate(problem, config=config)
    return SweepPoint(
        problem=problem,
        library="spatha",
        time_us=result.time_us,
        speedup_vs_dense=dense.time_us / result.time_us,
        tflops_dense_equivalent=result.tflops_dense_equivalent,
        extra={"config": result.details.get("config", "")},
    )


def library_point(problem: GemmProblem, library: str, dense: KernelResult,
                  gpu: Optional[GPUSpec] = None, vector_length: int = 8) -> SweepPoint:
    """Measure one of the baseline libraries on ``problem``."""
    gpu = gpu or rtx3090()
    if library == "cublas":
        result = cublas.estimate_time(
            GemmProblem(r=problem.r, k=problem.k, c=problem.c, name=problem.name), gpu=gpu
        )
    elif library == "cusparselt":
        result = cusparselt.estimate_time(problem, gpu=gpu)
    elif library == "sputnik":
        result = sputnik.estimate_time(problem, gpu=gpu)
    elif library == "clasp":
        result = clasp.estimate_time(problem, gpu=gpu, config=clasp.ClaspConfig(vector_length=vector_length))
    else:
        raise ValueError(f"unknown library {library!r}")
    return SweepPoint(
        problem=problem,
        library=library,
        time_us=result.time_us,
        speedup_vs_dense=dense.time_us / result.time_us,
        tflops_dense_equivalent=result.tflops_dense_equivalent,
    )


def k_sweep(
    r: int,
    c: int,
    k_values: Sequence[int],
    n: int,
    m: int,
    v: int,
    libraries: Sequence[str] = ("spatha",),
    gpu: Optional[GPUSpec] = None,
    spatha: Optional[Spatha] = None,
    spatha_config: Optional[KernelConfig] = None,
) -> Dict[int, List[SweepPoint]]:
    """Sweep the inner dimension K for a fixed R x C and V:N:M pattern."""
    gpu = gpu or rtx3090()
    spatha = spatha or Spatha(gpu=gpu)
    out: Dict[int, List[SweepPoint]] = {}
    for k in k_values:
        problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
        dense = dense_baseline(problem, gpu=gpu)
        points: List[SweepPoint] = []
        for lib in libraries:
            if lib == "spatha":
                points.append(spatha_point(problem, spatha, dense, config=spatha_config))
            else:
                points.append(library_point(problem, lib, dense, gpu=gpu))
        out[k] = points
    return out


def sparsity_sweep(
    r: int,
    k: int,
    c: int,
    patterns: Sequence[Tuple[int, int]],
    v: int,
    libraries: Sequence[str] = ("spatha",),
    gpu: Optional[GPUSpec] = None,
    spatha: Optional[Spatha] = None,
    vw_length: int = 8,
) -> Dict[float, List[SweepPoint]]:
    """Sweep sparsity levels (given as N:M patterns) for a fixed GEMM size."""
    gpu = gpu or rtx3090()
    spatha = spatha or Spatha(gpu=gpu)
    out: Dict[float, List[SweepPoint]] = {}
    for n, m in patterns:
        sparsity = 1.0 - n / m
        problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
        dense = dense_baseline(problem, gpu=gpu)
        points: List[SweepPoint] = []
        for lib in libraries:
            if lib == "spatha":
                points.append(spatha_point(problem, spatha, dense))
            elif lib == "cusparselt":
                if (n, m) == (2, 4):
                    points.append(library_point(problem, lib, dense, gpu=gpu))
            else:
                points.append(
                    library_point(problem, lib, dense, gpu=gpu, vector_length=vw_length)
                )
        out[sparsity] = points
    return out


def best_point(points: List[SweepPoint], library: str) -> Optional[SweepPoint]:
    """The sweep point of ``library`` in a result list (None if absent)."""
    for p in points:
        if p.library == library:
            return p
    return None
