"""A minimal, PyTorch-free re-implementation of the STen interface.

The paper integrates Spatha into PyTorch through STen (Ivanov et al.): a
*sparsifier implementation registry* maps ``(sparsifier type, input tensor
type, output tensor type)`` triples to conversion functions, and a
``SparseTensorWrapper`` keeps the compressed tensor together with the dense
tensor it came from so autograd (and, here, verification) can fall back to
it.  Listing 1 of the paper registers exactly one such implementation:
``VNMSparsifier`` applied to a ``torch.Tensor`` producing a ``VNMTensor``.

This module reproduces that mechanism on numpy so the end-to-end pipeline
("mark these weights sparse, everything downstream dispatches to Spatha")
works the same way without PyTorch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Type

import numpy as np


#: Registry: (sparsifier type, input type, output type) -> implementation.
_SPARSIFIER_IMPLEMENTATIONS: Dict[Tuple[type, type, type], Callable] = {}


def register_sparsifier_implementation(sparsifier: type, inp: type, out: type) -> Callable:
    """Decorator registering a sparsifier implementation (STen's API).

    The decorated callable receives ``(sparsifier_instance, tensor,
    grad_fmt)`` and must return a :class:`SparseTensorWrapper` whose wrapped
    tensor is an instance of ``out``.
    """
    if not isinstance(sparsifier, type) or not isinstance(inp, type) or not isinstance(out, type):
        raise TypeError("sparsifier, inp and out must be types")

    def decorator(fn: Callable) -> Callable:
        key = (sparsifier, inp, out)
        if key in _SPARSIFIER_IMPLEMENTATIONS:
            raise ValueError(f"an implementation is already registered for {key}")
        _SPARSIFIER_IMPLEMENTATIONS[key] = fn
        return fn

    return decorator


def find_sparsifier_implementation(sparsifier: type, inp: type, out: type) -> Callable:
    """Look up a registered implementation (exact types, then subclasses)."""
    key = (sparsifier, inp, out)
    if key in _SPARSIFIER_IMPLEMENTATIONS:
        return _SPARSIFIER_IMPLEMENTATIONS[key]
    for (s, i, o), fn in _SPARSIFIER_IMPLEMENTATIONS.items():
        if issubclass(sparsifier, s) and issubclass(inp, i) and issubclass(out, o):
            return fn
    raise KeyError(f"no sparsifier implementation registered for {key}")


def clear_registry() -> None:
    """Remove all registered implementations (test isolation helper)."""
    _SPARSIFIER_IMPLEMENTATIONS.clear()


def registry_size() -> int:
    """Number of registered implementations."""
    return len(_SPARSIFIER_IMPLEMENTATIONS)


@dataclass
class SparseTensorWrapper:
    """Holds a compressed tensor together with its dense origin.

    STen uses the wrapper to dispatch operators on the compressed form and
    to keep gradient-format information; the reproduction keeps the same
    three fields so the code in the paper's Listing 1 maps one-to-one.
    """

    wrapped_tensor: Any
    dense_reference: Optional[np.ndarray] = None
    grad_fmt: Optional[Any] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def wrapped_from_dense(
        cls, wrapped: Any, dense: np.ndarray, grad_fmt: Optional[Any] = None
    ) -> "SparseTensorWrapper":
        """STen's constructor name: wrap ``wrapped`` remembering ``dense``."""
        return cls(wrapped_tensor=wrapped, dense_reference=np.asarray(dense, dtype=np.float32), grad_fmt=grad_fmt)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense tensor from the wrapped compressed form."""
        wrapped = self.wrapped_tensor
        if hasattr(wrapped, "to_dense"):
            return np.asarray(wrapped.to_dense(), dtype=np.float32)
        if self.dense_reference is not None:
            return self.dense_reference
        raise TypeError("wrapped tensor cannot be densified and no dense reference is stored")

    @property
    def shape(self) -> Tuple[int, ...]:
        """Logical shape of the wrapped tensor."""
        wrapped = self.wrapped_tensor
        if hasattr(wrapped, "shape"):
            return tuple(wrapped.shape)
        if self.dense_reference is not None:
            return tuple(self.dense_reference.shape)
        raise AttributeError("wrapped tensor has no shape")


def sparsify(sparsifier: Any, tensor: np.ndarray, out_type: Type, grad_fmt: Optional[Any] = None) -> SparseTensorWrapper:
    """Apply a sparsifier via the registry (the call STen makes internally)."""
    fn = find_sparsifier_implementation(type(sparsifier), np.ndarray, out_type)
    wrapper = fn(sparsifier, np.asarray(tensor), grad_fmt)
    if not isinstance(wrapper, SparseTensorWrapper):
        raise TypeError("sparsifier implementations must return a SparseTensorWrapper")
    return wrapper
