"""``VNMTensor`` — the container STen dispatches Spatha SpMMs on.

The paper's Listing 1 introduces a ``VNMTensor`` class "that serves as a
container for tensors in the V:N:M format"; the ``Spmm`` module then reads
its ``values``, ``columns`` and ``metadata`` attributes and hands them to
``spatha.spmm``.  This class exposes exactly those attributes on top of the
reproduction's :class:`~repro.formats.vnm.VNMSparseMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..formats.vnm import VNMSparseMatrix


@dataclass
class VNMTensor:
    """A weight tensor stored in the V:N:M format.

    Attributes
    ----------
    matrix:
        The underlying compressed matrix.
    original_shape:
        Logical (out_features, in_features) shape before any padding the
        sparsifier applied to satisfy the V/M divisibility constraints.
    """

    matrix: VNMSparseMatrix
    original_shape: Tuple[int, int]

    def __post_init__(self) -> None:
        if not isinstance(self.matrix, VNMSparseMatrix):
            raise TypeError("matrix must be a VNMSparseMatrix")
        r, c = self.original_shape
        pr, pc = self.matrix.shape
        if r > pr or c > pc:
            raise ValueError("original shape cannot exceed the compressed (padded) shape")

    # ------------------------------------------------------------------
    # Attributes named as in the paper's Listing 1
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Non-zero values array (R x K/M*N)."""
        return self.matrix.values

    @property
    def columns(self) -> np.ndarray:
        """The column-loc structure (R/V x K/M*4)."""
        return self.matrix.column_loc

    @property
    def metadata(self) -> np.ndarray:
        """The 2-bit m-indices."""
        return self.matrix.m_indices

    # ------------------------------------------------------------------
    # Tensor-like interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Logical (unpadded) shape."""
        return self.original_shape

    @property
    def padded_shape(self) -> Tuple[int, int]:
        """Shape after the sparsifier's divisibility padding."""
        return self.matrix.shape

    @property
    def v(self) -> int:
        return self.matrix.v

    @property
    def n(self) -> int:
        return self.matrix.n

    @property
    def m(self) -> int:
        return self.matrix.m

    @property
    def sparsity(self) -> float:
        """Logical sparsity of the pattern (1 - N/M)."""
        return self.matrix.logical_sparsity

    def to_dense(self) -> np.ndarray:
        """Densify and crop away the sparsifier's padding."""
        dense = self.matrix.to_dense()
        r, c = self.original_shape
        return dense[:r, :c]

    def density(self) -> float:
        """Stored non-zeros over the logical (unpadded) element count."""
        r, c = self.original_shape
        return float(np.count_nonzero(self.to_dense())) / (r * c)
