"""``Spmm`` module and model sparsification pass (Listing 1 / Section 7.2.2).

The paper replaces ``torch.nn.Linear`` modules whose weights were marked
sparse with an ``Spmm`` module that unpacks the ``VNMTensor`` (values,
columns, metadata) and calls ``spatha.spmm``.  This module provides the
numpy equivalent plus :func:`sparsify_encoder`, the convenience pass that
walks a :class:`~repro.models.transformer.TransformerEncoder`, applies a
:class:`~repro.integration.sparsifier.VNMSparsifier` to a selected list of
weights and swaps the corresponding layers — the "few lines of code" user
experience the paper advertises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from .sparsifier import VNMSparsifier
from .vnm_tensor import VNMTensor
from ..kernels.dispatch import KernelDispatcher, SpmmOperand, default_dispatcher
from ..kernels.spatha import Spatha
from ..models.layers import DenseLinear, SparseLinear
from ..models.transformer import TransformerEncoder


@dataclass
class SpmmLinear:
    """Drop-in replacement of a dense linear layer running on Spatha.

    Mirrors the ``Spmm(torch.nn.Module)`` of the paper's Listing 1: it is
    constructed *from* the original dense layer plus the sparsified weight
    and keeps the original bias.
    """

    weight: VNMTensor
    bias: Optional[np.ndarray] = None
    name: str = "spmm_linear"
    spatha: Spatha = field(default_factory=Spatha)
    dispatcher: Optional[KernelDispatcher] = None

    def __post_init__(self) -> None:
        self._operand = SpmmOperand.from_vnm(self.weight.matrix, name=self.name)

    def _dispatcher(self) -> KernelDispatcher:
        return self.dispatcher if self.dispatcher is not None else default_dispatcher()

    @classmethod
    def from_dense(
        cls,
        original: DenseLinear,
        sparsifier: VNMSparsifier,
        spatha: Optional[Spatha] = None,
    ) -> "SpmmLinear":
        """Build the module the way Listing 1 does: sparsify ``original.weight``."""
        vnm = sparsifier.sparsify(original.weight)
        return cls(
            weight=vnm,
            bias=None if original.bias is None else original.bias.copy(),
            name=original.name,
            spatha=spatha or Spatha(),
        )

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``y = dispatch(weight)(x) + bias`` — Listing 1 through the registry.

        Accepts activations of shape ``(..., in_features)``; padding added
        by the sparsifier on the K dimension is matched by zero-padding the
        activations (zero rows contribute nothing to the product).  3-D
        (and higher) activations go through the batched ``(B, K, C)`` RHS
        path — the whole batch runs in one kernel call.  The backend is
        chosen by the kernel dispatcher (Spatha's planned engine for the
        V:N:M weight unless the cost model prefers the dense fallback).
        """
        x = np.asarray(x, dtype=np.float32)
        if x.shape[-1] != self.in_features:
            raise ValueError(f"input feature dimension {x.shape[-1]} != {self.in_features}")
        dispatcher = self._dispatcher()
        padded_r, padded_k = self.weight.padded_shape
        if x.ndim >= 3:
            lead = x.shape[:-2]
            seq = x.shape[-2]
            x3 = x.reshape(-1, seq, x.shape[-1])
            rhs = np.swapaxes(x3, 1, 2)  # (B, in_features, seq)
            if padded_k != self.in_features:
                padded = np.zeros((x3.shape[0], padded_k, seq), dtype=np.float32)
                padded[:, : self.in_features] = rhs
                rhs = padded
            out = dispatcher.execute(self._operand, rhs)  # (B, padded_r, seq)
            out = out[:, : self.out_features]
            if self.bias is not None:
                out = out + self.bias.reshape(-1, 1)
            return np.swapaxes(out, 1, 2).reshape(*lead, seq, self.out_features)
        flat = x.reshape(-1, x.shape[-1])  # (tokens, in_features)
        rhs = flat.T
        if padded_k != self.in_features:
            rhs = np.zeros((padded_k, flat.shape[0]), dtype=np.float32)
            rhs[: self.in_features] = flat.T
        out = dispatcher.execute(self._operand, rhs)  # (padded_r, tokens)
        out = out[: self.out_features]
        if self.bias is not None:
            out = out + self.bias.reshape(-1, 1)
        return out.T.reshape(*x.shape[:-1], self.out_features)

    def to_sparse_linear(self) -> SparseLinear:
        """Convert to the model-layer abstraction (for latency accounting)."""
        return SparseLinear(
            sparse_weight=self.weight.matrix,
            bias=self.bias,
            name=self.name,
            spatha=self.spatha,
            dispatcher=self.dispatcher,
        )


def sparsify_encoder(
    encoder: TransformerEncoder,
    sparsifier: VNMSparsifier,
    weight_filter: Optional[Callable[[str], bool]] = None,
    weight_names: Optional[Sequence[str]] = None,
    spatha: Optional[Spatha] = None,
) -> List[str]:
    """Sparsify the selected weights of an encoder in place.

    Parameters
    ----------
    encoder:
        The model to modify.
    sparsifier:
        The V:N:M sparsifier to apply.
    weight_filter:
        Predicate on the qualified layer name (e.g. keep only
        ``"attention."`` layers).  Defaults to "all prunable weights", the
        choice the paper's end-to-end study makes.
    weight_names:
        Alternatively, an explicit list of qualified names ("users can
        specify a list of weights to be made sparse").
    spatha:
        Shared Spatha handle (so all layers reuse one tuner cache).

    Returns
    -------
    list of str
        The qualified names of the layers that were replaced.
    """
    if weight_filter is not None and weight_names is not None:
        raise ValueError("pass either weight_filter or weight_names, not both")
    selected: Optional[set] = set(weight_names) if weight_names is not None else None
    shared_spatha = spatha or Spatha()
    replaced: List[str] = []

    def convert(name: str, layer):
        if isinstance(layer, (SparseLinear,)):
            return None
        if selected is not None and name not in selected:
            return None
        if weight_filter is not None and not weight_filter(name):
            return None
        if not isinstance(layer, DenseLinear):
            return None
        module = SpmmLinear.from_dense(layer, sparsifier, spatha=shared_spatha)
        replaced.append(name)
        return module.to_sparse_linear()

    encoder.apply_to_linears(convert)
    if selected is not None:
        missing = selected - set(replaced)
        if missing:
            raise KeyError(f"weights not found in the encoder: {sorted(missing)}")
    return replaced
