"""STen-style integration layer (paper Section 7.2.2, Listing 1)."""

from .linear import SpmmLinear, sparsify_encoder
from .sparsifier import VNMSparsifier, numpy_tensor_to_vnm
from .sten import (
    SparseTensorWrapper,
    clear_registry,
    find_sparsifier_implementation,
    register_sparsifier_implementation,
    registry_size,
    sparsify,
)
from .vnm_tensor import VNMTensor

__all__ = [
    "SpmmLinear",
    "sparsify_encoder",
    "VNMSparsifier",
    "numpy_tensor_to_vnm",
    "SparseTensorWrapper",
    "clear_registry",
    "find_sparsifier_implementation",
    "register_sparsifier_implementation",
    "registry_size",
    "sparsify",
    "VNMTensor",
]
