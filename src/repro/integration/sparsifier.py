"""``VNMSparsifier`` — prune a dense tensor into the V:N:M format.

Mirrors the class of the same name in the paper's Listing 1: it carries the
``n``, ``m`` and ``v`` hyper-parameters, prunes an incoming dense weight to
the V:N:M pattern (magnitude pruning by default, the second-order pruner on
request) and produces a :class:`~repro.integration.vnm_tensor.VNMTensor`.
The registered STen implementation (`torch_tensor_to_vnm` in the paper)
lives at the bottom of this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .sten import SparseTensorWrapper, register_sparsifier_implementation
from .vnm_tensor import VNMTensor
from ..formats.vnm import VNMSparseMatrix
from ..pruning.masks import apply_mask
from ..pruning.second_order.obs_vnm import SecondOrderConfig, second_order_vnm_prune
from ..pruning.vnm import pad_to_vnm_shape, vnm_mask


@dataclass
class VNMSparsifier:
    """Sparsifier producing V:N:M tensors.

    Parameters
    ----------
    n, m, v:
        The target V:N:M configuration.
    method:
        ``"magnitude"`` (default) or ``"second_order"``.
    second_order_config:
        Optional configuration for the second-order pruner.
    """

    n: int = 2
    m: int = 8
    v: int = 64
    method: str = "magnitude"
    second_order_config: Optional[SecondOrderConfig] = None

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m <= 0 or self.v <= 0:
            raise ValueError("n, m and v must be positive")
        if self.n > min(4, self.m):
            raise ValueError("n must be <= 4 (and <= m) to map onto 2:4 SPTCs")
        if self.method not in {"magnitude", "second_order"}:
            raise ValueError(f"unknown pruning method {self.method!r}")

    def sparsify(self, tensor: np.ndarray, grads: Optional[np.ndarray] = None) -> VNMTensor:
        """Prune ``tensor`` to V:N:M and compress it.

        Tensors whose shape is not divisible by (V, M) are zero-padded (the
        padding stays pruned, so it never contributes to the SpMM result)
        and the original shape is recorded on the returned
        :class:`VNMTensor`.
        """
        dense = np.asarray(tensor, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("VNMSparsifier expects a 2-D weight tensor")
        original_shape = dense.shape
        padded, _ = pad_to_vnm_shape(dense, self.v, self.m)

        if self.method == "second_order":
            result = second_order_vnm_prune(
                padded, v=self.v, n=self.n, m=self.m, config=self.second_order_config, grads=grads
            )
            pruned = result.pruned_weights
        else:
            pruned = apply_mask(padded, vnm_mask(padded, v=self.v, n=self.n, m=self.m))

        matrix = VNMSparseMatrix.from_dense(pruned, v=self.v, n=self.n, m=self.m, strict=True)
        return VNMTensor(matrix=matrix, original_shape=original_shape)

    # The paper's function name; kept as an alias so Listing 1 reads the same.
    def vnm_sparsifier(self, tensor: np.ndarray) -> VNMTensor:
        """Alias of :meth:`sparsify` (the name used in the paper's listing)."""
        return self.sparsify(tensor)


@register_sparsifier_implementation(sparsifier=VNMSparsifier, inp=np.ndarray, out=VNMTensor)
def numpy_tensor_to_vnm(sparsifier: VNMSparsifier, tensor: np.ndarray, grad_fmt=None) -> SparseTensorWrapper:
    """STen registration: dense numpy tensor -> VNMTensor (Listing 1).

    The wrapper keeps the dense original so verification (and, in the real
    system, the dense-gradient path) can reference it.
    """
    vnm = sparsifier.sparsify(tensor)
    return SparseTensorWrapper.wrapped_from_dense(vnm, tensor, grad_fmt)
