"""The V:N:M format — the paper's primary storage contribution (Section 3).

A dense ``R x K`` matrix is partitioned into blocks of ``V x M`` elements.
Within each block, the vector-wise stage keeps the four "most significant"
columns (the ones chosen by the pruning algorithm), and the N:M stage keeps
``N`` values in every row of those four columns — so the physically stored
pattern is always N:4 (2:4 in practice), which is exactly what Sparse
Tensor Cores accept, while the logical pattern is N:M with arbitrary ``M``.

The compressed representation (Figure 3) consists of three arrays:

``values``
    ``R x (K/M * N)`` non-zero values.
``m_indices``
    one 2-bit index per value: the position of the value among the four
    *selected* columns of its block (not among the M original columns).
``column_loc``
    ``R/V x (K/M * 4)`` column indices: which four of the M columns of each
    block were kept by the vector-wise stage.

``VNMSparseMatrix`` performs bit-exact compression/decompression and exposes
the derived quantities the kernels need (absolute column indices, a
condensed ``R x K/M*4`` view of the selected columns, the Figure-7 storage
order, footprints).

The derived views (:meth:`to_condensed`, :meth:`selected_column_indices`,
:meth:`absolute_column_indices`, :meth:`packed_metadata`) are memoized per
instance: the compressed arrays never change after construction, so every
caller — the Spatha execution plan, the tiled simulation, repeated layer
forwards — pays the derivation once.  The returned arrays are shared and
must be treated as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .base import FormatFootprint, SparseFormat, as_float_matrix
from .metadata import metadata_bytes, pack_indices, validate_indices
from ..hardware.memory import dtype_bytes

#: Number of columns the vector-wise stage keeps per block; fixed at 4 so
#: that the remaining pattern maps onto the hardware's 2:4 support.
SELECTED_COLUMNS = 4


def check_vnm_pattern(matrix: np.ndarray, v: int, n: int, m: int, tol: float = 0.0) -> bool:
    """True when ``matrix`` obeys the V:N:M pattern.

    Two conditions are checked for every ``V x M`` block: (1) non-zeros
    appear in at most four distinct columns of the block, and (2) every row
    of the block holds at most ``n`` non-zeros.
    """
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError("matrix must be 2-D")
    rows, cols = arr.shape
    if rows % v != 0 or cols % m != 0:
        return False
    nz = np.abs(arr) > tol
    blocks = nz.reshape(rows // v, v, cols // m, m)
    col_used = blocks.any(axis=1)  # (R/V, K/M, M)
    if np.any(col_used.sum(axis=2) > SELECTED_COLUMNS):
        return False
    per_row = blocks.sum(axis=3)  # (R/V, V, K/M)
    return bool(np.all(per_row <= n))


def validate_vnm_shape(rows: int, cols: int, v: int, n: int, m: int) -> None:
    """Raise ``ValueError`` when (rows, cols) cannot hold a V:N:M pattern."""
    if v <= 0 or n <= 0 or m <= 0:
        raise ValueError(f"V, N, M must be positive, got {v}:{n}:{m}")
    if m < SELECTED_COLUMNS:
        raise ValueError(f"M ({m}) must be >= {SELECTED_COLUMNS} for the V:N:M format")
    if n > SELECTED_COLUMNS:
        raise ValueError(f"N ({n}) must be <= {SELECTED_COLUMNS} so the pattern maps onto 2:4 SPTCs")
    if rows % v != 0:
        raise ValueError(f"rows ({rows}) must be divisible by V ({v})")
    if cols % m != 0:
        raise ValueError(f"cols ({cols}) must be divisible by M ({m})")


@dataclass
class VNMSparseMatrix(SparseFormat):
    """A matrix stored in the V:N:M compressed layout (Figure 3)."""

    values: np.ndarray
    m_indices: np.ndarray
    column_loc: np.ndarray
    v: int
    n: int
    m: int
    k: int
    format_name: str = "vnm"

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float32)
        self.m_indices = validate_indices(self.m_indices, group_size=SELECTED_COLUMNS).reshape(
            self.values.shape
        )
        self.column_loc = np.ascontiguousarray(self.column_loc, dtype=np.int32)
        rows = self.values.shape[0]
        validate_vnm_shape(rows, self.k, self.v, self.n, self.m)
        groups = self.k // self.m
        if self.values.shape != (rows, groups * self.n):
            raise ValueError(
                f"values must have shape (R, K/M*N) = ({rows}, {groups * self.n}), got {self.values.shape}"
            )
        if self.column_loc.shape != (rows // self.v, groups * SELECTED_COLUMNS):
            raise ValueError(
                "column_loc must have shape (R/V, K/M*4) = "
                f"({rows // self.v}, {groups * SELECTED_COLUMNS}), got {self.column_loc.shape}"
            )
        if self.column_loc.size and (self.column_loc.min() < 0 or self.column_loc.max() >= self.m):
            raise ValueError(f"column_loc entries must lie in [0, M={self.m})")
        # Memo for the derived views (and the kernels' execution plan).  The
        # compressed arrays are immutable after construction, so the cache
        # is only ever invalidated by constructing a new matrix.
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        v: int,
        n: int = 2,
        m: int = 8,
        strict: bool = True,
        tol: float = 0.0,
    ) -> "VNMSparseMatrix":
        """Compress a dense matrix into the V:N:M layout.

        With ``strict=True`` the matrix must already obey the V:N:M pattern
        (typically produced by :mod:`repro.pruning.vnm` or the second-order
        pruner); a ``ValueError`` is raised otherwise.  With
        ``strict=False`` the compressor itself applies magnitude V:N:M
        pruning: per block it keeps the four columns with the largest L1
        mass and then the ``n`` largest magnitudes per row among them.
        """
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        validate_vnm_shape(rows, cols, v, n, m)
        if strict and not check_vnm_pattern(arr, v, n, m, tol=tol):
            raise ValueError(
                f"matrix violates the {v}:{n}:{m} pattern; prune it first or pass strict=False"
            )
        row_blocks = rows // v
        groups = cols // m
        blocks = arr.reshape(row_blocks, v, groups, m)

        # Vector-wise stage: pick the 4 columns per (row-block, group) with
        # the largest L1 mass.  For strict (already pruned) inputs this
        # recovers the columns that hold the non-zeros.
        mass = np.abs(blocks).sum(axis=1)  # (R/V, K/M, M)
        col_order = np.argsort(-mass, axis=2, kind="stable")[:, :, :SELECTED_COLUMNS]
        col_order = np.sort(col_order, axis=2)  # ascending column order within the block
        column_loc = col_order.reshape(row_blocks, groups * SELECTED_COLUMNS).astype(np.int32)

        # Gather the selected columns: (R/V, V, K/M, 4)
        gather_idx = col_order[:, None, :, :]
        gather_idx = np.broadcast_to(gather_idx, (row_blocks, v, groups, SELECTED_COLUMNS))
        selected = np.take_along_axis(blocks, gather_idx, axis=3)

        # N:4 stage: keep the n largest magnitudes per row of the selected
        # columns (ties resolve to the lowest position, stable sort).
        pos_order = np.argsort(-np.abs(selected), axis=3, kind="stable")[:, :, :, :n]
        pos_order = np.sort(pos_order, axis=3)
        values = np.take_along_axis(selected, pos_order, axis=3)

        return cls(
            values=values.reshape(rows, groups * n),
            m_indices=pos_order.reshape(rows, groups * n).astype(np.uint8),
            column_loc=column_loc,
            v=v,
            n=n,
            m=m,
            k=cols,
        )

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``(R, K)`` matrix."""
        rows = self.values.shape[0]
        groups = self.k // self.m
        row_blocks = rows // self.v

        vals = self.values.reshape(row_blocks, self.v, groups, self.n)
        midx = self.m_indices.reshape(row_blocks, self.v, groups, self.n).astype(np.int64)
        cloc = self.column_loc.reshape(row_blocks, groups, SELECTED_COLUMNS).astype(np.int64)

        # Scatter values into the 4 selected columns, then scatter those
        # columns into the M columns of the block.
        selected = np.zeros((row_blocks, self.v, groups, SELECTED_COLUMNS), dtype=np.float32)
        np.put_along_axis(selected, midx, vals, axis=3)

        dense_blocks = np.zeros((row_blocks, self.v, groups, self.m), dtype=np.float32)
        scatter_idx = np.broadcast_to(
            cloc[:, None, :, :], (row_blocks, self.v, groups, SELECTED_COLUMNS)
        )
        np.put_along_axis(dense_blocks, scatter_idx, selected, axis=3)
        return dense_blocks.reshape(rows, self.k)

    def to_condensed(self) -> np.ndarray:
        """Return the ``R x (K/M*4)`` matrix of the selected columns.

        This is the dense "LHS after vector-wise pruning" view of Figure 4:
        for every block the four selected columns are gathered side by side.
        The inner 2:4 structure is still present in this view (each group of
        four holds ``n`` non-zeros); it is the operand shape the SPTC
        ultimately consumes after metadata expansion.  The result is
        memoized; treat it as read-only.
        """
        cached = self._memo.get("condensed")
        if cached is not None:
            return cached
        rows = self.values.shape[0]
        groups = self.k // self.m
        row_blocks = rows // self.v
        vals = self.values.reshape(row_blocks, self.v, groups, self.n)
        midx = self.m_indices.reshape(row_blocks, self.v, groups, self.n).astype(np.int64)
        selected = np.zeros((row_blocks, self.v, groups, SELECTED_COLUMNS), dtype=np.float32)
        np.put_along_axis(selected, midx, vals, axis=3)
        condensed = selected.reshape(rows, groups * SELECTED_COLUMNS)
        condensed.setflags(write=False)
        self._memo["condensed"] = condensed
        return condensed

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.values.shape[0], self.k)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """Values + 2-bit m-indices + column-loc (one byte per entry).

        ``column_loc`` entries index one of M columns; the reference
        implementation stores them as bytes (M <= 256 in every experiment),
        matching the paper's accounting that the structure is small
        (``R/V x K/M x 4`` entries).
        """
        return FormatFootprint(
            values_bytes=self.values.size * dtype_bytes(precision),
            metadata_bytes=metadata_bytes(self.values.size),
            index_bytes=float(self.column_loc.size),
        )

    # ------------------------------------------------------------------
    # Derived views used by kernels and tests
    # ------------------------------------------------------------------
    @property
    def groups_per_row(self) -> int:
        """Number of M-column groups per row."""
        return self.k // self.m

    @property
    def row_blocks(self) -> int:
        """Number of V-row blocks."""
        return self.values.shape[0] // self.v

    @property
    def logical_sparsity(self) -> float:
        """Sparsity implied by the N:M ratio (``1 - N/M``)."""
        return 1.0 - self.n / self.m

    def absolute_column_indices(self) -> np.ndarray:
        """Absolute column of every stored value, shape ``(R, K/M*N)``.

        Memoized; treat the result as read-only.
        """
        cached = self._memo.get("absolute_column_indices")
        if cached is not None:
            return cached
        rows = self.values.shape[0]
        groups = self.groups_per_row
        row_blocks = self.row_blocks
        midx = self.m_indices.reshape(row_blocks, self.v, groups, self.n).astype(np.int64)
        cloc = self.column_loc.reshape(row_blocks, groups, SELECTED_COLUMNS).astype(np.int64)
        cloc_b = np.broadcast_to(cloc[:, None, :, :], (row_blocks, self.v, groups, SELECTED_COLUMNS))
        abs_cols = np.take_along_axis(cloc_b, midx, axis=3)
        base = (np.arange(groups, dtype=np.int64) * self.m)[None, None, :, None]
        result = (abs_cols + base).reshape(rows, groups * self.n)
        result.setflags(write=False)
        self._memo["absolute_column_indices"] = result
        return result

    def selected_column_indices(self) -> np.ndarray:
        """Absolute columns chosen by the vector-wise stage, ``(R/V, K/M*4)``.

        Memoized; treat the result as read-only.
        """
        cached = self._memo.get("selected_column_indices")
        if cached is not None:
            return cached
        groups = self.groups_per_row
        base = np.repeat(np.arange(groups, dtype=np.int64) * self.m, SELECTED_COLUMNS)[None, :]
        result = self.column_loc.astype(np.int64) + base
        result.setflags(write=False)
        self._memo["selected_column_indices"] = result
        return result

    def packed_metadata(self) -> np.ndarray:
        """The 2-bit m-indices packed into uint32 words (row-major).

        Memoized; treat the result as read-only.
        """
        cached = self._memo.get("packed_metadata")
        if cached is not None:
            return cached
        result = pack_indices(self.m_indices.ravel())
        result.setflags(write=False)
        self._memo["packed_metadata"] = result
        return result

    def storage_order_values(self, ws_m: int = 32, mma_k: int = 32) -> np.ndarray:
        """Linearise ``values`` in the Figure-7 storage order.

        The kernel stores the non-zero structure so that the values consumed
        by one ``mma.sp`` warp tile are contiguous: values are traversed in
        tiles of ``ws_m`` rows by ``mma_k/2 * n / 2`` stored columns... in
        this reference implementation we reproduce the two key properties of
        the layout rather than its exact byte ordering: (1) values of one
        warp row-tile are contiguous, (2) within a row-tile, groups of four
        consecutive stored values (8 bytes in fp16, i.e. half of a 128-bit
        transaction per thread pair) stay contiguous.  Returns a 1-D array
        that is a permutation of ``values.ravel()``.

        The permutation is applied with a single pad-transpose-mask pass;
        :meth:`storage_order_values_reference` retains the per-tile loop and
        the two are asserted bit-equal in the tests.
        """
        rows, stored = self.values.shape
        if ws_m <= 0 or mma_k <= 0:
            raise ValueError("ws_m and mma_k must be positive")
        if rows == 0 or stored == 0:
            return np.zeros(0, dtype=np.float32)
        tile_rows = min(ws_m, rows)
        chunk = 4  # stored values grouped per 64-bit half-transaction
        rows_pad = -(-rows // tile_rows) * tile_rows
        stored_pad = -(-stored // chunk) * chunk
        padded = np.zeros((rows_pad, stored_pad), dtype=self.values.dtype)
        padded[:rows, :stored] = self.values
        real = np.zeros((rows_pad, stored_pad), dtype=bool)
        real[:rows, :stored] = True

        def linearise(arr: np.ndarray) -> np.ndarray:
            tiles = arr.reshape(rows_pad // tile_rows, tile_rows, stored_pad // chunk, chunk)
            return tiles.transpose(0, 2, 1, 3).ravel()

        return linearise(padded)[linearise(real)]

    def storage_order_values_reference(self, ws_m: int = 32, mma_k: int = 32) -> np.ndarray:
        """Loop implementation of :meth:`storage_order_values` (kept as the
        equivalence reference for the vectorized path)."""
        rows, stored = self.values.shape
        if ws_m <= 0 or mma_k <= 0:
            raise ValueError("ws_m and mma_k must be positive")
        tile_rows = min(ws_m, rows)
        chunk = 4  # stored values grouped per 64-bit half-transaction
        out = []
        for r0 in range(0, rows, tile_rows):
            tile = self.values[r0 : r0 + tile_rows]
            n_chunks = (stored + chunk - 1) // chunk
            for c in range(n_chunks):
                out.append(tile[:, c * chunk : (c + 1) * chunk].ravel())
        return np.concatenate(out) if out else np.zeros(0, dtype=np.float32)
