"""Blocked-ELL format.

Blocked-Ellpack is one of the compressed layouts supported by NVIDIA's
cuSPARSE library (the paper's related-work section).  The matrix is tiled
into square ``b x b`` blocks; every block row stores the same number of
blocks (the maximum over block rows), padding with explicit zero blocks.
The format is included as a substrate so block-wise pruning (Figure 2,
scheme 1) has a matching storage format and so the footprint comparisons in
the examples can contrast it with V:N:M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .base import FormatFootprint, SparseFormat, as_float_matrix
from ..hardware.memory import dtype_bytes


@dataclass
class BlockedEllMatrix(SparseFormat):
    """A matrix stored in Blocked-ELL layout.

    Attributes
    ----------
    blocks:
        ``(num_block_rows, ell_cols, b, b)`` float32 array of stored blocks
        (padded block slots hold zeros).
    block_cols:
        ``(num_block_rows, ell_cols)`` int64 array with the block-column
        index of each slot; ``-1`` marks a padding slot.
    b:
        Block edge length.
    nrows / ncols:
        Logical matrix shape (both divisible by ``b``).
    """

    blocks: np.ndarray
    block_cols: np.ndarray
    b: int
    nrows: int
    ncols: int
    format_name: str = "blocked_ell"

    def __post_init__(self) -> None:
        self.blocks = np.ascontiguousarray(self.blocks, dtype=np.float32)
        self.block_cols = np.ascontiguousarray(self.block_cols, dtype=np.int64)
        if self.b <= 0:
            raise ValueError("block size must be positive")
        if self.nrows % self.b or self.ncols % self.b:
            raise ValueError("matrix dimensions must be divisible by the block size")
        nbr = self.nrows // self.b
        if self.blocks.ndim != 4 or self.blocks.shape[0] != nbr or self.blocks.shape[2:] != (self.b, self.b):
            raise ValueError("blocks must have shape (num_block_rows, ell_cols, b, b)")
        if self.block_cols.shape != self.blocks.shape[:2]:
            raise ValueError("block_cols must match blocks' leading dimensions")
        valid = self.block_cols[self.block_cols >= 0]
        if valid.size and valid.max() >= self.ncols // self.b:
            raise ValueError("block column indices out of range")

    @classmethod
    def from_dense(cls, dense: np.ndarray, b: int = 16, tol: float = 0.0) -> "BlockedEllMatrix":
        """Store every ``b x b`` block that contains at least one non-zero.

        The ELL slot of every kept block is its rank within its block row,
        computed for all rows at once, so the whole layout is written with
        two fancy assignments.  :meth:`from_dense_reference` keeps the
        per-block loop as the equivalence reference.
        """
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        if b <= 0:
            raise ValueError("block size must be positive")
        if rows % b or cols % b:
            raise ValueError(f"matrix shape {arr.shape} must be divisible by block size {b}")
        nbr, nbc = rows // b, cols // b
        tiled = arr.reshape(nbr, b, nbc, b).transpose(0, 2, 1, 3)  # (nbr, nbc, b, b)
        keep = np.abs(tiled).max(axis=(2, 3)) > tol  # (nbr, nbc)
        counts = keep.sum(axis=1)
        ell_cols = int(counts.max()) if keep.size else 0
        ell_cols = max(ell_cols, 1)

        blocks = np.zeros((nbr, ell_cols, b, b), dtype=np.float32)
        block_cols = np.full((nbr, ell_cols), -1, dtype=np.int64)
        row_idx, col_idx = np.nonzero(keep)
        if row_idx.size:
            starts = np.zeros(nbr, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            slot = np.arange(row_idx.size, dtype=np.int64) - np.repeat(starts, counts)
            blocks[row_idx, slot] = tiled[row_idx, col_idx]
            block_cols[row_idx, slot] = col_idx
        return cls(blocks=blocks, block_cols=block_cols, b=b, nrows=rows, ncols=cols)

    @classmethod
    def from_dense_reference(cls, dense: np.ndarray, b: int = 16, tol: float = 0.0) -> "BlockedEllMatrix":
        """Per-block loop implementation of :meth:`from_dense` (for tests)."""
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        if b <= 0:
            raise ValueError("block size must be positive")
        if rows % b or cols % b:
            raise ValueError(f"matrix shape {arr.shape} must be divisible by block size {b}")
        nbr, nbc = rows // b, cols // b
        tiled = arr.reshape(nbr, b, nbc, b).transpose(0, 2, 1, 3)  # (nbr, nbc, b, b)
        keep = np.abs(tiled).max(axis=(2, 3)) > tol  # (nbr, nbc)
        ell_cols = int(keep.sum(axis=1).max()) if keep.size else 0
        ell_cols = max(ell_cols, 1)

        blocks = np.zeros((nbr, ell_cols, b, b), dtype=np.float32)
        block_cols = np.full((nbr, ell_cols), -1, dtype=np.int64)
        for i in range(nbr):
            cols_i = np.nonzero(keep[i])[0]
            for slot, c in enumerate(cols_i):
                blocks[i, slot] = tiled[i, c]
                block_cols[i, slot] = c
        return cls(blocks=blocks, block_cols=block_cols, b=b, nrows=rows, ncols=cols)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``(nrows, ncols)`` matrix.

        Single vectorized scatter of all non-padding blocks into the tiled
        view of the output; :meth:`to_dense_reference` keeps the loop.
        """
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float32)
        nbr = self.nrows // self.b
        nbc = self.ncols // self.b
        row_idx, slot_idx = np.nonzero(self.block_cols >= 0)
        if row_idx.size:
            col_idx = self.block_cols[row_idx, slot_idx]
            dense.reshape(nbr, self.b, nbc, self.b)[row_idx, :, col_idx, :] = self.blocks[
                row_idx, slot_idx
            ]
        return dense

    def to_dense_reference(self) -> np.ndarray:
        """Per-slot loop implementation of :meth:`to_dense` (for tests)."""
        dense = np.zeros((self.nrows, self.ncols), dtype=np.float32)
        nbr, ell_cols = self.block_cols.shape
        for i in range(nbr):
            for slot in range(ell_cols):
                c = self.block_cols[i, slot]
                if c < 0:
                    continue
                dense[i * self.b : (i + 1) * self.b, c * self.b : (c + 1) * self.b] = self.blocks[i, slot]
        return dense

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        """Explicitly stored elements (all elements of all non-padding blocks)."""
        return int(np.count_nonzero(self.block_cols >= 0) * self.b * self.b)

    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """All ELL slots at ``precision`` + one 4-byte index per slot."""
        return FormatFootprint(
            values_bytes=self.blocks.size * dtype_bytes(precision),
            metadata_bytes=0.0,
            index_bytes=self.block_cols.size * 4.0,
        )

    @property
    def ell_width(self) -> int:
        """Number of block slots per block row (including padding)."""
        return int(self.block_cols.shape[1])

    def padding_fraction(self) -> float:
        """Fraction of ELL slots that are padding."""
        total = self.block_cols.size
        if total == 0:
            return 0.0
        return float(np.count_nonzero(self.block_cols < 0)) / total
