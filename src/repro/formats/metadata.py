"""Packing and unpacking of 2-bit sparsity metadata.

Both the native 2:4 format (Figure 1) and the V:N:M format (Figure 3) carry
one 2-bit index per stored non-zero: the position of the value inside its
group of four candidate columns.  The real hardware consumes this metadata
as packed 16-/32-bit words laid out so that one warp can fetch the metadata
of a whole ``mma.sp`` instruction with a single 32-bit load per thread pair
(the "16 bits" column of the paper's Figure 7).

This module implements bit-exact packing/unpacking of those indices into
``uint32`` words plus helpers to validate index ranges.  The packed form is
what the footprint accounting and the storage-order tests exercise; the
functional SpMM kernels use the unpacked index arrays for clarity.
"""

from __future__ import annotations

import numpy as np

#: Number of metadata bits per stored non-zero value.
BITS_PER_INDEX = 2
#: Number of 2-bit indices that fit in one 32-bit metadata word.
INDICES_PER_WORD = 32 // BITS_PER_INDEX


def validate_indices(indices: np.ndarray, group_size: int = 4) -> np.ndarray:
    """Validate that metadata indices are integers in ``[0, group_size)``.

    Returns the indices as a contiguous ``uint8`` array.
    """
    arr = np.asarray(indices)
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if not np.allclose(arr, np.round(arr)):
            raise TypeError("metadata indices must be integers")
        arr = np.round(arr).astype(np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= group_size):
        raise ValueError(f"metadata indices must lie in [0, {group_size}), got range [{arr.min()}, {arr.max()}]")
    return np.ascontiguousarray(arr, dtype=np.uint8)


def pack_indices(indices: np.ndarray) -> np.ndarray:
    """Pack a flat array of 2-bit indices into ``uint32`` words.

    The first index occupies the least-significant bits of the first word,
    matching the little-endian packing the ``mma.sp`` metadata operand
    expects.  The output is padded with zero indices to a multiple of 16
    indices per word.
    """
    flat = validate_indices(np.asarray(indices).ravel())
    n = flat.size
    n_words = (n + INDICES_PER_WORD - 1) // INDICES_PER_WORD if n else 0
    padded = np.zeros(n_words * INDICES_PER_WORD, dtype=np.uint32)
    padded[:n] = flat.astype(np.uint32)
    padded = padded.reshape(n_words, INDICES_PER_WORD) if n_words else padded.reshape(0, INDICES_PER_WORD)
    shifts = (np.arange(INDICES_PER_WORD, dtype=np.uint32) * BITS_PER_INDEX).astype(np.uint32)
    words = np.bitwise_or.reduce(padded << shifts, axis=1).astype(np.uint32)
    return words


def unpack_indices(words: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` 2-bit indices from packed ``uint32`` words."""
    if count < 0:
        raise ValueError("count must be non-negative")
    words = np.ascontiguousarray(words, dtype=np.uint32)
    capacity = words.size * INDICES_PER_WORD
    if count > capacity:
        raise ValueError(f"requested {count} indices but words only hold {capacity}")
    if count == 0:
        return np.zeros(0, dtype=np.uint8)
    shifts = (np.arange(INDICES_PER_WORD, dtype=np.uint32) * BITS_PER_INDEX).astype(np.uint32)
    expanded = (words[:, None] >> shifts[None, :]) & np.uint32(0b11)
    return expanded.reshape(-1)[:count].astype(np.uint8)


def metadata_bytes(nnz: int) -> float:
    """Bytes of packed metadata for ``nnz`` stored values (2 bits each)."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    return nnz * BITS_PER_INDEX / 8.0


def indices_from_mask_groups(mask: np.ndarray, group_size: int, keep: int) -> np.ndarray:
    """Derive per-group position indices from a boolean keep-mask.

    ``mask`` has shape ``(rows, cols)`` with ``cols`` a multiple of
    ``group_size``; each group of ``group_size`` consecutive columns must
    contain exactly ``keep`` True entries.  Returns an integer array of
    shape ``(rows, cols // group_size, keep)`` with the in-group positions
    of the kept values, sorted ascending (the order the hardware stores
    them).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("mask must be 2-D")
    rows, cols = mask.shape
    if cols % group_size != 0:
        raise ValueError(f"columns ({cols}) must be a multiple of the group size ({group_size})")
    grouped = mask.reshape(rows, cols // group_size, group_size)
    counts = grouped.sum(axis=2)
    if not np.all(counts == keep):
        bad = np.argwhere(counts != keep)
        r, g = bad[0]
        raise ValueError(
            f"group ({int(r)}, {int(g)}) keeps {int(counts[r, g])} values, expected exactly {keep}"
        )
    # argsort of ~mask puts True positions first, preserving ascending order
    # among equal keys because argsort is stable with kind='stable'.
    order = np.argsort(~grouped, axis=2, kind="stable")
    return order[:, :, :keep].astype(np.uint8)
