"""Compressed Sparse Row (CSR) format.

CSR is the substrate of the Sputnik baseline (Gale et al., SC'20): one
row-pointer array, one column-index array and one value array.  Sputnik's
one-dimensional tiling scheme operates directly on this layout, so the
reproduction includes a complete CSR implementation (construction from a
dense/pruned matrix, reconstruction, row-slicing, and load-imbalance
statistics that Sputnik's performance model consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .base import FormatFootprint, SparseFormat, as_float_matrix
from ..hardware.memory import dtype_bytes


@dataclass
class CSRMatrix(SparseFormat):
    """A matrix in CSR layout.

    Attributes
    ----------
    data:
        Non-zero values in row-major order, shape ``(nnz,)``.
    indices:
        Column index of each value, shape ``(nnz,)``.
    indptr:
        Row pointer array, shape ``(rows + 1,)``; row ``i`` owns
        ``data[indptr[i]:indptr[i+1]]``.
    ncols:
        Number of logical columns.
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    ncols: int
    format_name: str = "csr"

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        if self.data.ndim != 1 or self.indices.ndim != 1 or self.indptr.ndim != 1:
            raise ValueError("data, indices and indptr must be 1-D arrays")
        if self.data.size != self.indices.size:
            raise ValueError("data and indices must have the same length")
        if self.indptr.size < 1 or self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.ncols <= 0:
            raise ValueError("ncols must be positive")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= self.ncols):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # Construction / reconstruction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build a CSR matrix from the non-zeros of ``dense``."""
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        mask = np.abs(arr) > tol
        counts = mask.sum(axis=1)
        indptr = np.zeros(rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows_idx, cols_idx = np.nonzero(mask)
        order = np.lexsort((cols_idx, rows_idx))
        return cls(
            data=arr[rows_idx[order], cols_idx[order]],
            indices=cols_idx[order],
            indptr=indptr,
            ncols=cols,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``(rows, ncols)`` matrix.

        One vectorized scatter: every value's row index is expanded from the
        row-pointer array and the whole matrix is written with a single
        fancy assignment.  :meth:`to_dense_reference` keeps the per-row loop
        as the equivalence reference.
        """
        rows = self.indptr.size - 1
        dense = np.zeros((rows, self.ncols), dtype=np.float32)
        if self.data.size:
            row_idx = np.repeat(np.arange(rows, dtype=np.int64), np.diff(self.indptr))
            dense[row_idx, self.indices] = self.data
        return dense

    def to_dense_reference(self) -> np.ndarray:
        """Per-row loop implementation of :meth:`to_dense` (kept for tests)."""
        rows = self.indptr.size - 1
        dense = np.zeros((rows, self.ncols), dtype=np.float32)
        for r in range(rows):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            dense[r, self.indices[lo:hi]] = self.data[lo:hi]
        return dense

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.indptr.size - 1, self.ncols)

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """Values at ``precision`` + 4-byte column indices + row pointers."""
        return FormatFootprint(
            values_bytes=self.data.size * dtype_bytes(precision),
            metadata_bytes=0.0,
            index_bytes=self.indices.size * 4.0 + self.indptr.size * 4.0,
        )

    # ------------------------------------------------------------------
    # Statistics used by the Sputnik cost model
    # ------------------------------------------------------------------
    def row_lengths(self) -> np.ndarray:
        """Number of non-zeros per row."""
        return np.diff(self.indptr)

    def load_imbalance(self) -> float:
        """Max row length divided by mean row length (1.0 = balanced).

        DL weight matrices pruned unstructuredly show pronounced imbalance,
        which is one of the effects the paper cites (Section 3) as limiting
        non-structured kernels like Sputnik.
        """
        lengths = self.row_lengths()
        mean = lengths.mean() if lengths.size else 0.0
        if mean == 0:
            return 1.0
        return float(lengths.max() / mean)

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Return the CSR sub-matrix of rows ``[start, stop)``."""
        rows = self.indptr.size - 1
        if not (0 <= start <= stop <= rows):
            raise IndexError(f"row slice [{start}, {stop}) out of range for {rows} rows")
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix(
            data=self.data[lo:hi].copy(),
            indices=self.indices[lo:hi].copy(),
            indptr=(self.indptr[start : stop + 1] - lo).copy(),
            ncols=self.ncols,
        )
