"""Common infrastructure shared by every sparse storage format.

All formats in this subpackage implement the same small interface
(:class:`SparseFormat`): construction from a dense matrix (assumed to
already carry the zeros of whichever pruning pattern produced it),
reconstruction back to dense, the number of explicitly stored non-zero
values and the compressed footprint in bytes.  The SpMM kernels consume the
format-specific attributes directly; the shared interface exists so tests,
benchmarks and the energy/footprint studies can treat every format
uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

import numpy as np


def as_float_matrix(dense: np.ndarray, name: str = "dense") -> np.ndarray:
    """Validate and canonicalise a dense input matrix.

    Accepts any 2-D array-like with a real floating or integer dtype and
    returns a C-contiguous ``float32`` copy (float32 is used as the
    in-simulator stand-in for the paper's fp16 storage; numerical tests
    account for the representation separately via
    :func:`repro.formats.base.quantize_fp16`).
    """
    arr = np.asarray(dense)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.number):
        raise TypeError(f"{name} must be numeric, got dtype {arr.dtype}")
    if np.iscomplexobj(arr):
        raise TypeError(f"{name} must be real-valued")
    return np.ascontiguousarray(arr, dtype=np.float32)


def quantize_fp16(matrix: np.ndarray) -> np.ndarray:
    """Round a matrix through IEEE half precision and back to float32.

    The paper's kernels operate on fp16 operands with fp32 accumulation.
    The simulator stores values as float32 for convenience; this helper
    reproduces the storage rounding so numerical comparisons against the
    dense reference use the same precision the real library would.
    """
    return np.asarray(matrix, dtype=np.float16).astype(np.float32)


def sparsity_of(matrix: np.ndarray, tol: float = 0.0) -> float:
    """Fraction of entries whose magnitude is <= ``tol`` (0 = dense)."""
    arr = np.asarray(matrix)
    if arr.size == 0:
        raise ValueError("cannot compute sparsity of an empty matrix")
    return float(np.count_nonzero(np.abs(arr) <= tol)) / arr.size


def density_of(matrix: np.ndarray, tol: float = 0.0) -> float:
    """Fraction of entries whose magnitude is > ``tol``."""
    return 1.0 - sparsity_of(matrix, tol)


@dataclass(frozen=True)
class FormatFootprint:
    """Compressed storage footprint of a sparse matrix, per structure."""

    values_bytes: float
    metadata_bytes: float
    index_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total compressed bytes (values + metadata + indices)."""
        return self.values_bytes + self.metadata_bytes + self.index_bytes

    def compression_ratio(self, dense_bytes: float) -> float:
        """Dense bytes divided by compressed bytes (higher is better)."""
        if self.total_bytes <= 0:
            raise ValueError("compressed footprint must be positive")
        return dense_bytes / self.total_bytes


class SparseFormat(abc.ABC):
    """Abstract interface implemented by every compressed format."""

    #: Short identifier used in benchmark tables ("nm", "vnm", "csr", ...).
    format_name: str = "abstract"

    @property
    @abc.abstractmethod
    def shape(self) -> Tuple[int, int]:
        """Logical (rows, cols) shape of the represented matrix."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored values."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense float32 matrix (zeros included)."""

    @abc.abstractmethod
    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """Compressed storage footprint for the given value precision."""

    # ------------------------------------------------------------------
    # Conveniences shared by all formats
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of logical rows."""
        return self.shape[0]

    @property
    def cols(self) -> int:
        """Number of logical columns."""
        return self.shape[1]

    @property
    def density(self) -> float:
        """Stored non-zeros divided by logical size."""
        r, c = self.shape
        return self.nnz / float(r * c)

    @property
    def sparsity(self) -> float:
        """1 - density."""
        return 1.0 - self.density

    def dense_bytes(self, precision: str = "fp16") -> float:
        """Bytes of the dense representation at ``precision``."""
        from ..hardware.memory import dtype_bytes

        r, c = self.shape
        return r * c * dtype_bytes(precision)

    def compression_ratio(self, precision: str = "fp16") -> float:
        """Dense footprint divided by compressed footprint."""
        return self.footprint(precision).compression_ratio(self.dense_bytes(precision))

    def allclose_to(self, dense: np.ndarray, atol: float = 1e-6) -> bool:
        """True when decompression matches ``dense`` to ``atol``."""
        return bool(np.allclose(self.to_dense(), np.asarray(dense, dtype=np.float32), atol=atol))
