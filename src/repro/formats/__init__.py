"""Sparse storage formats.

This subpackage implements every compressed format the paper touches:

* :class:`~repro.formats.nm.NMSparseMatrix` — NVIDIA's native row-wise N:M
  (2:4) layout (paper Figure 1).
* :class:`~repro.formats.vnm.VNMSparseMatrix` — the paper's V:N:M format
  (Figure 3): values, 2-bit m-indices and the column-loc structure.
* :class:`~repro.formats.csr.CSRMatrix` — CSR, the substrate of the Sputnik
  baseline.
* :class:`~repro.formats.cvse.CVSEMatrix` — column-vector sparse encoding,
  the substrate of vectorSparse / CLASP.
* :class:`~repro.formats.blocked_ell.BlockedEllMatrix` — Blocked-ELL, the
  cuSPARSE-style block format used by block-wise pruning comparisons.
"""

from .base import (
    FormatFootprint,
    SparseFormat,
    as_float_matrix,
    density_of,
    quantize_fp16,
    sparsity_of,
)
from .blocked_ell import BlockedEllMatrix
from .csr import CSRMatrix
from .cvse import CVSEMatrix
from .metadata import (
    BITS_PER_INDEX,
    INDICES_PER_WORD,
    indices_from_mask_groups,
    metadata_bytes,
    pack_indices,
    unpack_indices,
    validate_indices,
)
from .nm import NMSparseMatrix, check_nm_pattern, nm_violations
from .vnm import SELECTED_COLUMNS, VNMSparseMatrix, check_vnm_pattern, validate_vnm_shape

__all__ = [
    "FormatFootprint",
    "SparseFormat",
    "as_float_matrix",
    "density_of",
    "quantize_fp16",
    "sparsity_of",
    "BlockedEllMatrix",
    "CSRMatrix",
    "CVSEMatrix",
    "BITS_PER_INDEX",
    "INDICES_PER_WORD",
    "indices_from_mask_groups",
    "metadata_bytes",
    "pack_indices",
    "unpack_indices",
    "validate_indices",
    "NMSparseMatrix",
    "check_nm_pattern",
    "nm_violations",
    "SELECTED_COLUMNS",
    "VNMSparseMatrix",
    "check_vnm_pattern",
    "validate_vnm_shape",
]
