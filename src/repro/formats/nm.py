"""Row-wise N:M format (NVIDIA's native Sparse Tensor Core layout).

Figure 1 of the paper: a matrix pruned to the row-wise 2:4 pattern (at most
two non-zeros in every group of four consecutive columns) is stored as

* a ``R x K/2`` array with the non-zero values, and
* a 2-bit metadata index per stored value giving its position within its
  group of four columns.

This module implements the general N:M version of that layout (the
hardware only supports 1:2 and 2:4, but the software format generalises,
and the V:N:M format reuses these building blocks for its inner 2:4
stage).  Compression is bit-exact and reversible: ``NMSparseMatrix`` stores
exactly ``N`` values per group, padding groups that have fewer natural
non-zeros with explicit zeros, and round-trips to the original dense matrix
as long as that matrix obeys the N:M constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .base import FormatFootprint, SparseFormat, as_float_matrix
from .metadata import metadata_bytes, pack_indices, validate_indices
from ..hardware.memory import dtype_bytes


def check_nm_pattern(matrix: np.ndarray, n: int, m: int, tol: float = 0.0) -> bool:
    """True when every row-wise group of ``m`` columns has <= ``n`` non-zeros."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError("matrix must be 2-D")
    rows, cols = arr.shape
    if cols % m != 0:
        return False
    grouped = np.abs(arr).reshape(rows, cols // m, m) > tol
    return bool(np.all(grouped.sum(axis=2) <= n))


def nm_violations(matrix: np.ndarray, n: int, m: int, tol: float = 0.0) -> int:
    """Number of (row, group) pairs violating the N:M constraint."""
    arr = np.asarray(matrix)
    rows, cols = arr.shape
    if cols % m != 0:
        raise ValueError(f"columns ({cols}) must be divisible by M ({m})")
    grouped = np.abs(arr).reshape(rows, cols // m, m) > tol
    return int(np.count_nonzero(grouped.sum(axis=2) > n))


@dataclass
class NMSparseMatrix(SparseFormat):
    """A matrix stored in the row-wise N:M compressed layout.

    Attributes
    ----------
    values:
        ``(R, K/M * N)`` float32 array of stored values (zero-padded when a
        group has fewer than N natural non-zeros).
    indices:
        ``(R, K/M * N)`` uint8 array with the in-group column position of
        each stored value (each entry in ``[0, M)``), ascending within a
        group.
    n, m:
        The N:M pattern.
    k:
        Number of logical columns of the original matrix.
    """

    values: np.ndarray
    indices: np.ndarray
    n: int
    m: int
    k: int
    format_name: str = "nm"

    def __post_init__(self) -> None:
        self.values = np.ascontiguousarray(self.values, dtype=np.float32)
        self.indices = validate_indices(self.indices, group_size=self.m).reshape(self.values.shape)
        if self.n <= 0 or self.m <= 0 or self.n > self.m:
            raise ValueError(f"invalid N:M pattern {self.n}:{self.m}")
        if self.k % self.m != 0:
            raise ValueError(f"K ({self.k}) must be divisible by M ({self.m})")
        expected = (self.k // self.m) * self.n
        if self.values.ndim != 2 or self.values.shape[1] != expected:
            raise ValueError(
                f"values must have shape (R, K/M*N) = (R, {expected}), got {self.values.shape}"
            )
        if self.indices.shape != self.values.shape:
            raise ValueError("indices must have the same shape as values")

    # ------------------------------------------------------------------
    # Construction / reconstruction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, n: int = 2, m: int = 4, strict: bool = True, tol: float = 0.0
    ) -> "NMSparseMatrix":
        """Compress a dense matrix that already obeys the N:M pattern.

        Parameters
        ----------
        dense:
            ``(R, K)`` matrix.  With ``strict=True`` (default) a
            ``ValueError`` is raised if any group of ``m`` columns holds
            more than ``n`` non-zeros; with ``strict=False`` the ``n``
            largest-magnitude entries of each group are kept (i.e. the
            compression itself performs magnitude N:M pruning).
        """
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        if n <= 0 or m <= 0 or n > m:
            raise ValueError(f"invalid N:M pattern {n}:{m}")
        if cols % m != 0:
            raise ValueError(f"K ({cols}) must be divisible by M ({m})")
        if strict and not check_nm_pattern(arr, n, m, tol=tol):
            raise ValueError(
                f"matrix violates the {n}:{m} pattern in {nm_violations(arr, n, m, tol)} groups; "
                "prune it first or pass strict=False"
            )
        groups = arr.reshape(rows, cols // m, m)
        # Keep the n largest magnitudes per group.  For compliant matrices
        # this selects exactly the non-zeros (plus zero padding); argsort is
        # stable so ties resolve to the lowest column index.
        order = np.argsort(-np.abs(groups), axis=2, kind="stable")[:, :, :n]
        order = np.sort(order, axis=2)
        values = np.take_along_axis(groups, order, axis=2)
        return cls(
            values=values.reshape(rows, -1),
            indices=order.reshape(rows, -1).astype(np.uint8),
            n=n,
            m=m,
            k=cols,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``(R, K)`` matrix."""
        rows = self.values.shape[0]
        groups = self.k // self.m
        dense = np.zeros((rows, groups, self.m), dtype=np.float32)
        vals = self.values.reshape(rows, groups, self.n)
        idx = self.indices.reshape(rows, groups, self.n).astype(np.int64)
        np.put_along_axis(dense, idx, vals, axis=2)
        return dense.reshape(rows, self.k)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.values.shape[0], self.k)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """Compressed footprint: values at ``precision`` + 2-bit metadata."""
        return FormatFootprint(
            values_bytes=self.values.size * dtype_bytes(precision),
            metadata_bytes=metadata_bytes(self.values.size),
            index_bytes=0.0,
        )

    # ------------------------------------------------------------------
    # Extras used by kernels and tests
    # ------------------------------------------------------------------
    def packed_metadata(self) -> np.ndarray:
        """Metadata packed into uint32 words, row-major, as hardware expects."""
        return pack_indices(self.indices.ravel())

    @property
    def groups_per_row(self) -> int:
        """Number of M-column groups per row."""
        return self.k // self.m

    def column_indices(self) -> np.ndarray:
        """Absolute column index of every stored value, shape like ``values``."""
        rows = self.values.shape[0]
        groups = self.groups_per_row
        base = (np.arange(groups, dtype=np.int64) * self.m)[None, :, None]
        idx = self.indices.reshape(rows, groups, self.n).astype(np.int64)
        return (base + idx).reshape(rows, -1)
