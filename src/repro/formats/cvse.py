"""Column-Vector Sparse Encoding (CVSE).

CVSE is the storage format of vectorSparse (Chen et al., SC'21) and CLASP
(Castro et al., PACT'22): the matrix is divided into vertical vectors of
``l`` consecutive rows within one column; a vector is stored (densely, all
``l`` elements) whenever any of its elements survives pruning.  Column
indices are therefore shared by the ``l`` elements of a vector, which is
what lets those libraries feed Tensor Cores with semi-structured data.

The reproduction uses this format as the substrate of the CLASP baseline
(Figure 13, the ``vw_l`` columns) and for the vector-wise entries of the
energy study (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .base import FormatFootprint, SparseFormat, as_float_matrix
from ..hardware.memory import dtype_bytes


@dataclass
class CVSEMatrix(SparseFormat):
    """A matrix stored as column-vectors of length ``l``.

    Attributes
    ----------
    data:
        ``(num_vectors, l)`` float32 array; each row is one stored vertical
        vector (all ``l`` elements of the vector, zeros included).
    vector_cols:
        ``(num_vectors,)`` column index of each stored vector.
    vector_ptr:
        ``(num_row_blocks + 1,)`` pointer array: row-block ``b`` (rows
        ``b*l .. (b+1)*l``) owns vectors ``vector_ptr[b]:vector_ptr[b+1]``.
    l:
        Vector length (the paper evaluates l in {2, 4, 8, 16, 32}).
    nrows / ncols_total:
        Logical matrix shape.
    """

    data: np.ndarray
    vector_cols: np.ndarray
    vector_ptr: np.ndarray
    l: int
    nrows: int
    ncols_total: int
    format_name: str = "cvse"

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        self.vector_cols = np.ascontiguousarray(self.vector_cols, dtype=np.int64)
        self.vector_ptr = np.ascontiguousarray(self.vector_ptr, dtype=np.int64)
        if self.l <= 0:
            raise ValueError("vector length l must be positive")
        if self.nrows % self.l != 0:
            raise ValueError(f"rows ({self.nrows}) must be divisible by the vector length ({self.l})")
        if self.data.ndim != 2 or self.data.shape[1] != self.l:
            raise ValueError(f"data must have shape (num_vectors, l={self.l})")
        if self.vector_cols.shape != (self.data.shape[0],):
            raise ValueError("vector_cols must have one entry per stored vector")
        n_blocks = self.nrows // self.l
        if self.vector_ptr.shape != (n_blocks + 1,):
            raise ValueError("vector_ptr must have num_row_blocks + 1 entries")
        if self.vector_ptr[0] != 0 or self.vector_ptr[-1] != self.data.shape[0]:
            raise ValueError("vector_ptr must start at 0 and end at num_vectors")
        if np.any(np.diff(self.vector_ptr) < 0):
            raise ValueError("vector_ptr must be non-decreasing")
        if self.vector_cols.size and (
            self.vector_cols.min() < 0 or self.vector_cols.max() >= self.ncols_total
        ):
            raise ValueError("vector column indices out of range")

    # ------------------------------------------------------------------
    # Construction / reconstruction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, l: int = 8, tol: float = 0.0) -> "CVSEMatrix":
        """Store every length-``l`` column vector that contains a non-zero.

        The survivor scan, the gather of the kept vectors and the pointer
        array are all single batched operations (``np.nonzero`` enumerates
        row-major, i.e. block by block in ascending column order — exactly
        the order the per-block loop produced).
        :meth:`from_dense_reference` keeps that loop for the tests.
        """
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        if l <= 0:
            raise ValueError("vector length l must be positive")
        if rows % l != 0:
            raise ValueError(f"rows ({rows}) must be divisible by l ({l})")
        n_blocks = rows // l
        blocks = arr.reshape(n_blocks, l, cols)
        keep = np.abs(blocks).max(axis=1) > tol  # (n_blocks, cols)

        blk_idx, vector_cols = np.nonzero(keep)
        data = (
            blocks[blk_idx, :, vector_cols]  # (num_vectors, l)
            if vector_cols.size
            else np.zeros((0, l), dtype=np.float32)
        )
        ptr = np.zeros(n_blocks + 1, dtype=np.int64)
        np.cumsum(keep.sum(axis=1), out=ptr[1:])
        return cls(
            data=data,
            vector_cols=vector_cols.astype(np.int64),
            vector_ptr=ptr,
            l=l,
            nrows=rows,
            ncols_total=cols,
        )

    @classmethod
    def from_dense_reference(cls, dense: np.ndarray, l: int = 8, tol: float = 0.0) -> "CVSEMatrix":
        """Per-block loop implementation of :meth:`from_dense` (for tests)."""
        arr = as_float_matrix(dense)
        rows, cols = arr.shape
        if l <= 0:
            raise ValueError("vector length l must be positive")
        if rows % l != 0:
            raise ValueError(f"rows ({rows}) must be divisible by l ({l})")
        n_blocks = rows // l
        blocks = arr.reshape(n_blocks, l, cols)
        keep = np.abs(blocks).max(axis=1) > tol  # (n_blocks, cols)

        data_rows = []
        vec_cols = []
        ptr = np.zeros(n_blocks + 1, dtype=np.int64)
        for b in range(n_blocks):
            cols_b = np.nonzero(keep[b])[0]
            ptr[b + 1] = ptr[b] + cols_b.size
            if cols_b.size:
                data_rows.append(blocks[b][:, cols_b].T)  # (n_kept, l)
                vec_cols.append(cols_b)
        data = np.concatenate(data_rows, axis=0) if data_rows else np.zeros((0, l), dtype=np.float32)
        vector_cols = np.concatenate(vec_cols) if vec_cols else np.zeros(0, dtype=np.int64)
        return cls(
            data=data,
            vector_cols=vector_cols,
            vector_ptr=ptr,
            l=l,
            nrows=rows,
            ncols_total=cols,
        )

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``(nrows, ncols_total)`` matrix.

        Single vectorized scatter of all stored vectors;
        :meth:`to_dense_reference` keeps the nested loop for the tests.
        """
        dense = np.zeros((self.nrows, self.ncols_total), dtype=np.float32)
        if self.data.shape[0]:
            n_blocks = self.nrows // self.l
            blk_of_vec = np.repeat(
                np.arange(n_blocks, dtype=np.int64), np.diff(self.vector_ptr)
            )
            dense.reshape(n_blocks, self.l, self.ncols_total)[
                blk_of_vec, :, self.vector_cols
            ] = self.data
        return dense

    def to_dense_reference(self) -> np.ndarray:
        """Per-vector loop implementation of :meth:`to_dense` (for tests)."""
        dense = np.zeros((self.nrows, self.ncols_total), dtype=np.float32)
        n_blocks = self.nrows // self.l
        for b in range(n_blocks):
            lo, hi = self.vector_ptr[b], self.vector_ptr[b + 1]
            for vec_idx in range(lo, hi):
                col = self.vector_cols[vec_idx]
                dense[b * self.l : (b + 1) * self.l, col] = self.data[vec_idx]
        return dense

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols_total)

    @property
    def nnz(self) -> int:
        """Explicitly stored elements (every element of every kept vector)."""
        return int(self.data.size)

    def footprint(self, precision: str = "fp16") -> FormatFootprint:
        """Vector values at ``precision`` + one 4-byte column index per vector."""
        return FormatFootprint(
            values_bytes=self.data.size * dtype_bytes(precision),
            metadata_bytes=0.0,
            index_bytes=self.vector_cols.size * 4.0 + self.vector_ptr.size * 4.0,
        )

    # ------------------------------------------------------------------
    # Statistics for the CLASP cost model
    # ------------------------------------------------------------------
    @property
    def num_vectors(self) -> int:
        """Number of stored column vectors."""
        return int(self.data.shape[0])

    def vectors_per_block(self) -> np.ndarray:
        """Number of stored vectors for each row block."""
        return np.diff(self.vector_ptr)

    def load_imbalance(self) -> float:
        """Max vectors-per-block divided by the mean (1.0 = balanced)."""
        counts = self.vectors_per_block()
        mean = counts.mean() if counts.size else 0.0
        if mean == 0:
            return 1.0
        return float(counts.max() / mean)

    def effective_density(self) -> float:
        """Stored elements over logical size (includes intra-vector zeros)."""
        return self.nnz / float(self.nrows * self.ncols_total)
