"""Simulated GPU execution substrate.

The paper's experiments run on an NVIDIA RTX 3090 with Sparse Tensor Cores.
This subpackage provides an analytical stand-in for that hardware: machine
descriptions (:mod:`~repro.hardware.spec`), the tensor-core instruction
table from the paper's Table 1 (:mod:`~repro.hardware.isa`), memory-traffic
and transaction models (:mod:`~repro.hardware.memory`), a shared-memory
bank-conflict simulator (:mod:`~repro.hardware.banks`), an occupancy
calculator (:mod:`~repro.hardware.occupancy`), the roofline execution-time
model (:mod:`~repro.hardware.roofline`) and kernel trace records
(:mod:`~repro.hardware.trace`).
"""

from .banks import ConflictReport, conflict_degree_for_layout, simulate_access
from .isa import (
    DENSE_MMA_SHAPES,
    SPARSE_MMA_SHAPES,
    InstructionCost,
    MmaShape,
    default_sparse_shape,
    find_shape,
    instruction_cost,
    native_nm,
    sparse_mma_shapes,
)
from .memory import (
    DTYPE_BYTES,
    TrafficRecord,
    TransactionModel,
    dtype_bytes,
    gmem_cycles,
    l2_cycles,
    matrix_bytes,
    smem_cycles,
    transfer_cycles,
)
from .occupancy import (
    BlockResources,
    OccupancyResult,
    active_sms,
    blocks_per_sm,
    latency_hiding_factor,
    quantized_waves,
    wave_efficiency,
    waves,
)
from .roofline import KernelCost, compute_cycles_cuda_core, compute_cycles_tensor_core, roofline_cost
from .spec import (
    NVLINK,
    PCIE4,
    PRESETS,
    DeviceGroupSpec,
    GPUSpec,
    InterconnectSpec,
    MemorySpec,
    a100_sxm,
    get_gpu,
    rtx3090,
)
from .trace import ExecutionTrace, KernelExecution

__all__ = [
    "ConflictReport",
    "conflict_degree_for_layout",
    "simulate_access",
    "DENSE_MMA_SHAPES",
    "SPARSE_MMA_SHAPES",
    "InstructionCost",
    "MmaShape",
    "default_sparse_shape",
    "find_shape",
    "instruction_cost",
    "native_nm",
    "sparse_mma_shapes",
    "DTYPE_BYTES",
    "TrafficRecord",
    "TransactionModel",
    "dtype_bytes",
    "gmem_cycles",
    "l2_cycles",
    "matrix_bytes",
    "smem_cycles",
    "transfer_cycles",
    "BlockResources",
    "OccupancyResult",
    "active_sms",
    "blocks_per_sm",
    "latency_hiding_factor",
    "quantized_waves",
    "wave_efficiency",
    "waves",
    "KernelCost",
    "compute_cycles_cuda_core",
    "compute_cycles_tensor_core",
    "roofline_cost",
    "NVLINK",
    "PCIE4",
    "PRESETS",
    "DeviceGroupSpec",
    "GPUSpec",
    "InterconnectSpec",
    "MemorySpec",
    "a100_sxm",
    "get_gpu",
    "rtx3090",
    "ExecutionTrace",
    "KernelExecution",
]
