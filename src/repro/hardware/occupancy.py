"""Occupancy calculator for the simulated GPU.

Spatha is a tiled GEMM-style kernel: each thread block owns a ``BSr x BSc``
output tile and consumes registers and shared memory proportional to its
tile sizes and pipelining depth.  Whether the GPU can keep all of its SMs
busy — and how many thread blocks run concurrently per SM to hide memory
latency — depends on those resource footprints.  This module implements a
standard occupancy calculation (the same arithmetic as NVIDIA's occupancy
calculator) used by the kernel performance models to derive:

* how many waves of thread blocks a GEMM launches
  (:func:`waves`), which produces the tile-quantisation staircase visible
  in the TFLOPS curves of Figure 12, and
* the latency-hiding factor applied to memory-bound phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .spec import GPUSpec


@dataclass(frozen=True)
class BlockResources:
    """Per-thread-block resource usage of a kernel."""

    #: Threads per block (must be a multiple of the warp size).
    threads: int
    #: Registers used per thread.
    registers_per_thread: int
    #: Shared memory used per block, in bytes.
    smem_bytes: int

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.registers_per_thread <= 0:
            raise ValueError("registers_per_thread must be positive")
        if self.smem_bytes < 0:
            raise ValueError("smem_bytes must be non-negative")

    @property
    def warps(self) -> int:
        """Warps per block (rounded up)."""
        return math.ceil(self.threads / 32)


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel on one GPU."""

    blocks_per_sm: int
    warps_per_sm: int
    max_warps_per_sm: int
    limiting_factor: str

    @property
    def occupancy(self) -> float:
        """Achieved occupancy as a fraction of the maximum warps per SM."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.warps_per_sm / self.max_warps_per_sm


def blocks_per_sm(resources: BlockResources, gpu: GPUSpec) -> OccupancyResult:
    """Number of thread blocks of a kernel that fit concurrently on one SM.

    The limit is the minimum over four constraints: resident blocks,
    resident warps/threads, register file, and shared memory.  The name of
    the binding constraint is reported to make tuner decisions explainable.
    """
    limits = {}
    limits["blocks"] = gpu.max_blocks_per_sm
    limits["threads"] = gpu.max_threads_per_sm // resources.threads if resources.threads else 0
    limits["warps"] = gpu.max_warps_per_sm // resources.warps if resources.warps else 0

    regs_per_block = resources.registers_per_thread * resources.threads
    limits["registers"] = gpu.registers_per_sm // regs_per_block if regs_per_block else 0

    if resources.smem_bytes > 0:
        limits["shared_memory"] = gpu.smem.capacity_bytes // resources.smem_bytes
    else:
        limits["shared_memory"] = gpu.max_blocks_per_sm

    binding = min(limits, key=lambda k: limits[k])
    n_blocks = max(0, int(limits[binding]))
    warps = n_blocks * resources.warps
    warps = min(warps, gpu.max_warps_per_sm)
    return OccupancyResult(
        blocks_per_sm=n_blocks,
        warps_per_sm=warps,
        max_warps_per_sm=gpu.max_warps_per_sm,
        limiting_factor=binding,
    )


def waves(total_blocks: int, resources: BlockResources, gpu: GPUSpec) -> float:
    """Number of waves of thread blocks a grid of ``total_blocks`` needs.

    A "wave" is one full round of concurrently resident blocks across the
    whole chip.  Fractional waves capture the tail effect: a grid of
    ``1.1 * chip capacity`` blocks takes ~2 waves of time even though the
    second wave is mostly idle, producing the characteristic staircase in
    GEMM throughput as a function of problem size.
    """
    if total_blocks < 0:
        raise ValueError("total_blocks must be non-negative")
    if total_blocks == 0:
        return 0.0
    occ = blocks_per_sm(resources, gpu)
    if occ.blocks_per_sm == 0:
        raise ValueError(
            "kernel cannot run: a single thread block exceeds SM resources "
            f"(limited by {occ.limiting_factor})"
        )
    chip_capacity = occ.blocks_per_sm * gpu.num_sms
    return total_blocks / chip_capacity


def quantized_waves(total_blocks: int, resources: BlockResources, gpu: GPUSpec) -> int:
    """Integer number of waves, i.e. ``ceil(waves(...))``."""
    return int(math.ceil(waves(total_blocks, resources, gpu))) if total_blocks else 0


def wave_efficiency(total_blocks: int, resources: BlockResources, gpu: GPUSpec) -> float:
    """Utilisation of the last wave (1.0 means perfectly full waves).

    This is the multiplier applied to the compute-bound time of a kernel to
    account for tail-wave under-utilisation.
    """
    w = waves(total_blocks, resources, gpu)
    if w == 0:
        return 1.0
    return w / math.ceil(w)


def active_sms(total_blocks: int, resources: BlockResources, gpu: GPUSpec) -> int:
    """Number of SMs that have at least one resident block.

    Small GEMMs (few output tiles) cannot occupy the whole chip; their
    memory phases only see the bandwidth of the SMs they actually run on
    when the traffic is SMEM-bound, and they under-utilise DRAM when it is
    GMEM-bound.
    """
    occ = blocks_per_sm(resources, gpu)
    if occ.blocks_per_sm == 0:
        return 0
    return int(min(gpu.num_sms, math.ceil(total_blocks / occ.blocks_per_sm) if total_blocks else 0, total_blocks if total_blocks else 0)) if total_blocks else 0


def latency_hiding_factor(resources: BlockResources, gpu: GPUSpec, pipeline_stages: int = 1) -> float:
    """Fraction of memory latency hidden by warp-level parallelism.

    With more resident warps per SM and deeper software pipelining
    (``batchSize`` in Spatha's template), the scheduler can overlap global
    memory loads with tensor-core work.  Returns a value in (0, 1]: the
    *exposed* fraction of the ideal overlap, where 1.0 means the kernel can
    fully overlap loads and math and lower values mean stalls remain.
    """
    if pipeline_stages < 1:
        raise ValueError("pipeline_stages must be >= 1")
    occ = blocks_per_sm(resources, gpu)
    warp_parallelism = min(1.0, occ.warps_per_sm / 12.0)  # ~12 warps hide GMEM latency
    pipeline_bonus = 1.0 - 0.5 ** pipeline_stages
    factor = 0.55 + 0.45 * warp_parallelism * pipeline_bonus
    return min(1.0, factor)
