"""Shared-memory bank-conflict simulator.

Stage 3 of Spatha (Section 4.1.3, Figure 8) stages the per-thread partial
results of a warp into shared memory before writing them back to global
memory with 128-bit transactions.  Shared memory is organised into 32 banks
of 4 bytes; when several threads of the same warp phase (a quarter-warp for
128-bit accesses, the full warp for 32-bit ones) hit the same bank at
different addresses, the hardware serialises the accesses.  The paper adds
padding elements to the staging layout so every quarter-warp touches 32
distinct banks, which is the layout Figure 8 depicts.

This module simulates bank behaviour for arbitrary thread -> address
mappings so the kernel model (and the tests) can verify that the padded
Spatha layout is conflict-free while a naive row-major layout is not, and so
the perf model can charge the correct serialisation factor for the 32-bit
store variant ablated in Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

#: Number of shared-memory banks on all NVIDIA architectures since Kepler.
NUM_BANKS = 32
#: Width of a bank in bytes.
BANK_WIDTH_BYTES = 4


def bank_of(byte_address: int, num_banks: int = NUM_BANKS, bank_width: int = BANK_WIDTH_BYTES) -> int:
    """Bank index addressed by a byte address."""
    if byte_address < 0:
        raise ValueError("byte_address must be non-negative")
    return (byte_address // bank_width) % num_banks


@dataclass(frozen=True)
class ConflictReport:
    """Result of simulating one warp-wide shared-memory access.

    Attributes
    ----------
    phases:
        Number of scheduling phases the access is split into by the access
        width (e.g. 128-bit accesses execute one quarter-warp per phase).
    serialized_passes:
        Total number of bank passes summed over phases; a conflict-free
        access has ``serialized_passes == phases``.
    worst_degree:
        Largest per-bank multiplicity observed in any phase (1 = no
        conflict, 2 = two-way conflict, ...).
    """

    phases: int
    serialized_passes: int
    worst_degree: int

    @property
    def conflict_factor(self) -> float:
        """Average serialisation multiplier (1.0 means conflict-free)."""
        if self.phases == 0:
            return 1.0
        return self.serialized_passes / self.phases

    @property
    def conflict_free(self) -> bool:
        """True when no phase has a bank accessed more than once."""
        return self.worst_degree <= 1


def simulate_access(
    byte_addresses: Sequence[int],
    access_bytes: int = 4,
    num_banks: int = NUM_BANKS,
    bank_width: int = BANK_WIDTH_BYTES,
) -> ConflictReport:
    """Simulate a warp access given the starting byte address per thread.

    Parameters
    ----------
    byte_addresses:
        One starting byte address per thread in the warp (up to 32
        entries).  Each thread moves ``access_bytes`` contiguous bytes.
    access_bytes:
        Per-thread access size: 4 (32-bit), 8 (64-bit) or 16 (128-bit).

    Notes
    -----
    The hardware splits wide accesses into phases so that at most 128 bytes
    are serviced per phase: 128-bit accesses run one quarter-warp (8
    threads) at a time, 64-bit ones run half-warps, 32-bit ones the whole
    warp.  Within a phase, threads hitting the same bank at the *same*
    address are broadcast (no conflict); different addresses in the same
    bank serialise.
    """
    if access_bytes not in (1, 2, 4, 8, 16):
        raise ValueError(f"unsupported per-thread access size: {access_bytes}")
    addresses = list(byte_addresses)
    if len(addresses) == 0:
        return ConflictReport(phases=0, serialized_passes=0, worst_degree=0)
    if len(addresses) > 32:
        raise ValueError("a warp has at most 32 threads")

    threads_per_phase = max(1, (num_banks * bank_width) // access_bytes)
    threads_per_phase = min(threads_per_phase, 32)

    phases = 0
    serialized = 0
    worst = 0
    for start in range(0, len(addresses), threads_per_phase):
        group = addresses[start : start + threads_per_phase]
        phases += 1
        # Map every 4-byte word touched by every thread in the phase to its
        # bank; identical (bank, word-address) pairs broadcast.
        per_bank_words: dict[int, set[int]] = {}
        for addr in group:
            for offset in range(0, access_bytes, bank_width):
                word_addr = (addr + offset) // bank_width
                bank = word_addr % num_banks
                per_bank_words.setdefault(bank, set()).add(word_addr)
        degree = max((len(words) for words in per_bank_words.values()), default=1)
        serialized += degree
        worst = max(worst, degree)
    return ConflictReport(phases=phases, serialized_passes=serialized, worst_degree=worst)


def row_major_store_addresses(
    thread_ids: Iterable[int],
    values_per_thread: int,
    row_width_elems: int,
    elem_bytes: int = 4,
    padding_elems: int = 0,
) -> List[int]:
    """Starting addresses for a row-major staging layout.

    Thread ``t`` stores ``values_per_thread`` contiguous elements starting
    at logical element ``t * values_per_thread``.  The logical matrix row
    width is ``row_width_elems`` elements; ``padding_elems`` extra elements
    are inserted at the end of each row (the classic padding trick used by
    Spatha's Figure 8 layout to spread quarter-warp accesses across banks).
    """
    if values_per_thread <= 0 or row_width_elems <= 0:
        raise ValueError("values_per_thread and row_width_elems must be positive")
    addresses = []
    for t in thread_ids:
        logical = t * values_per_thread
        row = logical // row_width_elems
        col = logical % row_width_elems
        padded_row_width = row_width_elems + padding_elems
        addresses.append((row * padded_row_width + col) * elem_bytes)
    return addresses


def spatha_padded_store_addresses(
    thread_ids: Iterable[int],
    bsc: int,
    elem_bytes: int = 4,
    vector_elems: int = 4,
) -> List[int]:
    """Addresses of the padded Spatha stage-3 layout (Figure 8, left side).

    Each thread stores one 128-bit vector (``vector_elems`` fp32 partials,
    i.e. 16 bytes) per iteration.  The layout appends one ``PAD`` vector
    after every ``NUM_BANKS`` vectors worth of data so that the bank index
    of a thread's vector advances by one every wrap-around, making each
    quarter-warp phase hit 8 distinct banks x 4 words = 32 banks overall.
    """
    if bsc <= 0:
        raise ValueError("bsc must be positive")
    vec_bytes = vector_elems * elem_bytes
    vectors_per_row = NUM_BANKS * BANK_WIDTH_BYTES // vec_bytes  # 8 vectors = 128 bytes
    addresses = []
    for t in thread_ids:
        # Interleave quarter-warps: thread t writes vector slot
        # (t % 8) within its quarter-warp row, quarter-warps own
        # consecutive padded rows.
        quarter = t // 8
        lane = t % 8
        row_stride_vectors = vectors_per_row + 1  # +1 PAD vector per row
        slot = quarter * row_stride_vectors + ((lane + quarter) % vectors_per_row)
        addresses.append(slot * vec_bytes)
    return addresses


def conflict_degree_for_layout(layout: str, access_bits: int = 128, bsc: int = 64) -> float:
    """Convenience: conflict factor of a named stage-3 layout.

    Parameters
    ----------
    layout:
        ``"spatha_padded"`` (the paper's conflict-free layout) or
        ``"naive_row_major"`` (no padding).
    access_bits:
        Per-thread store width (32 or 128).
    bsc:
        Thread-block tile width in output columns.
    """
    access_bytes = access_bits // 8
    threads = list(range(32))
    if layout == "spatha_padded":
        if access_bits == 128:
            addrs = spatha_padded_store_addresses(threads, bsc)
        else:
            # 32-bit stores of the same padded layout: each thread writes one
            # fp32 word; the padding still avoids most conflicts but the
            # access needs 4x the instructions (handled by TransactionModel).
            addrs = [a // 4 * 4 for a in spatha_padded_store_addresses(threads, bsc)]
        return simulate_access(addrs, access_bytes=access_bytes).conflict_factor
    if layout == "naive_row_major":
        # Each thread owns a contiguous run of bsc/8 accumulators (one per
        # MMAc-wide instruction tile), so consecutive threads start 4*(bsc/8)
        # bytes apart — the classic strided pattern that serialises on the
        # 32 banks when the stride is a multiple of the bank count.
        values_per_thread = max(1, bsc // 8)
        addrs = row_major_store_addresses(
            threads, values_per_thread=values_per_thread, row_width_elems=bsc, padding_elems=0
        )
        return simulate_access(addrs, access_bytes=access_bytes).conflict_factor
    raise ValueError(f"unknown layout {layout!r}")


def analyse_address_matrix(addresses: np.ndarray, access_bytes: int = 4) -> ConflictReport:
    """Simulate a sequence of warp accesses given a 2D address matrix.

    ``addresses`` has shape ``(iterations, warp_size)``; each row is one
    warp-wide access.  Returns the aggregate report over all iterations.
    """
    addresses = np.asarray(addresses)
    if addresses.ndim != 2:
        raise ValueError("addresses must be a 2D (iterations, threads) array")
    phases = 0
    serialized = 0
    worst = 0
    for row in addresses:
        report = simulate_access([int(a) for a in row], access_bytes=access_bytes)
        phases += report.phases
        serialized += report.serialized_passes
        worst = max(worst, report.worst_degree)
    return ConflictReport(phases=phases, serialized_passes=serialized, worst_degree=worst)
