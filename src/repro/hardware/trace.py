"""Structured records of simulated kernel executions.

The evaluation harness needs to aggregate kernel-level results into
figure-level tables (speedup-vs-K sweeps, end-to-end latency breakdowns,
ablation comparisons).  This module defines the small record types the
kernels emit and helpers to accumulate them into per-operator and per-model
summaries, mirroring the "GEMMs / matmul / softmax / others" breakdown of
Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class KernelExecution:
    """One simulated kernel launch.

    Attributes
    ----------
    kernel:
        Library/kernel name, e.g. ``"spatha_spmm"``, ``"cublas_hgemm"``.
    category:
        Operator category used for latency breakdowns: ``"gemm"``,
        ``"matmul"`` (attention score/context batched matmuls),
        ``"softmax"``, ``"comm"`` (modelled inter-device collectives) or
        ``"other"``.
    time_us:
        Modelled execution time in microseconds.
    flops:
        Logical FLOPs of the operation (dense-equivalent arithmetic for
        sparse kernels is recorded in ``dense_flops``).
    dense_flops:
        FLOPs the dense counterpart would have executed (for speedup math).
    bytes_moved:
        DRAM bytes moved.
    meta:
        Free-form metadata (tile config, sparsity, layer name, ...).
    """

    kernel: str
    category: str
    time_us: float
    flops: float = 0.0
    dense_flops: float = 0.0
    bytes_moved: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError("time_us must be non-negative")
        if self.category not in {"gemm", "matmul", "softmax", "comm", "other"}:
            raise ValueError(f"unknown category {self.category!r}")

    @property
    def tflops(self) -> float:
        """Achieved TFLOP/s of this execution."""
        if self.time_us <= 0:
            return 0.0
        return self.flops / (self.time_us * 1e-6) / 1e12


@dataclass
class ExecutionTrace:
    """Accumulator of kernel executions for one model / benchmark run."""

    executions: List[KernelExecution] = field(default_factory=list)

    def record(self, execution: KernelExecution) -> None:
        """Append one kernel execution to the trace."""
        self.executions.append(execution)

    def extend(self, executions: Iterable[KernelExecution]) -> None:
        """Append several kernel executions."""
        for e in executions:
            self.record(e)

    @property
    def total_time_us(self) -> float:
        """Sum of all kernel times in microseconds."""
        return sum(e.time_us for e in self.executions)

    @property
    def total_time_ms(self) -> float:
        """Sum of all kernel times in milliseconds."""
        return self.total_time_us / 1e3

    def time_by_category(self) -> Dict[str, float]:
        """Total time (us) per operator category.

        Always returns all five categories so latency-breakdown plots have a
        stable schema even when a category is absent.
        """
        out = {"gemm": 0.0, "matmul": 0.0, "softmax": 0.0, "comm": 0.0, "other": 0.0}
        for e in self.executions:
            out[e.category] += e.time_us
        return out

    def time_by_kernel(self) -> Dict[str, float]:
        """Total time (us) per kernel name."""
        out: Dict[str, float] = {}
        for e in self.executions:
            out[e.kernel] = out.get(e.kernel, 0.0) + e.time_us
        return out

    def gemm_time_us(self) -> float:
        """Total time spent in (Sp)GEMM kernels."""
        return self.time_by_category()["gemm"]

    def comm_time_us(self) -> float:
        """Total time spent in modelled inter-device communication."""
        return self.time_by_category()["comm"]

    def filter(self, category: Optional[str] = None, kernel: Optional[str] = None) -> "ExecutionTrace":
        """Return a sub-trace matching the given category and/or kernel."""
        selected = [
            e
            for e in self.executions
            if (category is None or e.category == category)
            and (kernel is None or e.kernel == kernel)
        ]
        return ExecutionTrace(executions=selected)

    def speedup_over(self, baseline: "ExecutionTrace") -> float:
        """End-to-end speedup of this trace relative to ``baseline``."""
        mine = self.total_time_us
        theirs = baseline.total_time_us
        if mine <= 0:
            raise ValueError("cannot compute speedup of an empty/zero-time trace")
        return theirs / mine

    def summary(self) -> Dict[str, object]:
        """Dictionary summary suitable for JSON/CSV emission."""
        return {
            "num_kernels": len(self.executions),
            "total_time_ms": self.total_time_ms,
            "time_by_category_us": self.time_by_category(),
            "time_by_kernel_us": self.time_by_kernel(),
        }
