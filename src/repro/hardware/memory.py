"""Memory-hierarchy traffic and transfer-time model.

Spatha's kernel design (Section 4.1 of the paper) is organised around data
movement through the GPU memory hierarchy: GMEM -> SMEM -> RF for the
inputs, and RF -> SMEM -> GMEM for the output tile.  This module provides
the building blocks the kernel cost models use to account for that
movement:

* :class:`TrafficRecord` — byte counts per level for one kernel.
* :class:`TransactionModel` — efficiency of global/shared memory
  transactions as a function of the access width (32/64/128-bit) and
  coalescing.
* :func:`transfer_cycles` — time to move a number of bytes through a level
  given the chip-wide bandwidth and the number of participating SMs.

The model is deliberately simple (bandwidth + latency + efficiency factors)
because the experiments in the paper compare *ratios* of kernel times; what
matters is that the same model is applied consistently to Spatha and to all
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .spec import GPUSpec

#: Bytes per element for the precisions used in the paper.
DTYPE_BYTES: Dict[str, float] = {
    "fp32": 4.0,
    "tf32": 4.0,
    "fp16": 2.0,
    "bf16": 2.0,
    "uint8": 1.0,
    "int8": 1.0,
    "uint4": 0.5,
    "int4": 0.5,
}


def dtype_bytes(precision: str) -> float:
    """Size in bytes of one element of ``precision``.

    Raises
    ------
    KeyError
        If the precision is unknown.
    """
    key = precision.lower()
    if key not in DTYPE_BYTES:
        raise KeyError(f"unknown precision {precision!r}; known: {sorted(DTYPE_BYTES)}")
    return DTYPE_BYTES[key]


@dataclass
class TrafficRecord:
    """Bytes moved at each level of the hierarchy by one kernel launch.

    The record is additive: kernel stages accumulate into one record and the
    totals feed the bandwidth model.  ``smem_transactions`` counts 32-bit
    bank transactions (after conflict serialisation) rather than raw bytes,
    because shared memory cost is transaction-bound.
    """

    gmem_read_bytes: float = 0.0
    gmem_write_bytes: float = 0.0
    l2_read_bytes: float = 0.0
    l2_write_bytes: float = 0.0
    smem_read_bytes: float = 0.0
    smem_write_bytes: float = 0.0
    smem_transactions: float = 0.0

    def merge(self, other: "TrafficRecord") -> "TrafficRecord":
        """Return a new record with the component-wise sum of both."""
        return TrafficRecord(
            gmem_read_bytes=self.gmem_read_bytes + other.gmem_read_bytes,
            gmem_write_bytes=self.gmem_write_bytes + other.gmem_write_bytes,
            l2_read_bytes=self.l2_read_bytes + other.l2_read_bytes,
            l2_write_bytes=self.l2_write_bytes + other.l2_write_bytes,
            smem_read_bytes=self.smem_read_bytes + other.smem_read_bytes,
            smem_write_bytes=self.smem_write_bytes + other.smem_write_bytes,
            smem_transactions=self.smem_transactions + other.smem_transactions,
        )

    @property
    def gmem_total_bytes(self) -> float:
        """Total DRAM traffic (reads + writes)."""
        return self.gmem_read_bytes + self.gmem_write_bytes

    @property
    def smem_total_bytes(self) -> float:
        """Total shared-memory traffic (reads + writes)."""
        return self.smem_read_bytes + self.smem_write_bytes


@dataclass(frozen=True)
class TransactionModel:
    """Efficiency of memory transactions as a function of access width.

    GPUs service global memory in 32-byte sectors and shared memory in
    128-byte (32 banks x 4 bytes) wavefronts.  Wide (128-bit) per-thread
    accesses let a warp cover a 128-byte cache line with a single
    transaction per quarter-warp; narrow (32-bit) accesses need four times
    as many instructions and, for stores to shared memory, expose more
    opportunities for bank conflicts.

    The paper's Figure 10 ablates 32-bit vs 128-bit shared-memory stores and
    observes up to 2x end-to-end difference on BERT-large-sized GEMMs; this
    model is what produces that gap in the reproduction.
    """

    #: Per-thread access width in bits (32, 64 or 128).
    access_bits: int = 128
    #: Whether consecutive threads access consecutive addresses.
    coalesced: bool = True

    def __post_init__(self) -> None:
        if self.access_bits not in (8, 16, 32, 64, 128):
            raise ValueError(f"unsupported access width: {self.access_bits} bits")

    @property
    def bytes_per_access(self) -> float:
        """Bytes moved by one thread per memory instruction."""
        return self.access_bits / 8.0

    @property
    def instructions_per_warp_line(self) -> float:
        """Memory instructions a warp needs to move 512 bytes.

        512 bytes is what a warp moves when every thread issues a full
        128-bit access; narrower accesses need proportionally more
        instructions for the same data.
        """
        per_thread = self.bytes_per_access
        return max(1.0, 512.0 / (32.0 * per_thread))

    @property
    def gmem_efficiency(self) -> float:
        """Fraction of peak DRAM bandwidth achievable with this pattern."""
        base = 0.88 if self.coalesced else 0.35
        if self.access_bits >= 128:
            return base
        if self.access_bits >= 64:
            return base * 0.97
        return base * 0.92

    @property
    def smem_efficiency(self) -> float:
        """Fraction of peak shared-memory throughput with this pattern.

        Narrow accesses pay extra instruction issue and scheduling overhead
        even when conflict-free; conflicts themselves are modelled
        separately in :mod:`repro.hardware.banks`.
        """
        if self.access_bits >= 128:
            return 1.0
        if self.access_bits >= 64:
            return 0.85
        return 0.55


def transfer_cycles(
    bytes_moved: float,
    bandwidth_gbps: float,
    gpu: GPUSpec,
    efficiency: float = 1.0,
    latency_cycles: float = 0.0,
) -> float:
    """Cycles needed to move ``bytes_moved`` through a bandwidth-bound level.

    Parameters
    ----------
    bytes_moved:
        Total bytes transferred by the kernel through this level.
    bandwidth_gbps:
        Peak bandwidth of the level in GB/s (chip aggregate).
    gpu:
        Hardware description (provides the clock for GB/s -> bytes/cycle).
    efficiency:
        Achieved fraction of peak bandwidth (0 < efficiency <= 1).
    latency_cycles:
        Fixed latency added once (pipeline fill).
    """
    if bytes_moved < 0:
        raise ValueError("bytes_moved must be non-negative")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    bytes_per_cycle = bandwidth_gbps * 1e9 / gpu.sm_clock_hz
    return latency_cycles + bytes_moved / (bytes_per_cycle * efficiency)


def gmem_cycles(bytes_moved: float, gpu: GPUSpec, tx: TransactionModel | None = None) -> float:
    """Cycles to stream ``bytes_moved`` from/to DRAM with pattern ``tx``."""
    tx = tx or TransactionModel()
    return transfer_cycles(
        bytes_moved,
        gpu.gmem.bandwidth_gbps,
        gpu,
        efficiency=tx.gmem_efficiency,
        latency_cycles=gpu.gmem.latency_cycles,
    )


def l2_cycles(bytes_moved: float, gpu: GPUSpec) -> float:
    """Cycles to move ``bytes_moved`` through the L2 cache."""
    return transfer_cycles(
        bytes_moved,
        gpu.l2.bandwidth_gbps,
        gpu,
        efficiency=0.9,
        latency_cycles=gpu.l2.latency_cycles,
    )


def smem_cycles(
    bytes_moved: float,
    gpu: GPUSpec,
    active_sms: int,
    tx: TransactionModel | None = None,
    conflict_factor: float = 1.0,
) -> float:
    """Cycles to move ``bytes_moved`` through shared memory.

    Shared memory bandwidth is per-SM; a kernel that occupies ``active_sms``
    SMs sees ``active_sms`` times the single-SM throughput.  Bank conflicts
    multiply the time by ``conflict_factor`` (>= 1), as computed by
    :func:`repro.hardware.banks.conflict_degree`.
    """
    if active_sms <= 0:
        raise ValueError("active_sms must be positive")
    if conflict_factor < 1.0:
        raise ValueError("conflict_factor must be >= 1")
    tx = tx or TransactionModel()
    per_sm_bytes_cycle = gpu.smem_bytes_per_cycle_per_sm * tx.smem_efficiency
    total_bytes_cycle = per_sm_bytes_cycle * active_sms
    return gpu.smem.latency_cycles + conflict_factor * bytes_moved / total_bytes_cycle


def matrix_bytes(rows: int, cols: int, precision: str = "fp16") -> float:
    """Storage footprint of a dense ``rows x cols`` matrix in bytes."""
    if rows < 0 or cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    return rows * cols * dtype_bytes(precision)
