"""Roofline-style execution-time model shared by all kernel cost models.

Every library modelled in :mod:`repro.kernels` (cuBLAS, cuSparseLt, Sputnik,
CLASP and Spatha itself) reduces, at the top level, to the same question:
given the arithmetic work of a kernel, the bytes it must move at each level
of the memory hierarchy and the efficiency with which it uses the hardware,
how long does it run?  This module answers that question with a refined
roofline model:

``time = launch_overhead + max(compute_time, gmem_time, smem_time) +
         exposed_fraction * min(...)``

The ``max`` term is the classic roofline bound (perfect overlap of compute
and memory); the ``exposed_fraction`` term charges the portion of the
non-dominant phase that the kernel's software pipelining could not hide,
which is how differences in pipelining depth (Spatha's ``batchSize``) and
occupancy become visible in the final numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .memory import TrafficRecord, TransactionModel, gmem_cycles, smem_cycles
from .occupancy import BlockResources, latency_hiding_factor, wave_efficiency
from .spec import GPUSpec


@dataclass
class KernelCost:
    """Cycle-level breakdown of one simulated kernel launch.

    All components are in SM cycles; :meth:`time_us` converts to
    microseconds with the GPU clock.  ``components`` keeps named
    sub-contributions (per kernel stage) so ablation studies can report
    where the time goes, mirroring the stage structure of Section 4.1.
    """

    gpu: GPUSpec
    compute_cycles: float = 0.0
    gmem_cycles: float = 0.0
    smem_cycles: float = 0.0
    overhead_cycles: float = 0.0
    exposed_fraction: float = 0.15
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def bound(self) -> str:
        """Name of the dominant resource: compute / gmem / smem."""
        parts = {
            "compute": self.compute_cycles,
            "gmem": self.gmem_cycles,
            "smem": self.smem_cycles,
        }
        return max(parts, key=lambda k: parts[k])

    @property
    def total_cycles(self) -> float:
        """Total modelled execution time in cycles."""
        dominant = max(self.compute_cycles, self.gmem_cycles, self.smem_cycles)
        secondary = (
            self.compute_cycles + self.gmem_cycles + self.smem_cycles - dominant
        )
        return self.overhead_cycles + dominant + self.exposed_fraction * secondary

    def time_s(self) -> float:
        """Total modelled execution time in seconds."""
        return self.gpu.cycles_to_seconds(self.total_cycles)

    def time_us(self) -> float:
        """Total modelled execution time in microseconds."""
        return self.time_s() * 1e6

    def time_ms(self) -> float:
        """Total modelled execution time in milliseconds."""
        return self.time_s() * 1e3

    def tflops(self, flops: float) -> float:
        """Achieved TFLOP/s given the logical FLOP count of the problem."""
        seconds = self.time_s()
        if seconds <= 0:
            return 0.0
        return flops / seconds / 1e12

    def add_component(self, name: str, cycles: float) -> None:
        """Record a named sub-contribution (for reporting only)."""
        self.components[name] = self.components.get(name, 0.0) + cycles


def compute_cycles_tensor_core(
    flops: float,
    gpu: GPUSpec,
    sparse: bool = False,
    efficiency: float = 1.0,
) -> float:
    """Cycles to retire ``flops`` logical FLOPs on the (sparse) tensor cores.

    ``flops`` counts *logical* (dense-equivalent already removed) multiply-
    add work: callers pass the number of FLOPs the kernel actually issues.
    For an SPTC kernel, the caller passes the post-compression FLOPs and
    sets ``sparse=True`` so the doubled math rate applies.
    """
    if flops < 0:
        raise ValueError("flops must be non-negative")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    rate = gpu.sparse_fp16_flops_per_cycle if sparse else gpu.dense_fp16_flops_per_cycle
    return flops / (rate * efficiency)


def compute_cycles_cuda_core(flops: float, gpu: GPUSpec, precision: str = "fp16", efficiency: float = 1.0) -> float:
    """Cycles to retire ``flops`` FLOPs on the ordinary CUDA cores."""
    if flops < 0:
        raise ValueError("flops must be non-negative")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    tflops = gpu.fp16_cuda_tflops if precision == "fp16" else gpu.fp32_cuda_tflops
    rate = tflops * 1e12 / gpu.sm_clock_hz
    return flops / (rate * efficiency)


def roofline_cost(
    gpu: GPUSpec,
    flops: float,
    traffic: TrafficRecord,
    resources: BlockResources,
    total_blocks: int,
    use_tensor_cores: bool = True,
    sparse_tensor_cores: bool = False,
    compute_efficiency: float = 0.85,
    gmem_tx: Optional[TransactionModel] = None,
    smem_tx: Optional[TransactionModel] = None,
    smem_conflict_factor: float = 1.0,
    pipeline_stages: int = 2,
    extra_overhead_cycles: float = 0.0,
) -> KernelCost:
    """Build a :class:`KernelCost` for one kernel launch.

    Parameters
    ----------
    flops:
        Logical FLOPs issued by the kernel (after any sparsity reduction).
    traffic:
        Byte counts per memory level (see :class:`TrafficRecord`).
    resources / total_blocks:
        Per-block resource usage and grid size; used for occupancy,
        wave quantisation and latency hiding.
    use_tensor_cores / sparse_tensor_cores:
        Select the math pipe.  ``sparse_tensor_cores=True`` applies the 2x
        SPTC rate.
    compute_efficiency:
        Fraction of peak math attainable by this kernel's inner loop.
    smem_conflict_factor:
        Serialisation multiplier for shared-memory traffic (>= 1).
    pipeline_stages:
        Software pipelining depth (Spatha's ``batchSize``); deeper pipelines
        hide more of the non-dominant phase.
    """
    if total_blocks <= 0:
        raise ValueError("total_blocks must be positive")

    from .occupancy import active_sms as _active_sms  # local import to avoid cycle confusion

    if use_tensor_cores:
        compute = compute_cycles_tensor_core(
            flops, gpu, sparse=sparse_tensor_cores, efficiency=compute_efficiency
        )
    else:
        compute = compute_cycles_cuda_core(flops, gpu, efficiency=compute_efficiency)

    # Tail-wave quantisation: the compute phase cannot finish faster than an
    # integer number of waves allows.
    eff = wave_efficiency(total_blocks, resources, gpu)
    compute = compute / max(eff, 1e-9)

    n_active = max(1, _active_sms(total_blocks, resources, gpu))
    # DRAM bandwidth also scales down when only a fraction of SMs issue loads.
    gmem_scale = min(1.0, n_active / gpu.num_sms * 1.5)
    gmem = gmem_cycles(traffic.gmem_total_bytes, gpu, gmem_tx) / max(gmem_scale, 1e-9)
    smem = smem_cycles(
        traffic.smem_total_bytes,
        gpu,
        active_sms=n_active,
        tx=smem_tx,
        conflict_factor=smem_conflict_factor,
    )

    hiding = latency_hiding_factor(resources, gpu, pipeline_stages=pipeline_stages)
    exposed = max(0.05, 1.0 - hiding)

    overhead = gpu.kernel_launch_overhead_us * 1e-6 * gpu.sm_clock_hz + extra_overhead_cycles

    cost = KernelCost(
        gpu=gpu,
        compute_cycles=compute,
        gmem_cycles=gmem,
        smem_cycles=smem,
        overhead_cycles=overhead,
        exposed_fraction=exposed,
    )
    cost.add_component("compute", compute)
    cost.add_component("gmem", gmem)
    cost.add_component("smem", smem)
    cost.add_component("overhead", overhead)
    return cost
