"""Tensor-core instruction set description (Table 1 of the paper).

Sparse Tensor Cores are programmed through the PTX ``mma.sp`` instruction.
Each precision supports a small set of instruction *shapes* ``m x n x k``
where ``m`` and ``n`` are fixed (16 and 8) and ``k`` is the sparsified
dimension.  The paper's Table 1 enumerates the supported shapes; this module
encodes that table and the corresponding dense ``mma`` shapes, and exposes
helpers to pick a shape for a kernel configuration and to reason about the
fragment sizes each instruction consumes.

These descriptions drive two things in the reproduction:

* the instruction-tile decomposition of Spatha's warp tiles
  (:mod:`repro.kernels.spatha.tiles`), and
* the per-instruction cycle costs used by the performance model
  (:mod:`repro.kernels.spatha.perf_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class MmaShape:
    """Shape of one ``mma`` / ``mma.sp`` tensor-core instruction.

    Attributes
    ----------
    m, n, k:
        Logical GEMM dimensions covered by a single instruction.  For
        ``mma.sp`` the LHS operand is stored 50% compressed, i.e. the real
        LHS fragment holds ``m x k/2`` elements plus metadata.
    precision:
        Input element type: ``"fp16"``, ``"fp32"`` (tf32 path), ``"uint8"``
        or ``"uint4"``.
    sparse:
        ``True`` for ``mma.sp`` (Sparse Tensor Core), ``False`` for dense
        ``mma``.
    """

    m: int
    n: int
    k: int
    precision: str = "fp16"
    sparse: bool = False

    @property
    def name(self) -> str:
        """NVIDIA-style mnemonic, e.g. ``m16n8k32``."""
        return f"m{self.m}n{self.n}k{self.k}"

    @property
    def flops(self) -> int:
        """Multiply-add FLOPs performed by one instruction (2*m*n*k)."""
        return 2 * self.m * self.n * self.k

    @property
    def lhs_elements(self) -> int:
        """Number of LHS elements physically held in registers.

        For sparse instructions the LHS is stored at 50% density so the
        fragment carries ``m * k / 2`` values (plus 2-bit metadata per
        value, accounted separately).
        """
        if self.sparse:
            return self.m * self.k // 2
        return self.m * self.k

    @property
    def rhs_elements(self) -> int:
        """Number of RHS elements consumed by one instruction (k*n)."""
        return self.k * self.n

    @property
    def acc_elements(self) -> int:
        """Number of accumulator elements produced (m*n)."""
        return self.m * self.n

    @property
    def metadata_bits(self) -> int:
        """Bits of sparsity metadata consumed by one sparse instruction.

        Two bits per kept LHS element; zero for dense instructions.
        """
        if not self.sparse:
            return 0
        return 2 * self.lhs_elements


# ----------------------------------------------------------------------
# Table 1: Matrix shapes for mma.sp on SPTCs (m and n fixed to 16 and 8)
# ----------------------------------------------------------------------
SPARSE_MMA_SHAPES: Dict[str, List[MmaShape]] = {
    "fp32": [
        MmaShape(16, 8, 8, "fp32", sparse=True),
        MmaShape(16, 8, 16, "fp32", sparse=True),
    ],
    "fp16": [
        MmaShape(16, 8, 16, "fp16", sparse=True),
        MmaShape(16, 8, 32, "fp16", sparse=True),
    ],
    "uint8": [
        MmaShape(16, 8, 32, "uint8", sparse=True),
        MmaShape(16, 8, 64, "uint8", sparse=True),
    ],
    "uint4": [
        MmaShape(16, 8, 64, "uint4", sparse=True),
        MmaShape(16, 8, 128, "uint4", sparse=True),
    ],
}

#: N:M pattern natively supported by the hardware for each precision
#: (Table 1, "Format" column).
NATIVE_NM_PATTERN: Dict[str, Tuple[int, int]] = {
    "fp32": (1, 2),
    "fp16": (2, 4),
    "uint8": (2, 4),
    "uint4": (2, 4),
}

#: Dense mma shapes relevant to the half-precision kernels in the paper.
DENSE_MMA_SHAPES: Dict[str, List[MmaShape]] = {
    "fp16": [
        MmaShape(16, 8, 8, "fp16", sparse=False),
        MmaShape(16, 8, 16, "fp16", sparse=False),
    ],
}


def sparse_mma_shapes(precision: str = "fp16") -> List[MmaShape]:
    """Return the list of supported ``mma.sp`` shapes for a precision.

    Raises
    ------
    KeyError
        If the precision has no Sparse Tensor Core support.
    """
    key = precision.lower()
    if key not in SPARSE_MMA_SHAPES:
        raise KeyError(
            f"no mma.sp support for precision {precision!r}; "
            f"supported: {sorted(SPARSE_MMA_SHAPES)}"
        )
    return list(SPARSE_MMA_SHAPES[key])


def default_sparse_shape(precision: str = "fp16") -> MmaShape:
    """The shape used by Spatha's kernels by default (largest k).

    The paper's kernels use ``m16n8k32`` for half precision.
    """
    shapes = sparse_mma_shapes(precision)
    return max(shapes, key=lambda s: s.k)


def find_shape(name: str, precision: str = "fp16", sparse: bool = True) -> MmaShape:
    """Find an instruction shape by mnemonic (e.g. ``"m16n8k32"``).

    Parameters
    ----------
    name:
        Mnemonic of the shape.
    precision:
        Element precision.
    sparse:
        Whether to search sparse (``mma.sp``) or dense (``mma``) shapes.
    """
    table = SPARSE_MMA_SHAPES if sparse else DENSE_MMA_SHAPES
    for shape in table.get(precision.lower(), []):
        if shape.name == name:
            return shape
    raise KeyError(f"shape {name!r} not available for precision {precision!r} (sparse={sparse})")


def native_nm(precision: str = "fp16") -> Tuple[int, int]:
    """Return the (N, M) pattern natively supported by SPTCs.

    For half precision this is (2, 4): every group of four values keeps at
    most two non-zeros.
    """
    key = precision.lower()
    if key not in NATIVE_NM_PATTERN:
        raise KeyError(f"precision {precision!r} has no native N:M support")
    return NATIVE_NM_PATTERN[key]


@dataclass(frozen=True)
class InstructionCost:
    """Issue cost of one tensor-core instruction on one SM sub-partition.

    ``mma.sp`` on Ampere has the same issue latency as the dense ``mma`` of
    half the k extent; this is how the 2x math speedup materialises.
    """

    shape: MmaShape
    issue_cycles: float

    @property
    def flops_per_cycle(self) -> float:
        """Effective FLOPs per cycle retired by one warp issuing this op."""
        return self.shape.flops / self.issue_cycles


def instruction_cost(shape: MmaShape) -> InstructionCost:
    """Cycle cost of issuing one tensor-core instruction from a warp.

    The model uses the published Ampere throughput of 256 dense FP16 FMA
    (512 FLOP) per tensor core per cycle, i.e. a full ``m16n8k16`` dense mma
    retires in ~4 cycles per warp and ``m16n8k32`` sparse in the same ~4
    cycles (double effective math).
    """
    # One SM sub-partition has one TC; a warp's mma occupies it for
    # shape.flops / (512 FLOP/cycle) cycles for dense math.  Sparse shapes
    # move twice the logical FLOPs through the same unit time.
    dense_flops_per_tc_cycle = 512.0
    logical_flops = shape.flops
    if shape.sparse:
        effective = logical_flops / 2.0
    else:
        effective = float(logical_flops)
    cycles = max(1.0, effective / dense_flops_per_tc_cycle)
    return InstructionCost(shape=shape, issue_cycles=cycles)
