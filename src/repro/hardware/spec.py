"""GPU hardware specifications used by the simulated execution substrate.

The paper evaluates on an NVIDIA RTX 3090 (Ampere GA102) equipped with
Sparse Tensor Cores.  Since no physical GPU is available in this
reproduction, every kernel cost model in :mod:`repro.kernels` is driven by
an analytical description of the machine.  This module defines that
description (:class:`GPUSpec`) together with presets for the GPUs that are
relevant to the paper (RTX 3090, and an A100 preset useful for what-if
studies).

The numbers below come from public NVIDIA documentation (GA102/GA100
whitepapers).  They are not used to predict absolute wall-clock times with
high fidelity; they set the *ratios* that matter for the paper's
experiments: dense tensor-core math rate vs. sparse tensor-core math rate,
memory bandwidth at each level of the hierarchy, shared-memory banking, and
the per-SM resources that determine occupancy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MemorySpec:
    """Bandwidth/latency description of one level of the memory hierarchy.

    Attributes
    ----------
    bandwidth_gbps:
        Sustained bandwidth of the level in GB/s (aggregate, whole chip).
    latency_cycles:
        Typical access latency in SM clock cycles (unloaded).
    capacity_bytes:
        Capacity of the level in bytes (aggregate for GMEM/L2, per-SM for
        shared memory, per-thread-block-visible for the register file).
    """

    bandwidth_gbps: float
    latency_cycles: float
    capacity_bytes: int


@dataclass(frozen=True)
class GPUSpec:
    """Analytical description of a GPU used by the cost models.

    All throughput values are *peak* values; the cost models apply
    efficiency factors derived from the access patterns of each kernel
    (see :mod:`repro.hardware.roofline` and
    :mod:`repro.kernels.spatha.perf_model`).
    """

    name: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: SM clock in MHz used for cycle <-> time conversion (boost clock).
    sm_clock_mhz: float
    #: Number of tensor cores per SM.
    tensor_cores_per_sm: int
    #: Dense FP16 tensor-core throughput for the whole chip, in TFLOP/s
    #: (FP16 multiply, FP32 accumulate).
    dense_fp16_tc_tflops: float
    #: Sparse (2:4) tensor-core throughput for the whole chip, in TFLOP/s.
    #: On Ampere this is exactly 2x the dense rate.
    sparse_fp16_tc_tflops: float
    #: FP32 CUDA-core throughput for the whole chip, in TFLOP/s.  Used for
    #: non-tensor-core work such as softmax/layernorm epilogues.
    fp32_cuda_tflops: float
    #: FP16 CUDA-core (non tensor core) throughput in TFLOP/s.  Used by
    #: kernels that cannot use TCUs (e.g. Sputnik's scalar path).
    fp16_cuda_tflops: float
    #: Global memory (DRAM).
    gmem: MemorySpec = field(default_factory=lambda: MemorySpec(936.0, 400.0, 24 * 1024**3))
    #: L2 cache.
    l2: MemorySpec = field(default_factory=lambda: MemorySpec(2500.0, 200.0, 6 * 1024**2))
    #: Shared memory (per SM capacity; bandwidth is aggregate).
    smem: MemorySpec = field(default_factory=lambda: MemorySpec(13000.0, 25.0, 128 * 1024))
    #: Maximum shared memory configurable per thread block, bytes.
    max_smem_per_block: int = 100 * 1024
    #: Register file size per SM, in 32-bit registers.
    registers_per_sm: int = 65536
    #: Maximum registers addressable by a single thread.
    max_registers_per_thread: int = 255
    #: Maximum resident threads per SM.
    max_threads_per_sm: int = 1536
    #: Maximum resident warps per SM.
    max_warps_per_sm: int = 48
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int = 16
    #: Warp size (threads).
    warp_size: int = 32
    #: Number of 32-bit shared-memory banks.
    smem_banks: int = 32
    #: Width of one shared-memory bank in bytes.
    smem_bank_width: int = 4
    #: Maximum bytes movable by one vectorised load/store instruction.
    max_vector_width_bytes: int = 16
    #: Fixed kernel launch overhead, in microseconds.  Small GEMMs are
    #: launch-latency bound; this term reproduces the flattening of the
    #: speedup curves at small K in Figures 9 and 12.
    kernel_launch_overhead_us: float = 5.0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sm_clock_hz(self) -> float:
        """SM clock in Hz."""
        return self.sm_clock_mhz * 1.0e6

    @property
    def dense_fp16_flops_per_cycle(self) -> float:
        """Whole-chip dense FP16 tensor-core FLOPs retired per SM cycle."""
        return self.dense_fp16_tc_tflops * 1e12 / self.sm_clock_hz

    @property
    def sparse_fp16_flops_per_cycle(self) -> float:
        """Whole-chip sparse (2:4) FP16 tensor-core FLOPs per SM cycle."""
        return self.sparse_fp16_tc_tflops * 1e12 / self.sm_clock_hz

    @property
    def gmem_bytes_per_cycle(self) -> float:
        """Whole-chip DRAM bytes transferred per SM cycle."""
        return self.gmem.bandwidth_gbps * 1e9 / self.sm_clock_hz

    @property
    def l2_bytes_per_cycle(self) -> float:
        """Whole-chip L2 bytes transferred per SM cycle."""
        return self.l2.bandwidth_gbps * 1e9 / self.sm_clock_hz

    @property
    def smem_bytes_per_cycle(self) -> float:
        """Whole-chip shared-memory bytes transferred per SM cycle."""
        return self.smem.bandwidth_gbps * 1e9 / self.sm_clock_hz

    @property
    def smem_bytes_per_cycle_per_sm(self) -> float:
        """Per-SM shared-memory bytes per cycle (bank width x banks)."""
        return float(self.smem_banks * self.smem_bank_width)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert SM cycles to seconds."""
        return cycles / self.sm_clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to SM cycles."""
        return seconds * self.sm_clock_hz

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy of this spec with selected fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class InterconnectSpec:
    """Point-to-point interconnect between the devices of one shard group.

    Used by the distributed latency model (ring all-reduce pricing in
    :mod:`repro.models.distributed`) and by the sharded serving path
    (:mod:`repro.serving.sharded`) to cost the activation traffic that
    crosses device boundaries.
    """

    name: str = "NVLink3 (x4)"
    #: Per-direction bandwidth per device, GB/s.
    bandwidth_gbps: float = 100.0
    #: Per-message latency, microseconds.
    latency_us: float = 8.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")


#: PCIe 4.0 x16 fallback interconnect (consumer multi-GPU boxes).
PCIE4 = InterconnectSpec(name="PCIe 4.0 x16", bandwidth_gbps=25.0, latency_us=15.0)
#: NVLink-class interconnect (the default).
NVLINK = InterconnectSpec()


@dataclass(frozen=True)
class DeviceGroupSpec:
    """A group of identical simulated devices joined by one interconnect.

    The hardware description of the sharded serving tier: ``count``
    devices, each modelled by ``gpu``, exchanging activations over
    ``link``.  ``count=1`` degenerates to the single-device substrate every
    other cost model assumes.
    """

    gpu: GPUSpec
    count: int = 1
    link: InterconnectSpec = NVLINK

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")

    @property
    def aggregate_dense_fp16_tc_tflops(self) -> float:
        """Whole-group peak dense FP16 tensor-core throughput."""
        return self.gpu.dense_fp16_tc_tflops * self.count


def rtx3090() -> GPUSpec:
    """The GPU used throughout the paper's evaluation (GA102, Ampere).

    Peak numbers: 82 SMs at ~1.7 GHz boost, 142 dense FP16 TC TFLOP/s,
    284 sparse TFLOP/s, 936 GB/s GDDR6X.
    """
    return GPUSpec(
        name="NVIDIA GeForce RTX 3090",
        num_sms=82,
        sm_clock_mhz=1695.0,
        tensor_cores_per_sm=4,
        dense_fp16_tc_tflops=142.0,
        sparse_fp16_tc_tflops=284.0,
        fp32_cuda_tflops=35.6,
        fp16_cuda_tflops=35.6,
        gmem=MemorySpec(bandwidth_gbps=936.0, latency_cycles=400.0, capacity_bytes=24 * 1024**3),
        l2=MemorySpec(bandwidth_gbps=2500.0, latency_cycles=200.0, capacity_bytes=6 * 1024**2),
        smem=MemorySpec(bandwidth_gbps=13000.0, latency_cycles=25.0, capacity_bytes=128 * 1024),
    )


def a100_sxm() -> GPUSpec:
    """NVIDIA A100-SXM4-80GB preset, useful for what-if scaling studies."""
    return GPUSpec(
        name="NVIDIA A100-SXM4-80GB",
        num_sms=108,
        sm_clock_mhz=1410.0,
        tensor_cores_per_sm=4,
        dense_fp16_tc_tflops=312.0,
        sparse_fp16_tc_tflops=624.0,
        fp32_cuda_tflops=19.5,
        fp16_cuda_tflops=78.0,
        gmem=MemorySpec(bandwidth_gbps=2039.0, latency_cycles=400.0, capacity_bytes=80 * 1024**3),
        l2=MemorySpec(bandwidth_gbps=4500.0, latency_cycles=200.0, capacity_bytes=40 * 1024**2),
        smem=MemorySpec(bandwidth_gbps=19400.0, latency_cycles=25.0, capacity_bytes=164 * 1024),
        max_smem_per_block=164 * 1024,
        max_threads_per_sm=2048,
        max_warps_per_sm=64,
    )


#: Registry of named presets, keyed by a short identifier.
PRESETS: Dict[str, GPUSpec] = {
    "rtx3090": rtx3090(),
    "a100": a100_sxm(),
}


def get_gpu(name: str = "rtx3090") -> GPUSpec:
    """Look up a GPU preset by short name.

    Parameters
    ----------
    name:
        One of ``"rtx3090"`` (paper's testbed, default) or ``"a100"``.

    Raises
    ------
    KeyError
        If the name is not a known preset.
    """
    key = name.lower()
    if key not in PRESETS:
        raise KeyError(f"unknown GPU preset {name!r}; known: {sorted(PRESETS)}")
    return PRESETS[key]
