"""Linear-layer abstractions: dense and V:N:M-sparse.

The transformer substrate is built from these two layer types.  Both expose
the same ``forward`` interface and, crucially for the end-to-end latency
model, the same ``gemm_problem``/``kernel_result`` interface: the dense
layer reports a cuBLAS execution, the sparse layer a Spatha SpMM, so the
per-operator time accounting of Figure 15 is just a sum over layers.

A sparse layer is created *from* a dense layer by pruning its weight with
one of the algorithms in :mod:`repro.pruning` and compressing it into a
:class:`~repro.formats.vnm.VNMSparseMatrix` — the same flow the paper's
STen integration automates (Listing 1), which is wrapped at a higher level
in :mod:`repro.integration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..formats.vnm import VNMSparseMatrix
from ..hardware.spec import GPUSpec, rtx3090
from ..kernels import cublas
from ..kernels.common import (
    GemmProblem,
    KernelResult,
    reference_matmul_fp16,
    reference_matmul_fp16_batched,
)
from ..kernels.dispatch import KernelDispatcher, SpmmOperand, default_dispatcher
from ..kernels.spatha import Spatha
from ..pruning.masks import apply_mask
from ..pruning.vnm import vnm_mask


@dataclass
class DenseLinear:
    """A dense linear layer ``y = x Wᵀ + b``.

    ``weight`` has shape ``(out_features, in_features)`` (the layout the
    paper sparsifies: the weight is the LHS of the SpMM with the activation
    matrix as RHS).
    """

    weight: np.ndarray
    bias: Optional[np.ndarray] = None
    name: str = "linear"

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float32)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D (out_features, in_features)")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.float32)
            if self.bias.shape != (self.weight.shape[0],):
                raise ValueError("bias must have shape (out_features,)")

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to ``x`` of shape ``(..., in_features)``.

        3-D (and higher) activations run as a batched matmul over the
        leading dims instead of one flattened GEMM, so the computation is
        *slab-exact*: slab ``i`` of a batch produces the bits of the same
        sequence forwarded alone.  Model-level serving batches same-length
        sequences through every layer of an encoder and asserts batched ==
        sequential bit for bit — which only holds if the dense layers are
        slab-exact too, not just the dispatched sparse ones.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim >= 3:
            out = reference_matmul_fp16_batched(x, self.weight.T)
            if self.bias is not None:
                out = out + self.bias
            return out
        flat = x.reshape(-1, x.shape[-1])
        out = reference_matmul_fp16(self.weight, flat.T).T
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(*x.shape[:-1], self.out_features)

    def gemm_problem(self, tokens: int) -> GemmProblem:
        """The R x K x C GEMM this layer performs on ``tokens`` activations."""
        return GemmProblem(r=self.out_features, k=self.in_features, c=tokens, name=self.name)

    def kernel_result(self, tokens: int, gpu: Optional[GPUSpec] = None) -> KernelResult:
        """Modelled cuBLAS execution of this layer's GEMM."""
        return cublas.estimate_time(self.gemm_problem(tokens), gpu=gpu or rtx3090())


@dataclass
class SparseLinear:
    """A V:N:M-sparse linear layer executed through the kernel dispatcher.

    Execution routes through a :class:`~repro.kernels.dispatch.KernelDispatcher`
    (the shared default unless one is injected), which ranks the registered
    backends with the tuner/perf-model cost estimates; for a V:N:M weight
    the candidates are Spatha's planned engine and the dense cuBLAS
    fallback.  The ``spatha`` handle is kept for the performance-model
    accounting (:meth:`kernel_result`).
    """

    sparse_weight: VNMSparseMatrix
    bias: Optional[np.ndarray] = None
    name: str = "sparse_linear"
    spatha: Spatha = field(default_factory=Spatha)
    dispatcher: Optional[KernelDispatcher] = None

    def __post_init__(self) -> None:
        if not isinstance(self.sparse_weight, VNMSparseMatrix):
            raise TypeError("sparse_weight must be a VNMSparseMatrix")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.float32)
            if self.bias.shape != (self.sparse_weight.shape[0],):
                raise ValueError("bias must have shape (out_features,)")
        self._operand = SpmmOperand.from_vnm(self.sparse_weight, name=self.name)

    @classmethod
    def from_dense(
        cls,
        dense: DenseLinear,
        v: int,
        n: int,
        m: int,
        spatha: Optional[Spatha] = None,
        mask: Optional[np.ndarray] = None,
    ) -> "SparseLinear":
        """Prune a dense layer (magnitude V:N:M unless a mask is given) and compress it."""
        weight = dense.weight.astype(np.float64)
        if mask is None:
            mask = vnm_mask(weight, v=v, n=n, m=m)
        pruned = apply_mask(weight, mask)
        sparse = VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m, strict=True)
        return cls(
            sparse_weight=sparse,
            bias=None if dense.bias is None else dense.bias.copy(),
            name=dense.name,
            spatha=spatha or Spatha(),
        )

    @property
    def out_features(self) -> int:
        return self.sparse_weight.shape[0]

    @property
    def in_features(self) -> int:
        return self.sparse_weight.shape[1]

    @property
    def sparsity(self) -> float:
        """Logical sparsity of the weight (1 - N/M)."""
        return self.sparse_weight.logical_sparsity

    @property
    def operand(self) -> SpmmOperand:
        """The dispatchable operand wrapping the sparse weight."""
        return self._operand

    def _dispatcher(self) -> KernelDispatcher:
        return self.dispatcher if self.dispatcher is not None else default_dispatcher()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to ``x`` of shape ``(..., in_features)``.

        Execution goes through the kernel dispatcher; 3-D (and higher)
        activations ``(..., seq, in_features)`` run through the batched RHS
        path — one kernel call for the whole batch, slab-bit-exact with the
        per-sample calls — and the weight's memoized plan is reused either
        way.
        """
        x = np.asarray(x, dtype=np.float32)
        dispatcher = self._dispatcher()
        if x.ndim >= 3:
            lead = x.shape[:-2]
            seq = x.shape[-2]
            rhs = np.swapaxes(x.reshape(-1, seq, x.shape[-1]), 1, 2)  # (B, K, seq)
            out = dispatcher.execute(self._operand, rhs, bias=self.bias)  # (B, R, seq)
            return np.swapaxes(out, 1, 2).reshape(*lead, seq, self.out_features)
        flat = x.reshape(-1, x.shape[-1])
        out = dispatcher.execute(self._operand, flat.T, bias=self.bias).T
        return out.reshape(*x.shape[:-1], self.out_features)

    def warm_plan(self) -> None:
        """Build (and memoize) the weight's SpMM execution plan eagerly.

        Serving paths call this once at load time so the first forward pass
        does not pay operand preparation.
        """
        self._dispatcher().warm(self._operand)

    def gemm_problem(self, tokens: int) -> GemmProblem:
        """The sparse R x K x C problem this layer performs."""
        w = self.sparse_weight
        return GemmProblem.from_nm(
            r=self.out_features, k=self.in_features, c=tokens, n=w.n, m=w.m, v=w.v, name=self.name
        )

    def kernel_result(self, tokens: int, gpu: Optional[GPUSpec] = None) -> KernelResult:
        """Modelled Spatha execution of this layer's SpMM."""
        if gpu is not None and gpu is not self.spatha.gpu:
            return Spatha(gpu=gpu, autotune=self.spatha.autotune).estimate(self.gemm_problem(tokens))
        return self.spatha.estimate(self.gemm_problem(tokens))


def init_dense_linear(
    out_features: int,
    in_features: int,
    name: str = "linear",
    seed: int = 0,
    with_bias: bool = True,
) -> DenseLinear:
    """Randomly initialise a dense layer with transformer-like statistics."""
    if out_features <= 0 or in_features <= 0:
        raise ValueError("layer dimensions must be positive")
    rng = np.random.default_rng(seed)
    weight = rng.normal(0.0, 0.02, size=(out_features, in_features)).astype(np.float32)
    bias = rng.normal(0.0, 0.01, size=out_features).astype(np.float32) if with_bias else None
    return DenseLinear(weight=weight, bias=bias, name=name)
