"""Distributed (tensor-parallel) inference latency extension.

Section 9 of the paper discusses Spatha as a building block for distributed
DL systems, where data/operator/pipeline parallelism are combined and the
SpMM kernels accelerate the per-device operator shards.  This module
extends the Figure-15 latency model with a Megatron-style tensor-parallel
execution of the encoder:

* every weight GEMM is sharded across ``tp_degree`` devices (column-parallel
  for the QKV/FFN-expansion projections, row-parallel for the output
  projections), so each device runs a GEMM with a 1/tp-sized dimension;
* each transformer block adds the two all-reduces of the activations that
  tensor parallelism requires, priced with a simple ring all-reduce model
  over the given interconnect bandwidth.

The model answers the question the discussion raises: how much of the
single-GPU SpMM advantage survives once communication enters the picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import ModelConfig
from .latency import SparsityPlan, model_inference_trace
from ..hardware.spec import GPUSpec, rtx3090
from ..hardware.trace import ExecutionTrace, KernelExecution


@dataclass(frozen=True)
class InterconnectSpec:
    """Point-to-point interconnect between the devices of one TP group."""

    name: str = "NVLink3 (x4)"
    #: Per-direction bandwidth per device, GB/s.
    bandwidth_gbps: float = 100.0
    #: Per-message latency, microseconds.
    latency_us: float = 8.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")


#: PCIe 4.0 x16 fallback interconnect (consumer multi-GPU boxes).
PCIE4 = InterconnectSpec(name="PCIe 4.0 x16", bandwidth_gbps=25.0, latency_us=15.0)
#: NVLink-class interconnect (the default).
NVLINK = InterconnectSpec()


def allreduce_time_us(message_bytes: float, tp_degree: int, link: InterconnectSpec) -> float:
    """Ring all-reduce time for one activation tensor.

    Standard ring model: ``2 (p-1)/p`` of the message crosses each link,
    plus ``2 (p-1)`` latency hops.
    """
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if tp_degree < 1:
        raise ValueError("tp_degree must be >= 1")
    if tp_degree == 1:
        return 0.0
    volume_factor = 2.0 * (tp_degree - 1) / tp_degree
    transfer_us = message_bytes * volume_factor / (link.bandwidth_gbps * 1e9) * 1e6
    return transfer_us + 2.0 * (tp_degree - 1) * link.latency_us


def tensor_parallel_trace(
    config: ModelConfig,
    batch_size: int,
    tp_degree: int,
    seq_len: Optional[int] = None,
    plan: Optional[SparsityPlan] = None,
    num_layers: Optional[int] = None,
    gpu: Optional[GPUSpec] = None,
    link: InterconnectSpec = NVLINK,
) -> ExecutionTrace:
    """Latency trace of one device in a tensor-parallel group.

    The per-device compute is modelled by shrinking the weight dimensions by
    ``tp_degree`` (heads and FFN width are split evenly); the two
    all-reduces per layer are added as ``other``-category communication
    kernels.  ``tp_degree=1`` reduces to the single-GPU model.
    """
    if tp_degree < 1:
        raise ValueError("tp_degree must be >= 1")
    if config.num_heads % tp_degree or config.intermediate_size % tp_degree:
        raise ValueError(
            f"tp_degree ({tp_degree}) must divide the head count ({config.num_heads}) "
            f"and the FFN width ({config.intermediate_size})"
        )
    gpu = gpu or rtx3090()
    seq = seq_len or config.max_seq_len
    layers = num_layers if num_layers is not None else config.num_layers

    # Per-device shard of the architecture: attention heads and FFN width are
    # divided across the group; the hidden size (and therefore the activation
    # tensors that get all-reduced) stays full-size.
    shard = ModelConfig(
        name=f"{config.name}-tp{tp_degree}",
        hidden_size=config.hidden_size,
        num_layers=config.num_layers,
        num_heads=config.num_heads,
        intermediate_size=config.intermediate_size // tp_degree,
        max_seq_len=config.max_seq_len,
        vocab_size=config.vocab_size,
    )
    trace = model_inference_trace(
        shard, batch_size=batch_size, seq_len=seq, plan=plan, num_layers=layers, gpu=gpu
    )

    # The attention projections are also sharded: remove (tp-1)/tp of their
    # GEMM time.  (The FFN shrinkage is already captured by the shard config;
    # attention Q/K/V/output keep hidden x hidden shapes there, so rescale.)
    if tp_degree > 1:
        rescaled = ExecutionTrace()
        for ex in trace.executions:
            if ex.category == "gemm" and "attention." in str(ex.meta.get("layer", "")):
                rescaled.record(
                    KernelExecution(
                        kernel=ex.kernel,
                        category=ex.category,
                        time_us=ex.time_us / tp_degree,
                        flops=ex.flops / tp_degree,
                        dense_flops=ex.dense_flops / tp_degree,
                        bytes_moved=ex.bytes_moved / tp_degree,
                        meta=dict(ex.meta),
                    )
                )
            elif ex.category == "matmul":
                rescaled.record(
                    KernelExecution(
                        kernel=ex.kernel,
                        category=ex.category,
                        time_us=ex.time_us / tp_degree,
                        flops=ex.flops / tp_degree,
                        dense_flops=ex.dense_flops / tp_degree,
                        bytes_moved=ex.bytes_moved / tp_degree,
                        meta=dict(ex.meta),
                    )
                )
            else:
                rescaled.record(ex)
        trace = rescaled

    # Two all-reduces of the (tokens x hidden) activations per layer.
    tokens = batch_size * seq
    activation_bytes = tokens * config.hidden_size * 2.0
    comm_us = allreduce_time_us(activation_bytes, tp_degree, link)
    for layer_idx in range(layers):
        for which in ("attention", "ffn"):
            trace.record(
                KernelExecution(
                    kernel="allreduce",
                    category="other",
                    time_us=comm_us,
                    bytes_moved=activation_bytes,
                    meta={"layer": f"encoder.layer.{layer_idx}.{which}.allreduce", "tp": tp_degree},
                )
            )
    return trace


def tensor_parallel_study(
    config: ModelConfig,
    batch_size: int,
    tp_degrees=(1, 2, 4),
    plan: Optional[SparsityPlan] = None,
    seq_len: Optional[int] = None,
    num_layers: Optional[int] = None,
    link: InterconnectSpec = NVLINK,
    gpu: Optional[GPUSpec] = None,
) -> Dict[int, Dict[str, float]]:
    """Latency and communication share across tensor-parallel degrees."""
    out: Dict[int, Dict[str, float]] = {}
    for tp in tp_degrees:
        trace = tensor_parallel_trace(
            config, batch_size, tp, seq_len=seq_len, plan=plan, num_layers=num_layers, link=link, gpu=gpu
        )
        comm_us = sum(e.time_us for e in trace.executions if e.kernel == "allreduce")
        out[tp] = {
            "total_ms": trace.total_time_ms,
            "gemm_ms": trace.gemm_time_us() / 1e3,
            "comm_ms": comm_us / 1e3,
            "comm_fraction": comm_us / trace.total_time_us if trace.total_time_us else 0.0,
        }
    return out
