"""Distributed (tensor-parallel) inference: latency model and placement.

Section 9 of the paper discusses Spatha as a building block for distributed
DL systems, where data/operator/pipeline parallelism are combined and the
SpMM kernels accelerate the per-device operator shards.  This module
extends the Figure-15 latency model with a Megatron-style tensor-parallel
execution of the encoder and, for the sharded serving tier
(:mod:`repro.serving.sharded`), with an explicit *placement* layer:

* :func:`tensor_parallel_trace` — every weight GEMM is sharded across
  ``tp_degree`` devices (column-parallel for the QKV/FFN-expansion
  projections, row-parallel for the output projections), so each device
  runs a GEMM with a 1/tp-sized dimension; each transformer block adds the
  two all-reduces of the activations that tensor parallelism requires,
  priced with a simple ring all-reduce model over the interconnect.
* :func:`encoder_layer_graph` — a live :class:`TransformerEncoder` becomes
  a weighted :class:`LayerGraph`: nodes are the six projections of each
  block (weighted by dense-equivalent FLOPs per token), edges are the
  activation tensors flowing between them (weighted by wire bytes per
  token).
* :func:`partition_min_cut` / :func:`partition_min_cut_reference` /
  :func:`partition_round_robin` — balanced min-cut assignment of graph
  nodes to shards: among assignments at least as load-balanced as
  round-robin, minimise the activation bytes crossing shard boundaries.
  The heuristic (greedy moves + Kernighan-Lin-style swaps seeded with
  round-robin) delegates to the brute-force exact solver whenever the
  assignment space is small enough to enumerate, and by construction is
  never worse than round-robin on cut traffic.
* :func:`placement_comm_events` — the communication a placement implies
  under Megatron semantics: a cut edge into a column-parallel node is a
  point-to-point send/recv; a row-parallel node whose inputs span several
  shards reduces its partial outputs with a ring all-reduce (which
  subsumes those cut edges).

The model answers the question the discussion raises: how much of the
single-GPU SpMM advantage survives once communication enters the picture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .config import ModelConfig
from .latency import SparsityPlan, model_inference_trace
from ..hardware.spec import (  # noqa: F401  (re-exported for back-compat)
    NVLINK,
    PCIE4,
    DeviceGroupSpec,
    GPUSpec,
    InterconnectSpec,
    rtx3090,
)
from ..hardware.trace import ExecutionTrace, KernelExecution

#: Wire bytes per activation element (FP16 on the interconnect, matching
#: the tensor-core compute precision the kernels model).
ACTIVATION_WIRE_BYTES = 2.0

#: Megatron parallelism styles for encoder projections.
COLUMN_PARALLEL = "column"
ROW_PARALLEL = "row"
PARALLELISM_STYLES = (COLUMN_PARALLEL, ROW_PARALLEL)

#: Projections whose *rows* are split across devices (their inputs arrive
#: pre-split from a column-parallel producer; their partial outputs are
#: summed by an all-reduce).
_ROW_PARALLEL_SUFFIXES = ("attention.output", "ffn.output")


def parallelism_style(qualified_name: str) -> str:
    """Megatron parallelism style of an encoder projection by name.

    QKV and FFN-expansion projections are column-parallel; the attention
    and FFN output projections are row-parallel.
    """
    for suffix in _ROW_PARALLEL_SUFFIXES:
        if qualified_name.endswith(suffix):
            return ROW_PARALLEL
    return COLUMN_PARALLEL


def allreduce_time_us(message_bytes: float, tp_degree: int, link: InterconnectSpec) -> float:
    """Ring all-reduce time for one activation tensor.

    Standard ring model: ``2 (p-1)/p`` of the message crosses each link,
    plus ``2 (p-1)`` latency hops.
    """
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if tp_degree < 1:
        raise ValueError("tp_degree must be >= 1")
    if tp_degree == 1:
        return 0.0
    volume_factor = 2.0 * (tp_degree - 1) / tp_degree
    transfer_us = message_bytes * volume_factor / (link.bandwidth_gbps * 1e9) * 1e6
    return transfer_us + 2.0 * (tp_degree - 1) * link.latency_us


def send_recv_time_us(message_bytes: float, link: InterconnectSpec) -> float:
    """Point-to-point transfer time of one activation tensor."""
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    return message_bytes / (link.bandwidth_gbps * 1e9) * 1e6 + link.latency_us


# ----------------------------------------------------------------------
# Layer graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphNode:
    """One projection of the encoder, as a placement-graph node.

    ``weight`` is the modelled compute load (dense-equivalent FLOPs per
    token); ``out_bytes_per_token`` the wire size of the activation tensor
    the node produces (used to price the all-reduce of a row-parallel node
    whose inputs span shards).
    """

    name: str
    weight: float
    style: str = COLUMN_PARALLEL
    out_bytes_per_token: float = 0.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("node weight must be non-negative")
        if self.style not in PARALLELISM_STYLES:
            raise ValueError(f"unknown parallelism style {self.style!r}")
        if self.out_bytes_per_token < 0:
            raise ValueError("out_bytes_per_token must be non-negative")


@dataclass(frozen=True)
class GraphEdge:
    """Activation flow between two projections, in wire bytes per token."""

    src: str
    dst: str
    bytes_per_token: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("self-edges are not allowed")
        if self.bytes_per_token < 0:
            raise ValueError("bytes_per_token must be non-negative")


@dataclass(frozen=True)
class LayerGraph:
    """Weighted activation-flow graph over encoder projections."""

    nodes: Tuple[GraphNode, ...]
    edges: Tuple[GraphEdge, ...]

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        known = set(names)
        for e in self.edges:
            if e.src not in known or e.dst not in known:
                raise ValueError(f"edge {e.src!r} -> {e.dst!r} references unknown node")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    @property
    def total_weight(self) -> float:
        return sum(n.weight for n in self.nodes)

    @property
    def total_edge_bytes(self) -> float:
        return sum(e.bytes_per_token for e in self.edges)

    def node(self, name: str) -> GraphNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    def in_edges(self, name: str) -> Tuple[GraphEdge, ...]:
        return tuple(e for e in self.edges if e.dst == name)


def encoder_layer_graph(encoder) -> LayerGraph:
    """Placement graph of a live :class:`TransformerEncoder`.

    Nodes are the six projections of each block (``attention.query/key/
    value/output``, ``ffn.intermediate``, ``ffn.output``), weighted by
    dense-equivalent FLOPs per token.  Edges follow the forward data flow:
    Q/K/V feed the attention output projection, which feeds the FFN
    expansion, which feeds the FFN output, which feeds the next block's
    Q/K/V.
    """
    nodes: List[GraphNode] = []
    by_name = {}
    for qualified, lin in encoder.named_linear_layers():
        node = GraphNode(
            name=qualified,
            weight=2.0 * float(lin.out_features) * float(lin.in_features),
            style=parallelism_style(qualified),
            out_bytes_per_token=float(lin.out_features) * ACTIVATION_WIRE_BYTES,
        )
        nodes.append(node)
        by_name[qualified] = lin

    edges: List[GraphEdge] = []

    def _link(src: str, dst: str) -> None:
        edges.append(
            GraphEdge(src=src, dst=dst, bytes_per_token=by_name[src].out_features * ACTIVATION_WIRE_BYTES)
        )

    num_layers = len(encoder.layers)
    for i in range(num_layers):
        prefix = f"encoder.layer.{i}."
        for proj in ("attention.query", "attention.key", "attention.value"):
            _link(prefix + proj, prefix + "attention.output")
        _link(prefix + "attention.output", prefix + "ffn.intermediate")
        _link(prefix + "ffn.intermediate", prefix + "ffn.output")
        if i + 1 < num_layers:
            nxt = f"encoder.layer.{i + 1}."
            for proj in ("attention.query", "attention.key", "attention.value"):
                _link(prefix + "ffn.output", nxt + proj)
    return LayerGraph(nodes=tuple(nodes), edges=tuple(edges))


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Placement:
    """An assignment of layer-graph nodes to shards.

    ``assignment`` is parallel to ``graph.nodes``.  Quality is read through
    :attr:`cut_bytes_per_token` (activation traffic crossing shard
    boundaries) and :attr:`load_balance` (max/mean shard load; 1.0 is
    perfect).
    """

    graph: LayerGraph
    num_shards: int
    assignment: Tuple[int, ...]
    policy: str = "round_robin"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if len(self.assignment) != len(self.graph.nodes):
            raise ValueError("assignment must cover every graph node")
        if any(s < 0 or s >= self.num_shards for s in self.assignment):
            raise ValueError("assignment references an out-of-range shard")

    def shard_of(self, name: str) -> int:
        """Shard owning the named node."""
        for node, shard in zip(self.graph.nodes, self.assignment):
            if node.name == name:
                return shard
        raise KeyError(name)

    def as_dict(self) -> Dict[str, int]:
        """Node name -> shard mapping."""
        return {node.name: shard for node, shard in zip(self.graph.nodes, self.assignment)}

    @property
    def shard_loads(self) -> Tuple[float, ...]:
        """Summed node weight per shard."""
        loads = [0.0] * self.num_shards
        for node, shard in zip(self.graph.nodes, self.assignment):
            loads[shard] += node.weight
        return tuple(loads)

    @property
    def load_spread(self) -> float:
        """Max minus min shard load (0 is perfectly balanced)."""
        loads = self.shard_loads
        return max(loads) - min(loads)

    @property
    def load_balance(self) -> float:
        """Max shard load over mean shard load (>= 1.0; 1.0 is perfect)."""
        loads = self.shard_loads
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean

    @property
    def cut_edges(self) -> Tuple[GraphEdge, ...]:
        """Edges whose endpoints live on different shards."""
        owner = self.as_dict()
        return tuple(e for e in self.graph.edges if owner[e.src] != owner[e.dst])

    @property
    def cut_bytes_per_token(self) -> float:
        """Activation bytes per token crossing shard boundaries."""
        return sum(e.bytes_per_token for e in self.cut_edges)


def _assignment_key(
    graph: LayerGraph, num_shards: int, assignment: Sequence[int]
) -> Tuple[float, float, Tuple[int, ...]]:
    """Lexicographic quality key: (cut bytes, load spread, assignment)."""
    owner = {node.name: shard for node, shard in zip(graph.nodes, assignment)}
    cut = sum(e.bytes_per_token for e in graph.edges if owner[e.src] != owner[e.dst])
    loads = [0.0] * num_shards
    for node, shard in zip(graph.nodes, assignment):
        loads[shard] += node.weight
    return (cut, max(loads) - min(loads), tuple(assignment))


def partition_round_robin(graph: LayerGraph, num_shards: int) -> Placement:
    """Baseline placement: node ``i`` goes to shard ``i % num_shards``."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    assignment = tuple(i % num_shards for i in range(len(graph.nodes)))
    return Placement(graph=graph, num_shards=num_shards, assignment=assignment, policy="round_robin")


def _balance_cap(graph: LayerGraph, num_shards: int) -> float:
    """Balance budget: no placement may spread load worse than round-robin."""
    rr = partition_round_robin(graph, num_shards)
    return rr.load_spread * (1.0 + 1e-9) + 1e-12


def _exhaustive_assignment(graph: LayerGraph, num_shards: int) -> Tuple[int, ...]:
    """Brute-force optimal assignment under the round-robin balance cap."""
    cap = _balance_cap(graph, num_shards)
    rr = tuple(i % num_shards for i in range(len(graph.nodes)))
    best = _assignment_key(graph, num_shards, rr)
    best_assignment = rr
    for candidate in itertools.product(range(num_shards), repeat=len(graph.nodes)):
        key = _assignment_key(graph, num_shards, candidate)
        if key[1] > cap:
            continue
        if key < best:
            best = key
            best_assignment = candidate
    return tuple(best_assignment)


def partition_min_cut_reference(graph: LayerGraph, num_shards: int) -> Placement:
    """Exact balanced min-cut by enumeration (small graphs only).

    Among all assignments whose load spread is no worse than round-robin's,
    returns the one with minimum cut traffic (ties broken by spread, then by
    the lexicographically smallest assignment).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards ** len(graph.nodes) > 1 << 20:
        raise ValueError(
            f"{num_shards}**{len(graph.nodes)} assignments is too many to enumerate; "
            "use partition_min_cut"
        )
    assignment = _exhaustive_assignment(graph, num_shards)
    return Placement(
        graph=graph, num_shards=num_shards, assignment=assignment, policy="min_cut_reference"
    )


def _refine_assignment(graph: LayerGraph, num_shards: int, start: Sequence[int]) -> Tuple[int, ...]:
    """Greedy + KL-style local search from ``start`` under the balance cap.

    Applies the best strictly-improving single-node move or two-node swap
    (by the (cut, spread) key) until a local optimum; every accepted state
    respects the round-robin balance cap, so the result is never worse than
    the starting point.
    """
    cap = _balance_cap(graph, num_shards)
    current = list(start)
    current_key = _assignment_key(graph, num_shards, current)
    n = len(current)
    for _ in range(10 * max(1, n)):  # generous bound; converges far earlier
        best_key = current_key
        best_state: Optional[List[int]] = None
        # Single-node moves.
        for i in range(n):
            original = current[i]
            for shard in range(num_shards):
                if shard == original:
                    continue
                current[i] = shard
                key = _assignment_key(graph, num_shards, current)
                if key[1] <= cap and key[:2] < best_key[:2]:
                    best_key = key
                    best_state = list(current)
            current[i] = original
        # Pairwise swaps (KL-style): escape move-local optima.
        for i in range(n):
            for j in range(i + 1, n):
                if current[i] == current[j]:
                    continue
                current[i], current[j] = current[j], current[i]
                key = _assignment_key(graph, num_shards, current)
                if key[1] <= cap and key[:2] < best_key[:2]:
                    best_key = key
                    best_state = list(current)
                current[i], current[j] = current[j], current[i]
        if best_state is None:
            break
        current = best_state
        current_key = best_key
    return tuple(current)


def partition_min_cut(
    graph: LayerGraph, num_shards: int, exhaustive_limit: int = 1 << 17
) -> Placement:
    """Balanced min-cut placement.

    Delegates to the exact enumerator whenever the assignment space fits in
    ``exhaustive_limit`` (so small graphs are provably optimal); otherwise
    runs the greedy/KL refinement seeded with round-robin, which is never
    worse than round-robin on cut traffic.  Set ``exhaustive_limit=0`` to
    force the heuristic path.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards ** len(graph.nodes) <= exhaustive_limit:
        assignment = _exhaustive_assignment(graph, num_shards)
    else:
        rr = tuple(i % num_shards for i in range(len(graph.nodes)))
        assignment = _refine_assignment(graph, num_shards, rr)
    return Placement(graph=graph, num_shards=num_shards, assignment=assignment, policy="min_cut")


# ----------------------------------------------------------------------
# Communication events implied by a placement
# ----------------------------------------------------------------------
KIND_ALL_REDUCE = "all_reduce"
KIND_SEND_RECV = "send_recv"


@dataclass(frozen=True)
class CommEvent:
    """One modelled collective or point-to-point transfer per forward pass.

    ``shards`` is the sorted group of participating shards; ``layer`` the
    destination projection the traffic feeds.
    """

    kind: str
    layer: str
    bytes_per_token: float
    shards: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in (KIND_ALL_REDUCE, KIND_SEND_RECV):
            raise ValueError(f"unknown comm kind {self.kind!r}")
        if self.bytes_per_token < 0:
            raise ValueError("bytes_per_token must be non-negative")
        if len(self.shards) < 2:
            raise ValueError("a comm event involves at least two shards")

    def time_us(self, tokens: int, link: InterconnectSpec) -> float:
        """Modelled wall time of this event for ``tokens`` tokens."""
        nbytes = self.bytes_per_token * tokens
        if self.kind == KIND_ALL_REDUCE:
            return allreduce_time_us(nbytes, len(self.shards), link)
        return send_recv_time_us(nbytes, link)


def placement_comm_events(placement: Placement) -> Tuple[CommEvent, ...]:
    """Communication a placement implies, under Megatron semantics.

    * A row-parallel node whose inputs (and itself) span more than one
      shard sums partial outputs with a ring all-reduce over that group;
      the cut edges feeding it are subsumed by the all-reduce and add no
      separate transfer.
    * Every other cut edge is a point-to-point send/recv of the activation
      tensor it carries.
    """
    owner = placement.as_dict()
    events: List[CommEvent] = []
    for node in placement.graph.nodes:
        in_edges = placement.graph.in_edges(node.name)
        cut_in = [e for e in in_edges if owner[e.src] != owner[e.dst]]
        if node.style == ROW_PARALLEL and in_edges:
            group = sorted({owner[e.src] for e in in_edges} | {owner[node.name]})
            if len(group) > 1:
                out_bytes = node.out_bytes_per_token or max(e.bytes_per_token for e in in_edges)
                events.append(
                    CommEvent(
                        kind=KIND_ALL_REDUCE,
                        layer=node.name,
                        bytes_per_token=out_bytes,
                        shards=tuple(group),
                    )
                )
                cut_in = []  # subsumed by the all-reduce
        for e in cut_in:
            events.append(
                CommEvent(
                    kind=KIND_SEND_RECV,
                    layer=node.name,
                    bytes_per_token=e.bytes_per_token,
                    shards=tuple(sorted((owner[e.src], owner[e.dst]))),
                )
            )
    return tuple(events)


def placement_comm_time_us(
    placement: Placement, tokens: int, link: InterconnectSpec = NVLINK
) -> float:
    """Total modelled communication time of one forward over ``tokens``."""
    return sum(e.time_us(tokens, link) for e in placement_comm_events(placement))


# ----------------------------------------------------------------------
# Tensor-parallel latency model (paper Section 9)
# ----------------------------------------------------------------------
def tensor_parallel_trace(
    config: ModelConfig,
    batch_size: int,
    tp_degree: int,
    seq_len: Optional[int] = None,
    plan: Optional[SparsityPlan] = None,
    num_layers: Optional[int] = None,
    gpu: Optional[GPUSpec] = None,
    link: InterconnectSpec = NVLINK,
) -> ExecutionTrace:
    """Latency trace of one device in a tensor-parallel group.

    The per-device compute is modelled by shrinking the weight dimensions by
    ``tp_degree`` (heads and FFN width are split evenly); the two
    all-reduces per layer are added as ``comm``-category communication
    kernels.  ``tp_degree=1`` reduces to the single-GPU model.
    """
    if tp_degree < 1:
        raise ValueError("tp_degree must be >= 1")
    if config.num_heads % tp_degree or config.intermediate_size % tp_degree:
        raise ValueError(
            f"tp_degree ({tp_degree}) must divide the head count ({config.num_heads}) "
            f"and the FFN width ({config.intermediate_size})"
        )
    gpu = gpu or rtx3090()
    seq = seq_len or config.max_seq_len
    layers = num_layers if num_layers is not None else config.num_layers

    # Per-device shard of the architecture: attention heads and FFN width are
    # divided across the group; the hidden size (and therefore the activation
    # tensors that get all-reduced) stays full-size.
    shard = ModelConfig(
        name=f"{config.name}-tp{tp_degree}",
        hidden_size=config.hidden_size,
        num_layers=config.num_layers,
        num_heads=config.num_heads,
        intermediate_size=config.intermediate_size // tp_degree,
        max_seq_len=config.max_seq_len,
        vocab_size=config.vocab_size,
    )
    trace = model_inference_trace(
        shard, batch_size=batch_size, seq_len=seq, plan=plan, num_layers=layers, gpu=gpu
    )

    # The attention projections are also sharded: remove (tp-1)/tp of their
    # GEMM time.  (The FFN shrinkage is already captured by the shard config;
    # attention Q/K/V/output keep hidden x hidden shapes there, so rescale.)
    if tp_degree > 1:
        rescaled = ExecutionTrace()
        for ex in trace.executions:
            if ex.category == "gemm" and "attention." in str(ex.meta.get("layer", "")):
                rescaled.record(
                    KernelExecution(
                        kernel=ex.kernel,
                        category=ex.category,
                        time_us=ex.time_us / tp_degree,
                        flops=ex.flops / tp_degree,
                        dense_flops=ex.dense_flops / tp_degree,
                        bytes_moved=ex.bytes_moved / tp_degree,
                        meta=dict(ex.meta),
                    )
                )
            elif ex.category == "matmul":
                rescaled.record(
                    KernelExecution(
                        kernel=ex.kernel,
                        category=ex.category,
                        time_us=ex.time_us / tp_degree,
                        flops=ex.flops / tp_degree,
                        dense_flops=ex.dense_flops / tp_degree,
                        bytes_moved=ex.bytes_moved / tp_degree,
                        meta=dict(ex.meta),
                    )
                )
            else:
                rescaled.record(ex)
        trace = rescaled

    # Two all-reduces of the (tokens x hidden) activations per layer.
    tokens = batch_size * seq
    activation_bytes = tokens * config.hidden_size * ACTIVATION_WIRE_BYTES
    comm_us = allreduce_time_us(activation_bytes, tp_degree, link)
    for layer_idx in range(layers):
        for which in ("attention", "ffn"):
            trace.record(
                KernelExecution(
                    kernel="allreduce",
                    category="comm",
                    time_us=comm_us,
                    bytes_moved=activation_bytes,
                    meta={"layer": f"encoder.layer.{layer_idx}.{which}.allreduce", "tp": tp_degree},
                )
            )
    return trace


def tensor_parallel_study(
    config: ModelConfig,
    batch_size: int,
    tp_degrees=(1, 2, 4),
    plan: Optional[SparsityPlan] = None,
    seq_len: Optional[int] = None,
    num_layers: Optional[int] = None,
    link: InterconnectSpec = NVLINK,
    gpu: Optional[GPUSpec] = None,
) -> Dict[int, Dict[str, float]]:
    """Latency and communication share across tensor-parallel degrees."""
    out: Dict[int, Dict[str, float]] = {}
    for tp in tp_degrees:
        trace = tensor_parallel_trace(
            config, batch_size, tp, seq_len=seq_len, plan=plan, num_layers=num_layers, link=link, gpu=gpu
        )
        comm_us = sum(e.time_us for e in trace.executions if e.kernel == "allreduce")
        out[tp] = {
            "total_ms": trace.total_time_ms,
            "gemm_ms": trace.gemm_time_us() / 1e3,
            "comm_ms": comm_us / 1e3,
            "comm_fraction": comm_us / trace.total_time_us if trace.total_time_us else 0.0,
        }
    return out
