"""Paged KV cache for autoregressive decoding, with prefix sharing.

Decoding appends one token per step; each step's attention needs the keys
and values of every earlier position.  Recomputing them is the *reference*
behaviour (and the other side of the golden decode matrix); caching them is
the serving behaviour.  Two implementations share one append/gather
contract so the cached path has a loop-sibling to be property-tested
against:

- :class:`SequenceKV` / :class:`LayerKV` — the reference store: plain
  per-layer lists, no block structure.  This is also what the causal
  forward paths in :mod:`repro.models.attention` /
  :mod:`repro.models.transformer` use as scratch state, which is *why*
  cached decoding is bit-for-bit the full recompute: both run the same
  per-position true-shape operations, the cache merely skips recomputing
  values that recomputation would reproduce identically.

- :class:`PagedKVCache` — the serving store, after vLLM's PagedAttention:
  K/V live in fixed-size blocks (``block_size`` token slots, all layers),
  each sequence holds a block table, and blocks are explicitly allocated,
  reference-counted and freed.  Requests submitted with a common prompt
  share the prompt's blocks (``prefix_hits``); a sequence appending into a
  shared partial block first copies it (``cow_copies`` — copy-on-write).
  Registered prefixes are evicted LRU when the pool runs dry
  (``evictions``).  :meth:`PagedKVCache.cache_stats` reports all of it.

Bit-exactness note: both stores return the gathered K/V as freshly-built
contiguous ``(tokens, heads, head_dim)`` float32 arrays, so every matmul
downstream sees identical values at identical shapes and strides whichever
store fed it.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "LayerKV",
    "SequenceKV",
    "PagedKVCache",
    "prompt_fingerprint",
]


def prompt_fingerprint(prompt: np.ndarray) -> str:
    """Content hash identifying a prompt for prefix-cache sharing."""
    prompt = np.ascontiguousarray(prompt, dtype=np.float32)
    digest = hashlib.sha1(prompt.tobytes())
    digest.update(str(prompt.shape).encode())
    return digest.hexdigest()


class LayerKV:
    """Reference per-layer KV store: append one token, gather all of them."""

    def __init__(self) -> None:
        self._keys: List[np.ndarray] = []
        self._values: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._keys)

    def append(self, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Store the new token's ``(heads, head_dim)`` K/V; return all so far.

        The gathered arrays are fresh contiguous ``(tokens, heads,
        head_dim)`` float32 — the same layout :class:`PagedKVCache` gathers,
        so downstream matmuls are bit-identical across stores.
        """
        k = np.ascontiguousarray(k, dtype=np.float32)
        v = np.ascontiguousarray(v, dtype=np.float32)
        if k.ndim != 2 or k.shape != v.shape:
            raise ValueError(f"k/v must be matching (heads, head_dim) arrays, got {k.shape}/{v.shape}")
        self._keys.append(k)
        self._values.append(v)
        return np.stack(self._keys), np.stack(self._values)


class SequenceKV:
    """Reference per-sequence cache: one :class:`LayerKV` per layer."""

    def __init__(self, num_layers: int) -> None:
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self._layers = [LayerKV() for _ in range(num_layers)]
        self.length = 0

    def extend(self) -> int:
        """Open the slot for the next token position; returns the position."""
        self.length += 1
        return self.length - 1

    def view(self, layer: int) -> LayerKV:
        return self._layers[layer]


@dataclass
class _PrefixEntry:
    """A registered shared prompt: registry-held block references."""

    fingerprint: str
    block_ids: List[int]
    length: int
    #: Encoder output at the final prompt position — what seeds decoding,
    #: cached so sharers skip the whole prefill.
    last_output: np.ndarray


class _PagedLayerView:
    """One layer's append/gather window onto a paged sequence."""

    def __init__(self, sequence: "_PagedSequence", layer: int) -> None:
        self._sequence = sequence
        self._layer = layer

    def __len__(self) -> int:
        return self._sequence.written[self._layer]

    def append(self, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self._sequence.append(self._layer, k, v)


class _PagedSequence:
    """A live sequence's block table inside a :class:`PagedKVCache`."""

    def __init__(self, cache: "PagedKVCache", seq_id: str) -> None:
        self.cache = cache
        self.seq_id = seq_id
        self.block_ids: List[int] = []
        self.length = 0
        self.written = [0] * cache.num_layers

    def extend(self) -> int:
        """Allocate the slot for the next token position (COW if shared)."""
        cache = self.cache
        position = self.length
        block_index = position // cache.block_size
        if block_index == len(self.block_ids):
            self.block_ids.append(cache._alloc_block())
        else:
            block_id = self.block_ids[block_index]
            if cache._refcount[block_id] > 1:
                # Shared partial block (prefix sharing): copy before writing.
                fresh = cache._alloc_block()
                cache._k_store[:, fresh] = cache._k_store[:, block_id]
                cache._v_store[:, fresh] = cache._v_store[:, block_id]
                cache._refcount[block_id] -= 1
                self.block_ids[block_index] = fresh
                cache.cow_copies += 1
        self.length += 1
        return position

    def view(self, layer: int) -> _PagedLayerView:
        return _PagedLayerView(self, layer)

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        cache = self.cache
        position = self.written[layer]
        if position >= self.length:
            raise RuntimeError(
                f"sequence {self.seq_id!r} layer {layer}: append without a prior extend()"
            )
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        expected = (cache.num_heads, cache.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ValueError(f"k/v must have shape {expected}, got {k.shape}/{v.shape}")
        block_id = self.block_ids[position // cache.block_size]
        offset = position % cache.block_size
        cache._k_store[layer, block_id, offset] = k
        cache._v_store[layer, block_id, offset] = v
        self.written[layer] = position + 1
        return self.gathered(layer)

    def gathered(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        """All cached K/V of ``layer`` as contiguous ``(t, heads, head_dim)``."""
        cache = self.cache
        tokens = self.written[layer]
        if tokens == 0:
            raise RuntimeError(f"sequence {self.seq_id!r} layer {layer} has no cached tokens")
        blocks_needed = -(-tokens // cache.block_size)
        ids = self.block_ids[:blocks_needed]
        flat_shape = (blocks_needed * cache.block_size, cache.num_heads, cache.head_dim)
        k = np.ascontiguousarray(cache._k_store[layer, ids].reshape(flat_shape)[:tokens])
        v = np.ascontiguousarray(cache._v_store[layer, ids].reshape(flat_shape)[:tokens])
        return k, v


class PagedKVCache:
    """Block-table KV storage shared by every sequence of a decoder engine.

    Storage is ``(num_layers, capacity_blocks, block_size, heads, head_dim)``
    for keys and values; a block holds ``block_size`` consecutive token
    slots of one sequence across all layers.  Blocks are reference-counted:
    a block reaches the free list only when no sequence *and* no registered
    prefix holds it.
    """

    def __init__(
        self,
        num_layers: int,
        num_heads: int,
        head_dim: int,
        block_size: int = 16,
        capacity_blocks: int = 512,
    ) -> None:
        if min(num_layers, num_heads, head_dim, block_size, capacity_blocks) <= 0:
            raise ValueError("all PagedKVCache dimensions must be positive")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        shape = (num_layers, capacity_blocks, block_size, num_heads, head_dim)
        self._k_store = np.zeros(shape, dtype=np.float32)
        self._v_store = np.zeros(shape, dtype=np.float32)
        self._free: List[int] = list(range(capacity_blocks - 1, -1, -1))
        self._refcount = [0] * capacity_blocks
        self._sequences: Dict[str, _PagedSequence] = {}
        self._prefixes: "OrderedDict[str, _PrefixEntry]" = OrderedDict()
        self.prefix_hits = 0
        self.cow_copies = 0
        self.evictions = 0
        self.peak_blocks_in_use = 0

    # -- block pool ---------------------------------------------------------

    @property
    def blocks_in_use(self) -> int:
        return self.capacity_blocks - len(self._free)

    @property
    def blocks_free(self) -> int:
        return len(self._free)

    def _alloc_block(self) -> int:
        if not self._free:
            self._evict_prefixes_for_space()
        if not self._free:
            raise RuntimeError(
                f"KV cache exhausted: all {self.capacity_blocks} blocks of "
                f"{self.block_size} token slots are held by live sequences"
            )
        block_id = self._free.pop()
        self._refcount[block_id] = 1
        self.peak_blocks_in_use = max(self.peak_blocks_in_use, self.blocks_in_use)
        return block_id

    def _release_block(self, block_id: int) -> None:
        self._refcount[block_id] -= 1
        if self._refcount[block_id] == 0:
            self._free.append(block_id)
        elif self._refcount[block_id] < 0:
            raise RuntimeError(f"block {block_id} released more times than acquired")

    def _evict_prefixes_for_space(self) -> None:
        """Drop registered prefixes LRU-first until a block frees (or none left)."""
        while self._prefixes and not self._free:
            _, entry = self._prefixes.popitem(last=False)
            for block_id in entry.block_ids:
                self._release_block(block_id)
            self.evictions += 1

    # -- sequences ----------------------------------------------------------

    def create(self, seq_id: str) -> _PagedSequence:
        if seq_id in self._sequences:
            raise ValueError(f"sequence {seq_id!r} already exists")
        sequence = _PagedSequence(self, seq_id)
        self._sequences[seq_id] = sequence
        return sequence

    def sequence(self, seq_id: str) -> _PagedSequence:
        return self._sequences[seq_id]

    def free(self, seq_id: str) -> int:
        """Release a sequence's block references; returns blocks dereferenced."""
        sequence = self._sequences.pop(seq_id)
        for block_id in sequence.block_ids:
            self._release_block(block_id)
        count = len(sequence.block_ids)
        sequence.block_ids = []
        return count

    # -- prefix sharing -----------------------------------------------------

    def register_prefix(self, fingerprint: str, seq_id: str, last_output: np.ndarray) -> None:
        """Pin ``seq_id``'s current blocks as a shareable prompt prefix."""
        if fingerprint in self._prefixes:
            self._prefixes.move_to_end(fingerprint)
            return
        sequence = self._sequences[seq_id]
        if sequence.length == 0 or any(w != sequence.length for w in sequence.written):
            raise RuntimeError(
                f"sequence {seq_id!r} is mid-step; register prefixes between steps"
            )
        for block_id in sequence.block_ids:
            self._refcount[block_id] += 1
        self._prefixes[fingerprint] = _PrefixEntry(
            fingerprint=fingerprint,
            block_ids=list(sequence.block_ids),
            length=sequence.length,
            last_output=np.array(last_output, dtype=np.float32, copy=True),
        )

    def attach_prefix(self, fingerprint: str, seq_id: str) -> Optional[_PrefixEntry]:
        """Attach a fresh sequence to a registered prefix, sharing its blocks.

        Returns the entry (length + cached final-position output) on a hit,
        ``None`` on a miss.  The sequence must be empty: sharing replaces
        prefill, it cannot splice into a decoded sequence.
        """
        entry = self._prefixes.get(fingerprint)
        if entry is None:
            return None
        sequence = self._sequences[seq_id]
        if sequence.length != 0:
            raise RuntimeError(f"sequence {seq_id!r} is not empty; cannot attach a prefix")
        for block_id in entry.block_ids:
            self._refcount[block_id] += 1
        sequence.block_ids = list(entry.block_ids)
        sequence.length = entry.length
        sequence.written = [entry.length] * self.num_layers
        self._prefixes.move_to_end(fingerprint)
        self.prefix_hits += 1
        return entry

    # -- reporting ----------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """Block-table accounting: occupancy, sharing and reclamation counters."""
        return {
            "block_size": self.block_size,
            "capacity_blocks": self.capacity_blocks,
            "blocks_in_use": self.blocks_in_use,
            "blocks_free": self.blocks_free,
            "peak_blocks_in_use": self.peak_blocks_in_use,
            "sequences": len(self._sequences),
            "prefix_entries": len(self._prefixes),
            "prefix_hits": self.prefix_hits,
            "cow_copies": self.cow_copies,
            "evictions": self.evictions,
        }
