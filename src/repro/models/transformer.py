"""Transformer encoder layer and encoder stack.

The functional substrate for the end-to-end experiments: an encoder layer
is the standard pre-LLM block (MHA + residual/LayerNorm + FFN +
residual/LayerNorm), built from the layer abstractions in
:mod:`repro.models.layers` so any of its six weight matrices can be swapped
for a V:N:M-sparse version.  The stack exposes iteration over its prunable
layers — the interface the STen-style sparsification pass in
:mod:`repro.integration` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .attention import LinearLike, MultiHeadAttention
from .config import ModelConfig
from .functional import (
    gelu,
    grouped_by_length,
    layer_norm,
    mask_is_causal,
    resolve_padding_lengths,
)
from .kv_cache import LayerKV, SequenceKV
from .layers import SparseLinear, init_dense_linear

if TYPE_CHECKING:  # import cycle: kernels.spatha pulls in formats, not models
    from ..kernels.spatha import SpmmPlan


@dataclass
class FeedForward:
    """The transformer FFN: intermediate (expansion) + output projections."""

    intermediate: LinearLike
    output: LinearLike

    @classmethod
    def init(cls, config: ModelConfig, seed: int = 0) -> "FeedForward":
        return cls(
            intermediate=init_dense_linear(
                config.intermediate_size, config.hidden_size, name="ffn.intermediate", seed=seed
            ),
            output=init_dense_linear(
                config.hidden_size, config.intermediate_size, name="ffn.output", seed=seed + 1
            ),
        )

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        return self.output.forward(gelu(self.intermediate.forward(hidden)))

    def projections(self) -> Dict[str, LinearLike]:
        return {"ffn.intermediate": self.intermediate, "ffn.output": self.output}

    def replace_projection(self, name: str, layer: LinearLike) -> None:
        if name == "ffn.intermediate":
            self.intermediate = layer
        elif name == "ffn.output":
            self.output = layer
        else:
            raise KeyError(f"unknown projection {name!r}")


@dataclass
class EncoderLayer:
    """One transformer encoder block."""

    config: ModelConfig
    attention: MultiHeadAttention
    ffn: FeedForward
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    index: int = 0

    @classmethod
    def init(cls, config: ModelConfig, index: int = 0, seed: int = 0) -> "EncoderLayer":
        h = config.hidden_size
        base = seed + index * 101
        return cls(
            config=config,
            attention=MultiHeadAttention.init(config, seed=base),
            ffn=FeedForward.init(config, seed=base + 10),
            ln1_gamma=np.ones(h, dtype=np.float32),
            ln1_beta=np.zeros(h, dtype=np.float32),
            ln2_gamma=np.ones(h, dtype=np.float32),
            ln2_beta=np.zeros(h, dtype=np.float32),
            index=index,
        )

    def forward(self, hidden: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Post-LN encoder block forward pass (BERT convention).

        ``attention_mask`` is an optional additive mask (``0.0`` valid,
        ``-inf`` masked; see :func:`~repro.models.functional.padding_mask`).
        For a right-padding mask the block executes each group of
        equal-valid-length sequences at its true shape, so every valid
        token's output is bit-for-bit the unpadded forward of its sequence
        and padded rows come out as zeros; the linear layers, LayerNorm and
        GELU are per-row operators, but BLAS kernel selection is
        shape-dependent, so even they are only bitwise-reproducible when
        executed at the true sequence length (see
        :mod:`repro.models.attention`).  A causal mask
        (:func:`~repro.models.functional.causal_mask`) runs the whole block
        per position — attention, residuals, LayerNorms and FFN all at the
        one-row decode shape — which is bit-for-bit what KV-cached decoding
        (:meth:`forward_step`) executes.  Other mask structures apply the
        general masked attention (exact zero weights, no bitwise claim)
        with every row treated as valid through the FFN and LayerNorms.
        """
        hidden = np.asarray(hidden, dtype=np.float32)
        if attention_mask is not None:
            lengths = resolve_padding_lengths(attention_mask, hidden)
            if lengths is not None:
                return grouped_by_length(hidden, lengths, self.forward)
            if mask_is_causal(attention_mask):
                if np.shape(attention_mask)[-1] != hidden.shape[1]:
                    raise ValueError(
                        f"causal mask covers {np.shape(attention_mask)[-1]} key positions "
                        f"but the activations have {hidden.shape[1]} tokens; build the "
                        f"mask with causal_mask({hidden.shape[1]})"
                    )
                return self._forward_causal(hidden)
        attn_out = self.attention.forward(hidden, mask=attention_mask)
        hidden = layer_norm(hidden + attn_out, self.ln1_gamma, self.ln1_beta)
        ffn_out = self.ffn.forward(hidden)
        return layer_norm(hidden + ffn_out, self.ln2_gamma, self.ln2_beta)

    def forward_step(self, new_token: np.ndarray, kv_view) -> np.ndarray:
        """Run the whole block for one appended token against cached K/V.

        ``new_token`` is ``(1, hidden)``; ``kv_view`` is this layer's KV
        view (``append(k, v) -> (K, V)``).  Every operator — the attention
        step, both residual adds and LayerNorms, and the FFN — executes at
        the one-row decode shape, so the block's bits depend only on the
        token's value and the cached K/V, never on how many other tokens
        are in flight.
        """
        token = np.asarray(new_token, dtype=np.float32)
        if token.ndim == 1:
            token = token[None]
        row = self.attention.forward_step(token, kv_view)  # (1, hidden)
        hidden = layer_norm(token + row, self.ln1_gamma, self.ln1_beta)
        ffn_out = self.ffn.forward(hidden)
        return layer_norm(hidden + ffn_out, self.ln2_gamma, self.ln2_beta)

    def _forward_causal(self, hidden: np.ndarray) -> np.ndarray:
        """Causal forward of the whole block: per-position decode-shaped ops."""
        batch, seq, _ = hidden.shape
        out = np.empty_like(hidden)
        for b in range(batch):
            kv = LayerKV()
            for t in range(seq):
                out[b, t] = self.forward_step(hidden[b, t][None], kv)[0]
        return out

    def named_linear_layers(self) -> Dict[str, LinearLike]:
        """All six prunable linear layers of this block, keyed by name."""
        layers: Dict[str, LinearLike] = {}
        layers.update(self.attention.projections())
        layers.update(self.ffn.projections())
        return layers

    def replace_linear(self, name: str, layer: LinearLike) -> None:
        """Swap one of the six linear layers by name."""
        if name.startswith("attention."):
            self.attention.replace_projection(name, layer)
        elif name.startswith("ffn."):
            self.ffn.replace_projection(name, layer)
        else:
            raise KeyError(f"unknown linear layer {name!r}")

    def sparsity_summary(self) -> Dict[str, float]:
        """Sparsity of every linear layer (0.0 for dense ones)."""
        out = {}
        for name, layer in self.named_linear_layers().items():
            out[name] = layer.sparsity if isinstance(layer, SparseLinear) else 0.0
        return out


@dataclass
class TransformerEncoder:
    """A stack of encoder layers (the model the end-to-end study times)."""

    config: ModelConfig
    layers: List[EncoderLayer] = field(default_factory=list)

    @classmethod
    def init(cls, config: ModelConfig, num_layers: Optional[int] = None, seed: int = 0) -> "TransformerEncoder":
        """Initialise a stack of ``num_layers`` (default: config.num_layers) blocks.

        The end-to-end GPT-3 experiment of the paper only instantiates a
        single encoder layer to fit on one GPU; ``num_layers`` exposes the
        same control.
        """
        n = num_layers if num_layers is not None else config.num_layers
        if n <= 0:
            raise ValueError("num_layers must be positive")
        return cls(config=config, layers=[EncoderLayer.init(config, index=i, seed=seed) for i in range(n)])

    def forward(
        self,
        hidden: np.ndarray,
        layer_hook: Optional[Callable[[int, np.ndarray], None]] = None,
        attention_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Run the full stack on ``(batch, seq, hidden)`` activations.

        Sparse layers execute whole batches through the batched RHS path of
        their memoized SpMM plans (see :meth:`warm_spmm_plans`).

        ``attention_mask`` is an optional additive mask (``0.0`` valid,
        ``-inf`` masked).  A right-padding mask
        (:func:`~repro.models.functional.padding_mask`) makes the stack
        padding-safe end to end: equal-valid-length sequences are grouped
        *once* and each group runs through the whole stack at its true
        shape, so valid rows of the output are bit-for-bit the unpadded
        forward and padded rows stay zero — the contract padded-bucket
        serving slices against.  (With a ``layer_hook``, the mask is
        instead forwarded to every block so the hook keeps observing
        full-batch per-layer outputs; same bits, one regroup per layer.)
        Other mask structures are forwarded to every block's general
        masked path.

        ``layer_hook`` is an observation point for per-layer
        instrumentation: it is called as ``layer_hook(layer_index, hidden)``
        with each block's *output* activations (read-only by convention),
        so callers can inspect intermediate activations without re-running
        the stack.  (The serving engine's per-layer trace does not need it
        — modelled kernel times come from the layer metadata, not the
        activations.)
        """
        hidden = np.asarray(hidden, dtype=np.float32)
        if attention_mask is not None and layer_hook is None:
            lengths = resolve_padding_lengths(attention_mask, hidden)
            if lengths is not None:
                # Partition once for the whole stack: identical bits to
                # per-layer grouping (same per-layer computation at the
                # same (group, length, hidden) shapes) at one mask parse,
                # slice and scatter per micro-batch instead of one per
                # layer.
                return grouped_by_length(hidden, lengths, self._forward_unmasked)
        for layer in self.layers:
            hidden = layer.forward(hidden, attention_mask=attention_mask)
            if layer_hook is not None:
                layer_hook(layer.index, hidden)
        return hidden

    def _forward_unmasked(self, hidden: np.ndarray) -> np.ndarray:
        """The plain stack loop (one equal-length group of the padded path)."""
        for layer in self.layers:
            hidden = layer.forward(hidden)
        return hidden

    def new_sequence_kv(self) -> SequenceKV:
        """A fresh reference KV cache sized for this stack (one store per layer)."""
        return SequenceKV(len(self.layers))

    def forward_step(self, new_token: np.ndarray, kv_cache) -> np.ndarray:
        """One decode step: run an appended token through the whole stack.

        ``new_token`` is the ``(1, hidden)`` activation of the sequence's
        newest position; ``kv_cache`` is a per-sequence cache exposing
        ``extend()`` and ``view(layer_index)`` — either the reference
        :class:`~repro.models.kv_cache.SequenceKV` or a
        :class:`~repro.models.kv_cache.PagedKVCache` sequence handle; the
        two are bit-interchangeable.  Returns the stack output for the
        token, ``(1, hidden)``.  Feeding each position of a sequence
        through this method against one cache is bit-for-bit
        ``forward(seq, attention_mask=causal_mask(len(seq)))`` — the
        causal path *is* this computation, minus the cache reuse.
        """
        token = np.asarray(new_token, dtype=np.float32)
        if token.ndim == 1:
            token = token[None]
        if token.shape != (1, self.config.hidden_size):
            raise ValueError(
                f"new_token must have shape (1, {self.config.hidden_size}), got {token.shape}"
            )
        kv_cache.extend()
        for layer in self.layers:
            token = layer.forward_step(token, kv_cache.view(layer.index))
        return token

    def warm_spmm_plans(self) -> int:
        """Eagerly build the SpMM execution plan of every sparse layer.

        Operand preparation (condensed view, gather indices, packed
        metadata) is memoized per weight, so warming moves all of it out of
        the first forward pass — the serving-path analogue of Spatha's
        one-time operand setup.  Returns the number of plans built.
        """
        warmed = 0
        for _, lin in self.named_linear_layers():
            if isinstance(lin, SparseLinear):
                lin.warm_plan()
                warmed += 1
        return warmed

    def named_sparse_layers(self) -> Iterator[Tuple[str, SparseLinear]]:
        """Iterate over the sparse projections only (the dispatchable ones)."""
        for name, lin in self.named_linear_layers():
            if isinstance(lin, SparseLinear):
                yield name, lin

    def set_dispatcher(self, dispatcher) -> int:
        """Route every sparse layer through one injected kernel dispatcher.

        This is how a serving engine scopes its caches: all sparse
        projections of the encoder share the engine's dispatcher (one
        decision cache, one tuner) instead of the process-wide default.
        Returns the number of layers re-routed.
        """
        routed = 0
        for _, lin in self.named_sparse_layers():
            lin.dispatcher = dispatcher
            routed += 1
        return routed

    def spmm_plan_registry(self) -> Dict[str, "SpmmPlan"]:
        """Build (memoized) and return the per-layer SpMM plan registry.

        One warmed :class:`~repro.kernels.spatha.SpmmPlan` per sparse
        projection, keyed by the qualified layer name.  Plans are memoized
        on the weight itself, so the registry is cheap to rebuild and every
        consumer (forward passes, serving engines, benchmarks) shares the
        same plan objects.
        """
        from ..kernels.spatha import SpmmPlan

        return {
            name: SpmmPlan.for_matrix(lin.sparse_weight)
            for name, lin in self.named_sparse_layers()
        }

    def named_linear_layers(self) -> Iterator[Tuple[str, LinearLike]]:
        """Iterate over ``(qualified_name, layer)`` of every prunable layer."""
        for layer in self.layers:
            for name, lin in layer.named_linear_layers().items():
                yield f"encoder.layer.{layer.index}.{name}", lin

    def replace_linear(self, qualified_name: str, new_layer: LinearLike) -> None:
        """Replace a layer addressed by its qualified name."""
        parts = qualified_name.split(".")
        if len(parts) < 4 or parts[0] != "encoder" or parts[1] != "layer":
            raise KeyError(f"unrecognised layer name {qualified_name!r}")
        idx = int(parts[2])
        if not 0 <= idx < len(self.layers):
            raise KeyError(f"layer index {idx} out of range")
        self.layers[idx].replace_linear(".".join(parts[3:]), new_layer)

    def apply_to_linears(self, fn: Callable[[str, LinearLike], Optional[LinearLike]]) -> int:
        """Apply ``fn`` to every prunable layer; replace it when fn returns a layer.

        Returns the number of layers replaced.
        """
        replaced = 0
        for name, lin in list(self.named_linear_layers()):
            new = fn(name, lin)
            if new is not None and new is not lin:
                self.replace_linear(name, new)
                replaced += 1
        return replaced

    def count_sparse_layers(self) -> int:
        """Number of layers currently running through Spatha."""
        return sum(1 for _, lin in self.named_linear_layers() if isinstance(lin, SparseLinear))
