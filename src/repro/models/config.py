"""Transformer model configurations used in the paper's evaluation.

The end-to-end experiments (Section 7.2) cover BERT-base/large, GPT-2-large
and a GPT-3-175B-style configuration (the paper instantiates the GPT-3
architecture with random weights because the trained model is not public —
the reproduction does exactly the same).  This module defines the
architecture descriptions and the per-layer weight-matrix shapes the
micro-benchmarks extract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ModelConfig:
    """Architecture description of a transformer encoder/decoder stack."""

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    max_seq_len: int = 512
    vocab_size: int = 30522
    #: Total parameter count (reported, used only for documentation).
    approx_params: str = ""

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.num_layers <= 0 or self.num_heads <= 0:
            raise ValueError("hidden_size, num_layers and num_heads must be positive")
        if self.hidden_size % self.num_heads:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by num_heads ({self.num_heads})"
            )
        if self.intermediate_size <= 0:
            raise ValueError("intermediate_size must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    def linear_layer_shapes(self) -> Dict[str, Tuple[int, int]]:
        """The (out_features, in_features) shape of every prunable linear
        layer in one transformer block.

        These are the weight tensors Figure 14 sparsifies: the Q/K/V and
        output projections of the MHA plus the two FFN projections.
        """
        h, i = self.hidden_size, self.intermediate_size
        return {
            "attention.query": (h, h),
            "attention.key": (h, h),
            "attention.value": (h, h),
            "attention.output": (h, h),
            "ffn.intermediate": (i, h),
            "ffn.output": (h, i),
        }

    def prunable_parameters_per_layer(self) -> int:
        """Number of prunable weights in one transformer block."""
        return sum(r * c for r, c in self.linear_layer_shapes().values())

    def prunable_parameters(self) -> int:
        """Number of prunable encoder weights in the whole model."""
        return self.num_layers * self.prunable_parameters_per_layer()

    def gemm_problems(self, batch_size: int, seq_len: int | None = None) -> List[Dict]:
        """The weight GEMMs of one block as R x K x C problem descriptors.

        ``R`` is the weight's output dimension, ``K`` its input dimension
        (the sparsified one), and ``C`` the number of tokens
        (``batch_size * seq_len``).
        """
        seq = seq_len or self.max_seq_len
        tokens = batch_size * seq
        problems = []
        for layer_name, (out_f, in_f) in self.linear_layer_shapes().items():
            problems.append({"name": layer_name, "r": out_f, "k": in_f, "c": tokens})
        return problems


# ----------------------------------------------------------------------
# Presets (sizes from the respective papers / HuggingFace configurations)
# ----------------------------------------------------------------------

BERT_BASE = ModelConfig(
    name="bert-base",
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    intermediate_size=3072,
    max_seq_len=512,
    approx_params="110M",
)

BERT_LARGE = ModelConfig(
    name="bert-large",
    hidden_size=1024,
    num_layers=24,
    num_heads=16,
    intermediate_size=4096,
    max_seq_len=512,
    approx_params="336M",
)

GPT2_LARGE = ModelConfig(
    name="gpt2-large",
    hidden_size=1280,
    num_layers=36,
    num_heads=20,
    intermediate_size=5120,
    max_seq_len=1024,
    vocab_size=50257,
    approx_params="774M",
)

GPT3_175B = ModelConfig(
    name="gpt3-175b",
    hidden_size=12288,
    num_layers=96,
    num_heads=96,
    intermediate_size=49152,
    max_seq_len=2048,
    vocab_size=50257,
    approx_params="175B",
)

#: Registry of presets keyed by short name.
MODEL_PRESETS: Dict[str, ModelConfig] = {
    "bert-base": BERT_BASE,
    "bert-large": BERT_LARGE,
    "gpt2-large": GPT2_LARGE,
    "gpt3-175b": GPT3_175B,
}


def get_model(name: str) -> ModelConfig:
    """Look up a model preset by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_PRESETS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_PRESETS)}")
    return MODEL_PRESETS[key]


def tiny_config(hidden_size: int = 64, num_layers: int = 2, num_heads: int = 4,
                intermediate_size: int = 128, max_seq_len: int = 32) -> ModelConfig:
    """A miniature configuration for functional tests and the quickstart."""
    return ModelConfig(
        name="tiny",
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=num_heads,
        intermediate_size=intermediate_size,
        max_seq_len=max_seq_len,
        vocab_size=1000,
        approx_params="<1M",
    )
