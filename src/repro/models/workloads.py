"""Benchmark workload generation: matrices "extracted from real-world LLMs".

The micro-benchmarks of the paper (Figures 9, 10, 12 and 13) run on weight
matrices whose outer dimensions come from BERT linear layers — e.g. the
``1024 x K x 4096`` sweep of Figure 9 corresponds to one BERT-large FFN
weight with a variable (scaled) inner dimension — while the energy study
(Figure 11) uses the ``768 x 768`` query projection of BERT-base's encoder
layer 8.  Since trained checkpoints are not available offline, this module
synthesises weight matrices with the right shapes and trained-like
statistics (see :func:`repro.pruning.second_order.proxy.synthesize_trained_layer`)
and exposes the named K-sweeps the figures iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from .config import BERT_BASE, BERT_LARGE, GPT3_175B, ModelConfig
from ..kernels.common import GemmProblem
from ..pruning.second_order.proxy import synthesize_trained_layer


#: Inner-dimension (K) sweep of Figures 9 and 12: 768 .. 12288 in steps of 768.
K_SWEEP: Tuple[int, ...] = tuple(768 * i for i in range(1, 17))

#: Sparsity levels (and their 2:M patterns) of Figure 13.
FIGURE13_SPARSITIES: Tuple[Tuple[float, int, int], ...] = (
    (0.50, 2, 4),
    (0.70, 2, 7),
    (0.75, 2, 8),
    (0.80, 2, 10),
    (0.90, 2, 20),
    (0.95, 2, 40),
    (0.98, 2, 100),
)


@dataclass(frozen=True)
class Workload:
    """One benchmark GEMM together with its provenance."""

    problem: GemmProblem
    description: str


def bert_base_gemm(k: int, batch_tokens: int = 4096) -> GemmProblem:
    """BERT-base-shaped GEMM of Figure 12a: ``768 x K x 4096``."""
    return GemmProblem(r=BERT_BASE.hidden_size, k=k, c=batch_tokens, name=f"bert-base-768xKx{batch_tokens}")


def bert_large_gemm(k: int, batch_tokens: int = 4096) -> GemmProblem:
    """BERT-large-shaped GEMM of Figures 9/10/12b: ``1024 x K x 4096``."""
    return GemmProblem(r=BERT_LARGE.hidden_size, k=k, c=batch_tokens, name=f"bert-large-1024xKx{batch_tokens}")


def gpt3_gemm(batch_tokens: int = 4096) -> GemmProblem:
    """The GPT-3 FFN-sized matrix of the Figure 10 follow-up (36864 x 12288 x 4096)."""
    return GemmProblem(r=3 * GPT3_175B.hidden_size, k=GPT3_175B.hidden_size, c=batch_tokens, name="gpt3-ffn")


def k_sweep_problems(model: str = "bert-large", batch_tokens: int = 4096) -> Iterator[GemmProblem]:
    """The K sweep of Figures 9/12 for the given model family."""
    maker = bert_large_gemm if model == "bert-large" else bert_base_gemm
    for k in K_SWEEP:
        yield maker(k, batch_tokens)


def bert_layer_problems(config: ModelConfig, batch_size: int, seq_len: int = 512) -> List[Workload]:
    """The weight GEMMs of one encoder block (the Figure 13 workloads)."""
    workloads = []
    for gemm in config.gemm_problems(batch_size, seq_len):
        problem = GemmProblem(r=gemm["r"], k=gemm["k"], c=gemm["c"], name=gemm["name"])
        workloads.append(
            Workload(problem=problem, description=f"{config.name} {gemm['name']} bs={batch_size}")
        )
    return workloads


def synthetic_bert_weight(
    layer: str = "encoder.layer.8.attention.self.query.weight",
    config: ModelConfig = BERT_BASE,
    seed: int = 8,
) -> np.ndarray:
    """Synthesise the weight tensor used by the energy study (Figure 11).

    The paper uses BERT-base's layer-8 query projection (768 x 768); the
    substitution generates a matrix of the same shape with transformer-like
    magnitude statistics (documented in DESIGN.md).
    """
    shapes = config.linear_layer_shapes()
    key = None
    for name in shapes:
        if name.split(".")[-1] in layer or name in layer:
            key = name
            break
    if key is None:
        key = "attention.query"
    rows, cols = shapes[key]
    return synthesize_trained_layer(rows=rows, cols=cols, seed=seed)


def divisible_k(k: int, m: int) -> int:
    """Round ``k`` up to the next multiple of ``m`` (format padding)."""
    if k <= 0 or m <= 0:
        raise ValueError("k and m must be positive")
    return ((k + m - 1) // m) * m
