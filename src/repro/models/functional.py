"""Numpy implementations of the transformer's non-GEMM operators.

The end-to-end inference substrate needs softmax, GELU, layer normalisation
and the usual residual/bias plumbing.  These are the operators that appear
as the "softmax" and "others" bars of the latency breakdown in Figure 15;
their functional versions here are used by the numerical tests and the
small-scale examples, while their execution time is modelled separately in
:mod:`repro.models.latency` (they are bandwidth-bound elementwise kernels).
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation, as used by BERT/GPT)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalisation over the last dimension."""
    x = np.asarray(x, dtype=np.float32)
    gamma = np.asarray(gamma, dtype=np.float32)
    beta = np.asarray(beta, dtype=np.float32)
    if gamma.shape != (x.shape[-1],) or beta.shape != (x.shape[-1],):
        raise ValueError("gamma/beta must have shape (hidden,)")
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def dropout_eval(x: np.ndarray) -> np.ndarray:
    """Dropout in inference mode (identity); kept for API parity."""
    return np.asarray(x, dtype=np.float32)


def attention_scores(q: np.ndarray, k: np.ndarray, scale: float | None = None) -> np.ndarray:
    """Scaled dot-product attention scores ``Q Kᵀ / sqrt(d)``.

    ``q`` and ``k`` have shape ``(..., seq, head_dim)``.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.shape[-1] != k.shape[-1]:
        raise ValueError("q and k must share the head dimension")
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[-1])
    return np.matmul(q, np.swapaxes(k, -1, -2)) * scale


def attention_context(probs: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Attention-weighted value aggregation ``P V``."""
    probs = np.asarray(probs, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    return np.matmul(probs, v)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``(batch, seq, hidden)`` to ``(batch, heads, seq, head_dim)``."""
    x = np.asarray(x, dtype=np.float32)
    b, s, h = x.shape
    if h % num_heads:
        raise ValueError(f"hidden size {h} not divisible by num_heads {num_heads}")
    return x.reshape(b, s, num_heads, h // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    x = np.asarray(x, dtype=np.float32)
    b, n, s, d = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, s, n * d)
