"""Numpy implementations of the transformer's non-GEMM operators.

The end-to-end inference substrate needs softmax, GELU, layer normalisation
and the usual residual/bias plumbing.  These are the operators that appear
as the "softmax" and "others" bars of the latency breakdown in Figure 15;
their functional versions here are used by the numerical tests and the
small-scale examples, while their execution time is modelled separately in
:mod:`repro.models.latency` (they are bandwidth-bound elementwise kernels).

Attention masking lives here too: padded-bucket serving stacks ragged
sequences into one right-padded batch, and an *additive* mask — ``0.0`` at
valid positions, ``-inf`` at padded key positions — removes the padding
from the only cross-token reductions in the stack, attention's score
matmuls and softmax.  ``exp(-inf) == 0.0`` exactly, so masked keys receive
*exactly zero* attention weight, not merely a small one.
:func:`padding_mask` builds the mask from per-sequence valid lengths and
:func:`mask_valid_lengths` recovers them (the model layers use it to detect
the right-padding structure and take the bit-exact grouped execution path —
see :mod:`repro.models.attention` for why exact zeros alone are not enough
for bitwise equality).

Decoder workloads add the second recognised mask family: :func:`causal_mask`
builds the lower-triangular additive mask and :func:`mask_is_causal` detects
it, routing the model layers onto the per-position causal path whose bits
are, by construction, those of incremental KV-cached decoding (see
:mod:`repro.models.kv_cache`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np


def softmax(x: np.ndarray, axis: int = -1, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Numerically stable softmax along ``axis``, with optional masking.

    ``mask`` is an *additive* attention mask broadcastable to ``x``:
    ``0.0`` keeps a position, ``-inf`` removes it.  Masked positions
    receive **exactly** ``0.0`` weight (``exp(-inf)`` is an exact IEEE
    zero, and ``0.0 / denom == 0.0``), so masked keys can never perturb a
    valid token's context — the property padded-bucket serving is built
    on.  Rows whose positions are all masked return all-zero weights
    rather than NaN.  With ``mask=None`` the computation is unchanged
    (bit-identical to earlier revisions), and an all-zero mask produces
    bit-identical results to no mask at all.
    """
    x = np.asarray(x, dtype=np.float32)
    if mask is None:
        shifted = x - np.max(x, axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / np.sum(exp, axis=axis, keepdims=True)
    masked = x + np.asarray(mask, dtype=np.float32)
    peak = np.max(masked, axis=axis, keepdims=True)
    # Fully-masked rows have peak == -inf; shift those by 0 so the
    # subtraction below cannot produce -inf - -inf = NaN.
    peak = np.where(np.isfinite(peak), peak, np.float32(0.0))
    exp = np.exp(masked - peak)  # exactly 0.0 wherever mask == -inf
    denom = np.sum(exp, axis=axis, keepdims=True)
    out = np.zeros_like(exp)
    np.divide(exp, denom, out=out, where=denom > 0)
    return out


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation, as used by BERT/GPT)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalisation over the last dimension."""
    x = np.asarray(x, dtype=np.float32)
    gamma = np.asarray(gamma, dtype=np.float32)
    beta = np.asarray(beta, dtype=np.float32)
    if gamma.shape != (x.shape[-1],) or beta.shape != (x.shape[-1],):
        raise ValueError("gamma/beta must have shape (hidden,)")
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


def dropout_eval(x: np.ndarray) -> np.ndarray:
    """Dropout in inference mode (identity); kept for API parity."""
    return np.asarray(x, dtype=np.float32)


def attention_scores(
    q: np.ndarray,
    k: np.ndarray,
    scale: float | None = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scaled dot-product attention scores ``Q Kᵀ / sqrt(d)``.

    ``q`` and ``k`` have shape ``(..., seq, head_dim)``.  ``mask`` is an
    optional additive attention mask broadcastable to the ``(..., seq_q,
    seq_k)`` scores (``0.0`` valid, ``-inf`` masked); masked key columns
    come out as ``-inf`` so a following :func:`softmax` assigns them
    exactly zero weight.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    if q.shape[-1] != k.shape[-1]:
        raise ValueError("q and k must share the head dimension")
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[-1])
    scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    if mask is not None:
        scores = scores + np.asarray(mask, dtype=np.float32)
    return scores


def attention_context(probs: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Attention-weighted value aggregation ``P V``."""
    probs = np.asarray(probs, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    return np.matmul(probs, v)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``(batch, seq, hidden)`` to ``(batch, heads, seq, head_dim)``."""
    x = np.asarray(x, dtype=np.float32)
    b, s, h = x.shape
    if h % num_heads:
        raise ValueError(f"hidden size {h} not divisible by num_heads {num_heads}")
    return x.reshape(b, s, num_heads, h // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    x = np.asarray(x, dtype=np.float32)
    b, n, s, d = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, s, n * d)


def padding_mask(lengths: Union[Sequence[int], np.ndarray], total_tokens: int) -> np.ndarray:
    """Additive right-padding attention mask from per-sequence valid lengths.

    Returns a ``(batch, 1, 1, total_tokens)`` float32 mask — ``0.0`` over
    each sequence's leading ``lengths[b]`` key positions, ``-inf`` over its
    padded tail — broadcastable over heads and query positions onto
    ``(batch, heads, seq_q, seq_k)`` attention scores.  This is the mask
    the padded-bucket serving engine builds per micro-batch.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1 or lengths.size == 0:
        raise ValueError(f"lengths must be a non-empty 1-D sequence, got shape {lengths.shape}")
    if total_tokens <= 0:
        raise ValueError("total_tokens must be positive")
    if np.any(lengths <= 0) or np.any(lengths > total_tokens):
        raise ValueError(
            f"every valid length must be in [1, {total_tokens}], got {lengths.tolist()}"
        )
    valid = np.arange(total_tokens)[None, :] < lengths[:, None]
    mask = np.where(valid, np.float32(0.0), np.float32(-np.inf))
    return mask[:, None, None, :]


def causal_mask(total_tokens: int) -> np.ndarray:
    """Additive causal (autoregressive) attention mask.

    Returns a ``(total_tokens, total_tokens)`` float32 mask — ``0.0`` on and
    below the diagonal, ``-inf`` strictly above — which numpy broadcasting
    aligns as per-query ``(seq_q, seq_k)`` onto ``(batch, heads, seq_q,
    seq_k)`` attention scores.  Query position ``i`` attends to keys ``0..i``
    only; in particular every query row keeps at least itself, so a causal
    mask can never produce the all-zero fully-masked softmax sentinel.
    """
    if total_tokens <= 0:
        raise ValueError("total_tokens must be positive")
    return np.triu(np.full((total_tokens, total_tokens), -np.inf, dtype=np.float32), k=1)


def mask_is_causal(mask: np.ndarray) -> bool:
    """Whether ``mask`` is exactly the mask :func:`causal_mask` builds.

    Recognises the ``(seq, seq)`` 2-D layout and its ``(1, 1, seq, seq)``
    4-D broadcast-equivalent: exactly ``0.0`` on and below the diagonal and
    exactly ``-inf`` strictly above it.  The model layers use this to take
    the per-position causal path (decode-shaped true-length execution, the
    bit-exact sibling of KV-cached decoding); anything else — per-batch
    causal variants, finite biases, scattered ``-inf`` — stays on the
    general additive path.
    """
    mask = np.asarray(mask)
    if mask.ndim == 4:
        if mask.shape[0] != 1 or mask.shape[1] != 1:
            return False
        mask = mask[0, 0]
    if mask.ndim != 2 or mask.shape[0] != mask.shape[1] or mask.shape[0] == 0:
        return False
    seq = mask.shape[0]
    lower = np.tril_indices(seq)
    upper = np.triu_indices(seq, k=1)
    return bool(np.all(mask[lower] == 0.0) and np.all(np.isneginf(mask[upper].astype(np.float64))))


def mask_valid_lengths(mask: np.ndarray) -> Optional[np.ndarray]:
    """Per-sequence valid lengths of a right-padding key mask, else ``None``.

    Recognises additive masks of the exact shape :func:`padding_mask`
    emits — ``(batch, 1, 1, seq_k)`` — whose entries are exactly ``0.0``
    (valid) or ``-inf`` (masked) and whose valid region is a non-empty
    *prefix* of the key axis.  Any other mask returns ``None``, telling
    the model layers to use the general masked-computation path instead of
    the grouped bit-exact one.  Lower-rank masks are deliberately *not*
    recognised: numpy broadcasting aligns a 2-D mask as per-query ``(seq_q,
    seq_k)`` and a 3-D mask's leading axis with the *heads* axis of
    ``(batch, heads, seq_q, seq_k)`` scores, so reading their first axis
    as the batch would silently contradict what the additive path computes.
    """
    mask = np.asarray(mask)
    if mask.ndim != 4 or mask.shape[1] != 1 or mask.shape[2] != 1:
        return None
    flat = mask.reshape(mask.shape[0], mask.shape[-1])
    valid = flat == 0.0
    if not np.all(valid | np.isneginf(flat)):
        return None
    lengths = valid.sum(axis=1)
    if np.any(lengths == 0):
        return None
    prefix = np.arange(flat.shape[1])[None, :] < lengths[:, None]
    if not np.array_equal(valid, prefix):
        return None
    return lengths.astype(np.int64)


def resolve_padding_lengths(mask: np.ndarray, hidden: np.ndarray) -> Optional[np.ndarray]:
    """Valid lengths when ``mask`` is a right-padding mask *for* ``hidden``.

    The one shared detection step of the model layers' masked forwards:
    returns :func:`mask_valid_lengths` of ``mask`` when the mask's batch
    axis matches ``hidden``'s and at least one sequence is actually
    padded; returns ``None`` when the mask is not padding-structured *or*
    is all-valid (either way the caller's general additive path applies,
    which for an all-valid mask is bit-identical to no mask at all —
    pinned by tests); and **raises** when a padding mask's key axis
    disagrees with ``hidden``'s sequence axis — numpy slicing would
    otherwise silently clamp the claimed lengths and reinterpret the
    caller's mask instead of failing loudly.
    """
    lengths = mask_valid_lengths(mask)
    if lengths is None:
        return None
    if mask.shape[0] == mask.shape[-1] and np.array_equal(
        lengths, np.arange(1, mask.shape[-1] + 1)
    ):
        # A causal mask reshaped to (seq, 1, 1, seq) is byte-for-byte a
        # right-padding mask for a staircase batch of lengths 1..seq — the
        # two are indistinguishable, and treating the causal one as padding
        # would silently compute per-*sequence* prefixes instead of
        # per-*query* ones.  Refuse loudly rather than misclassify.
        raise ValueError(
            f"mask of shape {np.shape(mask)} is a causal staircase, not a "
            f"right-padding mask; pass causal_mask({mask.shape[-1]}) (2-D) for "
            f"autoregressive attention"
        )
    if lengths.shape[0] != hidden.shape[0]:
        return None
    if np.shape(mask)[-1] != hidden.shape[1]:
        raise ValueError(
            f"right-padding mask covers {np.shape(mask)[-1]} key positions but the "
            f"activations have {hidden.shape[1]} tokens; build the mask with "
            f"padding_mask(lengths, {hidden.shape[1]})"
        )
    if np.all(lengths == hidden.shape[1]):
        return None  # nothing is padded
    return lengths


def grouped_by_length(hidden: np.ndarray, lengths: np.ndarray, fn) -> np.ndarray:
    """Apply ``fn`` to equal-valid-length groups of a right-padded batch.

    The scatter step of the grouped bit-exact path: sequences sharing a
    valid length are sliced to a contiguous ``(group, length, hidden)``
    block, transformed by ``fn`` (which must preserve the block shape
    except possibly the feature axis), and written back into the padded
    layout; padded rows of the result stay zero.
    """
    out = np.zeros_like(hidden)
    for t in np.unique(lengths):
        idx = np.flatnonzero(lengths == t)
        out[idx, :t] = fn(np.ascontiguousarray(hidden[idx, :t]))
    return out
