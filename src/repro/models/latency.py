"""End-to-end inference latency model (Figure 15).

The paper's end-to-end study times the inference of BERT(-large),
GPT-2-large and a GPT-3 encoder, breaking the latency into four categories:
weight **GEMMs** (the ones sparsification converts into SpMMs), attention
**matmul** (the batched ``QKᵀ`` and ``PV`` products, which stay dense),
**softmax**, and **others** (LayerNorm, GELU, residuals, bias).  This module
rebuilds that breakdown analytically: every operator of every layer is
priced with the corresponding kernel cost model, and the results are
collected in an :class:`~repro.hardware.trace.ExecutionTrace`.

Because the accounting is analytic — it never materialises activations —
it scales to the GPT-3 configuration exactly as the paper does (one encoder
layer, batch size 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .config import ModelConfig
from ..hardware.memory import TransactionModel, gmem_cycles
from ..hardware.spec import GPUSpec, rtx3090
from ..hardware.trace import ExecutionTrace, KernelExecution
from ..kernels import cublas
from ..kernels.common import GemmProblem
from ..kernels.spatha import Spatha


#: Sustained tensor-core efficiency of the skinny batched attention matmuls
#: (k = head_dim is only 64-128, so the fragments are poorly utilised).
ATTENTION_MATMUL_EFFICIENCY = 0.18
#: Number of memory passes over the attention-score tensor performed by the
#: softmax kernel (max-reduce, exponentiation/normalise, plus the reads of
#: the surrounding scale/mask fusion).
SOFTMAX_MEMORY_PASSES = 3.0
#: Elementwise memory passes charged to the "others" category per encoder
#: layer, expressed in traversals of the (tokens x hidden) activation
#: tensor: two LayerNorms (read+write each), two residual additions, bias
#: additions and the GELU traversal of the 4x-wide FFN activations.
OTHERS_HIDDEN_PASSES = 10.0
OTHERS_INTERMEDIATE_PASSES = 3.0
#: Fixed launch overhead charged per elementwise kernel, microseconds.
ELEMENTWISE_LAUNCH_US = 4.0


@dataclass(frozen=True)
class SparsityPlan:
    """How the encoder's weight GEMMs are sparsified (or not).

    ``None`` n/m means dense execution.  The plan applies to all six weight
    matrices of every layer, which is how the paper runs its end-to-end
    numbers (e.g. ``64:2:8``).
    """

    v: Optional[int] = None
    n: Optional[int] = None
    m: Optional[int] = None

    @property
    def is_sparse(self) -> bool:
        return self.n is not None and self.m is not None

    @property
    def label(self) -> str:
        if not self.is_sparse:
            return "dense"
        return f"{self.v}:{self.n}:{self.m}"


def _elementwise_time_us(n_bytes: float, gpu: GPUSpec, launches: float = 1.0) -> float:
    """Time of a bandwidth-bound elementwise kernel moving ``n_bytes``."""
    cycles = gmem_cycles(n_bytes, gpu, TransactionModel(access_bits=128))
    return gpu.cycles_to_seconds(cycles) * 1e6 + launches * ELEMENTWISE_LAUNCH_US


def model_inference_trace(
    config: ModelConfig,
    batch_size: int,
    seq_len: Optional[int] = None,
    plan: Optional[SparsityPlan] = None,
    num_layers: Optional[int] = None,
    gpu: Optional[GPUSpec] = None,
    spatha: Optional[Spatha] = None,
) -> ExecutionTrace:
    """Build the per-operator latency trace of one inference pass.

    Parameters
    ----------
    config:
        Model architecture.
    batch_size / seq_len:
        Inference batch and sequence length (defaults to the model's
        ``max_seq_len``).
    plan:
        Sparsification plan for the weight GEMMs; ``None`` or a dense plan
        prices them with cuBLAS, a V:N:M plan with Spatha.
    num_layers:
        Number of encoder layers to account (defaults to the full model;
        the paper's GPT-3 row uses 1).
    """
    gpu = gpu or rtx3090()
    plan = plan or SparsityPlan()
    seq = seq_len or config.max_seq_len
    layers = num_layers if num_layers is not None else config.num_layers
    if batch_size <= 0 or seq <= 0 or layers <= 0:
        raise ValueError("batch_size, seq_len and num_layers must be positive")
    tokens = batch_size * seq
    spatha = spatha or Spatha(gpu=gpu)

    trace = ExecutionTrace()

    # ------------------------------------------------------------------
    # Weight GEMMs (the sparsifiable ones)
    # ------------------------------------------------------------------
    for layer_idx in range(layers):
        for gemm in config.gemm_problems(batch_size, seq):
            name = f"encoder.layer.{layer_idx}.{gemm['name']}"
            if plan.is_sparse:
                problem = GemmProblem.from_nm(
                    r=gemm["r"], k=gemm["k"], c=gemm["c"], n=plan.n, m=plan.m, v=plan.v, name=name
                )
                result = spatha.estimate(problem)
            else:
                problem = GemmProblem(r=gemm["r"], k=gemm["k"], c=gemm["c"], name=name)
                result = cublas.estimate_time(problem, gpu=gpu)
            trace.record(
                KernelExecution(
                    kernel=result.kernel,
                    category="gemm",
                    time_us=result.time_us,
                    flops=problem.effective_flops,
                    dense_flops=problem.dense_flops,
                    meta={"layer": name, "plan": plan.label},
                )
            )

        # --------------------------------------------------------------
        # Attention batched matmuls (QK^T and PV) — always dense.
        # --------------------------------------------------------------
        d = config.head_dim
        batches = batch_size * config.num_heads
        for label, (m_, k_, n_) in (
            ("attention.scores", (seq, d, seq)),
            ("attention.context", (seq, seq, d)),
        ):
            problem = GemmProblem(r=m_, k=k_, c=n_ * batches, name=label)
            result = cublas.estimate_time(
                problem, gpu=gpu, config=cublas.CublasConfig(compute_efficiency=ATTENTION_MATMUL_EFFICIENCY)
            )
            trace.record(
                KernelExecution(
                    kernel="cublas_batched_matmul",
                    category="matmul",
                    time_us=result.time_us,
                    flops=problem.dense_flops,
                    dense_flops=problem.dense_flops,
                    meta={"layer": f"encoder.layer.{layer_idx}.{label}"},
                )
            )

        # --------------------------------------------------------------
        # Softmax over the attention scores.
        # --------------------------------------------------------------
        score_elements = batch_size * config.num_heads * seq * seq
        softmax_bytes = score_elements * 2.0 * SOFTMAX_MEMORY_PASSES
        trace.record(
            KernelExecution(
                kernel="softmax",
                category="softmax",
                time_us=_elementwise_time_us(softmax_bytes, gpu, launches=1.0),
                bytes_moved=softmax_bytes,
                meta={"layer": f"encoder.layer.{layer_idx}.softmax"},
            )
        )

        # --------------------------------------------------------------
        # Others: LayerNorm, GELU, residuals, bias additions.
        # --------------------------------------------------------------
        hidden_bytes = tokens * config.hidden_size * 2.0
        inter_bytes = tokens * config.intermediate_size * 2.0
        others_bytes = hidden_bytes * OTHERS_HIDDEN_PASSES + inter_bytes * OTHERS_INTERMEDIATE_PASSES
        trace.record(
            KernelExecution(
                kernel="elementwise",
                category="other",
                time_us=_elementwise_time_us(others_bytes, gpu, launches=6.0),
                bytes_moved=others_bytes,
                meta={"layer": f"encoder.layer.{layer_idx}.others"},
            )
        )

    return trace


def latency_breakdown_ms(trace: ExecutionTrace) -> Dict[str, float]:
    """Per-category latency of a trace in milliseconds (Figure 15's bars)."""
    return {category: time_us / 1e3 for category, time_us in trace.time_by_category().items()}


def gemm_time_reduction(dense_trace: ExecutionTrace, sparse_trace: ExecutionTrace) -> float:
    """Factor by which sparsification reduced the GEMM time (paper: up to 11x)."""
    sparse_gemm = sparse_trace.gemm_time_us()
    if sparse_gemm <= 0:
        raise ValueError("sparse trace has no GEMM time")
    return dense_trace.gemm_time_us() / sparse_gemm


def end_to_end_speedup(dense_trace: ExecutionTrace, sparse_trace: ExecutionTrace) -> float:
    """Total-latency speedup of the sparse model over the dense one."""
    if sparse_trace.total_time_us <= 0:
        raise ValueError("sparse trace has zero total time")
    return dense_trace.total_time_us / sparse_trace.total_time_us
