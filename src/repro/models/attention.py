"""Multi-head attention block (Figure 14).

The MHA of a transformer layer contains four weight GEMMs — the Q, K, V and
output projections — which the paper converts to SpMMs by sparsifying their
weights, plus two batched matmuls (scores ``QKᵀ`` and context ``PV``) and a
softmax that stay dense.  This module implements the functional forward
pass on numpy tensors and reports the per-operator kernel executions the
latency model aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from .config import ModelConfig
from .functional import attention_context, attention_scores, merge_heads, softmax, split_heads
from .layers import DenseLinear, SparseLinear, init_dense_linear

LinearLike = Union[DenseLinear, SparseLinear]


@dataclass
class MultiHeadAttention:
    """Functional multi-head self-attention with pluggable projections."""

    config: ModelConfig
    query: LinearLike
    key: LinearLike
    value: LinearLike
    output: LinearLike

    @classmethod
    def init(cls, config: ModelConfig, seed: int = 0) -> "MultiHeadAttention":
        """Randomly initialised dense MHA for the given configuration."""
        h = config.hidden_size
        return cls(
            config=config,
            query=init_dense_linear(h, h, name="attention.query", seed=seed),
            key=init_dense_linear(h, h, name="attention.key", seed=seed + 1),
            value=init_dense_linear(h, h, name="attention.value", seed=seed + 2),
            output=init_dense_linear(h, h, name="attention.output", seed=seed + 3),
        )

    def projections(self) -> Dict[str, LinearLike]:
        """The four prunable projections, keyed by their layer names."""
        return {
            "attention.query": self.query,
            "attention.key": self.key,
            "attention.value": self.value,
            "attention.output": self.output,
        }

    def replace_projection(self, name: str, layer: LinearLike) -> None:
        """Swap one projection (used by the sparsification pass)."""
        mapping = {
            "attention.query": "query",
            "attention.key": "key",
            "attention.value": "value",
            "attention.output": "output",
        }
        if name not in mapping:
            raise KeyError(f"unknown projection {name!r}")
        setattr(self, mapping[name], layer)

    def forward(self, hidden: np.ndarray, return_probs: bool = False):
        """Self-attention forward pass.

        Parameters
        ----------
        hidden:
            ``(batch, seq, hidden)`` activations.
        return_probs:
            Also return the attention probabilities (used by tests).
        """
        hidden = np.asarray(hidden, dtype=np.float32)
        if hidden.ndim != 3 or hidden.shape[-1] != self.config.hidden_size:
            raise ValueError(
                f"hidden must have shape (batch, seq, {self.config.hidden_size}), got {hidden.shape}"
            )
        q = split_heads(self.query.forward(hidden), self.config.num_heads)
        k = split_heads(self.key.forward(hidden), self.config.num_heads)
        v = split_heads(self.value.forward(hidden), self.config.num_heads)

        scores = attention_scores(q, k)
        probs = softmax(scores, axis=-1)
        context = merge_heads(attention_context(probs, v))
        out = self.output.forward(context)
        if return_probs:
            return out, probs
        return out

    # ------------------------------------------------------------------
    # Latency accounting helpers (used by models.latency)
    # ------------------------------------------------------------------
    def weight_gemm_layers(self) -> List[LinearLike]:
        """The four projections in execution order."""
        return [self.query, self.key, self.value, self.output]

    def attention_matmul_flops(self, batch_size: int, seq_len: int) -> float:
        """FLOPs of the two batched attention matmuls (QKᵀ and PV)."""
        d = self.config.head_dim
        per_head = 2.0 * seq_len * d * seq_len  # QK^T
        per_head += 2.0 * seq_len * seq_len * d  # P V
        return per_head * self.config.num_heads * batch_size

    def softmax_elements(self, batch_size: int, seq_len: int) -> float:
        """Number of attention-score elements the softmax touches."""
        return float(batch_size * self.config.num_heads * seq_len * seq_len)
