"""Multi-head attention block (Figure 14).

The MHA of a transformer layer contains four weight GEMMs — the Q, K, V and
output projections — which the paper converts to SpMMs by sparsifying their
weights, plus two batched matmuls (scores ``QKᵀ`` and context ``PV``) and a
softmax that stay dense.  This module implements the functional forward
pass on numpy tensors and reports the per-operator kernel executions the
latency model aggregates.

Attention is the only operator in the encoder that mixes information
*across* the tokens of a sequence, so it is the one place padded-bucket
serving has to intervene: :meth:`MultiHeadAttention.forward` accepts an
additive attention mask (``0.0`` valid, ``-inf`` padded) that assigns
padded key positions exactly zero softmax weight.

Exactly-zero weights make the masked forward *mathematically* equal to the
unpadded one, but not automatically *bitwise* equal: BLAS picks its
tile/micro-kernel split from the operand shapes, so growing a GEMM from
``(t, d)`` to a padded ``(S, d)`` can change the summation trees of the
valid rows' dot products (measurably — e.g. single-token sequences take a
GEMV-shaped path, and ``Q Kᵀ`` at some shapes flips low-order bits).  The
masked path therefore derives each sequence's valid length from the mask
and executes the *grouped* computation: sequences of equal valid length
are sliced out of the padded batch and run through the standard unmasked
code at their true shapes, which is bit-for-bit the standalone forward by
the slab-exactness of every operator.

Causal masks get the same treatment with the roles rotated a quarter turn:
under a causal mask every *query* position attends to a different key
count, so the only shape-stable decomposition is per position — exactly
the shape KV-cached decoding executes.  :meth:`MultiHeadAttention.forward`
detects the mask :func:`~repro.models.functional.causal_mask` builds and
runs the per-position path (:meth:`MultiHeadAttention.forward_step` over a
scratch :class:`~repro.models.kv_cache.LayerKV`), which is why cached
decoding is bit-for-bit the full causal recompute: they are literally the
same operations at the same shapes.  Masks without either structure
(ALiBi-style biases, scattered ``-inf``) fall back to a general masked
computation — exact zero weights, no bitwise claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from .config import ModelConfig
from .functional import (
    attention_context,
    attention_scores,
    grouped_by_length,
    mask_is_causal,
    merge_heads,
    resolve_padding_lengths,
    softmax,
    split_heads,
)
from .kv_cache import LayerKV
from .layers import DenseLinear, SparseLinear, init_dense_linear

LinearLike = Union[DenseLinear, SparseLinear]


@dataclass
class MultiHeadAttention:
    """Functional multi-head self-attention with pluggable projections."""

    config: ModelConfig
    query: LinearLike
    key: LinearLike
    value: LinearLike
    output: LinearLike

    @classmethod
    def init(cls, config: ModelConfig, seed: int = 0) -> "MultiHeadAttention":
        """Randomly initialised dense MHA for the given configuration."""
        h = config.hidden_size
        return cls(
            config=config,
            query=init_dense_linear(h, h, name="attention.query", seed=seed),
            key=init_dense_linear(h, h, name="attention.key", seed=seed + 1),
            value=init_dense_linear(h, h, name="attention.value", seed=seed + 2),
            output=init_dense_linear(h, h, name="attention.output", seed=seed + 3),
        )

    def projections(self) -> Dict[str, LinearLike]:
        """The four prunable projections, keyed by their layer names."""
        return {
            "attention.query": self.query,
            "attention.key": self.key,
            "attention.value": self.value,
            "attention.output": self.output,
        }

    def replace_projection(self, name: str, layer: LinearLike) -> None:
        """Swap one projection (used by the sparsification pass)."""
        mapping = {
            "attention.query": "query",
            "attention.key": "key",
            "attention.value": "value",
            "attention.output": "output",
        }
        if name not in mapping:
            raise KeyError(f"unknown projection {name!r}")
        setattr(self, mapping[name], layer)

    def forward(
        self,
        hidden: np.ndarray,
        return_probs: bool = False,
        mask: Optional[np.ndarray] = None,
    ):
        """Self-attention forward pass.

        Parameters
        ----------
        hidden:
            ``(batch, seq, hidden)`` activations.
        return_probs:
            Also return the attention probabilities (used by tests).
        mask:
            Optional additive attention mask broadcastable to the
            ``(batch, heads, seq, seq)`` scores: ``0.0`` keeps a key
            position, ``-inf`` gives it exactly zero softmax weight.  A
            right-padding mask (see
            :func:`~repro.models.functional.padding_mask`) additionally
            guarantees that every valid token's output is bit-for-bit the
            unpadded forward of its sequence (padded rows of the output
            are zero); see the module docstring for why that requires the
            grouped execution path rather than masking alone.
        """
        hidden = np.asarray(hidden, dtype=np.float32)
        if hidden.ndim != 3 or hidden.shape[-1] != self.config.hidden_size:
            raise ValueError(
                f"hidden must have shape (batch, seq, {self.config.hidden_size}), got {hidden.shape}"
            )
        if mask is not None:
            lengths = resolve_padding_lengths(mask, hidden)
            if lengths is not None:
                return self._forward_grouped(hidden, lengths, return_probs)
            if mask_is_causal(mask):
                if np.shape(mask)[-1] != hidden.shape[1]:
                    raise ValueError(
                        f"causal mask covers {np.shape(mask)[-1]} key positions but the "
                        f"activations have {hidden.shape[1]} tokens; build the mask with "
                        f"causal_mask({hidden.shape[1]})"
                    )
                return self._forward_causal(hidden, return_probs)
        q = split_heads(self.query.forward(hidden), self.config.num_heads)
        k = split_heads(self.key.forward(hidden), self.config.num_heads)
        v = split_heads(self.value.forward(hidden), self.config.num_heads)

        scores = attention_scores(q, k)
        probs = softmax(scores, axis=-1, mask=mask)
        context = merge_heads(attention_context(probs, v))
        out = self.output.forward(context)
        if return_probs:
            return out, probs
        return out

    def _forward_grouped(self, hidden: np.ndarray, lengths: np.ndarray, return_probs: bool):
        """Right-padding masked forward via equal-length grouping.

        Sequences sharing a valid length are sliced out of the padded
        batch and run through the standard unmasked forward at their true
        ``(group, length, hidden)`` shape — the bits of each sequence
        forwarded alone, by slab-exactness — then scattered back into the
        padded layout with zeros on the padded rows.  Padded keys thus get
        exactly zero attention weight in the strongest sense: they never
        enter a reduction at all.
        """
        if not return_probs:
            return grouped_by_length(hidden, lengths, self.forward)
        batch, seq, _ = hidden.shape
        probs = np.zeros((batch, self.config.num_heads, seq, seq), dtype=np.float32)

        def forward_capturing_probs(sub):
            t = sub.shape[1]
            sub_out, sub_probs = self.forward(sub, return_probs=True)
            idx = np.flatnonzero(lengths == t)
            for j, b in enumerate(idx):
                probs[b, :, :t, :t] = sub_probs[j]
            return sub_out

        out = grouped_by_length(hidden, lengths, forward_capturing_probs)
        return out, probs

    def forward_step(
        self,
        new_token: np.ndarray,
        kv_cache,
        return_probs: bool = False,
    ):
        """Incremental causal attention for one appended token.

        ``new_token`` is the ``(1, hidden)`` activation of the sequence's
        newest position; ``kv_cache`` is a per-layer KV view exposing
        ``append(k, v) -> (K, V)`` (:class:`~repro.models.kv_cache.LayerKV`
        or a paged layer view).  The token's K/V are projected at their
        true one-row shape, appended to the cache, and the query attends
        over every cached position — no mask needed: the causal row always
        includes at least the token itself, so its softmax row sums to 1,
        never the fully-masked zero sentinel.  Returns the ``(1, hidden)``
        attention output (plus the ``(heads, t)`` probability row with
        ``return_probs``).
        """
        x = np.asarray(new_token, dtype=np.float32)
        if x.ndim == 1:
            x = x[None]
        if x.shape != (1, self.config.hidden_size):
            raise ValueError(
                f"new_token must have shape (1, {self.config.hidden_size}), got {x.shape}"
            )
        h3 = x[None]  # (1, 1, hidden)
        heads = self.config.num_heads
        q = split_heads(self.query.forward(h3), heads)  # (1, heads, 1, d)
        k_new = split_heads(self.key.forward(h3), heads)[0, :, 0, :]  # (heads, d)
        v_new = split_heads(self.value.forward(h3), heads)[0, :, 0, :]
        k_all, v_all = kv_cache.append(k_new, v_new)  # (t, heads, d)
        k4 = k_all.transpose(1, 0, 2)[None]  # (1, heads, t, d)
        v4 = v_all.transpose(1, 0, 2)[None]
        scores = attention_scores(q, k4)  # (1, heads, 1, t)
        probs = softmax(scores, axis=-1)
        context = merge_heads(attention_context(probs, v4))  # (1, 1, hidden)
        out = self.output.forward(context)[0]  # (1, hidden)
        if return_probs:
            return out, probs[0, :, 0, :]
        return out

    def _forward_causal(self, hidden: np.ndarray, return_probs: bool):
        """Causal-mask forward as per-position true-shape execution.

        Each position runs :meth:`forward_step` against a scratch
        :class:`~repro.models.kv_cache.LayerKV` — the identical operations
        (and therefore the identical bits) KV-cached decoding executes,
        minus the cache reuse.  Probabilities scatter into the ``(batch,
        heads, seq, seq)`` layout with exact zeros above the diagonal.
        """
        batch, seq, _ = hidden.shape
        out = np.empty_like(hidden)
        probs = (
            np.zeros((batch, self.config.num_heads, seq, seq), dtype=np.float32)
            if return_probs
            else None
        )
        for b in range(batch):
            kv = LayerKV()
            for t in range(seq):
                step = self.forward_step(hidden[b, t][None], kv, return_probs=return_probs)
                if return_probs:
                    row, row_probs = step
                    probs[b, :, t, : t + 1] = row_probs
                else:
                    row = step
                out[b, t] = row[0]
        if return_probs:
            return out, probs
        return out

    # ------------------------------------------------------------------
    # Latency accounting helpers (used by models.latency)
    # ------------------------------------------------------------------
    def weight_gemm_layers(self) -> List[LinearLike]:
        """The four projections in execution order."""
        return [self.query, self.key, self.value, self.output]

    def attention_matmul_flops(self, batch_size: int, seq_len: int) -> float:
        """FLOPs of the two batched attention matmuls (QKᵀ and PV)."""
        d = self.config.head_dim
        per_head = 2.0 * seq_len * d * seq_len  # QK^T
        per_head += 2.0 * seq_len * seq_len * d  # P V
        return per_head * self.config.num_heads * batch_size

    def softmax_elements(self, batch_size: int, seq_len: int) -> float:
        """Number of attention-score elements the softmax touches."""
        return float(batch_size * self.config.num_heads * seq_len * seq_len)
