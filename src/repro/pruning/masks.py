"""Mask utilities shared by all pruning strategies.

Every pruner in this subpackage produces a boolean *keep mask* of the same
shape as the weight matrix (``True`` = weight survives).  This module
collects the small helpers around those masks: applying them, measuring
achieved sparsity, validating structural constraints and summarising the
result of a pruning run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def validate_weight_matrix(weights: np.ndarray) -> np.ndarray:
    """Canonicalise a weight matrix to a 2-D float64 array.

    Pruning math (especially the second-order saliency scores) is done in
    float64 for numerical robustness; the resulting masks are dtype-free.
    """
    arr = np.asarray(weights)
    if arr.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("weights must be non-empty")
    if not np.issubdtype(arr.dtype, np.number) or np.iscomplexobj(arr):
        raise TypeError("weights must be real-valued numeric")
    return np.ascontiguousarray(arr, dtype=np.float64)


def apply_mask(weights: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Zero out the weights where ``mask`` is False; returns a new array."""
    w = np.asarray(weights)
    m = np.asarray(mask, dtype=bool)
    if w.shape != m.shape:
        raise ValueError(f"mask shape {m.shape} does not match weights shape {w.shape}")
    return np.where(m, w, 0.0).astype(w.dtype, copy=False)


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of pruned (False) entries in a keep mask."""
    m = np.asarray(mask, dtype=bool)
    if m.size == 0:
        raise ValueError("mask must be non-empty")
    return 1.0 - float(np.count_nonzero(m)) / m.size


def mask_density(mask: np.ndarray) -> float:
    """Fraction of kept (True) entries in a keep mask."""
    return 1.0 - mask_sparsity(mask)


def check_mask_nm(mask: np.ndarray, n: int, m: int) -> bool:
    """True when every row-wise group of ``m`` entries keeps at most ``n``."""
    arr = np.asarray(mask, dtype=bool)
    rows, cols = arr.shape
    if cols % m:
        return False
    return bool(np.all(arr.reshape(rows, cols // m, m).sum(axis=2) <= n))


def check_mask_vnm(mask: np.ndarray, v: int, n: int, m: int) -> bool:
    """True when the mask obeys the V:N:M structural constraints."""
    from ..formats.vnm import SELECTED_COLUMNS

    arr = np.asarray(mask, dtype=bool)
    rows, cols = arr.shape
    if rows % v or cols % m:
        return False
    blocks = arr.reshape(rows // v, v, cols // m, m)
    col_used = blocks.any(axis=1)
    if np.any(col_used.sum(axis=2) > SELECTED_COLUMNS):
        return False
    return bool(np.all(blocks.sum(axis=3) <= n))


@dataclass(frozen=True)
class PruningResult:
    """Outcome of one pruning call.

    Attributes
    ----------
    mask:
        Boolean keep mask.
    pruned_weights:
        Weights with the mask applied (same dtype as the input).
    target_sparsity:
        Sparsity the caller asked for (``None`` for purely structural
        patterns such as N:M, where sparsity is implied by the pattern).
    """

    mask: np.ndarray
    pruned_weights: np.ndarray
    target_sparsity: Optional[float] = None

    @property
    def sparsity(self) -> float:
        """Achieved sparsity of the mask."""
        return mask_sparsity(self.mask)

    @property
    def density(self) -> float:
        """Achieved density of the mask."""
        return mask_density(self.mask)

    @property
    def kept(self) -> int:
        """Number of surviving weights."""
        return int(np.count_nonzero(self.mask))

    @property
    def pruned(self) -> int:
        """Number of removed weights."""
        return int(self.mask.size - self.kept)

    def energy(self, original_weights: np.ndarray) -> float:
        """Energy metric of this result relative to the original weights.

        Delegates to :func:`repro.pruning.energy.energy_metric`; provided
        here for convenience because nearly every experiment reports it.
        """
        from .energy import energy_metric

        return energy_metric(original_weights, self.mask)
