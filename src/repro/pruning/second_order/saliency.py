"""Group saliency scores for second-order pruning (Section 6.1).

The saliency of removing a set ``Q`` of weights is

``ρ_Q = ½ (E_Q w*)ᵀ (E_Q F̂⁻¹ E_Qᵀ)⁻¹ E_Q w*``

i.e. the (second-order Taylor) increase in loss caused by zeroing the
weights in ``Q`` and optimally adjusting the survivors.  ``E_Q`` selects
the rows of the identity corresponding to ``Q``, so ``E_Q F̂⁻¹ E_Qᵀ`` is the
``|Q| x |Q|`` sub-matrix of the inverse Fisher.

Two solvers choose which ``M − N`` weights to prune inside each group of
``M`` candidates:

* the exact **m-combinatorial** solver enumerates all ``C(M, N)`` keep sets
  and picks the one with minimal ρ — exponential in M, only practical for
  small M;
* the **pair-wise** solver of the paper evaluates only singleton and pair
  saliencies (``E_Q = [[1,0],[0,1],[1,1]]``) and greedily grows the pruned
  set using those pairwise interactions — linear-ish in M and the default
  for large M.

Both solvers also return the OBS weight update for the surviving weights,
``δw = − F̂⁻¹ E_Qᵀ (E_Q F̂⁻¹ E_Qᵀ)⁻¹ E_Q w*``, which is what lets
second-order pruning retain accuracy at high sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class GroupPruneDecision:
    """Result of solving one group of M candidate weights.

    Attributes
    ----------
    pruned_local:
        Sorted local indices (within the group) of the pruned weights.
    saliency:
        ρ_Q of the chosen pruned set (the modelled loss increase).
    weight_update:
        OBS update to add to the *whole group's* weights; entries of pruned
        weights are set so that the final value is exactly zero.
    """

    pruned_local: Tuple[int, ...]
    saliency: float
    weight_update: np.ndarray


def group_saliency(weights: np.ndarray, fisher_inv: np.ndarray, pruned: Sequence[int]) -> float:
    """ρ_Q for pruning ``pruned`` (local indices) from one weight group."""
    w = np.asarray(weights, dtype=np.float64).ravel()
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    q = np.asarray(sorted(pruned), dtype=np.int64)
    if q.size == 0:
        return 0.0
    if f_inv.shape != (w.size, w.size):
        raise ValueError(f"fisher_inv must be ({w.size}, {w.size}), got {f_inv.shape}")
    if q.min() < 0 or q.max() >= w.size:
        raise IndexError("pruned indices out of range for this group")
    w_q = w[q]
    sub = f_inv[np.ix_(q, q)]
    solve = np.linalg.solve(sub, w_q)
    return float(0.5 * w_q @ solve)


def obs_weight_update(weights: np.ndarray, fisher_inv: np.ndarray, pruned: Sequence[int]) -> np.ndarray:
    """OBS compensation update for the whole group given the pruned set.

    The returned vector ``δw`` satisfies ``(w + δw)[pruned] == 0`` exactly;
    surviving weights move to absorb the loss increase.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    q = np.asarray(sorted(pruned), dtype=np.int64)
    if q.size == 0:
        return np.zeros_like(w)
    w_q = w[q]
    sub = f_inv[np.ix_(q, q)]
    lam = np.linalg.solve(sub, w_q)
    delta = -f_inv[:, q] @ lam
    # Numerical cleanup: the pruned entries must end exactly at zero.
    delta[q] = -w_q
    return delta


def solve_group_combinatorial(
    weights: np.ndarray, fisher_inv: np.ndarray, keep: int
) -> GroupPruneDecision:
    """Exact solver: enumerate all keep-sets of size ``keep`` and minimise ρ_Q.

    ``Q`` is the complement of the keep set.  Cost is ``C(M, keep)`` solves
    of ``(M-keep) x (M-keep)`` systems, so callers should restrict it to
    small groups (M <= ~16), as the paper notes.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    m = w.size
    if not 0 < keep <= m:
        raise ValueError(f"keep must be in (0, {m}], got {keep}")
    best: GroupPruneDecision | None = None
    all_idx = set(range(m))
    for keep_set in combinations(range(m), keep):
        pruned = tuple(sorted(all_idx - set(keep_set)))
        rho = group_saliency(w, fisher_inv, pruned)
        if best is None or rho < best.saliency:
            update = obs_weight_update(w, fisher_inv, pruned)
            best = GroupPruneDecision(pruned_local=pruned, saliency=rho, weight_update=update)
    assert best is not None
    return best


def solve_group_pairwise(
    weights: np.ndarray, fisher_inv: np.ndarray, keep: int
) -> GroupPruneDecision:
    """Pair-wise greedy solver (the paper's scalable relaxation).

    Only singleton saliencies ρ_{i} and pair saliencies ρ_{ij} are
    evaluated (``E_Q = [[1,0],[0,1],[1,1]]`` in the paper's notation).  The
    pruned set is grown greedily: start from the cheapest singleton, then
    repeatedly add the candidate whose *incremental* cost — approximated by
    its singleton saliency plus its pairwise interactions with the already
    pruned weights — is smallest.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    m = w.size
    if not 0 < keep <= m:
        raise ValueError(f"keep must be in (0, {m}], got {keep}")
    n_prune = m - keep
    if n_prune == 0:
        return GroupPruneDecision(pruned_local=(), saliency=0.0, weight_update=np.zeros(m))

    # Singleton saliencies: rho_i = 0.5 * w_i^2 / (F^-1)_ii
    diag = np.clip(np.diag(f_inv), 1e-18, None)
    rho_single = 0.5 * w**2 / diag

    # Pairwise interaction term: rho_ij - rho_i - rho_j, computed from the
    # closed-form 2x2 solve.
    interaction = np.zeros((m, m))
    for i in range(m):
        for j in range(i + 1, m):
            sub = f_inv[np.ix_([i, j], [i, j])]
            wq = w[[i, j]]
            rho_ij = 0.5 * wq @ np.linalg.solve(sub, wq)
            interaction[i, j] = interaction[j, i] = rho_ij - rho_single[i] - rho_single[j]

    pruned: List[int] = [int(np.argmin(rho_single))]
    while len(pruned) < n_prune:
        best_idx, best_cost = -1, np.inf
        for cand in range(m):
            if cand in pruned:
                continue
            cost = rho_single[cand] + sum(interaction[cand, p] for p in pruned)
            if cost < best_cost:
                best_cost, best_idx = cost, cand
        pruned.append(best_idx)

    pruned_t = tuple(sorted(pruned))
    rho = group_saliency(w, f_inv, pruned_t)
    update = obs_weight_update(w, f_inv, pruned_t)
    return GroupPruneDecision(pruned_local=pruned_t, saliency=rho, weight_update=update)


def solve_group(
    weights: np.ndarray,
    fisher_inv: np.ndarray,
    keep: int,
    method: str = "auto",
    combinatorial_limit: int = 12,
) -> GroupPruneDecision:
    """Dispatch to the combinatorial or pair-wise solver.

    ``method='auto'`` (the paper's "dynamically selecting" policy) uses the
    exact solver when the group is small enough (``M <= combinatorial_limit``)
    and the pair-wise relaxation otherwise.
    """
    m = np.asarray(weights).size
    if method == "auto":
        method = "combinatorial" if m <= combinatorial_limit else "pairwise"
    if method == "combinatorial":
        return solve_group_combinatorial(weights, fisher_inv, keep)
    if method == "pairwise":
        return solve_group_pairwise(weights, fisher_inv, keep)
    raise ValueError(f"unknown method {method!r}; use 'combinatorial', 'pairwise' or 'auto'")


# ----------------------------------------------------------------------
# Batched solvers (the vectorized execution engine)
#
# The per-group functions above stay as the semantic reference; the pruners
# call the batched variants below, which solve *all* groups of a layer with
# stacked linear algebra and no Python loop over groups.  Pattern
# enumeration order and greedy tie-breaking exactly mirror the per-group
# solvers, so both paths select the same pruned sets on non-degenerate
# inputs.
# ----------------------------------------------------------------------


def batched_obs_updates(
    weights: np.ndarray, fisher_inv: np.ndarray, pruned_sets: np.ndarray
) -> np.ndarray:
    """OBS compensation updates for many groups at once.

    Parameters
    ----------
    weights:
        ``(G, M)`` group weights.
    fisher_inv:
        ``(G, M, M)`` inverse-Fisher sub-matrices of the groups.
    pruned_sets:
        ``(G, P)`` sorted local indices of the pruned weights per group.

    Returns
    -------
    np.ndarray
        ``(G, M)`` updates; pruned entries end exactly at ``-w``.
    """
    w = np.asarray(weights, dtype=np.float64)
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    pruned_sets = np.asarray(pruned_sets, dtype=np.int64)
    num_groups, m = w.shape
    updates = np.zeros((num_groups, m))
    if pruned_sets.size == 0:
        return updates
    # Groups sharing a pruned pattern are solved together: one batched
    # solve per distinct pattern (at most C(M, P) patterns, usually far
    # fewer are actually selected).
    uniq, inverse = np.unique(pruned_sets, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    for u, q in enumerate(uniq):
        sel = inverse == u
        wq = w[sel][:, q]
        sub = f_inv[sel][:, q[:, None], q[None, :]]
        lam = np.linalg.solve(sub, wq[..., None])[..., 0]
        delta = -np.matmul(f_inv[sel][:, :, q], lam[..., None])[..., 0]
        delta[:, q] = -wq  # numerical cleanup: pruned entries end at zero
        updates[sel] = delta
    return updates


def solve_groups_combinatorial(
    weights: np.ndarray, fisher_inv: np.ndarray, keep: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched exact solver: all groups, all ``C(M, keep)`` patterns at once.

    Returns ``(pruned_sets, updates)`` with shapes ``(G, M-keep)`` (sorted
    local indices) and ``(G, M)``.  For every candidate pattern the
    saliencies of all groups are evaluated with one stacked solve; the
    argmin over patterns reproduces the first-strict-minimum tie-breaking
    of :func:`solve_group_combinatorial`.
    """
    w = np.asarray(weights, dtype=np.float64)
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    num_groups, m = w.shape
    if not 0 < keep <= m:
        raise ValueError(f"keep must be in (0, {m}], got {keep}")
    if f_inv.shape != (num_groups, m, m):
        raise ValueError(f"fisher_inv must be ({num_groups}, {m}, {m}), got {f_inv.shape}")
    n_prune = m - keep
    if n_prune == 0:
        return np.zeros((num_groups, 0), dtype=np.int64), np.zeros((num_groups, m))
    all_idx = set(range(m))
    patterns = [
        tuple(sorted(all_idx - set(keep_set))) for keep_set in combinations(range(m), keep)
    ]
    rho = np.empty((len(patterns), num_groups))
    for i, q in enumerate(patterns):
        qa = np.asarray(q, dtype=np.int64)
        wq = w[:, qa]
        sub = f_inv[:, qa[:, None], qa[None, :]]
        lam = np.linalg.solve(sub, wq[..., None])[..., 0]
        rho[i] = 0.5 * np.sum(wq * lam, axis=1)
    best = np.argmin(rho, axis=0)  # first minimum == reference tie-break
    pruned_sets = np.asarray(patterns, dtype=np.int64)[best]
    return pruned_sets, batched_obs_updates(w, f_inv, pruned_sets)


def solve_groups_pairwise(
    weights: np.ndarray, fisher_inv: np.ndarray, keep: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched pair-wise greedy solver (all groups grown in lock-step).

    The singleton saliencies and all ``M(M-1)/2`` pairwise interactions are
    computed with stacked 2x2 solves; the greedy growth then runs once per
    pruned slot (not once per group), selecting the next victim of every
    group simultaneously.  Tie-breaking (first index with the strictly
    smallest incremental cost) matches :func:`solve_group_pairwise`.
    """
    w = np.asarray(weights, dtype=np.float64)
    f_inv = np.asarray(fisher_inv, dtype=np.float64)
    num_groups, m = w.shape
    if not 0 < keep <= m:
        raise ValueError(f"keep must be in (0, {m}], got {keep}")
    if f_inv.shape != (num_groups, m, m):
        raise ValueError(f"fisher_inv must be ({num_groups}, {m}, {m}), got {f_inv.shape}")
    n_prune = m - keep
    if n_prune == 0:
        return np.zeros((num_groups, 0), dtype=np.int64), np.zeros((num_groups, m))

    diag = np.clip(np.diagonal(f_inv, axis1=1, axis2=2), 1e-18, None)
    rho_single = 0.5 * w**2 / diag

    interaction = np.zeros((num_groups, m, m))
    if m > 1:
        pi, pj = np.triu_indices(m, k=1)
        idx = np.stack([pi, pj], axis=1)  # (P, 2)
        sub = f_inv[:, idx[:, :, None], idx[:, None, :]]  # (G, P, 2, 2)
        wq = w[:, idx]  # (G, P, 2)
        lam = np.linalg.solve(sub, wq[..., None])[..., 0]
        rho_pair = 0.5 * np.sum(wq * lam, axis=2)  # (G, P)
        vals = rho_pair - rho_single[:, pi] - rho_single[:, pj]
        interaction[:, pi, pj] = vals
        interaction[:, pj, pi] = vals

    gi = np.arange(num_groups)
    pruned = np.empty((num_groups, n_prune), dtype=np.int64)
    first = np.argmin(rho_single, axis=1)
    pruned[:, 0] = first
    chosen = np.zeros((num_groups, m), dtype=bool)
    chosen[gi, first] = True
    inter_sum = interaction[gi, first].copy()  # (G, M) running pairwise cost
    for step in range(1, n_prune):
        cost = np.where(chosen, np.inf, rho_single + inter_sum)
        nxt = np.argmin(cost, axis=1)
        pruned[:, step] = nxt
        chosen[gi, nxt] = True
        inter_sum += interaction[gi, nxt]

    pruned_sets = np.sort(pruned, axis=1)
    return pruned_sets, batched_obs_updates(w, f_inv, pruned_sets)


def solve_groups(
    weights: np.ndarray,
    fisher_inv: np.ndarray,
    keep: int,
    method: str = "auto",
    combinatorial_limit: int = 12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched dispatch mirroring :func:`solve_group`.

    All groups share one group size, so the auto policy resolves to a
    single solver for the whole batch.
    """
    m = np.asarray(weights).shape[1]
    if method == "auto":
        method = "combinatorial" if m <= combinatorial_limit else "pairwise"
    if method == "combinatorial":
        return solve_groups_combinatorial(weights, fisher_inv, keep)
    if method == "pairwise":
        return solve_groups_pairwise(weights, fisher_inv, keep)
    raise ValueError(f"unknown method {method!r}; use 'combinatorial', 'pairwise' or 'auto'")


def canonical_pair_basis() -> List[List[int]]:
    """The paper's pair-wise canonical basis ``E_Q = [[1,0],[0,1],[1,1]]``."""
    return [[1, 0], [0, 1], [1, 1]]


def canonical_nm_basis(n: int, m: int) -> List[List[int]]:
    """All keep-patterns of an N:M group as 0/1 rows (the paper's 2:4 example).

    For 2:4 this returns the six vectors
    ``[1,1,0,0], [1,0,1,0], [1,0,0,1], [0,1,1,0], [0,1,0,1], [0,0,1,1]``.
    """
    if not 0 < n <= m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    basis = []
    for keep_set in combinations(range(m), n):
        row = [1 if i in keep_set else 0 for i in range(m)]
        basis.append(row)
    return basis
