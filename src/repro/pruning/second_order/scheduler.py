"""Structure-decay gradual pruning scheduler (Section 6.1.1).

One-shot pruning to a high-sparsity N:M pattern degrades the quality of the
second-order Taylor approximation and makes accuracy hard to recover.  The
paper's remedy is a *structure decay* schedule: keep ``M`` fixed and lower
``N`` over ``β`` steps, starting from a large ``N₀ >> N_β`` (low sparsity)
and ending at the target ``N_β``.  Each step re-runs the second-order mask
search on the current (already compensated) weights, so later steps see the
OBS updates of earlier ones — the V:N:M analogue of gradual magnitude
pruning.

The scheduler here produces the sequence of N values and drives the pruner
step by step, recording the intermediate results so the examples and
benchmarks can inspect the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..masks import PruningResult
from .fisher import BlockFisher
from .obs_vnm import SecondOrderConfig, second_order_nm_prune, second_order_vnm_prune


def structure_decay_schedule(n_target: int, m: int, steps: int, n_start: Optional[int] = None) -> List[int]:
    """Sequence of N values decreasing from ``n_start`` to ``n_target``.

    ``n_start`` defaults to ``M // 2`` (50% sparsity, the regime where even
    one-shot pruning is safe).  The intermediate values decrease roughly
    geometrically, are strictly decreasing, and always end exactly at
    ``n_target``.
    """
    if n_target <= 0:
        raise ValueError("n_target must be positive")
    if m < 4:
        raise ValueError("M must be >= 4")
    if n_target > m:
        raise ValueError("n_target cannot exceed M")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if n_start is None:
        n_start = max(m // 2, n_target)
    if n_start < n_target:
        raise ValueError("n_start must be >= n_target")
    if steps == 1 or n_start == n_target:
        return [n_target]
    # Geometric interpolation in N between n_start and n_target.
    ratios = np.linspace(0.0, 1.0, steps)
    values = n_start * (n_target / n_start) ** ratios
    schedule = [int(round(x)) for x in values]
    # Enforce monotone non-increasing and the exact endpoints.
    schedule[0] = min(schedule[0], n_start)
    for i in range(1, steps):
        schedule[i] = min(schedule[i], schedule[i - 1])
    schedule[-1] = n_target
    # Drop consecutive duplicates but keep at least the final step.
    deduped: List[int] = []
    for n in schedule:
        if not deduped or n != deduped[-1]:
            deduped.append(n)
    if deduped[-1] != n_target:
        deduped.append(n_target)
    return deduped


@dataclass
class GradualPruningRun:
    """Trajectory of one structure-decay pruning run."""

    schedule: List[int] = field(default_factory=list)
    results: List[PruningResult] = field(default_factory=list)

    @property
    def final(self) -> PruningResult:
        """Result of the last step (the target sparsity)."""
        if not self.results:
            raise ValueError("the run has no steps")
        return self.results[-1]

    def sparsity_trajectory(self) -> List[float]:
        """Achieved sparsity after every step."""
        return [r.sparsity for r in self.results]


def gradual_vnm_prune(
    weights: np.ndarray,
    v: int,
    n_target: int,
    m: int,
    steps: int = 4,
    n_start: Optional[int] = None,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
    recovery_fn: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
) -> GradualPruningRun:
    """Run structure-decay second-order V:N:M pruning.

    Parameters
    ----------
    recovery_fn:
        Optional callable ``(weights, step_index) -> weights`` applied after
        every step, standing in for the fine-tuning recovery the paper
        performs between steps (the proxy task in
        :mod:`repro.pruning.second_order.proxy` supplies one).
    """
    config = config or SecondOrderConfig()
    schedule = structure_decay_schedule(n_target, m, steps, n_start)
    run = GradualPruningRun(schedule=schedule)
    current = np.asarray(weights, dtype=np.float64).copy()
    for step_idx, n_step in enumerate(schedule):
        if n_step > 4:
            # Early low-sparsity steps with N > 4 cannot (and need not) map
            # onto the 4-column vector-wise structure yet; they are plain
            # row-wise N:M steps, and the V constraint is imposed once N
            # drops into SPTC-compatible territory.
            result = second_order_nm_prune(
                current, n=n_step, m=m, config=config, grads=grads, fisher=fisher
            )
        else:
            result = second_order_vnm_prune(
                current, v=v, n=n_step, m=m, config=config, grads=grads, fisher=fisher
            )
        run.results.append(result)
        current = np.asarray(result.pruned_weights, dtype=np.float64)
        if recovery_fn is not None and step_idx < len(schedule) - 1:
            current = np.asarray(recovery_fn(current, step_idx), dtype=np.float64)
            # Pruned weights stay pruned across recovery (mask is frozen).
            current = np.where(result.mask, current, 0.0)
    return run


def one_shot_vnm_prune(
    weights: np.ndarray,
    v: int,
    n_target: int,
    m: int,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
) -> PruningResult:
    """Single-step second-order V:N:M pruning (the baseline the scheduler beats)."""
    config = config or SecondOrderConfig()
    return second_order_vnm_prune(
        weights, v=v, n=n_target, m=m, config=config, grads=grads, fisher=fisher
    )
