"""Empirical Fisher information estimation (Section 6).

Second-order pruning needs the curvature of the loss around the trained
weights.  Following the paper (and the Optimal BERT Surgeon it builds on),
the Hessian is approximated by the *empirical Fisher matrix*

``F̂ = λ I + (1 / G) Σ_g ∇L_g ∇L_gᵀ``

computed from ``G`` per-sample gradients, with a small dampening ``λ`` for
invertibility.  A full ``d x d`` Fisher is intractable at LLM scale, so the
standard trick is a *block-diagonal* approximation: the weights of a layer
are split into consecutive blocks of size ``B`` and correlations across
blocks are ignored.  The block inverses are then computed directly (the
blocks are small) via the Woodbury identity applied to the low-rank
gradient outer products, exactly as in M-FAC / oBERT.

This module implements that estimator plus a diagonal-only variant and a
synthetic gradient generator used by the Table 2 substitution task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def empirical_fisher_block(grads: np.ndarray, damp: float = 1e-4) -> np.ndarray:
    """Dense empirical Fisher of one weight block.

    Parameters
    ----------
    grads:
        ``(G, B)`` array of per-sample gradients restricted to the block.
    damp:
        Dampening ``λ`` added to the diagonal.
    """
    g = np.asarray(grads, dtype=np.float64)
    if g.ndim != 2:
        raise ValueError("grads must be a 2-D (samples, block_size) array")
    if damp <= 0:
        raise ValueError("damp must be positive")
    num_samples, block = g.shape
    if num_samples == 0:
        raise ValueError("at least one gradient sample is required")
    fisher = (g.T @ g) / num_samples
    fisher[np.diag_indices(block)] += damp
    return fisher


def woodbury_inverse(grads: np.ndarray, damp: float = 1e-4) -> np.ndarray:
    """Inverse of the dampened empirical Fisher via the Woodbury identity.

    ``(λI + (1/G) AᵀA)⁻¹ = (1/λ)(I − Aᵀ(λ G I + A Aᵀ)⁻¹ A)``

    which only requires inverting a ``G x G`` matrix — the formulation that
    makes second-order pruning scalable to LLM dimensionality (M-FAC).
    """
    g = np.asarray(grads, dtype=np.float64)
    if g.ndim != 2:
        raise ValueError("grads must be a 2-D (samples, block_size) array")
    if damp <= 0:
        raise ValueError("damp must be positive")
    num_samples, block = g.shape
    if num_samples == 0:
        raise ValueError("at least one gradient sample is required")
    small = g @ g.T + damp * num_samples * np.eye(num_samples)
    small_inv = np.linalg.inv(small)
    return (np.eye(block) - g.T @ small_inv @ g) / damp


@dataclass
class BlockFisher:
    """Block-diagonal empirical Fisher of one weight matrix.

    The weight matrix ``(rows, cols)`` is flattened row-major and split into
    consecutive blocks of ``block_size`` weights (oBERT uses the same
    row-major blocking).  ``block_size`` must divide ``cols`` so that a
    block never straddles two rows — the inner N:M groups the pruner scores
    always live inside a single block.
    """

    shape: tuple
    block_size: int
    inverse_blocks: np.ndarray  # (num_blocks, block_size, block_size)
    damp: float

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if cols % self.block_size != 0:
            raise ValueError(
                f"block_size ({self.block_size}) must divide the number of columns ({cols})"
            )
        expected_blocks = rows * cols // self.block_size
        if self.inverse_blocks.shape != (expected_blocks, self.block_size, self.block_size):
            raise ValueError(
                "inverse_blocks has the wrong shape: expected "
                f"({expected_blocks}, {self.block_size}, {self.block_size}), got {self.inverse_blocks.shape}"
            )

    @property
    def num_blocks(self) -> int:
        """Number of diagonal blocks."""
        return self.inverse_blocks.shape[0]

    def block_of_weight(self, row: int, col: int) -> int:
        """Index of the diagonal block containing weight ``(row, col)``."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"weight ({row}, {col}) outside matrix of shape {self.shape}")
        flat = row * cols + col
        return flat // self.block_size

    def inverse_submatrix(self, block_idx: int, local_indices: np.ndarray) -> np.ndarray:
        """Sub-matrix of one inverse block restricted to ``local_indices``."""
        idx = np.asarray(local_indices, dtype=np.int64)
        block = self.inverse_blocks[block_idx]
        return block[np.ix_(idx, idx)]

    def diagonal(self) -> np.ndarray:
        """Diagonal of the inverse Fisher, reshaped to the weight shape."""
        rows, cols = self.shape
        return np.diagonal(self.inverse_blocks, axis1=1, axis2=2).reshape(rows, cols)

    def gather_submatrices(self, flat_start: np.ndarray, local_offsets: np.ndarray) -> np.ndarray:
        """Batched :meth:`inverse_submatrix` for many weight groups at once.

        Parameters
        ----------
        flat_start:
            ``(G,)`` flat (row-major) index of the first weight of each
            group.  Every group must lie entirely inside one diagonal block.
        local_offsets:
            ``(G, S)`` offsets of the group's weights relative to
            ``flat_start`` (e.g. ``arange(m)`` for a contiguous N:M group,
            or the selected in-block columns for the V:N:M inner problem).

        Returns
        -------
        np.ndarray
            ``(G, S, S)`` stack of inverse-Fisher sub-matrices.
        """
        flat_start = np.asarray(flat_start, dtype=np.int64)
        local_offsets = np.asarray(local_offsets, dtype=np.int64)
        block_idx = flat_start // self.block_size
        local = (flat_start % self.block_size)[:, None] + local_offsets
        if local.size and (local.min() < 0 or local.max() >= self.block_size):
            raise IndexError("a group straddles a Fisher block boundary")
        return self.inverse_blocks[block_idx[:, None, None], local[:, :, None], local[:, None, :]]


def estimate_block_fisher(
    grads: np.ndarray,
    weight_shape: tuple,
    block_size: int,
    damp: float = 1e-4,
) -> BlockFisher:
    """Estimate a block-diagonal inverse Fisher from per-sample gradients.

    Parameters
    ----------
    grads:
        ``(G, rows*cols)`` per-sample gradients of the layer, flattened
        row-major (the same layout the pruner uses).
    weight_shape:
        ``(rows, cols)`` of the layer.
    block_size:
        Size of the diagonal blocks; must divide ``cols``.

    The Woodbury inverse of every block is computed in batched form — the
    ``G x G`` systems of all blocks are assembled and inverted together in
    bounded-memory chunks, with no Python loop over individual blocks.
    :func:`estimate_block_fisher_reference` retains the per-block loop.
    """
    g = np.asarray(grads, dtype=np.float64)
    rows, cols = weight_shape
    if g.ndim != 2 or g.shape[1] != rows * cols:
        raise ValueError(
            f"grads must have shape (samples, {rows * cols}), got {g.shape}"
        )
    if cols % block_size != 0:
        raise ValueError(f"block_size ({block_size}) must divide cols ({cols})")
    if damp <= 0:
        raise ValueError("damp must be positive")
    num_samples = g.shape[0]
    if num_samples == 0:
        raise ValueError("at least one gradient sample is required")
    num_blocks = rows * cols // block_size
    inv_blocks = np.empty((num_blocks, block_size, block_size), dtype=np.float64)
    # (num_blocks, samples, block_size) view of the gradients, processed in
    # chunks so the batched G x G systems stay within a fixed memory budget.
    g_blocks = g.reshape(num_samples, num_blocks, block_size).transpose(1, 0, 2)
    per_block_bytes = 8 * (
        2 * num_samples * num_samples + 3 * num_samples * block_size + block_size * block_size
    )
    chunk = max(1, int((128 * 1024 * 1024) // max(1, per_block_bytes)))
    eye_s = np.eye(num_samples)
    eye_b = np.eye(block_size)
    for lo in range(0, num_blocks, chunk):
        hi = min(lo + chunk, num_blocks)
        gb = np.ascontiguousarray(g_blocks[lo:hi])  # (chunk, samples, block)
        small = gb @ gb.transpose(0, 2, 1) + damp * num_samples * eye_s
        small_inv = np.linalg.inv(small)
        inv_blocks[lo:hi] = (eye_b - (gb.transpose(0, 2, 1) @ small_inv) @ gb) / damp
    return BlockFisher(shape=(rows, cols), block_size=block_size, inverse_blocks=inv_blocks, damp=damp)


def estimate_block_fisher_reference(
    grads: np.ndarray,
    weight_shape: tuple,
    block_size: int,
    damp: float = 1e-4,
) -> BlockFisher:
    """Per-block loop implementation of :func:`estimate_block_fisher`.

    Retained as the equivalence reference for the batched estimator.
    """
    g = np.asarray(grads, dtype=np.float64)
    rows, cols = weight_shape
    if g.ndim != 2 or g.shape[1] != rows * cols:
        raise ValueError(
            f"grads must have shape (samples, {rows * cols}), got {g.shape}"
        )
    if cols % block_size != 0:
        raise ValueError(f"block_size ({block_size}) must divide cols ({cols})")
    num_blocks = rows * cols // block_size
    inv_blocks = np.empty((num_blocks, block_size, block_size), dtype=np.float64)
    for b in range(num_blocks):
        sl = slice(b * block_size, (b + 1) * block_size)
        inv_blocks[b] = woodbury_inverse(g[:, sl], damp=damp)
    return BlockFisher(shape=(rows, cols), block_size=block_size, inverse_blocks=inv_blocks, damp=damp)


def diagonal_fisher(grads: np.ndarray, weight_shape: tuple, damp: float = 1e-4) -> np.ndarray:
    """Diagonal empirical Fisher (inverse not taken), reshaped to the layer.

    Used by the cheap OBD-style column scoring of the V:N:M second-order
    pruner's vector-wise stage.
    """
    g = np.asarray(grads, dtype=np.float64)
    rows, cols = weight_shape
    if g.ndim != 2 or g.shape[1] != rows * cols:
        raise ValueError(f"grads must have shape (samples, {rows * cols}), got {g.shape}")
    diag = (g**2).mean(axis=0) + damp
    return diag.reshape(rows, cols)


def synthetic_gradients(
    weights: np.ndarray,
    num_samples: int = 64,
    noise_scale: float = 0.1,
    correlation_decay: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Generate synthetic per-sample gradients around a trained-like layer.

    The Table 2 substitution (see DESIGN.md) replaces SQuAD fine-tuning
    gradients with a synthetic generator whose statistics mimic what
    second-order pruning relies on: gradient magnitude correlates with
    weight magnitude (well-trained weights sit near a minimum where
    curvature scales with weight scale), plus correlated noise between
    neighbouring weights (token/feature correlation).

    Returns a ``(num_samples, rows*cols)`` float64 array.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("weights must be 2-D")
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if not 0.0 <= correlation_decay < 1.0:
        raise ValueError("correlation_decay must be in [0, 1)")
    rng = np.random.default_rng(seed)
    d = w.size
    scale = np.abs(w).ravel() + noise_scale * np.abs(w).mean()
    base = rng.standard_normal((num_samples, d))
    # First-order autoregressive smoothing introduces correlations between
    # neighbouring weights, giving the Fisher non-trivial off-diagonals.
    if correlation_decay > 0:
        a = correlation_decay
        try:
            from scipy.signal import lfilter
        except ImportError:
            base = _ar1_filter(base, a)
        else:
            base = lfilter([np.sqrt(1.0 - a * a)], [1.0, -a], base, axis=1)
    return base * scale[None, :]


def _ar1_filter(x: np.ndarray, a: float, block: int = 128) -> np.ndarray:
    """AR(1) recursion ``y[i] = sqrt(1-a²)·x[i] + a·y[i-1]`` along axis 1.

    Pure-NumPy fallback for ``scipy.signal.lfilter`` so the synthetic
    gradient generator (and everything downstream: second-order pruning,
    the Table 2 substitution, ``run_bench.py``) degrades gracefully when
    SciPy is absent.  The recursion is unrolled block-wise with the closed
    form ``y[i] = a^(i+1)·carry + Σ_{j<=i} a^(i-j)·b0·x[j]`` — one small
    lower-triangular Toeplitz matmul per block instead of a per-element
    Python loop — which stays numerically stable because the powers of
    ``a`` never exceed the block length.
    """
    b0 = np.sqrt(1.0 - a * a)
    n = x.shape[1]
    idx = np.arange(min(block, n))
    # T[i, j] = a^(i-j) for j <= i (the block's impulse-response matrix).
    # The exponent is clamped to >= 0 before the mask so small decay values
    # cannot overflow on the (discarded) upper triangle.
    lag = np.maximum(idx[:, None] - idx[None, :], 0)
    toeplitz = np.where(idx[:, None] >= idx[None, :], a ** lag, 0.0)
    decay = a ** (idx + 1.0)
    y = np.empty_like(x, dtype=np.float64)
    carry = np.zeros(x.shape[0], dtype=np.float64)
    for lo in range(0, n, block):
        xb = x[:, lo : lo + block]
        width = xb.shape[1]
        yb = b0 * xb @ toeplitz[:width, :width].T + carry[:, None] * decay[None, :width]
        y[:, lo : lo + width] = yb
        carry = yb[:, -1]
    return y
