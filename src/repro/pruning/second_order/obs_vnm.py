"""Second-order pruning tailored to the V:N:M format (Section 6.1).

The full problem — choose, for every ``V x M`` block, the four columns to
keep *and* the N:4 pattern of every row inside them so that the total
second-order loss increase is minimal — is combinatorially intractable at
LLM scale.  The paper adopts the same simplification as the Optimal BERT
Surgeon: correlations between different rows of a block are ignored, so the
problem decomposes into

1. a column-selection step per ``V x M`` block, scored by the sum over the
   block's rows of the (row-local) saliency of the columns, and
2. an independent N:4 (or N:M for ``V = 1``) selection per row-group,
   solved either exactly (m-combinatorial) or with the pair-wise relaxation
   (:mod:`repro.pruning.second_order.saliency`), optionally followed by the
   OBS weight update of the surviving weights.

This module implements both the V:N:M variant and the plain 1:N:M variant
on top of a :class:`~repro.pruning.second_order.fisher.BlockFisher`.

Both pruners are vectorized: every (row, group) — or (row-block, group,
row) for V:N:M — sub-problem is assembled with reshaped block views and
batched gathers from the Fisher inverse, and all groups are solved together
by the stacked solvers in :mod:`repro.pruning.second_order.saliency`.  The
original per-group loops are retained as ``*_reference`` functions and the
tests assert both paths agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..masks import PruningResult, validate_weight_matrix
from ...formats.vnm import SELECTED_COLUMNS, validate_vnm_shape
from .fisher import BlockFisher, estimate_block_fisher, synthetic_gradients
from .saliency import solve_group, solve_groups


@dataclass
class SecondOrderConfig:
    """Configuration of the second-order pruner.

    Attributes
    ----------
    method:
        ``"combinatorial"``, ``"pairwise"`` or ``"auto"`` (paper default:
        pick exact enumeration for small M, pair-wise otherwise).
    combinatorial_limit:
        Largest group size the auto policy still solves exactly.
    apply_update:
        Whether to apply the OBS compensation update to surviving weights.
    fisher_block_size:
        Block size of the block-diagonal Fisher.  ``None`` chooses the
        group size (M) so each N:M group owns exactly one Fisher block.
    damp:
        Fisher dampening.
    num_grad_samples:
        Number of synthetic gradient samples when no gradients are given.
    seed:
        Seed for the synthetic gradient generator.
    """

    method: str = "auto"
    combinatorial_limit: int = 12
    apply_update: bool = True
    fisher_block_size: Optional[int] = None
    damp: float = 1e-4
    num_grad_samples: int = 64
    seed: int = 0


def _resolve_fisher(
    weights: np.ndarray,
    m: int,
    config: SecondOrderConfig,
    grads: Optional[np.ndarray],
    fisher: Optional[BlockFisher],
) -> BlockFisher:
    """Build (or validate) the block Fisher used by the pruner."""
    rows, cols = weights.shape
    block_size = config.fisher_block_size or m
    if cols % block_size != 0:
        raise ValueError(f"fisher block size ({block_size}) must divide cols ({cols})")
    if block_size % m != 0:
        raise ValueError(
            f"fisher block size ({block_size}) must be a multiple of M ({m}) "
            "so every N:M group lies inside a single Fisher block"
        )
    if fisher is not None:
        if fisher.shape != weights.shape:
            raise ValueError("provided fisher has a different shape than the weights")
        return fisher
    if grads is None:
        grads = synthetic_gradients(
            weights, num_samples=config.num_grad_samples, seed=config.seed
        )
    return estimate_block_fisher(grads, weights.shape, block_size=block_size, damp=config.damp)


def second_order_nm_prune(
    weights: np.ndarray,
    n: int = 2,
    m: int = 4,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
) -> PruningResult:
    """Plain 1:N:M second-order pruning (no vector-wise stage).

    Every row-wise group of ``m`` weights is solved independently with the
    configured solver.  With ``config.apply_update`` the OBS compensation
    is applied to the surviving weights of each group.

    All ``rows * cols/M`` groups are gathered and solved in one batched
    pass; :func:`second_order_nm_prune_reference` retains the per-group
    loop.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    if cols % m != 0:
        raise ValueError(f"cols ({cols}) must be divisible by M ({m})")
    config = config or SecondOrderConfig()
    fisher = _resolve_fisher(w, m, config, grads, fisher)

    groups = cols // m
    # Flat start index of every (row, group) sub-problem, in the same
    # (row-major) order the reference loop visits them.
    flat_start = (
        np.arange(rows, dtype=np.int64)[:, None] * cols
        + np.arange(groups, dtype=np.int64)[None, :] * m
    ).ravel()
    w_groups = w.reshape(rows * groups, m)
    f_inv = fisher.gather_submatrices(flat_start, np.arange(m, dtype=np.int64)[None, :])
    pruned_sets, updates = solve_groups(
        w_groups,
        f_inv,
        keep=n,
        method=config.method,
        combinatorial_limit=config.combinatorial_limit,
    )

    mask = np.ones(rows * cols, dtype=bool)
    pruned_flat = flat_start[:, None] + pruned_sets
    mask[pruned_flat.ravel()] = False
    mask = mask.reshape(rows, cols)
    if config.apply_update:
        new_w = (w_groups + updates).reshape(rows, cols).copy()
    else:
        new_w = w.copy()
    new_w[~mask] = 0.0
    return PruningResult(mask=mask, pruned_weights=new_w, target_sparsity=1.0 - n / m)


def second_order_nm_prune_reference(
    weights: np.ndarray,
    n: int = 2,
    m: int = 4,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
) -> PruningResult:
    """Per-group loop implementation of :func:`second_order_nm_prune`.

    Retained as the equivalence reference for the batched pruner (and as
    the baseline of the pruning microbenchmarks).
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    if cols % m != 0:
        raise ValueError(f"cols ({cols}) must be divisible by M ({m})")
    config = config or SecondOrderConfig()
    fisher = _resolve_fisher(w, m, config, grads, fisher)

    mask = np.ones((rows, cols), dtype=bool)
    new_w = w.copy()
    groups = cols // m
    bs = fisher.block_size
    for r in range(rows):
        for g in range(groups):
            c0 = g * m
            block_idx = fisher.block_of_weight(r, c0)
            base = (r * cols + c0) % bs
            local = np.arange(base, base + m)
            f_inv = fisher.inverse_submatrix(block_idx, local)
            decision = solve_group(
                w[r, c0 : c0 + m],
                f_inv,
                keep=n,
                method=config.method,
                combinatorial_limit=config.combinatorial_limit,
            )
            pruned_cols = np.asarray(decision.pruned_local, dtype=np.int64) + c0
            mask[r, pruned_cols] = False
            if config.apply_update:
                new_w[r, c0 : c0 + m] = w[r, c0 : c0 + m] + decision.weight_update
            else:
                new_w[r, pruned_cols] = 0.0
    new_w[~mask] = 0.0
    return PruningResult(mask=mask, pruned_weights=new_w, target_sparsity=1.0 - n / m)


def second_order_vnm_prune(
    weights: np.ndarray,
    v: int,
    n: int = 2,
    m: int = 8,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
) -> PruningResult:
    """V:N:M second-order pruning (Section 6.1).

    Column selection per ``V x M`` block uses the sum over the block's rows
    of the OBD-style per-weight saliency ``½ w² / (F̂⁻¹)_ii`` aggregated per
    column; the inner N:4 problem of every row is then solved with the
    configured group solver restricted to the four selected columns.
    ``v = 1`` falls back to :func:`second_order_nm_prune`.

    The column-selection stage was already batched; the inner N:4 problems
    of all ``R/V * K/M * V`` (row-block, group, row) triples are gathered
    with one ``take_along_axis``-style pass and solved together.
    :func:`second_order_vnm_prune_reference` retains the nested loops.
    """
    if v == 1:
        return second_order_nm_prune(weights, n=n, m=m, config=config, grads=grads, fisher=fisher)

    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    validate_vnm_shape(rows, cols, v, n, m)
    config = config or SecondOrderConfig()
    fisher = _resolve_fisher(w, m, config, grads, fisher)

    inv_diag = fisher.diagonal()  # (rows, cols) diagonal of F^-1
    obd_saliency = 0.5 * w**2 / np.clip(inv_diag, 1e-18, None)

    row_blocks, groups = rows // v, cols // m

    # Vector-wise stage: per (row-block, group) keep the 4 columns whose
    # summed saliency (over the V rows) is largest.
    sal_blocks = obd_saliency.reshape(row_blocks, v, groups, m).sum(axis=1)  # (R/V, K/M, M)
    col_order = np.argsort(-sal_blocks, axis=2, kind="stable")[:, :, :SELECTED_COLUMNS]
    col_order = np.sort(col_order, axis=2)

    # Inner stage, batched: one sub-problem per (row-block, group, row).
    rb_i = np.repeat(np.arange(row_blocks, dtype=np.int64), groups * v)
    g_i = np.tile(np.repeat(np.arange(groups, dtype=np.int64), v), row_blocks)
    r_i = rb_i * v + np.tile(np.arange(v, dtype=np.int64), row_blocks * groups)
    cols_sel = col_order[rb_i, g_i]  # (G, 4) in-block column indices
    abs_cols = cols_sel + (g_i * m)[:, None]
    w_groups = w[r_i[:, None], abs_cols]
    f_inv = fisher.gather_submatrices(r_i * cols + g_i * m, cols_sel)
    pruned_sets, updates = solve_groups(
        w_groups,
        f_inv,
        keep=n,
        method=config.method,
        combinatorial_limit=config.combinatorial_limit,
    )

    flat_cols = r_i[:, None] * cols + abs_cols  # (G, 4) flat weight indices
    kept = np.ones(cols_sel.shape, dtype=bool)
    kept[np.arange(kept.shape[0])[:, None], pruned_sets] = False
    mask = np.zeros(rows * cols, dtype=bool)
    mask[flat_cols[kept]] = True
    mask = mask.reshape(rows, cols)

    new_w = w.copy()
    if config.apply_update:
        new_w.reshape(-1)[flat_cols.ravel()] = (w_groups + updates).ravel()
    new_w[~mask] = 0.0
    return PruningResult(mask=mask, pruned_weights=new_w, target_sparsity=1.0 - n / m)


def second_order_vnm_prune_reference(
    weights: np.ndarray,
    v: int,
    n: int = 2,
    m: int = 8,
    config: Optional[SecondOrderConfig] = None,
    grads: Optional[np.ndarray] = None,
    fisher: Optional[BlockFisher] = None,
) -> PruningResult:
    """Nested-loop implementation of :func:`second_order_vnm_prune`.

    Retained as the equivalence reference for the batched pruner (and as
    the baseline of the pruning microbenchmarks).  ``v = 1`` falls back to
    :func:`second_order_nm_prune_reference`.
    """
    if v == 1:
        return second_order_nm_prune_reference(
            weights, n=n, m=m, config=config, grads=grads, fisher=fisher
        )

    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    validate_vnm_shape(rows, cols, v, n, m)
    config = config or SecondOrderConfig()
    fisher = _resolve_fisher(w, m, config, grads, fisher)

    inv_diag = fisher.diagonal()  # (rows, cols) diagonal of F^-1
    obd_saliency = 0.5 * w**2 / np.clip(inv_diag, 1e-18, None)

    row_blocks, groups = rows // v, cols // m
    mask = np.zeros((rows, cols), dtype=bool)
    new_w = w.copy()

    # Vector-wise stage: per (row-block, group) keep the 4 columns whose
    # summed saliency (over the V rows) is largest.
    sal_blocks = obd_saliency.reshape(row_blocks, v, groups, m).sum(axis=1)  # (R/V, K/M, M)
    col_order = np.argsort(-sal_blocks, axis=2, kind="stable")[:, :, :SELECTED_COLUMNS]
    col_order = np.sort(col_order, axis=2)

    bs = fisher.block_size
    for rb in range(row_blocks):
        for g in range(groups):
            cols_sel = col_order[rb, g]  # 4 in-block column indices
            abs_cols = cols_sel + g * m
            for r_local in range(v):
                r = rb * v + r_local
                c0 = g * m
                block_idx = fisher.block_of_weight(r, c0)
                base = (r * cols + c0) % bs
                local = base + cols_sel
                f_inv = fisher.inverse_submatrix(block_idx, local)
                decision = solve_group(
                    w[r, abs_cols],
                    f_inv,
                    keep=n,
                    method=config.method,
                    combinatorial_limit=config.combinatorial_limit,
                )
                kept_local = sorted(set(range(SELECTED_COLUMNS)) - set(decision.pruned_local))
                mask[r, abs_cols[kept_local]] = True
                if config.apply_update:
                    new_w[r, abs_cols] = w[r, abs_cols] + decision.weight_update
    new_w[~mask] = 0.0
    return PruningResult(mask=mask, pruned_weights=new_w, target_sparsity=1.0 - n / m)
