"""Second-order (OBS/Fisher) pruning for the V:N:M format (paper Section 6)."""

from .fisher import (
    BlockFisher,
    diagonal_fisher,
    empirical_fisher_block,
    estimate_block_fisher,
    synthetic_gradients,
    woodbury_inverse,
)
from .obs_vnm import SecondOrderConfig, second_order_nm_prune, second_order_vnm_prune
from .proxy import DENSE_F1, FLOOR_F1, QuadraticTask, synthesize_trained_layer
from .saliency import (
    GroupPruneDecision,
    canonical_nm_basis,
    canonical_pair_basis,
    group_saliency,
    obs_weight_update,
    solve_group,
    solve_group_combinatorial,
    solve_group_pairwise,
)
from .scheduler import (
    GradualPruningRun,
    gradual_vnm_prune,
    one_shot_vnm_prune,
    structure_decay_schedule,
)

__all__ = [
    "BlockFisher",
    "diagonal_fisher",
    "empirical_fisher_block",
    "estimate_block_fisher",
    "synthetic_gradients",
    "woodbury_inverse",
    "SecondOrderConfig",
    "second_order_nm_prune",
    "second_order_vnm_prune",
    "DENSE_F1",
    "FLOOR_F1",
    "QuadraticTask",
    "synthesize_trained_layer",
    "GroupPruneDecision",
    "canonical_nm_basis",
    "canonical_pair_basis",
    "group_saliency",
    "obs_weight_update",
    "solve_group",
    "solve_group_combinatorial",
    "solve_group_pairwise",
    "GradualPruningRun",
    "gradual_vnm_prune",
    "one_shot_vnm_prune",
    "structure_decay_schedule",
]
