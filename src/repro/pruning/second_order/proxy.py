"""Synthetic fine-tuning task standing in for SQuAD v1.1 (Table 2).

The paper evaluates the second-order pruner by pruning BERT-base's encoder
weights and measuring the SQuAD F1 score after fine-tuning (Table 2).  That
pipeline needs PyTorch, the SQuAD dataset and GPU fine-tuning, none of
which are available here.  The substitution (documented in DESIGN.md) keeps
the part of the pipeline the paper's contribution actually exercises — the
*mask selection under a curvature model* — and replaces the downstream
accuracy measurement with an analytic surrogate:

* a "trained layer" is synthesised with the heavy-tailed weight statistics
  of transformer linear layers (:func:`synthesize_trained_layer`);
* its task loss is modelled as the quadratic form the OBS derivation
  assumes: ``L(w) = L₀ + ½ (w − w*)ᵀ H (w − w*)`` with
  ``H = λ I + (1/G) Σ_g ∇L_g ∇L_gᵀ`` — the *full* (dampened) empirical
  Fisher of the synthetic gradients.  The pruners only see a block-diagonal
  approximation of that matrix, exactly as oBERT does against the real
  curvature;
* the achievable F1 is mapped from the loss increase with a saturating
  curve calibrated so that the dense model scores the paper's 88.43 F1 and
  a fully pruned model collapses toward the no-answer baseline.

Because every pruning policy is evaluated against the *same* surrogate, the
ordering and relative gaps of Table 2 — which is what the experiment is
meant to demonstrate — are preserved, while absolute F1 values are only
calibrated, not measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..masks import PruningResult
from .fisher import synthetic_gradients


#: F1 of the dense BERT-base SQuAD v1.1 model reported in Table 2.
DENSE_F1 = 88.43
#: F1 floor: the score of a collapsed model (majority/no-answer baseline).
FLOOR_F1 = 10.0


def synthesize_trained_layer(
    rows: int = 64,
    cols: int = 256,
    seed: int = 0,
    outlier_fraction: float = 0.02,
    outlier_scale: float = 6.0,
) -> np.ndarray:
    """Generate a weight matrix with transformer-like statistics.

    Trained transformer weight matrices are approximately zero-mean
    Gaussian with a small fraction of large-magnitude outliers concentrated
    in a few columns (the "outlier dimensions" the paper cites when noting
    LLM sensitivity to perturbations).  The synthetic layer reproduces both
    properties so structured pruning policies face the same trade-off they
    face on real checkpoints: formats that must drop whole columns lose the
    outliers' energy.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    if not 0.0 <= outlier_fraction < 1.0:
        raise ValueError("outlier_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    w = rng.normal(0.0, 0.02, size=(rows, cols))
    n_outlier_cols = max(1, int(round(outlier_fraction * cols)))
    outlier_cols = rng.choice(cols, size=n_outlier_cols, replace=False)
    w[:, outlier_cols] *= outlier_scale
    return w


@dataclass
class QuadraticTask:
    """Quadratic surrogate of the fine-tuned task around a trained layer.

    Attributes
    ----------
    weights:
        The trained layer ``w*`` (the quadratic optimum).
    grads:
        Per-sample gradients ``(G, d)`` defining the task curvature and fed
        to the pruner's Fisher estimator.
    damp:
        Dampening ``λ`` of the curvature (keeps it positive definite).
    sensitivity:
        Scale factor mapping loss increase to F1 drop.
    """

    weights: np.ndarray
    grads: np.ndarray
    damp: float
    sensitivity: float

    @classmethod
    def create(
        cls,
        rows: int = 64,
        cols: int = 256,
        num_grad_samples: int = 64,
        seed: int = 0,
        sensitivity: Optional[float] = None,
        correlation_decay: float = 0.5,
        damp: float = 1e-6,
    ) -> "QuadraticTask":
        """Build a task instance with reproducible synthetic data.

        ``correlation_decay`` controls gradient correlations between
        neighbouring weights (zero makes the curvature effectively
        diagonal).
        """
        w = synthesize_trained_layer(rows, cols, seed=seed)
        grads = synthetic_gradients(
            w, num_samples=num_grad_samples, seed=seed + 1, correlation_decay=correlation_decay
        )
        task = cls(weights=w, grads=grads, damp=float(damp), sensitivity=1.0)
        if sensitivity is None:
            # Calibrate so that removing every weight decays most of the way
            # toward the F1 floor (exp(-2) ~ 13% retention).
            full_loss = task.loss_increase(np.zeros_like(w))
            sensitivity = 2.0 / max(full_loss, 1e-12)
        return cls(weights=w, grads=grads, damp=float(damp), sensitivity=float(sensitivity))

    @property
    def hessian_diag(self) -> np.ndarray:
        """Diagonal of the task curvature (λ + mean g²), layer-shaped."""
        return ((self.grads**2).mean(axis=0) + self.damp).reshape(self.weights.shape)

    def loss_increase(self, pruned_weights: np.ndarray) -> float:
        """Quadratic loss increase under the full empirical-Fisher curvature.

        ``½ (λ ‖δ‖² + (1/G) ‖G_mat δ‖²)`` with ``δ = w − w*`` — evaluated
        exactly (the low-rank structure makes this O(G·d)).
        """
        p = np.asarray(pruned_weights, dtype=np.float64)
        if p.shape != self.weights.shape:
            raise ValueError("pruned weights must match the task's layer shape")
        delta = (p - self.weights).ravel()
        projected = self.grads @ delta
        return float(0.5 * (self.damp * delta @ delta + (projected @ projected) / self.grads.shape[0]))

    def f1_score(self, pruned_weights: np.ndarray) -> float:
        """Surrogate SQuAD F1 of a pruned layer.

        A saturating exponential maps loss increase to F1 retention: zero
        increase scores :data:`DENSE_F1`; large increases decay toward
        :data:`FLOOR_F1`.  Small loss increases can score marginally above
        the dense F1 (up to +0.3), mirroring the slight improvements the
        paper observes at 2:8 sparsity (pruning acts as a regulariser).
        """
        increase = self.loss_increase(pruned_weights)
        retention = np.exp(-self.sensitivity * increase)
        regularisation_bonus = 0.3 * np.exp(-(self.sensitivity * increase) * 40.0)
        f1 = FLOOR_F1 + (DENSE_F1 - FLOOR_F1) * retention + regularisation_bonus
        return float(min(f1, DENSE_F1 + 0.5))

    def f1_of_result(self, result: PruningResult) -> float:
        """F1 of a :class:`~repro.pruning.masks.PruningResult`."""
        return self.f1_score(result.pruned_weights)

    def recovery_step(self, weights: np.ndarray, lr: float = 0.5) -> np.ndarray:
        """One step of surrogate fine-tuning toward the quadratic optimum.

        Moves the free (non-zero) weights a fraction ``lr`` of the way back
        toward ``w*``, which is what gradient descent on the quadratic
        surrogate does; masked weights are left untouched (the caller
        re-applies the mask).
        """
        p = np.asarray(weights, dtype=np.float64)
        if p.shape != self.weights.shape:
            raise ValueError("weights must match the task's layer shape")
        if not 0.0 < lr <= 1.0:
            raise ValueError("lr must be in (0, 1]")
        free = p != 0.0
        recovered = p.copy()
        recovered[free] = p[free] + lr * (self.weights[free] - p[free])
        return recovered
