"""Pruning algorithms.

Every selection policy the paper compares is implemented here:

* unstructured magnitude pruning and GMP (:mod:`~repro.pruning.magnitude`),
* vector-wise (column-vector) pruning (:mod:`~repro.pruning.vector_wise`),
* block-wise pruning (:mod:`~repro.pruning.block_wise`),
* row-wise N:M magnitude pruning (:mod:`~repro.pruning.nm`),
* the paper's V:N:M two-stage magnitude pruning (:mod:`~repro.pruning.vnm`),
* the second-order (OBS/Fisher) pruner with the structure-decay scheduler
  (:mod:`~repro.pruning.second_order`), and
* the energy evaluation metric of Section 5 (:mod:`~repro.pruning.energy`).
"""

from .block_wise import block_scores, block_wise_mask, block_wise_prune
from .first_order import (
    first_order_mask,
    first_order_nm_mask,
    first_order_prune,
    first_order_vnm_mask,
    movement_scores,
    platon_scores,
)
from .energy import (
    check_energy_ordering,
    energy_metric,
    energy_study,
    ideal_energy,
    vector_wise_energy,
    vnm_energy,
)
from .magnitude import gmp_prune, gmp_schedule, magnitude_mask, magnitude_prune
from .masks import (
    PruningResult,
    apply_mask,
    check_mask_nm,
    check_mask_vnm,
    mask_density,
    mask_sparsity,
    validate_weight_matrix,
)
from .nm import nm_mask, nm_pattern_for_sparsity, nm_prune
from .vector_wise import columns_per_row_block, vector_scores, vector_wise_mask, vector_wise_prune
from .vnm import pad_to_vnm_shape, select_block_columns, vnm_mask, vnm_prune, vnm_sparsity

__all__ = [
    "block_scores",
    "block_wise_mask",
    "block_wise_prune",
    "first_order_mask",
    "first_order_nm_mask",
    "first_order_prune",
    "first_order_vnm_mask",
    "movement_scores",
    "platon_scores",
    "check_energy_ordering",
    "energy_metric",
    "energy_study",
    "ideal_energy",
    "vector_wise_energy",
    "vnm_energy",
    "gmp_prune",
    "gmp_schedule",
    "magnitude_mask",
    "magnitude_prune",
    "PruningResult",
    "apply_mask",
    "check_mask_nm",
    "check_mask_vnm",
    "mask_density",
    "mask_sparsity",
    "validate_weight_matrix",
    "nm_mask",
    "nm_pattern_for_sparsity",
    "nm_prune",
    "columns_per_row_block",
    "vector_scores",
    "vector_wise_mask",
    "vector_wise_prune",
    "pad_to_vnm_shape",
    "select_block_columns",
    "vnm_mask",
    "vnm_prune",
    "vnm_sparsity",
]
