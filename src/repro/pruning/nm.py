"""Row-wise N:M magnitude pruning.

The plain N:M scheme (Figure 2, scheme 3) keeps the ``N`` largest-magnitude
weights out of every group of ``M`` consecutive weights within a row.  For
2:4 this is the policy NVIDIA recommends for Sparse Tensor Cores; the paper
uses the generalised 1:N:M (``V = 1``) variant as one of the comparison
points in the energy study and in Table 2.
"""

from __future__ import annotations

import numpy as np

from .masks import PruningResult, apply_mask, validate_weight_matrix


def nm_mask(weights: np.ndarray, n: int = 2, m: int = 4) -> np.ndarray:
    """Keep-mask of row-wise N:M magnitude pruning.

    Exactly ``n`` entries survive in every group of ``m`` consecutive
    columns (ties broken toward the lower column index).
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    if cols % m != 0:
        raise ValueError(f"columns ({cols}) must be divisible by M ({m})")
    groups = np.abs(w).reshape(rows, cols // m, m)
    order = np.argsort(-groups, axis=2, kind="stable")
    keep_pos = order[:, :, :n]
    mask = np.zeros_like(groups, dtype=bool)
    np.put_along_axis(mask, keep_pos, True, axis=2)
    return mask.reshape(rows, cols)


def nm_prune(weights: np.ndarray, n: int = 2, m: int = 4) -> PruningResult:
    """Apply N:M magnitude pruning and return the result."""
    mask = nm_mask(weights, n=n, m=m)
    return PruningResult(
        mask=mask,
        pruned_weights=apply_mask(weights, mask),
        target_sparsity=1.0 - n / m,
    )


def nm_pattern_for_sparsity(sparsity: float, n: int = 2, max_m: int = 256) -> tuple[int, int]:
    """Find the (N, M) pair with the given ``n`` closest to a target sparsity.

    The paper parameterises sparsity as ``1 - N/M`` with ``N`` fixed to 2
    (e.g. 80% -> 2:10, 90% -> 2:20, 95% -> 2:40, 98% -> 2:100); this helper
    inverts that mapping.
    """
    if not 0.0 < sparsity < 1.0:
        raise ValueError("sparsity must be strictly between 0 and 1")
    if n <= 0:
        raise ValueError("n must be positive")
    ideal_m = n / (1.0 - sparsity)
    best_m = min(
        range(max(n, 2), max_m + 1),
        key=lambda m: abs((1.0 - n / m) - sparsity),
    )
    # Prefer the exact match when the ideal M is an integer.
    if abs(ideal_m - round(ideal_m)) < 1e-9 and n <= round(ideal_m) <= max_m:
        best_m = int(round(ideal_m))
    return n, best_m
