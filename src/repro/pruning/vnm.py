"""V:N:M magnitude pruning (Figure 2, scheme 4).

The V:N:M pruning procedure combines block-wise partitioning, vector-wise
column selection and row-wise N:M pruning:

1. partition the matrix into blocks of ``V x M`` elements;
2. in each block, keep the four columns with the largest saliency
   (vector-wise stage) — the remaining ``M - 4`` columns are fully pruned;
3. in each row of the four surviving columns, keep the ``N`` largest
   magnitudes (N:4 stage).

The result is a mask that simultaneously realises an arbitrary N:M sparsity
ratio *and* maps onto the hardware's 2:4 support, which is the format-level
contribution of the paper.  The functions here implement the magnitude
variant; the second-order variant (Section 6) lives in
:mod:`repro.pruning.second_order`.
"""

from __future__ import annotations

import numpy as np

from .masks import PruningResult, apply_mask, validate_weight_matrix
from ..formats.vnm import SELECTED_COLUMNS, validate_vnm_shape


def select_block_columns(weights: np.ndarray, v: int, m: int, norm: str = "l1") -> np.ndarray:
    """Columns kept by the vector-wise stage for every ``V x M`` block.

    Returns an int64 array of shape ``(R/V, K/M, 4)`` with the in-block
    indices (ascending) of the four columns with the largest saliency.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    validate_vnm_shape(rows, cols, v, 1, m)
    blocks = w.reshape(rows // v, v, cols // m, m)
    if norm == "l1":
        mass = np.abs(blocks).sum(axis=1)
    elif norm == "l2":
        mass = np.sqrt((blocks**2).sum(axis=1))
    else:
        raise ValueError(f"unknown norm {norm!r}; use 'l1' or 'l2'")
    order = np.argsort(-mass, axis=2, kind="stable")[:, :, :SELECTED_COLUMNS]
    return np.sort(order, axis=2).astype(np.int64)


def vnm_mask(weights: np.ndarray, v: int, n: int = 2, m: int = 8, norm: str = "l1") -> np.ndarray:
    """Keep-mask of V:N:M magnitude pruning.

    Exactly ``n`` weights survive per row per ``m``-column group, and the
    survivors of each ``V x M`` block are confined to four columns.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    validate_vnm_shape(rows, cols, v, n, m)
    row_blocks, groups = rows // v, cols // m
    blocks = w.reshape(row_blocks, v, groups, m)

    col_sel = select_block_columns(w, v, m, norm)  # (R/V, K/M, 4)
    gather_idx = np.broadcast_to(col_sel[:, None, :, :], (row_blocks, v, groups, SELECTED_COLUMNS))
    selected = np.take_along_axis(blocks, gather_idx, axis=3)

    pos_order = np.argsort(-np.abs(selected), axis=3, kind="stable")[:, :, :, :n]
    keep_sel = np.zeros((row_blocks, v, groups, SELECTED_COLUMNS), dtype=bool)
    np.put_along_axis(keep_sel, pos_order, True, axis=3)

    mask_blocks = np.zeros((row_blocks, v, groups, m), dtype=bool)
    np.put_along_axis(mask_blocks, gather_idx, keep_sel, axis=3)
    return mask_blocks.reshape(rows, cols)


def vnm_prune(weights: np.ndarray, v: int, n: int = 2, m: int = 8, norm: str = "l1") -> PruningResult:
    """Apply V:N:M magnitude pruning and return the result."""
    mask = vnm_mask(weights, v=v, n=n, m=m, norm=norm)
    return PruningResult(
        mask=mask,
        pruned_weights=apply_mask(weights, mask),
        target_sparsity=1.0 - n / m,
    )


def vnm_sparsity(n: int, m: int) -> float:
    """Logical sparsity of an N:M pattern (independent of V)."""
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    return 1.0 - n / m


def pad_to_vnm_shape(weights: np.ndarray, v: int, m: int) -> tuple[np.ndarray, tuple[int, int]]:
    """Zero-pad a matrix so its shape is divisible by (V, M).

    Real model layers do not always have dimensions divisible by the block
    shape (e.g. GPT-2's 1600-wide layers with M=48).  Returns the padded
    matrix and the original shape so callers can crop results back.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    pad_r = (-rows) % v
    pad_c = (-cols) % m
    if pad_r == 0 and pad_c == 0:
        return w, (rows, cols)
    padded = np.zeros((rows + pad_r, cols + pad_c), dtype=w.dtype)
    padded[:rows, :cols] = w
    return padded, (rows, cols)
