"""Block-wise (2-D tile) pruning.

Block-wise pruning (Figure 2, scheme 1) removes whole ``v x v`` square
blocks of weights.  It maximises data reuse in caches/registers during the
subsequent SpMM, but the paper points out it is "overly aggressive" —
removing 2-D groups hurts accuracy quickly as sparsity grows, which is what
motivates the intermediate V:N:M design.  It is included as a substrate for
the Blocked-ELL format and for the accuracy/energy comparisons.
"""

from __future__ import annotations

import numpy as np

from .masks import PruningResult, apply_mask, validate_weight_matrix


def block_scores(weights: np.ndarray, block: int, norm: str = "l1") -> np.ndarray:
    """Saliency of every ``block x block`` tile.

    Returns an array of shape ``(rows // block, cols // block)``.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    if block <= 0:
        raise ValueError("block size must be positive")
    if rows % block or cols % block:
        raise ValueError(f"matrix shape {w.shape} must be divisible by the block size {block}")
    tiles = w.reshape(rows // block, block, cols // block, block)
    if norm == "l1":
        return np.abs(tiles).sum(axis=(1, 3))
    if norm == "l2":
        return np.sqrt((tiles**2).sum(axis=(1, 3)))
    raise ValueError(f"unknown norm {norm!r}; use 'l1' or 'l2'")


def block_wise_mask(weights: np.ndarray, sparsity: float, block: int = 16, norm: str = "l1") -> np.ndarray:
    """Keep-mask of block-wise pruning at ``sparsity`` with ``block x block`` tiles."""
    w = validate_weight_matrix(weights)
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    scores = block_scores(w, block, norm)
    n_blocks = scores.size
    n_prune = int(round(sparsity * n_blocks))
    blk_mask = np.ones(n_blocks, dtype=bool)
    if n_prune >= n_blocks:
        blk_mask[:] = False
    elif n_prune > 0:
        prune_idx = np.argpartition(scores.ravel(), n_prune - 1)[:n_prune]
        blk_mask[prune_idx] = False
    blk_mask = blk_mask.reshape(scores.shape)
    mask = np.repeat(np.repeat(blk_mask, block, axis=0), block, axis=1)
    return mask


def block_wise_prune(weights: np.ndarray, sparsity: float, block: int = 16, norm: str = "l1") -> PruningResult:
    """Apply block-wise pruning and return the result."""
    mask = block_wise_mask(weights, sparsity, block=block, norm=norm)
    return PruningResult(mask=mask, pruned_weights=apply_mask(weights, mask), target_sparsity=sparsity)
