"""Unstructured magnitude pruning and gradual magnitude pruning (GMP).

Magnitude pruning removes the weights with the smallest absolute values.
The unstructured variant imposes no constraint on where the survivors live
and therefore serves as the "ideal" selection policy in the paper's energy
study (Figure 11): any structured format can at best match its retained
energy at a given sparsity.

Gradual magnitude pruning (GMP, Gale et al. 2019 / Kurtic & Alistarh 2022)
raises the sparsity over a number of steps following a cubic schedule; the
reproduction includes it both because the paper's background discusses it
and because the structure-decay scheduler of Section 6.1.1 is its V:N:M
analogue.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .masks import PruningResult, apply_mask, validate_weight_matrix


def magnitude_mask(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Keep-mask of unstructured magnitude pruning at ``sparsity``.

    Exactly ``round(sparsity * size)`` weights are removed — the ones with
    the smallest magnitudes (ties broken by flat index order, so the result
    is deterministic).
    """
    w = validate_weight_matrix(weights)
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    n_prune = int(round(sparsity * w.size))
    if n_prune == 0:
        return np.ones(w.shape, dtype=bool)
    if n_prune >= w.size:
        return np.zeros(w.shape, dtype=bool)
    flat = np.abs(w).ravel()
    # argpartition gives the n_prune smallest magnitudes in O(n).
    prune_idx = np.argpartition(flat, n_prune - 1)[:n_prune]
    mask = np.ones(w.size, dtype=bool)
    mask[prune_idx] = False
    return mask.reshape(w.shape)


def magnitude_prune(weights: np.ndarray, sparsity: float) -> PruningResult:
    """Apply unstructured magnitude pruning and return the result."""
    mask = magnitude_mask(weights, sparsity)
    return PruningResult(mask=mask, pruned_weights=apply_mask(weights, mask), target_sparsity=sparsity)


def gmp_schedule(
    target_sparsity: float,
    num_steps: int,
    initial_sparsity: float = 0.0,
    exponent: float = 3.0,
) -> List[float]:
    """Cubic sparsity schedule used by gradual magnitude pruning.

    Step ``t`` (1-based, out of ``num_steps``) prunes to

    ``s_t = s_f + (s_i - s_f) * (1 - t / num_steps) ** exponent``

    so the sparsity ramps quickly at first and flattens near the target,
    which empirically gives fine-tuning time to recover accuracy.
    """
    if not 0.0 <= initial_sparsity <= target_sparsity <= 1.0:
        raise ValueError("need 0 <= initial_sparsity <= target_sparsity <= 1")
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    schedule = []
    for t in range(1, num_steps + 1):
        frac = 1.0 - t / num_steps
        s_t = target_sparsity + (initial_sparsity - target_sparsity) * frac**exponent
        schedule.append(float(s_t))
    return schedule


def gmp_prune(
    weights: np.ndarray,
    target_sparsity: float,
    num_steps: int = 10,
    initial_sparsity: float = 0.0,
) -> List[PruningResult]:
    """Run gradual magnitude pruning, returning the result of every step.

    The mask is monotone: a weight pruned at step ``t`` stays pruned at all
    later steps (as in practical GMP implementations where pruned weights
    are frozen at zero).
    """
    w = validate_weight_matrix(weights)
    schedule = gmp_schedule(target_sparsity, num_steps, initial_sparsity)
    results: List[PruningResult] = []
    current = w.copy()
    cumulative_mask = np.ones(w.shape, dtype=bool)
    for s in schedule:
        step_mask = magnitude_mask(current, s)
        cumulative_mask &= step_mask
        current = apply_mask(w, cumulative_mask)
        results.append(
            PruningResult(mask=cumulative_mask.copy(), pruned_weights=current.copy(), target_sparsity=s)
        )
    return results
