"""The energy evaluation metric of Section 5.

The *energy* of a pruning mask measures how much of the total weight
magnitude survives pruning:

``energy = sum_i |w_i|  (over kept weights)  /  sum_i |w*_i|  (all weights)``

It lies in [0, 1]; higher is better.  Unstructured magnitude pruning is, by
construction, the optimal ("ideal") selection policy for this metric at any
sparsity, so it upper-bounds every structured format.  Figure 11 compares
the ideal policy, the V:N:M format for several ``V`` values and vector-wise
pruning for several vector lengths on a BERT-base weight tensor; this
module provides the metric and the sweep used to regenerate that figure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from .magnitude import magnitude_mask
from .masks import validate_weight_matrix
from .nm import nm_mask, nm_pattern_for_sparsity
from .vector_wise import vector_wise_mask
from .vnm import vnm_mask


def energy_metric(weights: np.ndarray, mask: np.ndarray) -> float:
    """Retained-magnitude fraction of ``mask`` on ``weights`` (0..1)."""
    w = validate_weight_matrix(weights)
    m = np.asarray(mask, dtype=bool)
    if m.shape != w.shape:
        raise ValueError(f"mask shape {m.shape} does not match weights shape {w.shape}")
    total = np.abs(w).sum()
    if total == 0:
        raise ValueError("weight matrix has zero total magnitude")
    return float(np.abs(w[m]).sum() / total)


def ideal_energy(weights: np.ndarray, sparsity: float) -> float:
    """Energy of unstructured magnitude pruning (the upper bound)."""
    return energy_metric(weights, magnitude_mask(weights, sparsity))


def vnm_energy(weights: np.ndarray, v: int, n: int, m: int) -> float:
    """Energy of magnitude V:N:M pruning; ``v=1`` gives the plain N:M case.

    The paper labels the ``V = 1`` series "1:N:M", i.e. ordinary row-wise
    N:M pruning without the vector-wise stage.  Weight matrices whose shape
    is not divisible by (V, M) — e.g. the 768-wide BERT-base layer with
    M = 20 — are zero-padded for the mask search and the padding is cropped
    away before the energy is measured (zero padding carries no energy, so
    the metric is unaffected beyond the slightly smaller final group).
    """
    from .vnm import pad_to_vnm_shape

    w = validate_weight_matrix(weights)
    padded, (rows, cols) = pad_to_vnm_shape(w, v if v > 1 else 1, m)
    if v == 1:
        mask = nm_mask(padded, n=n, m=m)
    else:
        mask = vnm_mask(padded, v=v, n=n, m=m)
    return energy_metric(w, mask[:rows, :cols])


def vector_wise_energy(weights: np.ndarray, sparsity: float, l: int) -> float:
    """Energy of vector-wise pruning with vectors of length ``l``."""
    return energy_metric(weights, vector_wise_mask(weights, sparsity, l=l))


def energy_study(
    weights: np.ndarray,
    sparsities: Sequence[float] = (0.5, 0.6, 0.75, 0.8, 0.9, 0.95),
    v_values: Sequence[int] = (1, 16, 32, 64, 128),
    vw_lengths: Sequence[int] = (4, 8, 16, 32),
    n: int = 2,
) -> Dict[str, List[float]]:
    """Regenerate the data behind Figure 11.

    For each sparsity level the N:M pattern is chosen as the paper does
    (N fixed to 2, M derived from the sparsity: 50% -> 2:4, 60% -> 2:5,
    75% -> 2:8, 80% -> 2:10, 90% -> 2:20, 95% -> 2:40).

    Returns a mapping from series label (``"ideal"``, ``"1:N:M"``,
    ``"64:N:M"``, ``"vw_8"``, ...) to the list of energies, one per
    sparsity level.  Sparsity levels whose N:M block shape does not divide
    the matrix (or whose V does not divide the rows) raise ``ValueError``
    so silent shape mismatches cannot skew the study.
    """
    w = validate_weight_matrix(weights)
    results: Dict[str, List[float]] = {"ideal": []}
    for v in v_values:
        results[f"{v}:N:M"] = []
    for l in vw_lengths:
        results[f"vw_{l}"] = []

    for s in sparsities:
        _, m = nm_pattern_for_sparsity(s, n=n)
        results["ideal"].append(ideal_energy(w, s))
        for v in v_values:
            results[f"{v}:N:M"].append(vnm_energy(w, v=v, n=n, m=m))
        for l in vw_lengths:
            results[f"vw_{l}"].append(vector_wise_energy(w, s, l=l))
    return results


def check_energy_ordering(study: Dict[str, List[float]], atol: float = 1e-9) -> bool:
    """Sanity check used by tests: ideal dominates every structured policy."""
    ideal = study.get("ideal")
    if ideal is None:
        raise KeyError("study must contain an 'ideal' series")
    for label, series in study.items():
        if label == "ideal":
            continue
        if len(series) != len(ideal):
            raise ValueError(f"series {label!r} has a different length than 'ideal'")
        for e_struct, e_ideal in zip(series, ideal):
            if e_struct > e_ideal + atol:
                return False
    return True
