"""Vector-wise (column-vector) pruning.

Vector-wise pruning (Figure 2, scheme 2) groups weights into 1-D vertical
vectors of length ``l`` within a column and prunes whole vectors: the
vectors with the smallest saliency (L1 or L2 mass) are removed until the
target sparsity is reached.  This is the selection policy behind
vectorSparse / CLASP (the ``vw_l`` baselines of Figures 11 and 13) and
behind the vector-wise entries of the BERT accuracy study (Table 2's
``vw_8`` column).

The paper notes that vector lengths above ~8 cost significant accuracy;
the energy study reproduces that effect (longer vectors retain less energy
at a given sparsity).
"""

from __future__ import annotations

import numpy as np

from .masks import PruningResult, apply_mask, validate_weight_matrix


def vector_scores(weights: np.ndarray, l: int, norm: str = "l1") -> np.ndarray:
    """Saliency of every length-``l`` column vector.

    Returns an array of shape ``(rows // l, cols)`` where entry ``(b, c)``
    is the norm of rows ``b*l..(b+1)*l`` of column ``c``.
    """
    w = validate_weight_matrix(weights)
    rows, cols = w.shape
    if l <= 0:
        raise ValueError("vector length l must be positive")
    if rows % l != 0:
        raise ValueError(f"rows ({rows}) must be divisible by the vector length ({l})")
    blocks = w.reshape(rows // l, l, cols)
    if norm == "l1":
        return np.abs(blocks).sum(axis=1)
    if norm == "l2":
        return np.sqrt((blocks**2).sum(axis=1))
    raise ValueError(f"unknown norm {norm!r}; use 'l1' or 'l2'")


def vector_wise_mask(weights: np.ndarray, sparsity: float, l: int = 8, norm: str = "l1") -> np.ndarray:
    """Keep-mask of vector-wise pruning at ``sparsity`` with vectors of length ``l``.

    Whole vectors are kept or dropped, so the achieved sparsity is the
    closest multiple of ``l / size`` to the request (rounded so that the
    achieved sparsity does not exceed the target by more than one vector).
    """
    w = validate_weight_matrix(weights)
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    rows, cols = w.shape
    scores = vector_scores(w, l, norm)  # (rows//l, cols)
    n_vectors = scores.size
    n_prune_vectors = int(round(sparsity * n_vectors))
    vec_mask = np.ones(n_vectors, dtype=bool)
    if n_prune_vectors >= n_vectors:
        vec_mask[:] = False
    elif n_prune_vectors > 0:
        flat = scores.ravel()
        prune_idx = np.argpartition(flat, n_prune_vectors - 1)[:n_prune_vectors]
        vec_mask[prune_idx] = False
    vec_mask = vec_mask.reshape(scores.shape)  # (rows//l, cols)
    return np.repeat(vec_mask, l, axis=0)


def vector_wise_prune(weights: np.ndarray, sparsity: float, l: int = 8, norm: str = "l1") -> PruningResult:
    """Apply vector-wise pruning and return the result."""
    mask = vector_wise_mask(weights, sparsity, l=l, norm=norm)
    return PruningResult(mask=mask, pruned_weights=apply_mask(weights, mask), target_sparsity=sparsity)


def columns_per_row_block(mask: np.ndarray, l: int) -> np.ndarray:
    """Surviving vectors per row block — the load-balance statistic.

    Vector-wise pruning with a global threshold produces a *different*
    number of surviving vectors per row block, which is the source of the
    inter-warp load imbalance the paper discusses in Section 3; this helper
    exposes that distribution for the tests and the CLASP cost model.
    """
    m = np.asarray(mask, dtype=bool)
    rows, cols = m.shape
    if rows % l:
        raise ValueError("rows must be divisible by l")
    vec_kept = m.reshape(rows // l, l, cols).any(axis=1)
    return vec_kept.sum(axis=1)
