"""First-order (gradient-based) pruning criteria.

The paper's background (Section 2.1) splits gradient-based saliency into
first-order methods — movement pruning (Sanh et al.) and PLATON-style
importance scores built from the weight-gradient product — and the
second-order family it extends.  The reproduction includes the first-order
criteria so the pruning subpackage covers the whole taxonomy the paper
discusses and so the V:N:M mask search can be driven by any of them (the
structured stages only need a per-weight saliency score).

All functions accept per-sample gradients of the layer (the same input the
second-order pruner uses) and return either a saliency map or a keep mask.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .magnitude import magnitude_mask
from .masks import PruningResult, apply_mask, validate_weight_matrix
from .nm import nm_mask
from .vnm import vnm_mask


def _mean_gradient(grads: np.ndarray, shape: tuple) -> np.ndarray:
    """Validate per-sample gradients and return their mean, layer-shaped."""
    g = np.asarray(grads, dtype=np.float64)
    rows, cols = shape
    if g.ndim != 2 or g.shape[1] != rows * cols:
        raise ValueError(f"grads must have shape (samples, {rows * cols}), got {g.shape}")
    if g.shape[0] == 0:
        raise ValueError("at least one gradient sample is required")
    return g.mean(axis=0).reshape(rows, cols)


def movement_scores(weights: np.ndarray, grads: np.ndarray) -> np.ndarray:
    """Movement-pruning importance ``S = -w * dL/dw``.

    A weight moving away from zero under gradient descent (negative
    ``w * grad``) is considered important; weights being pushed toward zero
    get low scores.  Higher score = keep.
    """
    w = validate_weight_matrix(weights)
    mean_grad = _mean_gradient(grads, w.shape)
    return -w * mean_grad


def platon_scores(
    weights: np.ndarray,
    grads: np.ndarray,
    uncertainty_weight: float = 1.0,
) -> np.ndarray:
    """PLATON-style importance: |w * grad| plus an uncertainty bonus.

    PLATON combines the magnitude of the first-order Taylor term with the
    *variability* of that term across batches (upper confidence bound) so
    that weights whose importance is noisy are not pruned prematurely.
    """
    w = validate_weight_matrix(weights)
    g = np.asarray(grads, dtype=np.float64)
    rows, cols = w.shape
    if g.ndim != 2 or g.shape[1] != rows * cols:
        raise ValueError(f"grads must have shape (samples, {rows * cols}), got {g.shape}")
    if g.shape[0] == 0:
        raise ValueError("at least one gradient sample is required")
    if uncertainty_weight < 0:
        raise ValueError("uncertainty_weight must be non-negative")
    taylor = np.abs(w.ravel()[None, :] * g)  # (samples, d)
    mean_importance = taylor.mean(axis=0)
    uncertainty = taylor.std(axis=0)
    return (mean_importance + uncertainty_weight * uncertainty).reshape(rows, cols)


def first_order_mask(
    weights: np.ndarray,
    grads: np.ndarray,
    sparsity: float,
    criterion: str = "movement",
) -> np.ndarray:
    """Unstructured keep-mask from a first-order criterion.

    ``criterion`` is ``"movement"`` or ``"platon"``.  The lowest-scoring
    ``sparsity`` fraction of weights is pruned.
    """
    if criterion == "movement":
        scores = movement_scores(weights, grads)
    elif criterion == "platon":
        scores = platon_scores(weights, grads)
    else:
        raise ValueError(f"unknown first-order criterion {criterion!r}")
    # Reuse the magnitude machinery on the (shifted) score map: keeping the
    # largest scores is magnitude pruning on scores offset to be positive.
    shifted = scores - scores.min() + 1e-12
    return magnitude_mask(shifted, sparsity)


def first_order_nm_mask(
    weights: np.ndarray,
    grads: np.ndarray,
    n: int = 2,
    m: int = 4,
    criterion: str = "movement",
) -> np.ndarray:
    """Row-wise N:M mask selected by a first-order criterion."""
    if criterion == "movement":
        scores = movement_scores(weights, grads)
    elif criterion == "platon":
        scores = platon_scores(weights, grads)
    else:
        raise ValueError(f"unknown first-order criterion {criterion!r}")
    shifted = scores - scores.min() + 1e-12
    return nm_mask(shifted, n=n, m=m)


def first_order_vnm_mask(
    weights: np.ndarray,
    grads: np.ndarray,
    v: int,
    n: int = 2,
    m: int = 8,
    criterion: str = "platon",
) -> np.ndarray:
    """V:N:M mask whose column selection and N:4 stage use first-order scores."""
    if criterion == "movement":
        scores = movement_scores(weights, grads)
    elif criterion == "platon":
        scores = platon_scores(weights, grads)
    else:
        raise ValueError(f"unknown first-order criterion {criterion!r}")
    shifted = scores - scores.min() + 1e-12
    return vnm_mask(shifted, v=v, n=n, m=m)


def first_order_prune(
    weights: np.ndarray,
    grads: np.ndarray,
    sparsity: Optional[float] = None,
    v: Optional[int] = None,
    n: Optional[int] = None,
    m: Optional[int] = None,
    criterion: str = "movement",
) -> PruningResult:
    """Convenience wrapper: unstructured, N:M or V:N:M first-order pruning.

    Exactly one of ``sparsity`` (unstructured) or ``(n, m)`` (structured,
    optionally with ``v``) must be provided.
    """
    structured = n is not None and m is not None
    if structured == (sparsity is not None):
        raise ValueError("provide either sparsity (unstructured) or n and m (structured)")
    if structured:
        if v is None or v == 1:
            mask = first_order_nm_mask(weights, grads, n=n, m=m, criterion=criterion)
        else:
            mask = first_order_vnm_mask(weights, grads, v=v, n=n, m=m, criterion=criterion)
        target = 1.0 - n / m
    else:
        mask = first_order_mask(weights, grads, sparsity, criterion=criterion)
        target = sparsity
    return PruningResult(mask=mask, pruned_weights=apply_mask(weights, mask), target_sparsity=target)
