"""repro — reproduction of VENOM: A Vectorized N:M Format for Unleashing
the Power of Sparse Tensor Cores (SC 2023).

The package is organised as the paper is:

* :mod:`repro.hardware` — simulated GPU substrate (RTX 3090 with SPTCs).
* :mod:`repro.formats` — sparse storage formats, including the V:N:M format.
* :mod:`repro.pruning` — magnitude / structured / second-order pruning and
  the energy metric.
* :mod:`repro.kernels` — Spatha and the baseline SpMM/GEMM libraries.
* :mod:`repro.models` — transformer substrate (BERT / GPT-2 / GPT-3).
* :mod:`repro.integration` — STen-style sparsifier/tensor integration.
* :mod:`repro.evaluation` — the experiment harness behind every figure and
  table of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "hardware",
    "formats",
    "pruning",
    "kernels",
    "models",
    "integration",
    "evaluation",
]
