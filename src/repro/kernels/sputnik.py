"""Sputnik baseline: unstructured CSR SpMM for deep learning (SC'20).

Sputnik (Gale et al.) is the reference library for *unstructured* sparse
matrices in DL.  It operates on CSR, uses a one-dimensional tiling scheme
over output rows, and — crucially for the comparison in Figure 13 — does
not use Tensor Cores: its math runs on the regular CUDA cores.  On large
transformer-sized matrices its performance is bounded by the irregular,
per-non-zero gathers of the dense operand and by load imbalance between
rows, which is why the paper observes it only overtakes cuBLAS above ~90%
sparsity and saturates around 3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .common import GemmProblem, KernelResult
from ..formats.csr import CSRMatrix
from ..hardware.memory import TrafficRecord, TransactionModel, matrix_bytes
from ..hardware.occupancy import BlockResources
from ..hardware.roofline import roofline_cost
from ..hardware.spec import GPUSpec, rtx3090


@dataclass(frozen=True)
class SputnikConfig:
    """Modelled kernel parameters of Sputnik's SpMM."""

    #: Rows of the sparse matrix handled per thread block (1-D tiling).
    rows_per_block: int = 4
    #: Output columns handled per thread block.
    tile_c: int = 64
    threads: int = 128
    registers_per_thread: int = 96
    smem_bytes: int = 24 * 1024
    #: Sustained fraction of CUDA-core fp16 throughput; low because the
    #: scalar inner product over irregular columns cannot keep the FMA
    #: pipes saturated.
    compute_efficiency: float = 0.25
    #: Fraction of B-row gathers served by L1/L2 instead of DRAM.  DL weight
    #: matrices have many non-zeros per column, so most of a row's re-reads
    #: hit in cache; the residual misses are what keep Sputnik
    #: bandwidth-bound on LLM-sized operands.
    gather_reuse: float = 0.85
    pipeline_stages: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 <= self.gather_reuse < 1.0:
            raise ValueError("gather_reuse must be in [0, 1)")


def spmm(a_sparse: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Functional CSR SpMM (fp16 operands, fp32 accumulation).

    Vectorized: the whole product runs as one compiled CSR gather/scatter
    kernel (SciPy's ``csr_matmat``) — no Python loop over rows.  When SciPy
    is unavailable the pure-NumPy segmented-reduction path is used instead.
    :func:`spmm_loop_reference` retains the per-row loop; tests assert both
    agree to fp16 accumulation tolerance (the summation order differs, so
    agreement is tolerance-level, not bit-exact).
    """
    if not isinstance(a_sparse, CSRMatrix):
        raise TypeError("sputnik.spmm expects a CSRMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.ncols:
        raise ValueError(f"B must have shape ({a_sparse.ncols}, C), got {b.shape}")
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    rows = a_sparse.shape[0]
    if a_sparse.data.size == 0:
        return np.zeros((rows, b.shape[1]), dtype=np.float32)
    data16 = np.asarray(a_sparse.data, dtype=np.float16).astype(np.float32)
    try:
        from scipy.sparse import csr_matrix
    except ImportError:  # pragma: no cover - scipy ships with the toolchain
        return _spmm_segmented(a_sparse, data16, b16)
    mat = csr_matrix((data16, a_sparse.indices, a_sparse.indptr), shape=a_sparse.shape)
    return np.asarray(mat @ b16, dtype=np.float32)


def _spmm_segmented(a_sparse: CSRMatrix, data16: np.ndarray, b16: np.ndarray) -> np.ndarray:
    """Pure-NumPy fallback: batched gather-multiply + segmented reduction."""
    rows = a_sparse.shape[0]
    out = np.zeros((rows, b16.shape[1]), dtype=np.float32)
    contrib = data16[:, None] * b16[a_sparse.indices]  # (nnz, C)
    starts = a_sparse.indptr[:-1]
    nonempty = a_sparse.indptr[1:] > starts
    # reduceat over the starts of the non-empty rows: consecutive non-empty
    # starts delimit exactly one row's non-zeros (empty rows contribute no
    # elements in between).
    out[nonempty] = np.add.reduceat(contrib, starts[nonempty].astype(np.intp), axis=0)
    return out


def spmm_loop_reference(a_sparse: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Per-row loop CSR SpMM, retained as the equivalence reference."""
    if not isinstance(a_sparse, CSRMatrix):
        raise TypeError("sputnik.spmm expects a CSRMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.ncols:
        raise ValueError(f"B must have shape ({a_sparse.ncols}, C), got {b.shape}")
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    rows = a_sparse.shape[0]
    out = np.zeros((rows, b.shape[1]), dtype=np.float32)
    data16 = np.asarray(a_sparse.data, dtype=np.float16).astype(np.float32)
    for r in range(rows):
        lo, hi = a_sparse.indptr[r], a_sparse.indptr[r + 1]
        if hi > lo:
            out[r] = data16[lo:hi] @ b16[a_sparse.indices[lo:hi]]
    return out


def estimate_time(
    problem: GemmProblem,
    gpu: Optional[GPUSpec] = None,
    config: Optional[SputnikConfig] = None,
    load_imbalance: float = 1.15,
) -> KernelResult:
    """Modelled execution time of Sputnik's SpMM.

    Parameters
    ----------
    load_imbalance:
        Max-over-mean row length of the CSR matrix (>= 1).  Unstructured
        magnitude pruning of transformer layers typically lands around
        1.1-1.3; the factor stretches the compute phase because the slowest
        warp determines the tile time.
    """
    gpu = gpu or rtx3090()
    config = config or SputnikConfig()
    if load_imbalance < 1.0:
        raise ValueError("load_imbalance must be >= 1")

    r, k, c = problem.r, problem.k, problem.c
    density = problem.density
    nnz = r * k * density
    flops = 2.0 * nnz * c

    # Every non-zero gathers one B row segment per output tile; only a
    # fraction of those gathers hit in cache.
    b_gather_bytes = nnz * c * 2.0 * (1.0 - config.gather_reuse)
    traffic = TrafficRecord(
        gmem_read_bytes=nnz * 2.0 + nnz * 4.0 + (r + 1) * 4.0 + b_gather_bytes,
        gmem_write_bytes=matrix_bytes(r, c, problem.precision),
        smem_write_bytes=nnz * 2.0 * max(1.0, c / config.tile_c) * 0.25,
        smem_read_bytes=nnz * 2.0 * max(1.0, c / config.tile_c) * 0.25,
    )

    total_blocks = max(1, -(-r // config.rows_per_block) * -(-c // config.tile_c))
    resources = BlockResources(
        threads=config.threads,
        registers_per_thread=config.registers_per_thread,
        smem_bytes=config.smem_bytes,
    )
    cost = roofline_cost(
        gpu=gpu,
        flops=flops * load_imbalance,
        traffic=traffic,
        resources=resources,
        total_blocks=total_blocks,
        use_tensor_cores=False,
        sparse_tensor_cores=False,
        compute_efficiency=config.compute_efficiency,
        gmem_tx=TransactionModel(access_bits=64, coalesced=False),
        smem_tx=TransactionModel(access_bits=32),
        pipeline_stages=config.pipeline_stages,
    )
    return KernelResult(
        kernel="sputnik_spmm",
        problem=problem,
        cost=cost,
        details={"nnz": nnz, "load_imbalance": load_imbalance},
    )


def run(
    a_sparse: CSRMatrix,
    b: np.ndarray,
    gpu: Optional[GPUSpec] = None,
    config: Optional[SputnikConfig] = None,
    name: str = "",
) -> KernelResult:
    """Functional + performance result for concrete CSR operands."""
    b = np.asarray(b)
    r, k = a_sparse.shape
    sparsity = 1.0 - a_sparse.nnz / float(r * k)
    problem = GemmProblem(r=r, k=k, c=b.shape[1], sparsity=sparsity, name=name)
    result = estimate_time(
        problem, gpu=gpu, config=config, load_imbalance=max(1.0, a_sparse.load_imbalance())
    )
    result.output = spmm(a_sparse, b)
    return result
