"""Shared kernel-level abstractions: GEMM problem description and results.

Every library in this subpackage — the dense cuBLAS baseline, the vendor
2:4 library (cuSparseLt), the third-party sparse libraries (Sputnik, CLASP)
and Spatha itself — answers the same two questions about an
``R x K x C`` GEMM problem (the paper's naming: ``R`` output rows, ``K``
the sparsified inner dimension, ``C`` output columns):

* *functional*: what is the numerical result?  Implemented with numpy on
  the library's native storage format.
* *performance*: how long would the kernel take on the simulated GPU?
  Implemented on top of :mod:`repro.hardware.roofline`.

This module defines :class:`GemmProblem` (the problem description),
:class:`KernelResult` (the combined functional/performance answer), and the
fp16 matmul reference used by all numerical tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..hardware.roofline import KernelCost
from ..hardware.trace import KernelExecution


@dataclass(frozen=True)
class GemmProblem:
    """An ``R x K x C`` (sparse) GEMM problem.

    ``A`` is ``R x K`` (the sparsified operand in SpMM), ``B`` is ``K x C``
    dense, and the output ``C`` matrix is ``R x C``.  ``sparsity`` is the
    logical sparsity of ``A`` (0 for dense GEMM); ``n``/``m``/``v`` record
    the structured pattern when one applies.
    """

    r: int
    k: int
    c: int
    sparsity: float = 0.0
    n: Optional[int] = None
    m: Optional[int] = None
    v: Optional[int] = None
    precision: str = "fp16"
    name: str = ""

    def __post_init__(self) -> None:
        if self.r <= 0 or self.k <= 0 or self.c <= 0:
            raise ValueError(f"GEMM dimensions must be positive, got {self.r}x{self.k}x{self.c}")
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {self.sparsity}")
        if (self.n is None) != (self.m is None):
            raise ValueError("n and m must be given together")
        if self.n is not None and self.m is not None:
            if self.n <= 0 or self.m <= 0 or self.n > self.m:
                raise ValueError(f"invalid N:M pattern {self.n}:{self.m}")

    @property
    def dense_flops(self) -> float:
        """FLOPs of the dense GEMM (2 * R * K * C)."""
        return 2.0 * self.r * self.k * self.c

    @property
    def effective_flops(self) -> float:
        """FLOPs actually required after removing the pruned weights."""
        return self.dense_flops * (1.0 - self.sparsity)

    @property
    def density(self) -> float:
        """Density of the sparse operand."""
        return 1.0 - self.sparsity

    def with_sparsity(self, sparsity: float, n: Optional[int] = None, m: Optional[int] = None,
                      v: Optional[int] = None) -> "GemmProblem":
        """Copy of this problem with a different sparsity/pattern."""
        return GemmProblem(
            r=self.r, k=self.k, c=self.c, sparsity=sparsity, n=n, m=m, v=v,
            precision=self.precision, name=self.name,
        )

    @classmethod
    def from_nm(cls, r: int, k: int, c: int, n: int, m: int, v: Optional[int] = None,
                name: str = "") -> "GemmProblem":
        """Problem whose sparsity is implied by an N:M pattern."""
        if n <= 0 or m <= 0 or n > m:
            raise ValueError(f"invalid N:M pattern {n}:{m}")
        return cls(r=r, k=k, c=c, sparsity=1.0 - n / m, n=n, m=m, v=v, name=name)


@dataclass
class KernelResult:
    """Combined functional + performance result of one kernel invocation."""

    kernel: str
    problem: GemmProblem
    cost: KernelCost
    output: Optional[np.ndarray] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def time_us(self) -> float:
        """Modelled execution time in microseconds."""
        return self.cost.time_us()

    @property
    def time_ms(self) -> float:
        """Modelled execution time in milliseconds."""
        return self.cost.time_ms()

    @property
    def tflops_effective(self) -> float:
        """TFLOP/s counting only the arithmetic actually performed."""
        return self.cost.tflops(self.problem.effective_flops)

    @property
    def tflops_dense_equivalent(self) -> float:
        """TFLOP/s counting the dense-equivalent arithmetic.

        This is the metric the paper's Figure 12 plots: the sparse kernels
        are credited with the full ``2*R*K*C`` FLOPs, so a 2x faster sparse
        kernel shows twice the dense TFLOP/s.
        """
        return self.cost.tflops(self.problem.dense_flops)

    def speedup_over(self, baseline: "KernelResult") -> float:
        """Speedup of this kernel relative to another result on any problem
        with the same dense dimensions."""
        if (self.problem.r, self.problem.k, self.problem.c) != (
            baseline.problem.r,
            baseline.problem.k,
            baseline.problem.c,
        ):
            raise ValueError("speedup requires results on the same R x K x C problem")
        if self.time_us <= 0:
            raise ValueError("cannot compute speedup of a zero-time result")
        return baseline.time_us / self.time_us

    def as_execution(self, category: str = "gemm") -> KernelExecution:
        """Convert to a trace record for end-to-end latency accounting.

        The modelled scalars are memoized on the result: the serving
        engines convert the same (dispatcher-cached) result once per
        micro-batch, and the cost-model property chain is pure.  Each call
        still returns a fresh record with a fresh ``meta`` dict, so
        callers may annotate it freely.
        """
        scalars = getattr(self, "_exec_scalars", None)
        if scalars is None:
            scalars = (
                self.time_us,
                self.problem.effective_flops,
                self.problem.dense_flops,
                self.cost.gmem_cycles * self.cost.gpu.gmem_bytes_per_cycle,
            )
            self._exec_scalars = scalars
        return KernelExecution(
            kernel=self.kernel,
            category=category,
            time_us=scalars[0],
            flops=scalars[1],
            dense_flops=scalars[2],
            bytes_moved=scalars[3],
            meta=dict(self.details),
        )


def reference_matmul_fp16(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference half-precision GEMM: fp16 operands, fp32 accumulation.

    This mirrors the numerics of tensor-core MMA instructions and is the
    ground truth every functional kernel is tested against.
    """
    a16 = np.asarray(a, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    if a16.ndim != 2 or b16.ndim != 2:
        raise ValueError("reference_matmul_fp16 expects 2-D operands")
    if a16.shape[1] != b16.shape[0]:
        raise ValueError(f"incompatible shapes {a16.shape} @ {b16.shape}")
    return a16 @ b16


def reference_matmul_fp16_batched(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """:func:`reference_matmul_fp16` broadcast over leading batch dims.

    Same numerics — fp16-rounded operands, fp32 accumulation — with
    ``np.matmul`` broadcasting, so stacked activations run one GEMM per
    slab.  Slab-exactness (slab ``i`` of a batch produces the bits of the
    same operands multiplied alone) is what lets model-level serving batch
    dense layers and stay bit-identical to per-request execution; keeping
    this next to the 2-D reference keeps one definition of the fp16 GEMM
    numerics.
    """
    a16 = np.asarray(a, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    if a16.ndim < 1 or b16.ndim < 2:
        raise ValueError("reference_matmul_fp16_batched expects matmul-compatible operands")
    if a16.shape[-1] != b16.shape[-2]:
        raise ValueError(f"incompatible shapes {a16.shape} @ {b16.shape}")
    return np.matmul(a16, b16)
