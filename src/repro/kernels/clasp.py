"""CLASP / vectorSparse baseline: column-vector sparse SpMM on Tensor Cores.

vectorSparse (Chen et al., SC'21) feeds Tensor Cores with semi-structured
sparsity by storing dense vertical vectors of length ``l`` (the CVSE format
of :mod:`repro.formats.cvse`); CLASP (Castro et al., PACT'22) extends the
same scheme to Ampere.  These are the ``vw_l`` baselines of Figure 13.

Performance characteristics reproduced by the model:

* math runs on dense Tensor Cores (not SPTCs), over the *kept* vectors
  only, but with reduced efficiency because the vector granularity (l <= 8)
  produces small, partially filled mma fragments;
* every kept vector requires an indexed gather of the corresponding B row,
  so the memory phase scales with the kept fraction but with worse
  transaction efficiency than a dense streaming kernel;
* row-block load imbalance (different numbers of surviving vectors per
  block) stretches the compute phase.

Together these give the behaviour the paper reports: clearly better than
Sputnik, only beating cuBLAS above ~85-90% sparsity on LLM-sized matrices,
and topping out around 3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .common import GemmProblem, KernelResult
from ..formats.cvse import CVSEMatrix
from ..hardware.memory import TrafficRecord, TransactionModel, matrix_bytes
from ..hardware.occupancy import BlockResources
from ..hardware.roofline import roofline_cost
from ..hardware.spec import GPUSpec, rtx3090


@dataclass(frozen=True)
class ClaspConfig:
    """Modelled kernel parameters of the CLASP SpMM."""

    #: Column-vector length of the format (2, 4 or 8 in the paper).
    vector_length: int = 8
    #: Output columns per thread block.
    tile_c: int = 64
    threads: int = 128
    registers_per_thread: int = 128
    smem_bytes: int = 48 * 1024
    #: Sustained fraction of the *dense* tensor-core peak; low because the
    #: vector granularity under-fills mma fragments.
    compute_efficiency: float = 0.18
    #: Fraction of B gathers served by cache.
    gather_reuse: float = 0.4
    pipeline_stages: int = 2

    def __post_init__(self) -> None:
        if self.vector_length <= 0:
            raise ValueError("vector_length must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 <= self.gather_reuse < 1.0:
            raise ValueError("gather_reuse must be in [0, 1)")


def spmm(a_sparse: CVSEMatrix, b: np.ndarray) -> np.ndarray:
    """Functional CVSE SpMM (fp16 operands, fp32 accumulation)."""
    if not isinstance(a_sparse, CVSEMatrix):
        raise TypeError("clasp.spmm expects a CVSEMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.ncols_total:
        raise ValueError(f"B must have shape ({a_sparse.ncols_total}, C), got {b.shape}")
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    data16 = np.asarray(a_sparse.data, dtype=np.float16).astype(np.float32)
    out = np.zeros((a_sparse.nrows, b.shape[1]), dtype=np.float32)
    l = a_sparse.l
    n_blocks = a_sparse.nrows // l
    for blk in range(n_blocks):
        lo, hi = a_sparse.vector_ptr[blk], a_sparse.vector_ptr[blk + 1]
        if hi == lo:
            continue
        cols = a_sparse.vector_cols[lo:hi]
        # (l, n_vectors) @ (n_vectors, C): every vector contributes one rank-1
        # update of the l rows it spans.
        out[blk * l : (blk + 1) * l] = data16[lo:hi].T @ b16[cols]
    return out


def estimate_time(
    problem: GemmProblem,
    gpu: Optional[GPUSpec] = None,
    config: Optional[ClaspConfig] = None,
    load_imbalance: float = 1.2,
) -> KernelResult:
    """Modelled execution time of the CLASP SpMM on ``problem``."""
    gpu = gpu or rtx3090()
    config = config or ClaspConfig()
    if load_imbalance < 1.0:
        raise ValueError("load_imbalance must be >= 1")

    r, k, c = problem.r, problem.k, problem.c
    density = problem.density
    # Stored elements include the intra-vector zeros: the kept-vector
    # fraction equals the target density for vector-granular pruning.
    stored = r * k * density
    flops = 2.0 * stored * c

    num_vectors = stored / config.vector_length
    b_gather_bytes = num_vectors * c * 2.0 * (1.0 - config.gather_reuse)
    traffic = TrafficRecord(
        gmem_read_bytes=stored * 2.0 + num_vectors * 4.0 + b_gather_bytes,
        gmem_write_bytes=matrix_bytes(r, c, problem.precision),
        smem_write_bytes=stored * 2.0 * max(1.0, c / config.tile_c) * 0.25,
        smem_read_bytes=stored * 2.0 * max(1.0, c / config.tile_c) * 0.25,
    )

    rows_per_block = max(config.vector_length * 4, 32)
    total_blocks = max(1, -(-r // rows_per_block) * -(-c // config.tile_c))
    resources = BlockResources(
        threads=config.threads,
        registers_per_thread=config.registers_per_thread,
        smem_bytes=config.smem_bytes,
    )
    cost = roofline_cost(
        gpu=gpu,
        flops=flops * load_imbalance,
        traffic=traffic,
        resources=resources,
        total_blocks=total_blocks,
        use_tensor_cores=True,
        sparse_tensor_cores=False,
        compute_efficiency=config.compute_efficiency,
        gmem_tx=TransactionModel(access_bits=64, coalesced=True),
        smem_tx=TransactionModel(access_bits=64),
        pipeline_stages=config.pipeline_stages,
    )
    return KernelResult(
        kernel="clasp_spmm",
        problem=problem,
        cost=cost,
        details={"vector_length": config.vector_length, "stored": stored},
    )


def run(
    a_sparse: CVSEMatrix,
    b: np.ndarray,
    gpu: Optional[GPUSpec] = None,
    config: Optional[ClaspConfig] = None,
    name: str = "",
) -> KernelResult:
    """Functional + performance result for concrete CVSE operands."""
    b = np.asarray(b)
    r, k = a_sparse.shape
    sparsity = 1.0 - a_sparse.nnz / float(r * k)
    config = config or ClaspConfig(vector_length=a_sparse.l)
    problem = GemmProblem(r=r, k=k, c=b.shape[1], sparsity=sparsity, name=name)
    result = estimate_time(
        problem, gpu=gpu, config=config, load_imbalance=max(1.0, a_sparse.load_imbalance())
    )
    result.output = spmm(a_sparse, b)
    return result
