"""Multi-backend SpMM dispatch registry.

The libraries in this subpackage each consume their own storage format —
Spatha's planned V:N:M engine, Sputnik's CSR, cuSPARSE's Blocked-ELL, and
the dense cuBLAS fallback — and until now every call site hard-coded one of
them.  This module adds the missing indirection: a registry mapping
``(available formats, V:N:M pattern, shape regime)`` to the backend the
performance models rank fastest, so integration layers and the serving
engine can say "multiply by this sparse operand" and let the dispatcher
pick the library.

Design rules, enforced by the consistency tests:

* **Transparency** — ``dispatch`` only *selects*; execution calls the exact
  public entry point of the chosen backend (``spatha.spmm``,
  ``sputnik.spmm``, ``cusparse.spmm``, ``cublas.gemm``), so the dispatched
  result is bit-for-bit the result of invoking that backend directly.
* **Cost ranking** — candidates are ranked by the same tuner/perf-model
  estimates the evaluation uses (:class:`~repro.kernels.spatha.tuner.SpathaTuner`
  for Spatha, each baseline's ``estimate_time`` otherwise); the chosen
  backend is the argmin of the modelled times over the supported backends.
* **Memoization** — decisions are cached per problem *signature*
  (format set, V:N:M pattern, R, K, and the power-of-two bucket of C), so
  serving traffic that revisits a shape regime pays the ranking once.
* **Slab-exact batching** — a 3-D ``(B, K, C)`` RHS produces, slab for
  slab, the bits of the corresponding 2-D calls (Spatha's plan guarantees
  this natively; the other backends run one 2-D call per slab).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import cublas, cusparse, sputnik
from .common import GemmProblem, KernelResult
from .cusparse import CusparseBlockedEllConfig
from .spatha import SpmmPlan, UnsupportedTilingError
from .spatha import spmm as spatha_spmm
from .spatha.tuner import SpathaTuner
from ..formats.blocked_ell import BlockedEllMatrix
from ..formats.csr import CSRMatrix
from ..formats.vnm import VNMSparseMatrix
from ..hardware.spec import GPUSpec, rtx3090

#: Canonical format names, used both as operand keys and backend tags.
FORMAT_VNM = "vnm"
FORMAT_CSR = "csr"
FORMAT_BLOCKED_ELL = "blocked_ell"
FORMAT_DENSE = "dense"

#: Cost models require sparsity strictly below 1; an all-zero operand is
#: clamped to this ceiling (its execution is trivial either way).
_MAX_MODEL_SPARSITY = 1.0 - 1e-6


class BackendExecutionError(RuntimeError):
    """A backend's execution entry point failed (really or by injection).

    Raised by the fault injector (:mod:`repro.serving.faults`) to model a
    backend fault, and by :meth:`KernelDispatcher.execute` when *every*
    candidate backend of a dispatch decision failed — the unrecoverable
    case the serving engines isolate per request instead of letting one
    poisoned call take down a whole micro-batch.
    """

    def __init__(self, message: str, backend: str = "") -> None:
        super().__init__(message)
        #: Registry name of the backend that failed ("" for the exhausted
        #: multi-backend case).
        self.backend = backend


class SpmmOperand:
    """One logical sparse LHS carried in one or more storage formats.

    The dispatcher chooses among the backends whose format is present.  A
    dense fallback view is always derivable (memoized on first use), so the
    cuBLAS backend is a candidate for every operand unless explicitly
    disabled with ``allow_dense=False``.
    """

    def __init__(
        self,
        vnm: Optional[VNMSparseMatrix] = None,
        csr: Optional[CSRMatrix] = None,
        blocked_ell: Optional[BlockedEllMatrix] = None,
        dense: Optional[np.ndarray] = None,
        allow_dense: bool = True,
        name: str = "",
    ) -> None:
        if vnm is not None and not isinstance(vnm, VNMSparseMatrix):
            raise TypeError("vnm must be a VNMSparseMatrix")
        if csr is not None and not isinstance(csr, CSRMatrix):
            raise TypeError("csr must be a CSRMatrix")
        if blocked_ell is not None and not isinstance(blocked_ell, BlockedEllMatrix):
            raise TypeError("blocked_ell must be a BlockedEllMatrix")
        self.vnm = vnm
        self.csr = csr
        self.blocked_ell = blocked_ell
        self.allow_dense = allow_dense
        self.name = name
        self._dense = None if dense is None else np.asarray(dense, dtype=np.float32)
        self._dense16: Optional[np.ndarray] = None
        self._sparsity: Optional[float] = None
        self._content_signature: Optional[Tuple] = None
        #: Full dispatch signature per shape bucket (every component is
        #: operand-intrinsic and immutable, so dispatchers share the memo).
        self._sig_cache: Dict[int, Tuple] = {}
        shapes = {
            tuple(m.shape) for m in (vnm, csr, blocked_ell, self._dense) if m is not None
        }
        if not shapes:
            raise ValueError("operand needs at least one stored format")
        if len(shapes) > 1:
            raise ValueError(f"stored formats disagree on the logical shape: {sorted(shapes)}")
        self.shape: Tuple[int, int] = next(iter(shapes))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_vnm(cls, matrix: VNMSparseMatrix, allow_dense: bool = True, name: str = "") -> "SpmmOperand":
        """Wrap an existing V:N:M operand (the layer-integration case)."""
        return cls(vnm=matrix, allow_dense=allow_dense, name=name)

    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        formats: Sequence[str] = (FORMAT_CSR,),
        v: Optional[int] = None,
        n: Optional[int] = None,
        m: Optional[int] = None,
        block_size: int = 16,
        allow_dense: bool = True,
        name: str = "",
    ) -> "SpmmOperand":
        """Materialise the requested formats from one (already pruned) matrix.

        The V:N:M format additionally needs the pattern parameters and the
        matrix must already obey the pattern (compress with
        :class:`~repro.integration.sparsifier.VNMSparsifier` otherwise).
        """
        arr = np.asarray(dense, dtype=np.float32)
        kwargs: Dict[str, object] = {}
        for fmt in formats:
            if fmt == FORMAT_VNM:
                if v is None or n is None or m is None:
                    raise ValueError("the vnm format requires v, n and m")
                kwargs["vnm"] = VNMSparseMatrix.from_dense(arr, v=v, n=n, m=m, strict=True)
            elif fmt == FORMAT_CSR:
                kwargs["csr"] = CSRMatrix.from_dense(arr)
            elif fmt == FORMAT_BLOCKED_ELL:
                kwargs["blocked_ell"] = BlockedEllMatrix.from_dense(arr, b=block_size)
            elif fmt == FORMAT_DENSE:
                pass  # the dense view is always derivable
            else:
                raise ValueError(f"unknown format {fmt!r}")
        return cls(dense=arr, allow_dense=allow_dense, name=name, **kwargs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def formats(self) -> Tuple[str, ...]:
        """Names of the formats this operand can be executed from (sorted)."""
        out = []
        if self.vnm is not None:
            out.append(FORMAT_VNM)
        if self.csr is not None:
            out.append(FORMAT_CSR)
        if self.blocked_ell is not None:
            out.append(FORMAT_BLOCKED_ELL)
        if self.allow_dense:
            out.append(FORMAT_DENSE)
        return tuple(sorted(out))

    @property
    def pattern(self) -> Optional[Tuple[int, int, int]]:
        """The ``(V, N, M)`` pattern when a V:N:M view exists."""
        if self.vnm is None:
            return None
        return (self.vnm.v, self.vnm.n, self.vnm.m)

    @property
    def r(self) -> int:
        return self.shape[0]

    @property
    def k(self) -> int:
        return self.shape[1]

    def dense(self) -> np.ndarray:
        """The dense view (memoized; decompressed from a stored format)."""
        if self._dense is None:
            if self.vnm is not None:
                self._dense = self.vnm.to_dense()
            elif self.csr is not None:
                self._dense = self.csr.to_dense()
            elif self.blocked_ell is not None:
                self._dense = self.blocked_ell.to_dense()
            else:  # pragma: no cover - constructor guarantees a format
                raise ValueError("operand has no stored format")
        return self._dense

    def dense16(self) -> np.ndarray:
        """The fp16-rounded dense view as float32 (memoized).

        This is the first half of :func:`~repro.kernels.common.reference_matmul_fp16`
        hoisted out of the per-call path, so repeated dense-fallback
        executions (a serving loop) do not re-round the operand every call.
        """
        if self._dense16 is None:
            self._dense16 = np.asarray(self.dense(), dtype=np.float16).astype(np.float32)
        return self._dense16

    def sparsity(self) -> float:
        """Logical sparsity used by the cost models (memoized)."""
        if self._sparsity is None:
            if self.vnm is not None:
                sparsity = self.vnm.logical_sparsity
            else:
                nnz = self.csr.nnz if self.csr is not None else int(np.count_nonzero(self.dense()))
                sparsity = 1.0 - nnz / float(self.r * self.k)
            self._sparsity = min(max(0.0, sparsity), _MAX_MODEL_SPARSITY)
        return self._sparsity

    def content_signature(self) -> Tuple:
        """The cost-model-relevant content of this operand (memoized).

        Everything the backend estimators read beyond (R, K, C) must appear
        here, otherwise two same-shape operands with different content
        would alias to one cached dispatch decision: the sparsity, the
        CSR load imbalance, and the Blocked-ELL block size / padding.
        """
        if self._content_signature is None:
            sig: Tuple = (round(self.sparsity(), 4),)
            if self.csr is not None:
                sig += (round(float(max(1.0, self.csr.load_imbalance())), 3),)
            if self.blocked_ell is not None:
                sig += (
                    self.blocked_ell.b,
                    round(float(self.blocked_ell.padding_fraction()), 3),
                )
            self._content_signature = sig
        return self._content_signature

    def problem(self, c: int) -> GemmProblem:
        """The ``R x K x C`` problem of multiplying this operand by a C-column RHS."""
        pat = self.pattern
        return GemmProblem(
            r=self.r,
            k=self.k,
            c=c,
            sparsity=self.sparsity(),
            v=pat[0] if pat else None,
            n=pat[1] if pat else None,
            m=pat[2] if pat else None,
            name=self.name,
        )


def _validate_rhs(operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
    b = np.asarray(b)
    if b.ndim not in (2, 3) or b.shape[-2] != operand.k:
        raise ValueError(
            f"B must have shape ({operand.k}, C) or (batch, {operand.k}, C), got {b.shape}"
        )
    return b


def _fp16_finite(b: np.ndarray) -> bool:
    """True when ``b`` stays finite after the kernels' fp16 rounding.

    The backends execute on fp16-rounded operands, so a large-but-finite
    float32 value (>= 65520) still becomes inf inside the kernel — the
    finiteness guard must look at the rounded values, as SpmmPlan does.
    """
    with np.errstate(over="ignore"):
        return bool(np.isfinite(np.asarray(b, dtype=np.float16)).all())


def _per_slab(fn, b: np.ndarray) -> np.ndarray:
    """Run a 2-D kernel per slab of a 3-D RHS (trivially slab-bit-exact)."""
    if b.ndim == 2:
        return fn(b)
    return np.stack([fn(b[i]) for i in range(b.shape[0])])


class Backend:
    """One executable library in the registry.

    Subclasses bind a storage format, a perf-model estimator and the
    library's public execution entry point.  ``execute`` accepts a 2-D
    ``(K, C)`` or 3-D ``(B, K, C)`` RHS and never re-implements numerics:
    it forwards to the library function the tests invoke directly.
    """

    #: Registry name, e.g. ``"spatha-plan"``.
    name: str = ""
    #: Format consumed (one of the FORMAT_* constants).
    format: str = ""

    def supports(self, operand: SpmmOperand) -> bool:
        """True when the operand carries this backend's storage format."""
        return self.format in operand.formats

    def estimate(self, operand: SpmmOperand, c: int, gpu: GPUSpec) -> KernelResult:
        """Modelled execution time on the simulated GPU."""
        raise NotImplementedError

    def execute(self, operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
        """The library's numerical result (no bias; the dispatcher adds it)."""
        raise NotImplementedError


class SpathaPlanBackend(Backend):
    """Spatha's planned V:N:M engine, ranked by the template auto-tuner."""

    name = "spatha-plan"
    format = FORMAT_VNM

    def __init__(self, tuner: Optional[SpathaTuner] = None) -> None:
        self._tuner = tuner

    def _tuner_for(self, gpu: GPUSpec) -> SpathaTuner:
        if self._tuner is None or self._tuner.gpu is not gpu:
            self._tuner = SpathaTuner(gpu=gpu)
        return self._tuner

    def estimate(self, operand: SpmmOperand, c: int, gpu: GPUSpec) -> KernelResult:
        tuner = self._tuner_for(gpu)
        problem = operand.problem(c)
        try:
            return tuner.best_result(problem)
        except UnsupportedTilingError:
            # The one expected failure: the template space only instantiates
            # warp tiles for hardware-sized V with V | R; the real library
            # pads such operands, so cost the padded launch instead.  Any
            # other error (including a plain ValueError) is a genuine model
            # bug and must propagate, not be silently re-costed as a proxy.
            v_model = 16
            r_model = -(-problem.r // v_model) * v_model
            proxy = GemmProblem(
                r=r_model,
                k=problem.k,
                c=problem.c,
                sparsity=problem.sparsity,
                n=problem.n,
                m=problem.m,
                v=v_model,
                name=problem.name,
            )
            return tuner.best_result(proxy)

    def execute(self, operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
        # spatha.spmm handles 2-D and 3-D natively through the memoized
        # SpmmPlan, whose batched path is slab-bit-exact by construction.
        return spatha_spmm(operand.vnm, b)

    def plan(self, operand: SpmmOperand) -> SpmmPlan:
        """Warm (and return) the operand's memoized execution plan."""
        return SpmmPlan.for_matrix(operand.vnm)


class SputnikCsrBackend(Backend):
    """Sputnik's unstructured CSR SpMM (CUDA cores, no SPTC)."""

    name = "sputnik-csr"
    format = FORMAT_CSR

    def estimate(self, operand: SpmmOperand, c: int, gpu: GPUSpec) -> KernelResult:
        csr = operand.csr
        return sputnik.estimate_time(
            operand.problem(c), gpu=gpu, load_imbalance=max(1.0, csr.load_imbalance())
        )

    def execute(self, operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
        return _per_slab(lambda slab: sputnik.spmm(operand.csr, slab), b)


class CusparseBlockedEllBackend(Backend):
    """cuSPARSE Blocked-ELL SpMM (dense tensor cores over stored blocks)."""

    name = "cusparse-blocked-ell"
    format = FORMAT_BLOCKED_ELL

    def estimate(self, operand: SpmmOperand, c: int, gpu: GPUSpec) -> KernelResult:
        ell = operand.blocked_ell
        return cusparse.estimate_time(
            operand.problem(c),
            gpu=gpu,
            config=CusparseBlockedEllConfig(block_size=ell.b),
            padding_fraction=ell.padding_fraction(),
        )

    def execute(self, operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
        return _per_slab(lambda slab: cusparse.spmm(operand.blocked_ell, slab), b)


class CublasDenseBackend(Backend):
    """Dense cuBLAS HGEMM on the decompressed operand (the safe fallback)."""

    name = "cublas-dense"
    format = FORMAT_DENSE

    def estimate(self, operand: SpmmOperand, c: int, gpu: GPUSpec) -> KernelResult:
        return cublas.estimate_time(operand.problem(c), gpu=gpu)

    def execute(self, operand: SpmmOperand, b: np.ndarray) -> np.ndarray:
        # Identical arithmetic to cublas.gemm(operand.dense(), slab) — the
        # fp16 rounding of the operand is just hoisted into the memoized
        # dense16 view — so the result stays bit-for-bit the direct call's.
        a16 = operand.dense16()
        return _per_slab(
            lambda slab: a16 @ np.asarray(slab, dtype=np.float16).astype(np.float32), b
        )


def default_backends() -> List[Backend]:
    """Fresh instances of the four standard backends."""
    return [
        SpathaPlanBackend(),
        SputnikCsrBackend(),
        CusparseBlockedEllBackend(),
        CublasDenseBackend(),
    ]


@dataclass
class DispatchDecision:
    """Outcome of ranking the candidate backends for one problem signature."""

    signature: Tuple
    backend: str
    #: Modelled time (us) of every supported candidate, in registry order.
    costs: Dict[str, float] = field(default_factory=dict)
    #: C at which the costs were evaluated (the bucket's first-seen C).
    decided_at_c: int = 0
    #: Failovers taken at execute time under this decision, keyed
    #: ``"failed->served"``.  Absent measurements the decision never changes
    #: — ``backend`` stays the cost argmin so re-admitted backends are
    #: routed to again — this is the audit trail of which calls had to walk
    #: down the ranking.
    failovers: Dict[str, int] = field(default_factory=dict)
    #: Measurement-blended effective cost (us) per candidate: the measured
    #: EWMA where this signature has observed runtimes, the modelled cost
    #: rescaled onto the measured scale otherwise.  Empty until the
    #: dispatcher has at least one observation for the signature; once
    #: populated it overrides ``costs`` in :attr:`ranking` (and may re-rank
    #: ``backend``) so decisions track reality, not just the model.
    measured: Dict[str, float] = field(default_factory=dict)

    @property
    def ranking(self) -> List[Tuple[str, float]]:
        """Candidates sorted fastest first (measurement-blended when fed)."""
        return sorted((self.measured or self.costs).items(), key=lambda kv: kv[1])

    def record_failover(self, failed: str, served: str) -> None:
        """Count one execute-time failover from ``failed`` to ``served``."""
        key = f"{failed}->{served}"
        self.failovers[key] = self.failovers.get(key, 0) + 1


class KernelDispatcher:
    """Registry mapping (formats, pattern, shape regime) to the best backend.

    Decisions are memoized per :meth:`signature`; use a fresh dispatcher (or
    :meth:`clear_cache`) to force re-ranking.  Execution is transparent: the
    chosen backend's public entry point is invoked on the operand's stored
    format, so dispatched results are bit-for-bit the direct-call results.
    """

    def __init__(
        self,
        gpu: Optional[GPUSpec] = None,
        backends: Optional[Sequence[Backend]] = None,
        name: str = "",
        failure_threshold: int = 3,
        probe_interval: int = 4,
        observe_runtimes: bool = False,
        measurement_alpha: float = 0.25,
    ) -> None:
        self.gpu = gpu or rtx3090()
        self.backends: List[Backend] = list(backends) if backends is not None else default_backends()
        #: Diagnostic label (serving engines set it to "<engine>.dispatcher");
        #: prefixed onto dispatch errors so a multi-engine process can tell
        #: whose dispatcher rejected an operand.
        self.name = name
        self._decisions: Dict[Tuple, DispatchDecision] = {}
        #: Decision-cache traffic counters: a hit is a ``dispatch`` call
        #: answered from the memo, a miss one that ranked the backends.
        #: Serving engines surface these on ``stats()`` to prove
        #: cross-request reuse; they accumulate across ``clear_cache``.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Memoized :meth:`estimate` results, keyed by (signature, exact C,
        #: backend, operand name) — the cost models are pure functions of
        #: that key, and the serving engines call ``estimate`` per layer per
        #: step, which dominated the continuous step loop before memoization.
        self._estimates: Dict[Tuple, KernelResult] = {}
        self.estimate_hits = 0
        self.estimate_misses = 0
        if not 0.0 < measurement_alpha <= 1.0:
            raise ValueError("measurement_alpha must be in (0, 1]")
        #: When True, :meth:`execute` wall-clock-times every successful
        #: backend call and feeds it to :meth:`record_runtime` automatically.
        #: Off by default: a measured re-rank changes which backend later
        #: identical calls route to, which is exactly what you want in a
        #: long-lived server and exactly what you do not want while
        #: asserting batched-vs-sequential bit-equality mid-run (each call
        #: is still bit-for-bit its backend's direct invocation either way).
        self.observe_runtimes = observe_runtimes
        #: EWMA smoothing factor for measured runtimes (1.0 = latest only).
        self.measurement_alpha = measurement_alpha
        #: Measured-runtime EWMA (us) per (signature, backend), plus sample
        #: counts; cumulative counters surfaced in :meth:`health_stats`.
        self._observed: Dict[Tuple, float] = {}
        self._observed_counts: Dict[Tuple, int] = {}
        self.observations = 0
        self.measured_reranks = 0
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        #: Consecutive execute failures after which a backend is quarantined.
        self.failure_threshold = failure_threshold
        #: Executes a quarantined backend sits out before one probe attempt.
        self.probe_interval = probe_interval
        #: Consecutive-failure streak per backend (reset on any success).
        self._consecutive_failures: Dict[str, int] = {}
        #: Quarantined backends mapped to the number of executes remaining
        #: before a probe attempt; 0 means the next execute probes it.
        self._quarantine: Dict[str, int] = {}
        #: Cumulative health counters (surfaced by :meth:`health_stats`).
        self.backend_failures = 0
        self.failover_count = 0
        self.quarantine_events = 0
        self.readmission_events = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, backend: Backend, prepend: bool = False) -> None:
        """Add a backend (its ``name`` must be unique)."""
        if any(b.name == backend.name for b in self.backends):
            raise ValueError(f"backend {backend.name!r} is already registered")
        if prepend:
            self.backends.insert(0, backend)
        else:
            self.backends.append(backend)
        self._decisions.clear()
        self._estimates.clear()

    def backend(self, name: str) -> Backend:
        """Look a backend up by registry name."""
        for b in self.backends:
            if b.name == name:
                return b
        raise KeyError(f"no backend named {name!r}; registered: {[b.name for b in self.backends]}")

    # ------------------------------------------------------------------
    # Signatures and decisions
    # ------------------------------------------------------------------
    @staticmethod
    def shape_bucket(c: int) -> int:
        """The power-of-two shape-regime bucket of a C-column RHS."""
        if c <= 0:
            raise ValueError("C must be positive")
        return 1 << (int(c) - 1).bit_length()

    def signature(self, operand: SpmmOperand, c: int) -> Tuple:
        """The memoization key: formats, pattern, shape regime and content.

        Includes :meth:`SpmmOperand.content_signature` so same-shape
        operands with different sparsity/structure never alias to one
        cached decision (distinct layers of a model may legitimately
        dispatch to different backends).  Memoized per bucket on the
        operand — the serving engines rebuild it several times per layer
        per step, and every component is immutable.
        """
        bucket = self.shape_bucket(c)
        sig = operand._sig_cache.get(bucket)
        if sig is None:
            sig = (
                operand.formats,
                operand.pattern,
                operand.r,
                operand.k,
                bucket,
                operand.content_signature(),
            )
            operand._sig_cache[bucket] = sig
        return sig

    def dispatch(self, operand: SpmmOperand, c: int) -> DispatchDecision:
        """Rank the supported backends for this problem (memoized).

        The first call of a signature evaluates every candidate's cost model
        at the requested ``c`` and caches the full ranking; later calls in
        the same shape bucket reuse it.
        """
        sig = self.signature(operand, c)
        decision = self._decisions.get(sig)
        if decision is not None:
            self.cache_hits += 1
            return decision
        self.cache_misses += 1
        costs: Dict[str, float] = {}
        for backend in self.backends:
            if not backend.supports(operand):
                continue
            costs[backend.name] = backend.estimate(operand, c, self.gpu).time_us
        if not costs:
            raise ValueError(
                f"{self.name or 'dispatcher'}: no registered backend supports "
                f"formats {operand.formats}"
            )
        best = min(costs.items(), key=lambda kv: kv[1])[0]
        decision = DispatchDecision(signature=sig, backend=best, costs=costs, decided_at_c=c)
        self._decisions[sig] = decision
        self._apply_measurements(decision)
        return decision

    def estimate(self, operand: SpmmOperand, c: int, backend: Optional[str] = None) -> KernelResult:
        """Modelled kernel result at exactly ``c`` columns (memoized).

        Uses the dispatched backend unless one is named.  Unlike
        :meth:`dispatch`, which buckets ``c`` into shape regimes, this is
        memoized at the *exact* column count — the cost models are pure
        per (content signature, C, backend), and the serving engines ask
        for the same handful of (layer, bucket-C) estimates on every step.
        Callers must treat the returned :class:`KernelResult` as read-only
        (``as_execution`` already copies ``details`` into a fresh meta).
        """
        name = backend or self.dispatch(operand, c).backend
        key = (self.signature(operand, c), int(c), name, operand.name)
        result = self._estimates.get(key)
        if result is not None:
            self.estimate_hits += 1
            return result
        self.estimate_misses += 1
        result = self.backend(name).estimate(operand, c, self.gpu)
        self._estimates[key] = result
        return result

    # ------------------------------------------------------------------
    # Measured runtimes (the measurement-fed half of the ranking)
    # ------------------------------------------------------------------
    def record_runtime(self, operand: SpmmOperand, c: int, backend: str, measured_us: float) -> None:
        """Feed one measured wall-clock runtime for ``backend`` on this problem.

        Updates the per-(signature, backend) EWMA and immediately re-blends
        the signature's cached decision (see :meth:`_apply_measurements`),
        so the ranking tracks observed reality instead of the static cost
        model alone.  Callers with out-of-band timings (the bench harness, a
        serving sidecar) use this directly; set ``observe_runtimes=True`` to
        have :meth:`execute` feed itself.
        """
        if not measured_us > 0:
            raise ValueError(f"measured_us must be positive, got {measured_us}")
        name = self.backend(backend).name  # validates the backend exists
        self._observe(self.signature(operand, c), name, float(measured_us))

    def _observe(self, sig: Tuple, name: str, measured_us: float) -> None:
        key = (sig, name)
        prev = self._observed.get(key)
        alpha = self.measurement_alpha
        self._observed[key] = (
            measured_us if prev is None else alpha * measured_us + (1.0 - alpha) * prev
        )
        self._observed_counts[key] = self._observed_counts.get(key, 0) + 1
        self.observations += 1
        decision = self._decisions.get(sig)
        if decision is not None:
            self._apply_measurements(decision)

    def _blend(self, sig: Tuple, costs: Dict[str, float]) -> Dict[str, float]:
        """Effective cost per candidate: measured where observed, calibrated
        model elsewhere.

        Measured wall-clock (CPU) and modelled (simulated-GPU) times live on
        different scales, so candidates without observations cannot compete
        on raw modelled numbers.  The median observed/modelled ratio across
        the observed candidates calibrates the model onto the measured
        scale; unobserved candidates enter the ranking at
        ``modelled * scale``.  Empty when the signature has no observations.
        """
        observed = {n: self._observed[(sig, n)] for n in costs if (sig, n) in self._observed}
        if not observed:
            return {}
        ratios = sorted(observed[n] / costs[n] for n in observed if costs[n] > 0)
        scale = ratios[len(ratios) // 2] if ratios else 1.0
        return {n: observed.get(n, cost * scale) for n, cost in costs.items()}

    def _apply_measurements(self, decision: DispatchDecision) -> None:
        """Re-blend one decision's effective costs; re-rank if reality won."""
        measured = self._blend(decision.signature, decision.costs)
        if not measured:
            return
        decision.measured = measured
        best = min(measured.items(), key=lambda kv: kv[1])[0]
        if best != decision.backend:
            decision.backend = best
            self.measured_reranks += 1

    # ------------------------------------------------------------------
    # Backend health (circuit breaker)
    # ------------------------------------------------------------------
    def is_quarantined(self, name: str) -> bool:
        """True while ``name`` is sitting out the candidate walk."""
        return name in self._quarantine

    def quarantined(self) -> Tuple[str, ...]:
        """Currently quarantined backend names (sorted)."""
        return tuple(sorted(self._quarantine))

    def _record_failure(self, name: str) -> None:
        self.backend_failures += 1
        streak = self._consecutive_failures.get(name, 0) + 1
        self._consecutive_failures[name] = streak
        if name in self._quarantine:
            # A failed probe: back to the penalty box for a full interval.
            self._quarantine[name] = self.probe_interval
        elif streak >= self.failure_threshold:
            self._quarantine[name] = self.probe_interval
            self.quarantine_events += 1

    def _record_success(self, name: str) -> None:
        self._consecutive_failures.pop(name, None)
        if name in self._quarantine:
            # A successful probe re-admits the backend immediately.
            del self._quarantine[name]
            self.readmission_events += 1

    def health_stats(self) -> Dict[str, object]:
        """Circuit-breaker counters plus the measured-runtime summary
        (separate from :meth:`cache_stats`).

        ``observed_backends`` aggregates the per-signature EWMAs per
        backend: ``samples`` fed, and the mean EWMA in us — enough to see
        *which* backends real traffic exercised and how they actually
        timed; ``measured_reranks`` counts decisions whose best backend
        flipped because of measurements.
        """
        observed: Dict[str, Dict[str, float]] = {}
        for (sig, name), ewma in self._observed.items():
            agg = observed.setdefault(name, {"samples": 0, "_sum": 0.0, "_n": 0})
            agg["samples"] += self._observed_counts[(sig, name)]
            agg["_sum"] += ewma
            agg["_n"] += 1
        for agg in observed.values():
            agg["mean_ewma_us"] = round(agg.pop("_sum") / agg.pop("_n"), 3)
        return {
            "failures": self.backend_failures,
            "failovers": self.failover_count,
            "quarantines": self.quarantine_events,
            "readmissions": self.readmission_events,
            "quarantined": list(self.quarantined()),
            "observations": self.observations,
            "measured_reranks": self.measured_reranks,
            "observed_backends": {name: observed[name] for name in sorted(observed)},
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _attempt(self, operand: SpmmOperand, b: np.ndarray, name: str, decision: DispatchDecision) -> np.ndarray:
        """Run one candidate backend, honouring the non-finite demotion."""
        if name == CublasDenseBackend.name and len(decision.costs) > 1:
            # Same guard as SpmmPlan's dense->gather demotion: the dense
            # fallback multiplies the decompressed operand's zeros against
            # every B row, so a non-finite value in a row the sparse
            # structure never selects would leak NaN (0 * inf) into the
            # output.  The sparse-format backends only touch stored
            # entries, so route to the fastest of those instead.  The check
            # is per *slab*: a slab's backend may depend only on its own
            # values, otherwise one non-finite request in a serving
            # micro-batch would flip its batchmates' backend and break the
            # batched == sequential bit-exactness guarantee.
            fallback = next(
                fname for fname, _ in decision.ranking if fname != CublasDenseBackend.name
            )
            if b.ndim == 2:
                if not _fp16_finite(b):
                    return self.backend(fallback).execute(operand, b)
            else:
                finite = [_fp16_finite(b[i]) for i in range(b.shape[0])]
                if not all(finite):
                    dense_backend = self.backend(name)
                    sparse_backend = self.backend(fallback)
                    return np.stack(
                        [
                            (dense_backend if fin else sparse_backend).execute(operand, b[i])
                            for i, fin in enumerate(finite)
                        ]
                    )
        return self.backend(name).execute(operand, b)

    def _candidate_order(self, decision: DispatchDecision) -> List[str]:
        """Candidates for one execute: healthy by rank, then quarantined.

        Quarantined backends tick one step closer to their probe on every
        execute that passes them over; one with an expired countdown is
        admitted at its ranked position (the probe attempt).  Quarantined
        candidates are kept at the tail as a last resort so an execute never
        fails without trying every registered candidate.
        """
        ranked = [decision.backend] + [
            name for name, _ in decision.ranking if name != decision.backend
        ]
        admitted: List[str] = []
        deferred: List[str] = []
        for name in ranked:
            remaining = self._quarantine.get(name)
            if remaining is None or remaining <= 0:
                admitted.append(name)
            else:
                self._quarantine[name] = remaining - 1
                deferred.append(name)
        return admitted + deferred

    def execute(
        self,
        operand: SpmmOperand,
        b: np.ndarray,
        bias: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``A @ B (+ bias)`` through the dispatched backend, with failover.

        ``b`` may be ``(K, C)`` or a batch ``(B, K, C)``; batched execution
        is slab-bit-exact.  Without a bias the result is bit-for-bit the
        chosen backend's direct output; the bias epilogue adds
        ``bias.reshape(R, 1)`` exactly like the Spatha plan does.  A
        non-finite RHS demotes the dense fallback to the fastest
        sparse-format backend (see :meth:`_attempt`).

        When a candidate raises :class:`BackendExecutionError` the walk
        continues down the cost ranking; the result served by a fallback is
        bit-for-bit what invoking that fallback directly would return,
        because the fallback runs the identical public entry point.  The
        failover is recorded on the decision, the circuit breaker counts the
        failure, and only when *every* candidate fails does the call raise.
        """
        b = _validate_rhs(operand, b)
        decision = self.dispatch(operand, b.shape[-1])
        out: Optional[np.ndarray] = None
        errors: List[str] = []
        first_failed: Optional[str] = None
        for name in self._candidate_order(decision):
            try:
                if self.observe_runtimes:
                    started = time.perf_counter()
                    out = self._attempt(operand, b, name, decision)
                    elapsed_us = max((time.perf_counter() - started) * 1e6, 1e-3)
                    self._observe(decision.signature, name, elapsed_us)
                else:
                    out = self._attempt(operand, b, name, decision)
            except BackendExecutionError as exc:
                failed = exc.backend or name
                self._record_failure(failed)
                errors.append(f"{failed}: {exc}")
                if first_failed is None:
                    first_failed = name
                continue
            self._record_success(name)
            if first_failed is not None:
                decision.record_failover(first_failed, name)
                self.failover_count += 1
            break
        if out is None:
            raise BackendExecutionError(
                f"{self.name or 'dispatcher'}: all candidate backends failed "
                f"for operand {operand.name or operand.shape}: " + "; ".join(errors)
            )
        if bias is not None:
            r = operand.r
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape not in {(r,), (r, 1)}:
                raise ValueError(f"bias must have shape ({r},), got {bias.shape}")
            out += bias.reshape(r, 1)
        return out

    def warm(self, operand: SpmmOperand, cs: Sequence[int] = ()) -> None:
        """Prepare the operand for serving.

        Builds the Spatha plan (when a V:N:M view exists) and, for every
        column count in ``cs``, pre-populates the dispatch decision of its
        shape bucket — so a warmed server pays neither operand preparation
        nor the cost-model ranking (including the tuner sweep) on its first
        real request.
        """
        if operand.vnm is not None:
            SpmmPlan.for_matrix(operand.vnm)
        for c in cs:
            self.dispatch(operand, c)

    def warm_many(self, operands: Sequence[SpmmOperand], cs: Sequence[int] = ()) -> int:
        """Warm a whole model's worth of operands in one call.

        The multi-operand form of :meth:`warm`: a model serving engine hands
        over every sparse projection of its encoder plus the token buckets
        it expects traffic on, and the dispatcher builds each operand's plan
        and pre-ranks each (operand, bucket) signature.  Returns the number
        of operands warmed.
        """
        count = 0
        for operand in operands:
            self.warm(operand, cs=cs)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_size(self) -> int:
        """Number of memoized dispatch decisions."""
        return len(self._decisions)

    def cache_stats(self) -> Dict[str, int]:
        """Decision/estimate-cache counters: entries held plus cumulative traffic."""
        return {
            "size": self.cache_size(),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "estimate_size": len(self._estimates),
            "estimate_hits": self.estimate_hits,
            "estimate_misses": self.estimate_misses,
        }

    def clear_cache(self) -> None:
        """Drop all memoized decisions and estimates (backends keep their
        tuner caches; measured-runtime EWMAs survive too — they describe
        reality, and re-ranking a re-decided signature should still see
        them).

        The hit/miss counters are cumulative traffic statistics and survive
        the clear (the next ``dispatch`` of a dropped signature counts as a
        miss again).
        """
        self._decisions.clear()
        self._estimates.clear()


_DEFAULT_DISPATCHER: Optional[KernelDispatcher] = None


def default_dispatcher() -> KernelDispatcher:
    """The shared process-wide dispatcher (lazily created).

    Layer integrations route through this instance by default so that every
    sparse layer of a model shares one decision cache and one tuner.
    """
    global _DEFAULT_DISPATCHER
    if _DEFAULT_DISPATCHER is None:
        _DEFAULT_DISPATCHER = KernelDispatcher()
    return _DEFAULT_DISPATCHER
