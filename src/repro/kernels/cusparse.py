"""cuSPARSE Blocked-ELL SpMM baseline.

NVIDIA's cuSPARSE library (the paper's related work, distinct from
cuSparseLt) provides SpMM on general compressed formats — COO, CSR and
Blocked-ELL.  The Blocked-ELL path is the relevant comparison point for
block-wise pruning: math runs on dense Tensor Cores over the stored blocks
(padding blocks included), so its efficiency depends directly on the block
size and on how much ELL padding the sparsity structure forces.

The model is included so block-wise pruning (Figure 2, scheme 1) has an
executable counterpart, letting the examples contrast "prune 2-D blocks and
run cuSPARSE" against "prune V:N:M and run Spatha" in both accuracy
(energy) and speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .common import GemmProblem, KernelResult, reference_matmul_fp16
from ..formats.blocked_ell import BlockedEllMatrix
from ..hardware.memory import TrafficRecord, TransactionModel, matrix_bytes
from ..hardware.occupancy import BlockResources
from ..hardware.roofline import roofline_cost
from ..hardware.spec import GPUSpec, rtx3090


@dataclass(frozen=True)
class CusparseBlockedEllConfig:
    """Modelled kernel parameters of cuSPARSE's Blocked-ELL SpMM."""

    #: Edge length of the square blocks (cuSPARSE supports 8..32 for fp16).
    block_size: int = 16
    tile_c: int = 64
    threads: int = 128
    registers_per_thread: int = 120
    smem_bytes: int = 40 * 1024
    #: Sustained fraction of the dense tensor-core peak on the stored blocks.
    compute_efficiency: float = 0.30
    pipeline_stages: int = 2
    #: Host-side descriptor/algorithm-selection overhead per call, us.
    runtime_overhead_us: float = 8.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.runtime_overhead_us < 0:
            raise ValueError("runtime_overhead_us must be non-negative")


#: Calibrated constants of the formulation chooser: Python dispatch
#: overhead per BLAS call, sustained block-GEMM throughput, and gather
#: bandwidth of the stacked-tile copies.  Only the ratios matter.
_DISPATCH_OVERHEAD_S = 3.0e-6
_BLOCK_GEMM_FLOPS = 3.0e10
_GATHER_BYTES_PER_SECOND = 5.0e9


def spmm(a_sparse: BlockedEllMatrix, b: np.ndarray) -> np.ndarray:
    """Functional Blocked-ELL SpMM (fp16 operands, fp32 accumulation).

    Two formulations, chosen by a small cost model:

    * **slot-batched** — one stacked ``matmul`` per ELL slot covering every
      block row at once (``nbr`` times fewer interpreter iterations than
      the seed loop).  Wins whenever the per-block GEMM is small enough
      that Python dispatch dominates, at the price of gathering the B tiles
      of a slot into a contiguous stack.  Bit-identical to the retained
      loop (same per-block GEMMs, same slot accumulation order;
      padding-slot products are discarded).
    * **block-loop** — the per-block-row loop (:func:`spmm_loop_reference`),
      which reads B tiles as views with zero gather traffic and is already
      BLAS-bound for large blocks.

    The crossover mirrors the planning discipline of the Spatha engine:
    vectorize the interpreter-bound regime, keep BLAS saturated in the
    other.
    """
    if not isinstance(a_sparse, BlockedEllMatrix):
        raise TypeError("cusparse.spmm expects a BlockedEllMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.ncols:
        raise ValueError(f"B must have shape ({a_sparse.ncols}, C), got {b.shape}")
    nbr, ell_cols = a_sparse.block_cols.shape
    bsize = a_sparse.b
    c = b.shape[1]
    gemm_s = 2.0 * bsize * bsize * c / _BLOCK_GEMM_FLOPS
    loop_cost = nbr * ell_cols * (_DISPATCH_OVERHEAD_S + gemm_s)
    slot_cost = ell_cols * (
        nbr * bsize * c * 4.0 / _GATHER_BYTES_PER_SECOND + nbr * gemm_s
    )
    if slot_cost <= loop_cost:
        return _spmm_slot_batched(a_sparse, b)
    return spmm_loop_reference(a_sparse, b)


def _spmm_slot_batched(a_sparse: BlockedEllMatrix, b: np.ndarray) -> np.ndarray:
    """Stacked-matmul formulation: vectorized over block rows, one pass per
    ELL slot."""
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    blocks16 = np.asarray(a_sparse.blocks, dtype=np.float16).astype(np.float32)
    bsize = a_sparse.b
    c = b.shape[1]
    nbr, ell_cols = a_sparse.block_cols.shape
    valid = a_sparse.block_cols >= 0
    # Padding slots clip their column to 0 so the gather stays in range.
    # Their blocks are zeroed, which makes their products exact zeros for
    # finite B; only when B carries non-finite values (0 * inf = NaN) do
    # the products need to be discarded explicitly, as the loop reference
    # skips these slots entirely.
    blocks16 = np.where(valid[:, :, None, None], blocks16, 0.0)
    cols = np.maximum(a_sparse.block_cols, 0)
    mask_padding = not np.isfinite(b16).all()
    b_tiles = b16.reshape(a_sparse.ncols // bsize, bsize, c)
    out = np.zeros((nbr, bsize, c), dtype=np.float32)
    for slot in range(ell_cols):
        contrib = np.matmul(blocks16[:, slot], b_tiles[cols[:, slot]])
        if mask_padding:
            contrib = np.where(valid[:, slot, None, None], contrib, 0.0)
        out += contrib
    return out.reshape(a_sparse.nrows, c)


def spmm_loop_reference(a_sparse: BlockedEllMatrix, b: np.ndarray) -> np.ndarray:
    """Per-block-row/slot loop Blocked-ELL SpMM (equivalence reference)."""
    if not isinstance(a_sparse, BlockedEllMatrix):
        raise TypeError("cusparse.spmm expects a BlockedEllMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.ncols:
        raise ValueError(f"B must have shape ({a_sparse.ncols}, C), got {b.shape}")
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    blocks16 = np.asarray(a_sparse.blocks, dtype=np.float16).astype(np.float32)
    bsize = a_sparse.b
    out = np.zeros((a_sparse.nrows, b.shape[1]), dtype=np.float32)
    nbr, ell_cols = a_sparse.block_cols.shape
    for i in range(nbr):
        acc = np.zeros((bsize, b.shape[1]), dtype=np.float32)
        for slot in range(ell_cols):
            col = a_sparse.block_cols[i, slot]
            if col < 0:
                continue
            acc += blocks16[i, slot] @ b16[col * bsize : (col + 1) * bsize]
        out[i * bsize : (i + 1) * bsize] = acc
    return out


def estimate_time(
    problem: GemmProblem,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CusparseBlockedEllConfig] = None,
    padding_fraction: float = 0.1,
) -> KernelResult:
    """Modelled execution time of the Blocked-ELL SpMM.

    Parameters
    ----------
    padding_fraction:
        Fraction of stored ELL slots that are padding (wasted math and
        traffic); block-wise pruning with a global threshold typically
        leaves 5-30% padding because block rows keep different numbers of
        blocks.
    """
    gpu = gpu or rtx3090()
    config = config or CusparseBlockedEllConfig()
    if not 0.0 <= padding_fraction < 1.0:
        raise ValueError("padding_fraction must be in [0, 1)")

    r, k, c = problem.r, problem.k, problem.c
    density = problem.density
    # Stored elements: the kept blocks plus the ELL padding slots.
    stored = r * k * density / (1.0 - padding_fraction)
    flops = 2.0 * stored * c

    num_blocks_stored = stored / (config.block_size**2)
    b_gather_bytes = num_blocks_stored * config.block_size * c * 2.0 * 0.5
    traffic = TrafficRecord(
        gmem_read_bytes=stored * 2.0 + num_blocks_stored * 4.0 + b_gather_bytes,
        gmem_write_bytes=matrix_bytes(r, c, problem.precision),
        smem_write_bytes=stored * 2.0 * max(1.0, c / config.tile_c) * 0.25,
        smem_read_bytes=stored * 2.0 * max(1.0, c / config.tile_c) * 0.25,
    )

    rows_per_block = max(config.block_size * 4, 64)
    total_blocks = max(1, -(-r // rows_per_block) * -(-c // config.tile_c))
    resources = BlockResources(
        threads=config.threads,
        registers_per_thread=config.registers_per_thread,
        smem_bytes=config.smem_bytes,
    )
    overhead_cycles = config.runtime_overhead_us * 1e-6 * gpu.sm_clock_hz
    cost = roofline_cost(
        gpu=gpu,
        flops=flops,
        traffic=traffic,
        resources=resources,
        total_blocks=total_blocks,
        use_tensor_cores=True,
        sparse_tensor_cores=False,
        compute_efficiency=config.compute_efficiency,
        gmem_tx=TransactionModel(access_bits=128),
        smem_tx=TransactionModel(access_bits=64),
        pipeline_stages=config.pipeline_stages,
        extra_overhead_cycles=overhead_cycles,
    )
    return KernelResult(
        kernel="cusparse_blocked_ell_spmm",
        problem=problem,
        cost=cost,
        details={"block_size": config.block_size, "padding_fraction": padding_fraction},
    )


def run(
    a_sparse: BlockedEllMatrix,
    b: np.ndarray,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CusparseBlockedEllConfig] = None,
    name: str = "",
) -> KernelResult:
    """Functional + performance result for concrete Blocked-ELL operands."""
    b = np.asarray(b)
    r, k = a_sparse.shape
    sparsity = 1.0 - np.count_nonzero(a_sparse.to_dense()) / float(r * k)
    config = config or CusparseBlockedEllConfig(block_size=a_sparse.b)
    problem = GemmProblem(r=r, k=k, c=b.shape[1], sparsity=sparsity, name=name)
    result = estimate_time(
        problem, gpu=gpu, config=config, padding_fraction=a_sparse.padding_fraction()
    )
    result.output = spmm(a_sparse, b)
    return result
