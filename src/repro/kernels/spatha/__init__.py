"""Spatha: the paper's high-performance V:N:M SpMM library (Section 4)."""

from .config import KernelConfig, UnsupportedTilingError, candidate_configs, default_config
from .library import Spatha
from .perf_model import SPATHA_COMPUTE_EFFICIENCY, estimate_time, speedup_vs_dense, theoretical_speedup_cap
from .plan import SpmmPlan
from .spmm import spmm, spmm_dense_baseline, spmm_loop_reference, spmm_reference
from .stages import StageBreakdown, compute_stage_breakdown
from .tiles import TileCounts, compute_tile_counts, condensed_k, iterate_output_tiles, iterate_warp_tiles, simulate_tiled_spmm
from .tuner import SpathaTuner, TuningRecord

__all__ = [
    "KernelConfig",
    "candidate_configs",
    "default_config",
    "Spatha",
    "SPATHA_COMPUTE_EFFICIENCY",
    "estimate_time",
    "speedup_vs_dense",
    "theoretical_speedup_cap",
    "SpmmPlan",
    "spmm",
    "spmm_dense_baseline",
    "spmm_loop_reference",
    "spmm_reference",
    "StageBreakdown",
    "compute_stage_breakdown",
    "TileCounts",
    "UnsupportedTilingError",
    "compute_tile_counts",
    "condensed_k",
    "iterate_output_tiles",
    "iterate_warp_tiles",
    "simulate_tiled_spmm",
    "SpathaTuner",
    "TuningRecord",
]
