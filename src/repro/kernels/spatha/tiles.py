"""Tile decomposition of the Spatha SpMM (Figures 5 and 6).

The kernel decomposes an ``R x K x C`` problem into three nested levels:

* **thread-block tiles** of ``BSr x BSc`` output elements; ``BSr = V`` so
  every block consumes one row of ``column_loc`` entries per M-group;
* **warp tiles** of ``WSr x WSc`` output elements inside each block;
* **instruction tiles** of ``MMA_r x MMA_c`` output elements, each covering
  ``MMA_k`` condensed columns per ``mma.sp`` issue.

This module computes the tiling arithmetic (grid size, warps per block,
instruction counts, k-step counts) used by the performance model, and
provides :func:`iterate_output_tiles` / :func:`simulate_tiled_spmm`, a
functional execution that walks the exact tile hierarchy — used by the
tests to show the decomposition covers every output element exactly once
and reproduces the reference result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from .config import KernelConfig, UnsupportedTilingError
from ...formats.vnm import SELECTED_COLUMNS, VNMSparseMatrix


@dataclass(frozen=True)
class TileCounts:
    """Static tiling statistics of one kernel launch."""

    #: Thread-block grid dimensions (row blocks, column blocks).
    grid_rows: int
    grid_cols: int
    #: Number of k-steps each block iterates over (condensed space).
    k_steps: int
    #: Warps per thread block.
    warps_per_block: int
    #: ``mma.sp`` instructions issued per warp per k-step.
    mma_per_warp_per_kstep: int
    #: Total ``mma.sp`` instructions of the whole launch.
    total_mma_instructions: int

    @property
    def total_blocks(self) -> int:
        """Total thread blocks of the launch."""
        return self.grid_rows * self.grid_cols

    @property
    def total_warps(self) -> int:
        """Total warps of the launch."""
        return self.total_blocks * self.warps_per_block


def condensed_k(k: int, m: int, pad: bool = True) -> int:
    """Width of the selected-column space: four condensed columns per M-group.

    With ``pad=True`` (the performance-model path) K values that are not a
    multiple of M are rounded up to the next full group — the real library
    zero-pads the operand the same way.  ``pad=False`` enforces exact
    divisibility (the functional path, where padding must be explicit).
    """
    if k % m:
        if not pad:
            raise ValueError(f"K ({k}) must be divisible by M ({m})")
        return math.ceil(k / m) * SELECTED_COLUMNS
    return (k // m) * SELECTED_COLUMNS


def compute_tile_counts(r: int, k: int, c: int, m: int, config: KernelConfig) -> TileCounts:
    """Tiling statistics for an ``R x K x C`` problem with inner pattern N:M."""
    if r % config.bs_r:
        raise UnsupportedTilingError(
            f"R ({r}) must be divisible by BSr=V ({config.bs_r}); pad the operand first"
        )
    kc = condensed_k(k, m)
    grid_rows = r // config.bs_r
    grid_cols = math.ceil(c / config.bs_c)
    k_steps = math.ceil(kc / config.bs_k)
    warps = config.warps_per_block
    mma_rows = config.ws_r // config.mma.m
    mma_cols = config.ws_c // config.mma.n
    mma_k = config.bs_k // config.mma.k if config.bs_k >= config.mma.k else 1
    mma_per_warp_per_kstep = mma_rows * mma_cols * mma_k
    total_mma = grid_rows * grid_cols * k_steps * warps * mma_per_warp_per_kstep
    return TileCounts(
        grid_rows=grid_rows,
        grid_cols=grid_cols,
        k_steps=k_steps,
        warps_per_block=warps,
        mma_per_warp_per_kstep=mma_per_warp_per_kstep,
        total_mma_instructions=total_mma,
    )


def iterate_output_tiles(r: int, c: int, config: KernelConfig) -> Iterator[Tuple[slice, slice]]:
    """Yield the (row-slice, col-slice) of every thread-block output tile."""
    if r % config.bs_r:
        raise ValueError(f"R ({r}) must be divisible by BSr ({config.bs_r})")
    for br in range(0, r, config.bs_r):
        for bc in range(0, c, config.bs_c):
            yield slice(br, br + config.bs_r), slice(bc, min(bc + config.bs_c, c))


def iterate_warp_tiles(block_rows: slice, block_cols: slice, config: KernelConfig) -> Iterator[Tuple[slice, slice]]:
    """Yield the (row-slice, col-slice) of every warp tile inside a block tile."""
    r0, r1 = block_rows.start, block_rows.stop
    c0, c1 = block_cols.start, block_cols.stop
    for wr in range(r0, r1, config.ws_r):
        for wc in range(c0, c1, config.ws_c):
            yield slice(wr, min(wr + config.ws_r, r1)), slice(wc, min(wc + config.ws_c, c1))


def simulate_tiled_spmm(a: VNMSparseMatrix, b: np.ndarray, config: KernelConfig) -> np.ndarray:
    """Execute the SpMM by walking the exact tile hierarchy of the kernel.

    For each thread-block tile the condensed A operand and the column-loc
    selected B rows are gathered (stage 1), warp tiles accumulate their
    partial products over k-steps of ``bs_k`` condensed columns (stage 2),
    and the block writes its output tile (stage 3).  Numerically equivalent
    to the fast path in :mod:`repro.kernels.spatha.spmm`; intended for
    validation on small problems, not for speed.
    """
    b = np.asarray(b, dtype=np.float32)
    r, k = a.shape
    if b.shape[0] != k:
        raise ValueError(f"B must have shape ({k}, C), got {b.shape}")
    if config.bs_r != a.v:
        raise ValueError(f"BSr ({config.bs_r}) must equal the format's V ({a.v})")
    c = b.shape[1]
    out = np.zeros((r, c), dtype=np.float32)

    cond = a.to_condensed()  # (R, K/M*4), fp32
    cond = np.asarray(cond, dtype=np.float16).astype(np.float32)
    sel_cols = a.selected_column_indices()  # (R/V, K/M*4) absolute B rows
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    kc = cond.shape[1]

    for rows, cols in iterate_output_tiles(r, c, config):
        row_block = rows.start // a.v
        b_sel = b16[sel_cols[row_block], cols]  # (K/M*4, tile_c) stage-1 gather
        a_tile = cond[rows]  # (BSr, K/M*4)
        for wrows, wcols in iterate_warp_tiles(rows, cols, config):
            acc = np.zeros((wrows.stop - wrows.start, wcols.stop - wcols.start), dtype=np.float32)
            for k0 in range(0, kc, config.bs_k):
                k1 = min(k0 + config.bs_k, kc)
                a_frag = a_tile[wrows.start - rows.start : wrows.stop - rows.start, k0:k1]
                b_frag = b_sel[k0:k1, wcols.start - cols.start : wcols.stop - cols.start]
                acc += a_frag @ b_frag
            out[wrows, wcols] = acc
    return out
