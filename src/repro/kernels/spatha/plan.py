"""Planned, batched execution of the V:N:M SpMM (the vectorized engine).

The seed implementation of :func:`repro.kernels.spatha.spmm.spmm` walked the
V-row blocks of the operand in a Python loop and re-derived the condensed
operand and gather indices on every call.  That is exactly the pattern the
real Spatha kernel avoids: the GPU library prepares the operand once
(values, column-loc, packed metadata) and then replays the same gather +
``mma.sp`` schedule for every activation batch.  :class:`SpmmPlan` is the
CPU analogue of that preparation step:

* all per-operand derivations — the fp16-rounded condensed operand, the
  absolute gather indices of the selected B rows, the packed 2-bit
  metadata — are computed once at plan construction and cached on the
  :class:`~repro.formats.vnm.VNMSparseMatrix` itself, so every layer of a
  transformer forward and every point of a sweep pays preparation once;
* execution is fully batched: no Python loop over row blocks.  Two
  strategies are provided and an ``auto`` mode picks between them with a
  small cost model calibrated on this host:

  - ``"gather"`` — the faithful condensed-operand schedule: the selected B
    rows of every row block are gathered (in bounded-memory chunks) and
    multiplied with the condensed operand via one stacked ``matmul``.  This
    is bit-identical to the retained loop reference.
  - ``"dense"`` — scatter the (fp16-rounded) operand to its dense form once
    at plan build, then execute each call as a single large GEMM.  On CPUs
    a single BLAS call vastly outperforms per-block gathers for small V,
    at the cost of ``M/4`` more arithmetic.

* the RHS may be 2-D ``(K, C)`` or batched 3-D ``(B, K, C)``; the batched
  form lets :mod:`repro.integration.linear` and the transformer layers run
  whole activation batches in one call.  Batched execution is *slab-exact*:
  every slab of a 3-D batch is computed by the same stacked GEMMs a 2-D
  call would issue, so ``execute(stack)[i]`` is bit-identical to
  ``execute(stack[i])``.  The dynamic-batching serving layer
  (:mod:`repro.serving`) relies on this to make batched request execution
  provably equivalent to sequential per-request execution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .config import KernelConfig
from ...formats.vnm import VNMSparseMatrix

#: Calibrated single-core throughputs used by the ``auto`` strategy chooser
#: (measured on the reference container: large square SGEMM sustains
#: ~1e11 FLOP/s, thin per-block GEMMs ~2.5e10, fancy row gathers ~2e9 B/s).
#: Only the *ratio* between them matters for the decision.
_DENSE_GEMM_FLOPS = 1.0e11
_BLOCK_GEMM_FLOPS = 2.5e10
_GATHER_BYTES_PER_SECOND = 2.0e9

#: Upper bound on the temporary gathered-RHS buffer of the gather strategy.
_GATHER_CHUNK_BYTES = 256 * 1024 * 1024

_STRATEGIES = ("auto", "dense", "gather")


class SpmmPlan:
    """A prepared, reusable execution schedule for one V:N:M operand.

    Parameters
    ----------
    matrix:
        The sparse LHS.  Its derived views are memoized on the matrix, so
        building several plans for one matrix re-uses the preparation.
    strategy:
        ``"auto"`` (default), ``"dense"`` or ``"gather"`` — see the module
        docstring.
    config:
        Optional kernel template configuration.  The numerics are
        independent of the tiling; the config is carried so call sites can
        pass one object around for the functional and performance paths.
    """

    def __init__(
        self,
        matrix: VNMSparseMatrix,
        strategy: str = "auto",
        config: Optional[KernelConfig] = None,
    ) -> None:
        if not isinstance(matrix, VNMSparseMatrix):
            raise TypeError("SpmmPlan expects a VNMSparseMatrix operand")
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; use one of {_STRATEGIES}")
        self.matrix = matrix
        self.strategy = strategy
        self.config = config
        # One-time preparation (memoized on the matrix across plans).
        self.condensed16 = np.asarray(matrix.to_condensed(), dtype=np.float16).astype(np.float32)
        self.gather_indices = matrix.selected_column_indices()  # (R/V, K/M*4)
        self.metadata = matrix.packed_metadata()
        self._dense16: Optional[np.ndarray] = None
        # The auto strategy depends only on C, and serving re-executes one
        # plan hundreds of times per window at a handful of distinct C
        # values — memoize the cost-model verdict per column count.
        self._strategy_cache: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Cached plan lookup
    # ------------------------------------------------------------------
    @classmethod
    def for_matrix(
        cls,
        matrix: VNMSparseMatrix,
        strategy: str = "auto",
        config: Optional[KernelConfig] = None,
    ) -> "SpmmPlan":
        """The memoized plan of ``matrix`` (built on first use).

        Plans are cached per (strategy,) on the matrix itself, so repeated
        ``spmm`` calls — every layer forward, every sweep point — reuse one
        prepared schedule.  The cache lives for the life of the matrix and
        is naturally invalidated by constructing a new one.
        """
        if not isinstance(matrix, VNMSparseMatrix):
            raise TypeError("SpmmPlan expects a VNMSparseMatrix operand")
        key = ("spmm_plan", strategy)
        plan = matrix._memo.get(key)
        if plan is None:
            plan = cls(matrix, strategy=strategy, config=config)
            matrix._memo[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def condensed_k(self) -> int:
        """Width of the condensed operand (``K/M * 4``)."""
        return self.condensed16.shape[1]

    @property
    def dense16(self) -> np.ndarray:
        """The fp16-rounded dense operand (built lazily, cached)."""
        if self._dense16 is None:
            self._dense16 = np.asarray(self.matrix.to_dense(), dtype=np.float16).astype(
                np.float32
            )
        return self._dense16

    def resolve_strategy(self, c: int) -> str:
        """The strategy ``execute`` will use for a C-column RHS."""
        if self.strategy != "auto":
            return self.strategy
        a = self.matrix
        r, k = a.shape
        kc = self.condensed_k
        gather_bytes = a.row_blocks * kc * c * 4.0
        gather_cost = gather_bytes / _GATHER_BYTES_PER_SECOND + (
            2.0 * r * kc * c / _BLOCK_GEMM_FLOPS
        )
        dense_cost = 2.0 * r * k * c / _DENSE_GEMM_FLOPS
        return "dense" if dense_cost <= gather_cost else "gather"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, b: np.ndarray, bias: Optional[np.ndarray] = None) -> np.ndarray:
        """``A @ B (+ bias)`` with fp16-operand / fp32-accumulate numerics.

        ``b`` may be ``(K, C)`` (returns ``(R, C)``) or a batch
        ``(B, K, C)`` (returns ``(B, R, C)``).
        """
        a = self.matrix
        b = np.asarray(b)
        if b.ndim not in (2, 3) or b.shape[-2] != a.k:
            raise ValueError(
                f"B must have shape ({a.k}, C) or (batch, {a.k}, C), got {b.shape}"
            )
        b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
        c = b.shape[-1]
        strategy = self._strategy_cache.get(c)
        if strategy is None:
            strategy = self.resolve_strategy(c)
            self._strategy_cache[c] = strategy
        if strategy == "dense" and not np.isfinite(np.sum(b16, dtype=np.float64)):
            # The dense schedule multiplies the zero entries of the
            # densified operand against *every* B row, so a non-finite
            # value in a row no block selects would leak NaN (0 * inf)
            # into the output.  The gather schedule only ever touches the
            # selected rows — exactly like the loop reference — so it is
            # the correct formulation for non-finite inputs.  The screen
            # is a float64 sum: every finite fp16-representable value is
            # <= 65504, so the sum can only be non-finite when an element
            # is (NaN/Inf propagate), and it needs no bool temporary.
            strategy = "gather"
        if strategy == "dense":
            # matmul broadcasts (R, K) @ (B, K, C) into one GEMM per slab,
            # so each slab's result is bit-identical to its 2-D call.
            out = np.matmul(self.dense16, b16)
        else:
            out = self._execute_gather(b16)

        if bias is not None:
            r = a.shape[0]
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape not in {(r,), (r, 1)}:
                raise ValueError(f"bias must have shape ({r},), got {bias.shape}")
            out += bias.reshape(r, 1)
        return out

    def _execute_gather(self, b16: np.ndarray) -> np.ndarray:
        """Condensed-operand schedule: chunked gather + stacked matmul.

        ``b16`` may be ``(K, C)`` or ``(B, K, C)``.  The batched form
        broadcasts the condensed row-block operands against a per-slab
        gather, so every slab runs the exact GEMMs of its standalone 2-D
        call (slab-bit-exactness; chunking does not change any per-block
        GEMM, only how many are stacked per ``matmul`` dispatch).
        """
        a = self.matrix
        r = a.shape[0]
        c = b16.shape[-1]
        v = a.v
        kc = self.condensed_k
        cond = self.condensed16.reshape(a.row_blocks, v, kc)
        batched = b16.ndim == 3
        slabs = b16.shape[0] if batched else 1
        out = np.empty((slabs, r, c), dtype=np.float32)
        out_blocks = out.reshape(slabs, a.row_blocks, v, c)
        chunk = max(1, int(_GATHER_CHUNK_BYTES // max(1, slabs * kc * c * 4)))
        for lo in range(0, a.row_blocks, chunk):
            hi = min(lo + chunk, a.row_blocks)
            if batched:
                b_sel = b16[:, self.gather_indices[lo:hi]]  # (B, chunk, K/M*4, C)
            else:
                b_sel = b16[self.gather_indices[lo:hi]][None]  # (1, chunk, K/M*4, C)
            np.matmul(cond[lo:hi], b_sel, out=out_blocks[:, lo:hi])
        return out if batched else out[0]
