"""End-to-end performance model of the Spatha SpMM kernel.

Combines the stage-level traffic/overhead breakdown
(:mod:`repro.kernels.spatha.stages`) with the tiling arithmetic
(:mod:`repro.kernels.spatha.tiles`) and the roofline combinator
(:mod:`repro.hardware.roofline`) into one :class:`~repro.kernels.common.KernelResult`.

Two structural choices distinguish the model from the generic roofline used
by the baselines:

* the stage-3 output epilogue is charged **serially** (it runs after a
  block's main loop and cannot overlap its own compute), which is what
  makes the 32-bit-store ablation of Figure 10 visible; and
* the column-loc dependent-load stalls are added as explicit overhead,
  which is what the Figure 9 ablation toggles.
"""

from __future__ import annotations

from typing import Optional

from .config import KernelConfig, default_config
from .stages import compute_stage_breakdown
from .tiles import compute_tile_counts
from ..common import GemmProblem, KernelResult
from ...hardware.memory import TransactionModel, smem_cycles
from ...hardware.occupancy import active_sms
from ...hardware.roofline import roofline_cost
from ...hardware.spec import GPUSpec, rtx3090


#: Sustained fraction of the Sparse Tensor Core peak achieved by Spatha's
#: inner loop.  Matches the dense baseline's efficiency so the 2:4 speedup
#: converges to the hardware's 2x at large arithmetic intensity, as in the
#: paper's Figure 12.
SPATHA_COMPUTE_EFFICIENCY = 0.45


def estimate_time(
    problem: GemmProblem,
    config: Optional[KernelConfig] = None,
    gpu: Optional[GPUSpec] = None,
) -> KernelResult:
    """Modelled execution time of the Spatha SpMM on ``problem``.

    The problem must carry its V:N:M configuration (``v``, ``n``, ``m``).
    """
    gpu = gpu or rtx3090()
    if problem.v is None:
        raise ValueError("Spatha requires the problem to specify the vector size V")
    if problem.n is None or problem.m is None:
        raise ValueError("Spatha requires the problem to specify the N:M pattern")
    config = config or default_config(problem.v)
    if config.bs_r != problem.v:
        config = config.with_options(bs_r=problem.v, ws_r=min(config.ws_r, problem.v))

    counts = compute_tile_counts(problem.r, problem.k, problem.c, problem.m, config)
    stages = compute_stage_breakdown(problem, config, counts, gpu)
    resources = config.block_resources()

    cost = roofline_cost(
        gpu=gpu,
        flops=stages.issued_flops,
        traffic=stages.traffic,
        resources=resources,
        total_blocks=counts.total_blocks,
        use_tensor_cores=True,
        sparse_tensor_cores=True,
        compute_efficiency=SPATHA_COMPUTE_EFFICIENCY,
        gmem_tx=TransactionModel(access_bits=128),
        smem_tx=TransactionModel(access_bits=128),
        smem_conflict_factor=1.0,
        pipeline_stages=config.batch_size,
        extra_overhead_cycles=stages.columnloc_stall_cycles,
    )

    # Stage-3 epilogue: the conflict (and, for 32-bit stores, the narrower
    # transaction) penalty applies to the staging traffic only, and the
    # epilogue runs serially after the main loop.
    n_active = max(1, active_sms(counts.total_blocks, resources, gpu))
    base_epilogue = smem_cycles(
        stages.stage3_smem_bytes,
        gpu,
        active_sms=n_active,
        tx=TransactionModel(access_bits=128),
        conflict_factor=1.0,
    )
    actual_epilogue = smem_cycles(
        stages.stage3_smem_bytes,
        gpu,
        active_sms=n_active,
        tx=stages.output_tx,
        conflict_factor=stages.output_conflict_factor,
    )
    # The base (conflict-free, wide) staging cost is already inside the
    # overlapped smem term of the roofline; only charge the serial portion.
    cost.overhead_cycles += actual_epilogue
    cost.smem_cycles = max(0.0, cost.smem_cycles - base_epilogue)
    cost.add_component("stage3_epilogue", actual_epilogue)
    cost.add_component("columnloc_stall", stages.columnloc_stall_cycles)

    details = {
        "config": config.describe(),
        "tile_counts": counts,
        "issued_flops": stages.issued_flops,
        "columnloc_stall_cycles": stages.columnloc_stall_cycles,
        "output_conflict_factor": stages.output_conflict_factor,
        "b_refetch_gmem_bytes": stages.traffic.gmem_read_bytes,
    }
    return KernelResult(kernel="spatha_spmm", problem=problem, cost=cost, details=details)


def speedup_vs_dense(
    problem: GemmProblem,
    config: Optional[KernelConfig] = None,
    gpu: Optional[GPUSpec] = None,
) -> float:
    """Convenience: Spatha speedup over the cuBLAS dense baseline."""
    from .. import cublas

    gpu = gpu or rtx3090()
    sparse = estimate_time(problem, config=config, gpu=gpu)
    dense = cublas.estimate_time(problem, gpu=gpu)
    return sparse.speedup_over(dense)


def theoretical_speedup_cap(n: int, m: int) -> float:
    """Ideal speedup of an N:M pattern over dense on SPTC hardware.

    The sparse pipe retires the condensed operand (four columns per M
    group) at twice the dense rate, so the cap is ``M / (2 * 4 / 2) = M/4 *
    2 = M/2`` for N=2 — the 5x/10x/20x/50x figures the paper quotes for
    2:10/2:20/2:40/2:100.  For general N the cap is ``m / (2 * n) * 2``.
    """
    if n <= 0 or m <= 0 or n > m:
        raise ValueError(f"invalid N:M pattern {n}:{m}")
    return m / float(n)
