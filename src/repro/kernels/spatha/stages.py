"""Stage-level cost model of the Spatha kernel (Section 4.1).

The kernel time is assembled from the three stages the paper describes:

* **Stage 1 — data loading** (Figure 5): column-loc prefetch, A/B tile
  movement GMEM -> SMEM -> RF with asynchronous pipelining of depth
  ``batchSize``.  The column-loc indirection adds a partially hidden
  dependent-load latency per k-step; disabling it (``use_column_loc=False``,
  the Figure 9 ablation) removes both its traffic and that latency.
* **Stage 2 — computation** (Figure 6): ``mma.sp`` issue over the condensed
  operand at the Sparse Tensor Core rate.
* **Stage 3 — result storage** (Figure 8): staging of fp32 partials in
  shared memory and 128-bit write-back, either with the conflict-free
  padded layout (wide stores) or with plain 32-bit stores (the Figure 10
  ablation), whose bank conflicts are taken from the simulator in
  :mod:`repro.hardware.banks`.

Each stage produces byte counts (a :class:`~repro.hardware.memory.TrafficRecord`)
plus stage-specific overhead cycles; the perf model feeds them to the
roofline combinator.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import KernelConfig
from .tiles import TileCounts, condensed_k
from ..common import GemmProblem
from ...formats.vnm import SELECTED_COLUMNS
from ...hardware.banks import conflict_degree_for_layout
from ...hardware.memory import TrafficRecord, TransactionModel, dtype_bytes
from ...hardware.occupancy import blocks_per_sm
from ...hardware.spec import GPUSpec


@dataclass(frozen=True)
class StageBreakdown:
    """Traffic and overhead contributions of the three kernel stages."""

    traffic: TrafficRecord
    #: Logical FLOPs issued to the sparse tensor cores.
    issued_flops: float
    #: Dependent-load stall cycles not hidden by the prefetch pipeline.
    columnloc_stall_cycles: float
    #: Bank-conflict serialisation factor of the stage-3 SMEM stores.
    output_conflict_factor: float
    #: Transaction model of the stage-3 SMEM stores (32- or 128-bit).
    output_tx: TransactionModel
    #: Bytes of stage-3 SMEM staging traffic (reported separately so the
    #: ablation benchmarks can show where the 32-bit penalty comes from).
    stage3_smem_bytes: float


def _b_refetch_factor(row_blocks: int) -> float:
    """How many times the selected B rows stream from DRAM, on average.

    Different V-row blocks select different (but heavily overlapping, for
    real weight distributions) column subsets; the L2 serves part of the
    re-reads.  The factor grows mildly with the number of row blocks and is
    capped — the empirical middle ground that reproduces the paper's
    near-theoretical-cap speedups (Figure 9) while still penalising small
    V values (Figure 10).
    """
    if row_blocks <= 1:
        return 1.0
    return min(8.0, 1.0 + 0.15 * (row_blocks - 1))


def compute_stage_breakdown(
    problem: GemmProblem,
    config: KernelConfig,
    counts: TileCounts,
    gpu: GPUSpec,
) -> StageBreakdown:
    """Assemble the traffic/overhead contributions of all three stages."""
    if problem.n is None or problem.m is None:
        raise ValueError("Spatha requires an N:M pattern on the problem description")
    r, k, c = problem.r, problem.k, problem.c
    n, m = problem.n, problem.m
    elem = dtype_bytes(problem.precision)
    kc = condensed_k(k, m)
    groups = kc // SELECTED_COLUMNS  # padded group count when K % M != 0
    row_blocks = counts.grid_rows

    traffic = TrafficRecord()

    # ------------------------------------------------------------------
    # Stage 1 — GMEM -> SMEM -> RF
    # ------------------------------------------------------------------
    # A: values + 2-bit m-indices, streamed once per column of blocks that
    # shares the row stripe (L2 keeps the compressed operand resident for
    # the common sizes, so one pass is charged).
    a_values_bytes = r * groups * n * elem
    a_metadata_bytes = r * groups * n * 0.25
    traffic.gmem_read_bytes += a_values_bytes + a_metadata_bytes

    # column-loc: one int32 per selected column per row block, prefetched.
    columnloc_bytes = row_blocks * groups * SELECTED_COLUMNS * 4.0 if config.use_column_loc else 0.0
    traffic.gmem_read_bytes += columnloc_bytes

    # B: each row block streams its selected rows; partial L2 reuse across
    # row blocks is captured by the refetch factor.
    b_selected_bytes = kc * c * elem
    traffic.gmem_read_bytes += b_selected_bytes * _b_refetch_factor(row_blocks)

    # SMEM staging of stage 1: A tiles are written once per (row block x
    # column block), B tiles once per block; both are read back once into
    # the register file (the storage order of Figure 7 avoids ldmatrix
    # replays, so one read per element is the right charge).
    a_smem = a_values_bytes * counts.grid_cols
    b_smem = b_selected_bytes * row_blocks
    traffic.smem_write_bytes += a_smem + b_smem
    traffic.smem_read_bytes += a_smem + b_smem

    # Dependent-load latency of the column-loc indirection: each k-step must
    # know its selected columns before the B tile fetch can issue.  The
    # two-level prefetch hides most of it; deeper pipelines hide more.
    if config.use_column_loc:
        hidden = 1.0 - 0.5 ** config.batch_size  # 2 stages hide 75%, 3 stages 87.5%, ...
        resources = config.block_resources()
        occ = blocks_per_sm(resources, gpu)
        concurrent = max(1, occ.blocks_per_sm * gpu.num_sms)
        sequential_rounds = max(1.0, counts.total_blocks / concurrent)
        # Per-k-step dependent-load exposure (mostly hidden by the two-level
        # prefetch) plus one unhidden fetch chain at the start of every
        # thread block (prefetch cannot run ahead of the first tile), which
        # is why the overhead is relatively more visible at very high
        # sparsity where each block does little work (Figure 9, 2:100).
        per_step_stall = gpu.gmem.latency_cycles * (1.0 - hidden) * 0.5
        per_block_stall = gpu.gmem.latency_cycles * 1.5
        columnloc_stall = (counts.k_steps * per_step_stall + per_block_stall) * sequential_rounds
    else:
        columnloc_stall = 0.0

    # ------------------------------------------------------------------
    # Stage 2 — mma.sp issue
    # ------------------------------------------------------------------
    issued_flops = 2.0 * r * kc * c  # logical FLOPs retired by the sparse pipe

    # ------------------------------------------------------------------
    # Stage 3 — output staging and write-back
    # ------------------------------------------------------------------
    stage3_bytes = r * c * 4.0 * 2.0  # fp32 partials written then read back
    traffic.smem_write_bytes += stage3_bytes / 2.0
    traffic.smem_read_bytes += stage3_bytes / 2.0
    traffic.gmem_write_bytes += r * c * elem

    if config.wide_output_stores:
        output_tx = TransactionModel(access_bits=128)
        conflict = conflict_degree_for_layout("spatha_padded", access_bits=128, bsc=config.bs_c)
    else:
        output_tx = TransactionModel(access_bits=32)
        conflict = conflict_degree_for_layout("naive_row_major", access_bits=32, bsc=config.bs_c)
        conflict = max(conflict, 2.0)  # un-padded narrow stores never go conflict-free

    return StageBreakdown(
        traffic=traffic,
        issued_flops=issued_flops,
        columnloc_stall_cycles=columnloc_stall,
        output_conflict_factor=conflict,
        output_tx=output_tx,
        stage3_smem_bytes=stage3_bytes,
    )
