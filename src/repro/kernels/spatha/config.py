"""Kernel template configuration of Spatha (Section 4.1).

Spatha is a *template-based* library: the CUDA kernel is instantiated for a
particular combination of thread-block tile, warp tile, ``mma`` instruction
shape and software-pipelining depth, and the best instantiation depends on
the GEMM size and the V:N:M configuration.  :class:`KernelConfig` captures
exactly the parameters the paper lists:

* ``BSr x BSk x BSc`` — thread-block tile.  ``BSr`` always equals the
  vector size ``V`` (each thread block owns one block row of the V:N:M
  structure so the column-loc entries it loads apply to all of its rows).
* ``WSr x WSk x WSc`` — warp tile.
* ``MMA_r x MMA_k x MMA_c`` — instruction shape (``m16n8k32`` for fp16).
* ``batchSize`` — number of in-flight asynchronous copy stages.

The k-extent parameters (``BSk`` / ``WSk`` / ``MMA_k``) are expressed in
*condensed* columns — the selected-column space of the V:N:M format, where
each original group of M columns contributes four — because that is the
space the SPTC instructions actually traverse.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ...hardware.isa import MmaShape, default_sparse_shape
from ...hardware.occupancy import BlockResources
from ...formats.vnm import SELECTED_COLUMNS


class UnsupportedTilingError(ValueError):
    """The problem has no launchable template instantiation.

    Raised when the template space cannot tile the operand — a V with no
    valid warp-tile divisor, or an R not divisible by ``BSr = V``.  This is
    the one *expected* tuner failure: the dispatcher handles it by costing
    the padded launch the real library would run instead.  A subclass of
    :class:`ValueError` so existing callers that treat it as an
    invalid-problem error keep working; the dispatcher catches exactly this
    type so genuine model bugs are never swallowed.
    """


@dataclass(frozen=True)
class KernelConfig:
    """One instantiation of the Spatha SpMM template."""

    #: Thread-block tile rows; must equal the V:N:M vector size V.
    bs_r: int = 128
    #: Thread-block tile k-extent in condensed (selected-column) space.
    bs_k: int = 32
    #: Thread-block tile output columns.
    bs_c: int = 64
    #: Warp tile rows.
    ws_r: int = 32
    #: Warp tile k-extent in condensed space.
    ws_k: int = 32
    #: Warp tile output columns.
    ws_c: int = 32
    #: Tensor-core instruction shape.
    mma: MmaShape = default_sparse_shape("fp16")
    #: Software pipelining depth of the GMEM->SMEM copies (cp.async stages).
    batch_size: int = 2
    #: Whether stage-3 stores to shared memory use 128-bit transactions
    #: with the conflict-free padded layout (Figure 8) or plain 32-bit ones.
    wide_output_stores: bool = True
    #: Whether the column-loc indirection is used (the ablation of Figure 9
    #: disables it to measure its overhead by using fixed indices instead).
    use_column_loc: bool = True

    def __post_init__(self) -> None:
        if min(self.bs_r, self.bs_k, self.bs_c, self.ws_r, self.ws_k, self.ws_c) <= 0:
            raise ValueError("all tile dimensions must be positive")
        if self.bs_r % self.ws_r or self.bs_c % self.ws_c:
            raise ValueError("warp tile must divide the thread-block tile (rows and cols)")
        if self.ws_r % self.mma.m or self.ws_c % self.mma.n:
            raise ValueError("mma shape must divide the warp tile (rows and cols)")
        if self.ws_k % self.mma.k:
            raise ValueError("mma k must divide the warp-tile k extent")
        if self.bs_k % self.ws_k:
            raise ValueError("warp-tile k extent must divide the block-tile k extent")
        if self.bs_k % SELECTED_COLUMNS:
            raise ValueError("bs_k must be a multiple of 4 condensed columns (one M-group)")
        if self.batch_size < 1:
            raise ValueError("batch_size (pipeline depth) must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def warps_per_block(self) -> int:
        """Number of warps per thread block."""
        return (self.bs_r // self.ws_r) * (self.bs_c // self.ws_c)

    @property
    def threads_per_block(self) -> int:
        """Threads per thread block."""
        return self.warps_per_block * 32

    @property
    def values_per_condensed_column_pair(self) -> int:
        """Stored values per row per 4 condensed columns (the 2 of 2:4)."""
        return 2

    def smem_bytes(self) -> int:
        """Shared memory footprint of one thread block.

        Double-buffered (``batch_size`` deep) A-value and B tiles plus the
        fp32 output staging buffer of stage 3 (with its padding) and the
        column-loc prefetch buffer.
        """
        a_tile = self.bs_r * (self.bs_k // 2) * 2  # half the condensed cols stored, fp16
        b_tile = self.bs_k * self.bs_c * 2
        staging = self.bs_r * self.bs_c * 4
        staging += staging // 32  # padding elements of the conflict-free layout
        column_loc = self.bs_k * 4  # int32 per condensed column of the current tile
        return self.batch_size * (a_tile + b_tile) + staging + column_loc

    def registers_per_thread(self) -> int:
        """Estimated register usage per thread (accumulators + fragments)."""
        acc = (self.ws_r * self.ws_c) // 32  # fp32 accumulators per thread
        frag = (self.mma.lhs_elements + self.mma.rhs_elements) // 32 + 8
        return min(255, acc + frag + 40)

    def block_resources(self) -> BlockResources:
        """Resource record used by the occupancy model."""
        return BlockResources(
            threads=self.threads_per_block,
            registers_per_thread=self.registers_per_thread(),
            smem_bytes=self.smem_bytes(),
        )

    def with_options(self, **kwargs) -> "KernelConfig":
        """Copy of this config with selected fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Human-readable one-line description (used in benchmark tables)."""
        return (
            f"BS={self.bs_r}x{self.bs_k}x{self.bs_c} WS={self.ws_r}x{self.ws_k}x{self.ws_c} "
            f"{self.mma.name} pipe={self.batch_size} "
            f"{'128b' if self.wide_output_stores else '32b'}-stores "
            f"{'cloc' if self.use_column_loc else 'fixed-idx'}"
        )


def default_config(v: int = 128, bs_c: int = 64) -> KernelConfig:
    """The template instantiation used when no tuning is requested."""
    ws_r = 32 if v >= 32 else max(16, v)
    return KernelConfig(bs_r=v, bs_c=bs_c, ws_r=ws_r)


def candidate_configs(v: int, c: int) -> List[KernelConfig]:
    """Search space the auto-tuner explores for a given V and output width C.

    The space mirrors the template parameters the paper tunes: output-tile
    width, warp tile, pipelining depth.  ``BSr`` is pinned to ``V``.
    """
    configs: List[KernelConfig] = []
    ws_r = 32 if v >= 32 else max(16, v)
    for bs_c in (32, 64, 128):
        if bs_c > max(32, c):
            continue
        for ws_c in (16, 32, 64):
            if ws_c > bs_c or bs_c % ws_c:
                continue
            if ws_c % 8:
                continue
            for batch in (2, 3, 4):
                for bs_k in (32, 64):
                    try:
                        config = KernelConfig(
                            bs_r=v,
                            bs_k=bs_k,
                            bs_c=bs_c,
                            ws_r=ws_r,
                            ws_k=32,
                            ws_c=ws_c,
                            batch_size=batch,
                        )
                    except ValueError:
                        continue
                    # Instantiations that do not fit the per-block shared
                    # memory limit cannot be launched; skip them here so the
                    # tuner only ranks viable kernels.
                    if config.smem_bytes() > 100 * 1024:
                        continue
                    configs.append(config)
    if not configs:
        try:
            configs.append(default_config(v))
        except ValueError as exc:
            raise UnsupportedTilingError(
                f"no launchable template instantiation for V={v}"
            ) from exc
    return configs
