"""Spatha library facade.

This module is the public face of the reproduction's Spatha: the handful of
calls a downstream user needs — compress a pruned matrix into V:N:M, run
the SpMM, and ask for the modelled execution time — without touching the
tile/stage machinery underneath.  It mirrors the surface the real library
exposes through its PyTorch/STen integration (``spatha.vnm_sparsifier`` and
``spatha.spmm`` in the paper's Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .config import KernelConfig, default_config
from .perf_model import estimate_time as _estimate_time
from .plan import SpmmPlan
from .spmm import spmm as _spmm
from .spmm import spmm_reference
from .tuner import SpathaTuner
from ..common import GemmProblem, KernelResult
from ...formats.vnm import VNMSparseMatrix
from ...pruning.vnm import vnm_mask
from ...pruning.masks import apply_mask
from ...hardware.spec import GPUSpec, rtx3090


@dataclass
class Spatha:
    """High-level handle bundling a GPU model and an auto-tuner.

    Parameters
    ----------
    gpu:
        Hardware description used by the performance model (defaults to the
        paper's RTX 3090).
    autotune:
        When True (default) :meth:`estimate` and :meth:`run` pick the best
        template instantiation per problem; otherwise the default
        configuration for the problem's V is used.
    """

    gpu: GPUSpec = None  # type: ignore[assignment]
    autotune: bool = True

    def __post_init__(self) -> None:
        if self.gpu is None:
            self.gpu = rtx3090()
        self._tuner = SpathaTuner(gpu=self.gpu)

    # ------------------------------------------------------------------
    # Format helpers
    # ------------------------------------------------------------------
    def compress(self, dense: np.ndarray, v: int, n: int, m: int, prune: bool = True) -> VNMSparseMatrix:
        """Compress a dense matrix into V:N:M, optionally pruning it first.

        With ``prune=True`` (default) magnitude V:N:M pruning is applied;
        with ``prune=False`` the matrix must already obey the pattern.
        """
        if prune:
            pruned = apply_mask(np.asarray(dense, dtype=np.float64), vnm_mask(dense, v=v, n=n, m=m))
            return VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m, strict=True)
        return VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def spmm(
        self,
        a: VNMSparseMatrix,
        b: np.ndarray,
        bias: Optional[np.ndarray] = None,
        config: Optional[KernelConfig] = None,
    ) -> np.ndarray:
        """Numerical SpMM result (``A @ B + bias``).

        ``b`` may be ``(K, C)`` or a batch ``(B, K, C)``; execution reuses
        the operand's memoized :class:`SpmmPlan`.
        """
        return _spmm(a, b, bias=bias, config=config)

    def plan(self, a: VNMSparseMatrix, config: Optional[KernelConfig] = None) -> SpmmPlan:
        """The (memoized) batched execution plan for ``a``.

        Building the plan ahead of time — e.g. for every sparse layer of a
        model before serving — moves all operand preparation out of the
        first forward pass.
        """
        return SpmmPlan.for_matrix(a, config=config)

    def run(
        self,
        a: VNMSparseMatrix,
        b: np.ndarray,
        bias: Optional[np.ndarray] = None,
        config: Optional[KernelConfig] = None,
        name: str = "",
    ) -> KernelResult:
        """Functional + performance result for concrete operands."""
        b = np.asarray(b)
        problem = GemmProblem.from_nm(
            r=a.shape[0], k=a.shape[1], c=b.shape[1], n=a.n, m=a.m, v=a.v, name=name
        )
        result = self.estimate(problem, config=config)
        result.output = self.spmm(a, b, bias=bias, config=config)
        return result

    def estimate(self, problem: GemmProblem, config: Optional[KernelConfig] = None) -> KernelResult:
        """Modelled execution time for a problem description."""
        if config is not None:
            return _estimate_time(problem, config=config, gpu=self.gpu)
        if self.autotune:
            return self._tuner.best_result(problem)
        return _estimate_time(problem, config=default_config(problem.v or 128), gpu=self.gpu)

    def best_config(self, problem: GemmProblem) -> KernelConfig:
        """The tuned template instantiation for ``problem``."""
        return self._tuner.best_config(problem)

    # ------------------------------------------------------------------
    # Verification helper
    # ------------------------------------------------------------------
    @staticmethod
    def verify(a: VNMSparseMatrix, b: np.ndarray, atol: float = 5e-2, rtol: float = 5e-3) -> bool:
        """Check the fast SpMM path against the dense reference."""
        fast = _spmm(a, b)
        ref = spmm_reference(a, b)
        return bool(np.allclose(fast, ref, atol=atol, rtol=rtol))
