"""Template auto-tuner for the Spatha kernel.

Because Spatha is template-based, the paper selects the tile configuration
per problem ("can be tuned depending on the input dynamics, such as GEMM
size or the V:N:M format configuration").  The tuner enumerates the
candidate configurations (:func:`repro.kernels.spatha.config.candidate_configs`)
and ranks them with the performance model — the simulated analogue of an
on-device exhaustive search.  Results are cached per problem signature so
sweeps that revisit the same shape (every figure does) pay the search once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config import KernelConfig, candidate_configs, default_config
from .perf_model import estimate_time
from .tiles import UnsupportedTilingError
from ..common import GemmProblem, KernelResult
from ...hardware.spec import GPUSpec, rtx3090


@dataclass
class TuningRecord:
    """Outcome of tuning one problem: the ranked candidate list."""

    problem: GemmProblem
    results: List[Tuple[KernelConfig, float]] = field(default_factory=list)

    @property
    def best_config(self) -> KernelConfig:
        """The fastest configuration found."""
        if not self.results:
            raise ValueError("tuning record is empty")
        return self.results[0][0]

    @property
    def best_time_us(self) -> float:
        """Modelled time of the fastest configuration."""
        if not self.results:
            raise ValueError("tuning record is empty")
        return self.results[0][1]

    @property
    def worst_time_us(self) -> float:
        """Modelled time of the slowest candidate (tuning headroom)."""
        if not self.results:
            raise ValueError("tuning record is empty")
        return self.results[-1][1]

    @property
    def tuning_gain(self) -> float:
        """Worst / best candidate time — how much tuning matters here."""
        return self.worst_time_us / self.best_time_us


class SpathaTuner:
    """Exhaustive (model-driven) tuner with per-problem caching."""

    def __init__(self, gpu: Optional[GPUSpec] = None) -> None:
        self.gpu = gpu or rtx3090()
        self._cache: Dict[Tuple, TuningRecord] = {}

    @staticmethod
    def _signature(problem: GemmProblem) -> Tuple:
        return (problem.r, problem.k, problem.c, problem.v, problem.n, problem.m, problem.precision)

    def tune(self, problem: GemmProblem) -> TuningRecord:
        """Rank every candidate configuration for ``problem``."""
        if problem.v is None or problem.n is None or problem.m is None:
            raise ValueError("tuning requires a fully specified V:N:M problem")
        sig = self._signature(problem)
        if sig in self._cache:
            return self._cache[sig]
        record = TuningRecord(problem=problem)
        for config in candidate_configs(problem.v, problem.c):
            try:
                result = estimate_time(problem, config=config, gpu=self.gpu)
            except ValueError:
                continue  # config incompatible with this problem (e.g. R % BSr)
            record.results.append((config, result.time_us))
        if not record.results:
            try:
                fallback = default_config(problem.v)
                result = estimate_time(problem, config=fallback, gpu=self.gpu)
            except ValueError as exc:
                # Every candidate failed and so did the default: this problem
                # has no launchable tiling at all.  Surface that as the one
                # *typed* expected failure so callers (the dispatcher's padded
                # proxy path) can distinguish it from genuine model bugs.
                raise UnsupportedTilingError(
                    f"no launchable template instantiation for V={problem.v} "
                    f"on R={problem.r} ({exc})"
                ) from exc
            record.results.append((fallback, result.time_us))
        record.results.sort(key=lambda pair: pair[1])
        self._cache[sig] = record
        return record

    def best_config(self, problem: GemmProblem) -> KernelConfig:
        """Shortcut: the fastest configuration for ``problem``."""
        return self.tune(problem).best_config

    def best_result(self, problem: GemmProblem) -> KernelResult:
        """The kernel result of the fastest configuration."""
        record = self.tune(problem)
        return estimate_time(problem, config=record.best_config, gpu=self.gpu)

    def cache_size(self) -> int:
        """Number of distinct problems tuned so far."""
        return len(self._cache)
