"""Functional V:N:M SpMM (the numerics of the Spatha kernel).

Three execution paths are provided:

* :func:`spmm` — the fast path: a planned, batched schedule
  (:class:`~repro.kernels.spatha.plan.SpmmPlan`) that prepares the condensed
  operand, gather indices and packed metadata once per operand and then
  executes every call without Python-level loops.  The RHS may be 2-D
  ``(K, C)`` or a batch ``(B, K, C)``.
* :func:`spmm_loop_reference` — the retained per-row-block loop of the seed
  implementation: for every V-row block the four selected columns of each
  M-group are gathered from B (exactly the stage-1 gather the kernel
  performs using ``column_loc``) and a dense matmul over the condensed
  operand produces the block's output rows.  The plan's ``gather`` strategy
  is bit-identical to this path; tests assert the equivalence.
* :func:`spmm_reference` — the semantic reference: decompress to dense and
  multiply.  Tests assert all paths (and the tiled simulation in
  :mod:`repro.kernels.spatha.tiles`) agree to fp16 accumulation tolerance.

All paths use fp16 operand rounding with fp32 accumulation, matching
tensor-core numerics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .config import KernelConfig
from .plan import SpmmPlan
from ..common import reference_matmul_fp16
from ...formats.vnm import VNMSparseMatrix


def spmm_reference(a: VNMSparseMatrix, b: np.ndarray) -> np.ndarray:
    """Reference result: decompress the V:N:M operand and multiply."""
    if not isinstance(a, VNMSparseMatrix):
        raise TypeError("spmm_reference expects a VNMSparseMatrix operand")
    return reference_matmul_fp16(a.to_dense(), b)


def spmm(
    a: VNMSparseMatrix,
    b: np.ndarray,
    bias: Optional[np.ndarray] = None,
    config: Optional[KernelConfig] = None,
) -> np.ndarray:
    """Sparse (V:N:M) x dense matrix multiplication: ``A @ B (+ bias)``.

    Parameters
    ----------
    a:
        The sparse LHS in V:N:M layout, logical shape ``(R, K)``.
    b:
        Dense RHS of shape ``(K, C)``, or a batch of RHS operands of shape
        ``(B, K, C)`` (every slab multiplied by the same sparse operand in
        one call — the whole-batch path of the transformer integration).
    bias:
        Optional length-``R`` bias added to every output column (the fused
        epilogue Spatha exposes through its PyTorch/STen integration).
    config:
        Unused by the numerics (the result is independent of the tiling);
        accepted so call sites can pass one object around for both the
        functional and the performance paths.

    Returns
    -------
    np.ndarray
        ``(R, C)`` (or ``(B, R, C)``) float32 output with fp16-operand /
        fp32-accumulate numerics.

    Notes
    -----
    Execution goes through the memoized :class:`SpmmPlan` of ``a``:
    preparation (condensed operand, gather indices, packed metadata) is paid
    once per operand, and every call runs as batched array operations with
    no Python loop over row blocks.
    """
    if not isinstance(a, VNMSparseMatrix):
        raise TypeError("spatha.spmm expects a VNMSparseMatrix operand")
    return SpmmPlan.for_matrix(a, config=config).execute(b, bias=bias)


def spmm_loop_reference(
    a: VNMSparseMatrix,
    b: np.ndarray,
    bias: Optional[np.ndarray] = None,
    config: Optional[KernelConfig] = None,
) -> np.ndarray:
    """The seed per-row-block loop, retained as the equivalence reference.

    Semantically identical to :func:`spmm` on a 2-D RHS; the plan's
    ``gather`` strategy reproduces it bit-exactly.  Kept (and benchmarked in
    ``benchmarks/run_bench.py``) so the vectorized engine always has a
    ground truth and a speedup baseline.
    """
    if not isinstance(a, VNMSparseMatrix):
        raise TypeError("spatha.spmm expects a VNMSparseMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a.k:
        raise ValueError(f"B must have shape ({a.k}, C), got {b.shape}")

    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    cond = np.asarray(a.to_condensed(), dtype=np.float16).astype(np.float32)  # (R, K/M*4)
    sel_cols = a.selected_column_indices()  # (R/V, K/M*4)

    r = a.shape[0]
    c = b.shape[1]
    out = np.empty((r, c), dtype=np.float32)
    v = a.v
    for row_block in range(a.row_blocks):
        rows = slice(row_block * v, (row_block + 1) * v)
        b_sel = b16[sel_cols[row_block]]  # (K/M*4, C) — the column-loc gather
        out[rows] = cond[rows] @ b_sel

    if bias is not None:
        bias = np.asarray(bias, dtype=np.float32)
        if bias.shape not in {(r,), (r, 1)}:
            raise ValueError(f"bias must have shape ({r},), got {bias.shape}")
        out += bias.reshape(r, 1)
    return out


def spmm_dense_baseline(a_dense: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense reference on an already-pruned dense operand (for tests)."""
    return reference_matmul_fp16(a_dense, b)
