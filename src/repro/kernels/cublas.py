"""Dense half-precision GEMM baseline (the paper's cuBLAS counterpart).

Every speedup figure in the paper is normalised to cuBLAS HGEMM on the same
``R x K x C`` problem, so the fidelity of this baseline matters as much as
Spatha's own model.  The model follows how cuBLAS-class GEMMs behave on
Ampere:

* compute: dense tensor-core math at a sustained efficiency well below the
  marketing peak (the paper's Figure 12 shows cuBLAS plateauing around
  55-65 TFLOP/s on a 142 TFLOP/s part);
* memory: each operand streams from DRAM approximately once per kernel —
  large thread-block tiles plus L2 make GEMM compute-bound for the sizes
  the paper sweeps;
* tile quantisation: small problems lose efficiency to partially filled
  waves and launch overhead, which is why all the speedup curves in the
  paper grow with ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .common import GemmProblem, KernelResult, reference_matmul_fp16
from ..hardware.memory import TrafficRecord, TransactionModel, matrix_bytes
from ..hardware.occupancy import BlockResources
from ..hardware.roofline import roofline_cost
from ..hardware.spec import GPUSpec, rtx3090


@dataclass(frozen=True)
class CublasConfig:
    """Tile configuration and efficiency knobs of the dense baseline."""

    #: Thread-block output tile (rows x cols); cuBLAS-class kernels use
    #: large tiles to maximise data reuse.
    tile_r: int = 128
    tile_c: int = 128
    #: Threads per block of the selected kernel.
    threads: int = 256
    #: Registers per thread (drives occupancy).
    registers_per_thread: int = 160
    #: Shared memory per block, bytes (double-buffered A and B tiles).
    smem_bytes: int = 64 * 1024
    #: Sustained fraction of peak dense tensor-core throughput.
    compute_efficiency: float = 0.45
    #: Software pipeline depth (cp.async stages).
    pipeline_stages: int = 3

    def __post_init__(self) -> None:
        if self.tile_r <= 0 or self.tile_c <= 0:
            raise ValueError("tile sizes must be positive")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Functional dense GEMM with tensor-core numerics (fp16 x fp16 -> fp32)."""
    return reference_matmul_fp16(a, b)


#: Tile shapes cuBLAS's internal heuristics choose between.  Modelling the
#: selection (rather than a single fixed tile) matters because real cuBLAS
#: picks the tile that fills the GPU best for each problem shape, and the
#: paper's speedups are measured against that well-tuned baseline.
_CUBLAS_TILE_CANDIDATES = ((256, 128), (128, 256), (128, 128), (128, 64), (64, 128), (64, 64))


def estimate_time(
    problem: GemmProblem,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CublasConfig] = None,
) -> KernelResult:
    """Modelled execution time of cuBLAS HGEMM on ``problem``.

    The ``sparsity`` field of the problem is ignored: the dense baseline
    always performs the full ``2*R*K*C`` FLOPs (that is the point of the
    comparison).  When no explicit ``config`` is given the model emulates
    cuBLAS's heuristic kernel selection by evaluating a small set of tile
    shapes and reporting the fastest.
    """
    gpu = gpu or rtx3090()
    if config is None:
        candidates = [CublasConfig(tile_r=tr, tile_c=tc) for tr, tc in _CUBLAS_TILE_CANDIDATES]
        results = [_estimate_with_config(problem, gpu, cfg) for cfg in candidates]
        return min(results, key=lambda res: res.time_us)
    return _estimate_with_config(problem, gpu, config)


def _estimate_with_config(problem: GemmProblem, gpu: GPUSpec, config: CublasConfig) -> KernelResult:
    """Cost of one specific tile configuration."""
    r, k, c = problem.r, problem.k, problem.c
    flops = 2.0 * r * k * c

    # One-pass streaming traffic for A, B and the output (see module docs).
    traffic = TrafficRecord(
        gmem_read_bytes=matrix_bytes(r, k, problem.precision) + matrix_bytes(k, c, problem.precision),
        gmem_write_bytes=matrix_bytes(r, c, problem.precision),
        # SMEM: every A/B element is staged once and read once per use in
        # the inner product of its tile row/column.
        smem_write_bytes=matrix_bytes(r, k, problem.precision) * (c / config.tile_c)
        + matrix_bytes(k, c, problem.precision) * (r / config.tile_r),
        smem_read_bytes=matrix_bytes(r, k, problem.precision) * (c / config.tile_c)
        + matrix_bytes(k, c, problem.precision) * (r / config.tile_r),
    )

    total_blocks = max(1, -(-r // config.tile_r) * -(-c // config.tile_c))
    resources = BlockResources(
        threads=config.threads,
        registers_per_thread=config.registers_per_thread,
        smem_bytes=config.smem_bytes,
    )
    cost = roofline_cost(
        gpu=gpu,
        flops=flops,
        traffic=traffic,
        resources=resources,
        total_blocks=total_blocks,
        use_tensor_cores=True,
        sparse_tensor_cores=False,
        compute_efficiency=config.compute_efficiency,
        gmem_tx=TransactionModel(access_bits=128),
        smem_tx=TransactionModel(access_bits=128),
        pipeline_stages=config.pipeline_stages,
    )
    return KernelResult(
        kernel="cublas_hgemm",
        problem=problem,
        cost=cost,
        details={"tile": (config.tile_r, config.tile_c), "blocks": total_blocks},
    )


def run(
    a: np.ndarray,
    b: np.ndarray,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CublasConfig] = None,
    name: str = "",
) -> KernelResult:
    """Functional + performance result for concrete operands."""
    a = np.asarray(a)
    b = np.asarray(b)
    problem = GemmProblem(r=a.shape[0], k=a.shape[1], c=b.shape[1], sparsity=0.0, name=name)
    result = estimate_time(problem, gpu=gpu, config=config)
    result.output = gemm(a, b)
    return result
