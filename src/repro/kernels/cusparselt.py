"""cuSparseLt baseline: the vendor 2:4 SpMM library.

cuSparseLt is NVIDIA's library for Sparse Tensor Core SpMM; it only accepts
the native 1:2 / 2:4 patterns (50% sparsity).  In the paper it is the
reference point for Figure 12 (Spatha matches it at large GEMMs and beats
it by up to 1.38x at small ones) and appears in Figure 13 pinned at the
50% sparsity column.

Model highlights that produce those behaviours:

* math runs on the Sparse Tensor Cores at the 2x rate — the library is an
  excellent kernel for large, regular problems;
* the B operand is dense and is streamed in full (2:4 halves A's footprint
  but not B's);
* the library selects from a small set of large tile configurations and
  adds measurable host-side setup latency per call (handle/plan lookup),
  which is what costs it efficiency on the small-K end of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .common import GemmProblem, KernelResult, reference_matmul_fp16
from ..formats.metadata import metadata_bytes
from ..formats.nm import NMSparseMatrix
from ..hardware.memory import TrafficRecord, TransactionModel, matrix_bytes
from ..hardware.occupancy import BlockResources
from ..hardware.roofline import roofline_cost
from ..hardware.spec import GPUSpec, rtx3090


@dataclass(frozen=True)
class CusparseLtConfig:
    """Modelled kernel/runtime parameters of cuSparseLt SpMM."""

    tile_r: int = 128
    tile_c: int = 128
    threads: int = 256
    registers_per_thread: int = 168
    smem_bytes: int = 72 * 1024
    #: Sustained fraction of the sparse tensor-core peak.
    compute_efficiency: float = 0.45
    pipeline_stages: int = 3
    #: Extra per-call host/runtime latency (plan lookup, handle checks), us.
    runtime_overhead_us: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.runtime_overhead_us < 0:
            raise ValueError("runtime_overhead_us must be non-negative")


def spmm(a_sparse: NMSparseMatrix, b: np.ndarray) -> np.ndarray:
    """Functional 2:4 SpMM: decode the N:M operand and multiply.

    The kernel consumes the compressed ``values`` array and the 2-bit
    metadata directly (mirroring how the hardware multiplexes B rows), so
    the result is numerically identical to the dense reference on the
    decompressed operand.
    """
    if not isinstance(a_sparse, NMSparseMatrix):
        raise TypeError("cusparselt.spmm expects an NMSparseMatrix operand")
    b = np.asarray(b)
    if b.ndim != 2 or b.shape[0] != a_sparse.k:
        raise ValueError(f"B must have shape ({a_sparse.k}, C), got {b.shape}")
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    vals = np.asarray(a_sparse.values, dtype=np.float16).astype(np.float32)
    cols = a_sparse.column_indices()  # (R, K/M*N) absolute columns
    # Gather the B rows each stored value multiplies and accumulate.
    gathered = b16[cols]  # (R, nnz_per_row, C)
    return np.einsum("rn,rnc->rc", vals, gathered, optimize=True)


#: Tile shapes the library's (small) algorithm search chooses between.  The
#: set is intentionally narrower than cuBLAS's: cuSparseLt ships fewer
#: kernel variants, which is part of why Spatha wins on small problems.
_CUSPARSELT_TILE_CANDIDATES = ((256, 128), (128, 128), (128, 256))


def estimate_time(
    problem: GemmProblem,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CusparseLtConfig] = None,
) -> KernelResult:
    """Modelled execution time of cuSparseLt SpMM on a 2:4 problem.

    When no explicit ``config`` is given the model mimics the library's
    ``cusparseLtMatmulSearch`` by evaluating its tile candidates and
    reporting the fastest.

    Raises
    ------
    ValueError
        If the problem's pattern is not the 50% (2:4 or 1:2) sparsity the
        library supports — enforcing the restriction the paper lifts.
    """
    gpu = gpu or rtx3090()
    if config is None:
        candidates = [CusparseLtConfig(tile_r=tr, tile_c=tc) for tr, tc in _CUSPARSELT_TILE_CANDIDATES]
        results = [estimate_time(problem, gpu=gpu, config=cfg) for cfg in candidates]
        return min(results, key=lambda res: res.time_us)
    if problem.n is not None and problem.m is not None:
        if (problem.n, problem.m) not in ((2, 4), (1, 2)):
            raise ValueError(
                f"cuSparseLt only supports the 2:4 / 1:2 patterns, got {problem.n}:{problem.m}"
            )
    elif abs(problem.sparsity - 0.5) > 1e-9:
        raise ValueError("cuSparseLt only supports 50% sparsity")

    r, k, c = problem.r, problem.k, problem.c
    # The kernel issues mma.sp over the compressed operand: the logical
    # dense-equivalent work is 2*R*K*C, retired at the doubled SPTC rate,
    # i.e. it *issues* R*K*C multiply-adds worth of instruction slots.
    issued_flops = 2.0 * r * k * c / 2.0

    a_values_bytes = matrix_bytes(r, k // 2, problem.precision)
    a_meta_bytes = metadata_bytes(r * k // 2)
    traffic = TrafficRecord(
        gmem_read_bytes=a_values_bytes + a_meta_bytes + matrix_bytes(k, c, problem.precision),
        gmem_write_bytes=matrix_bytes(r, c, problem.precision),
        smem_write_bytes=a_values_bytes * max(1.0, c / config.tile_c)
        + matrix_bytes(k, c, problem.precision) * max(1.0, r / config.tile_r),
        smem_read_bytes=a_values_bytes * max(1.0, c / config.tile_c)
        + matrix_bytes(k, c, problem.precision) * max(1.0, r / config.tile_r),
    )

    total_blocks = max(1, -(-r // config.tile_r) * -(-c // config.tile_c))
    resources = BlockResources(
        threads=config.threads,
        registers_per_thread=config.registers_per_thread,
        smem_bytes=config.smem_bytes,
    )
    overhead_cycles = config.runtime_overhead_us * 1e-6 * gpu.sm_clock_hz
    cost = roofline_cost(
        gpu=gpu,
        flops=issued_flops * 2.0,  # logical FLOPs fed to the sparse pipe
        traffic=traffic,
        resources=resources,
        total_blocks=total_blocks,
        use_tensor_cores=True,
        sparse_tensor_cores=True,
        compute_efficiency=config.compute_efficiency,
        gmem_tx=TransactionModel(access_bits=128),
        smem_tx=TransactionModel(access_bits=128),
        pipeline_stages=config.pipeline_stages,
        extra_overhead_cycles=overhead_cycles,
    )
    return KernelResult(
        kernel="cusparselt_spmm",
        problem=problem,
        cost=cost,
        details={"tile": (config.tile_r, config.tile_c), "blocks": total_blocks},
    )


def run(
    a_sparse: NMSparseMatrix,
    b: np.ndarray,
    gpu: Optional[GPUSpec] = None,
    config: Optional[CusparseLtConfig] = None,
    name: str = "",
) -> KernelResult:
    """Functional + performance result for concrete 2:4 operands."""
    b = np.asarray(b)
    problem = GemmProblem.from_nm(
        r=a_sparse.shape[0], k=a_sparse.shape[1], c=b.shape[1], n=a_sparse.n, m=a_sparse.m, name=name
    )
    result = estimate_time(problem, gpu=gpu, config=config)
    result.output = spmm(a_sparse, b)
    return result
