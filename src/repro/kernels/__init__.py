"""SpMM / GEMM kernel libraries (functional numerics + performance models).

* :mod:`~repro.kernels.cublas` — dense HGEMM baseline (the denominator of
  every speedup in the paper).
* :mod:`~repro.kernels.cusparselt` — the vendor 2:4 SpMM library.
* :mod:`~repro.kernels.sputnik` — unstructured CSR SpMM (no tensor cores).
* :mod:`~repro.kernels.clasp` — column-vector sparse SpMM on tensor cores
  (vectorSparse / CLASP).
* :mod:`~repro.kernels.spatha` — the paper's V:N:M SpMM library.
* :mod:`~repro.kernels.dispatch` — the multi-backend dispatch registry that
  picks among the libraries per (format, pattern, shape regime).
"""

from . import clasp, cublas, cusparse, cusparselt, dispatch, sputnik
from .common import GemmProblem, KernelResult, reference_matmul_fp16
from .dispatch import KernelDispatcher, SpmmOperand, default_dispatcher
from .spatha import Spatha

__all__ = [
    "clasp",
    "cublas",
    "cusparse",
    "cusparselt",
    "dispatch",
    "sputnik",
    "GemmProblem",
    "KernelResult",
    "reference_matmul_fp16",
    "KernelDispatcher",
    "SpmmOperand",
    "default_dispatcher",
    "Spatha",
]
