"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that ``pip install -e .`` keeps working on offline environments
whose setuptools cannot build PEP-660 editable wheels (no ``wheel``
package available).
"""

from setuptools import setup

setup()
