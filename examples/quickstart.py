#!/usr/bin/env python3
"""Quickstart: prune a weight matrix to V:N:M and run it through Spatha.

This walks the three core steps of the paper on a small, self-contained
example:

1. prune a dense weight matrix to the V:N:M pattern (magnitude pruning),
2. compress it into the V:N:M storage format (values / m-indices /
   column-loc) and inspect the footprint,
3. run the Spatha SpMM — numerically, against a dense reference, and
   through the performance model to see the projected speedup over cuBLAS
   on the simulated RTX 3090.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.formats import VNMSparseMatrix
from repro.kernels import cublas
from repro.kernels.common import GemmProblem
from repro.kernels.spatha import Spatha, theoretical_speedup_cap
from repro.pruning import vnm_prune


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A "trained" weight matrix and its V:N:M pruning.
    #    V=64 vertical blocks, 2:8 pattern -> 75% sparsity that still maps
    #    onto the 2:4 Sparse Tensor Core hardware.
    # ------------------------------------------------------------------
    out_features, in_features = 512, 1024
    v, n, m = 64, 2, 8
    weight = rng.normal(0.0, 0.02, size=(out_features, in_features))

    result = vnm_prune(weight, v=v, n=n, m=m)
    print(f"pruned {out_features}x{in_features} weight to {v}:{n}:{m}")
    print(f"  achieved sparsity : {result.sparsity:.3f}")
    print(f"  retained energy   : {result.energy(weight):.3f}")

    # ------------------------------------------------------------------
    # 2. Compression into the V:N:M format (Figure 3 of the paper).
    # ------------------------------------------------------------------
    sparse = VNMSparseMatrix.from_dense(result.pruned_weights, v=v, n=n, m=m)
    fp = sparse.footprint("fp16")
    print("compressed structures:")
    print(f"  values     : {sparse.values.shape}  ({fp.values_bytes / 1024:.1f} KiB)")
    print(f"  m-indices  : {sparse.m_indices.shape}  ({fp.metadata_bytes / 1024:.1f} KiB)")
    print(f"  column-loc : {sparse.column_loc.shape}  ({fp.index_bytes / 1024:.1f} KiB)")
    print(f"  compression ratio vs dense fp16: {sparse.compression_ratio('fp16'):.2f}x")

    # ------------------------------------------------------------------
    # 3. SpMM: numerics + modelled performance.
    # ------------------------------------------------------------------
    spatha = Spatha()
    tokens = 4096  # batch of activations (C dimension of the GEMM)
    activations = rng.normal(size=(in_features, tokens)).astype(np.float32)

    output = spatha.spmm(sparse, activations)
    reference = np.asarray(result.pruned_weights, dtype=np.float16).astype(np.float32) @ np.asarray(
        activations, dtype=np.float16
    ).astype(np.float32)
    max_err = np.abs(output - reference).max()
    print(f"SpMM output {output.shape}, max abs error vs dense reference: {max_err:.2e}")

    problem = GemmProblem.from_nm(r=out_features, k=in_features, c=tokens, n=n, m=m, v=v)
    sparse_perf = spatha.estimate(problem)
    dense_perf = cublas.estimate_time(problem)
    print("modelled execution on the simulated RTX 3090:")
    print(f"  cuBLAS dense GEMM : {dense_perf.time_us:9.1f} us")
    print(f"  Spatha {v}:{n}:{m} SpMM : {sparse_perf.time_us:9.1f} us")
    print(
        f"  speedup {dense_perf.time_us / sparse_perf.time_us:.2f}x "
        f"(theoretical cap for {n}:{m} on SPTCs: {theoretical_speedup_cap(n, m):.0f}x)"
    )
    print(f"  tuned kernel configuration: {sparse_perf.details.get('config')}")


if __name__ == "__main__":
    main()
