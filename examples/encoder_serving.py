#!/usr/bin/env python3
"""Quickstart: end-to-end encoder serving on the BERT-large configuration.

One level up from ``examples/serving_throughput.py`` (which serves a single
FFN projection): here the whole transformer encoder is the served unit.
The walk-through:

1. instantiate a BERT-large-configured encoder (two of the 24 layers, the
   same trick the paper uses to fit the GPT-3 study on one GPU) and
   sparsify **every** projection to the paper's flagship 64:2:8 pattern,
2. stand up a :class:`~repro.serving.model_engine.ModelServingEngine` — an
   engine-scoped kernel dispatcher is injected into all twelve sparse
   projections, and one warmed SpMM plan per projection is shared across
   every request the engine will ever serve,
3. serve a window of ragged requests through exact-length dynamic batching
   and verify batched == sequential ``encoder.forward``, bit for bit,
4. replay the same traffic against the async arrival-deadline window policy
   (:class:`~repro.serving.batcher.AsyncWindowBatcher`) — same bits,
5. re-serve the same ragged window in padded-bucket mode
   (``padding="ladder"``): lengths round up a powers-of-two ladder and run
   behind the additive attention mask, consolidating the near-empty
   exact-length buckets into a few full ones at — again — the same bits,
6. serve the same traffic **continuously**
   (:class:`~repro.serving.continuous.ContinuousBatcher` +
   ``serve_continuous``): no windows at all — requests join open ladder
   rungs between engine steps and leave as they complete, with
   deterministic per-request completion metadata and, once more, the same
   bits, and
7. sweep exact vs padded bucketing x fixed vs async vs continuous
   scheduling on the modelled GPU for the capacity view.

Run with::

    PYTHONPATH=src python examples/encoder_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import SpmmOperand
from repro.models import BERT_LARGE, TransformerEncoder
from repro.serving import (
    AsyncWindowBatcher,
    ContinuousBatcher,
    ModelServingEngine,
    Request,
    SimulatedRequest,
    sweep_batch_windows,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A BERT-large-configured encoder, fully sparsified to 64:2:8.
    # ------------------------------------------------------------------
    num_layers = 2
    encoder = TransformerEncoder.init(BERT_LARGE, num_layers=num_layers, seed=0)
    replaced = sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=64))
    print(
        f"model: {BERT_LARGE.name} (hidden {BERT_LARGE.hidden_size}, "
        f"FFN {BERT_LARGE.intermediate_size}), {num_layers} of "
        f"{BERT_LARGE.num_layers} layers instantiated"
    )
    print(f"sparsified {len(replaced)} projections to 64:2:8 (75% sparsity)")

    # ------------------------------------------------------------------
    # 2. The model serving engine: engine-scoped dispatcher + plan registry.
    # ------------------------------------------------------------------
    lengths = [9, 17, 17, 17, 33, 33, 64, 64, 64, 17]
    engine = ModelServingEngine(
        encoder, warm_buckets=sorted(set(lengths)), name="bert-large-server"
    )
    print(
        f"warmed {len(engine.plans)} SpMM plans, "
        f"{engine.dispatcher.cache_size()} dispatch signatures pre-ranked"
    )

    # ------------------------------------------------------------------
    # 3. Serve a ragged window; prove batched == sequential, bit for bit.
    # ------------------------------------------------------------------
    requests = [
        Request(f"req-{i:03d}", rng.normal(size=(t, BERT_LARGE.hidden_size)).astype(np.float32))
        for i, t in enumerate(lengths)
    ]
    batched = engine.serve(requests)
    identical = all(
        np.array_equal(batched[r.request_id], encoder.forward(r.activations[None])[0])
        for r in requests
    )
    stats = engine.stats()
    print(
        f"\nserved {stats['requests']} ragged requests in {stats['batches']} batched "
        f"encoder forwards (mean batch {stats['mean_batch_size']:.1f})"
    )
    print(f"batched == per-request encoder.forward, bit for bit: {identical}")
    print(
        f"plan cache: {stats['plan_cache']['hits']} hits / "
        f"{stats['plan_cache']['misses']} misses across "
        f"{stats['plan_cache']['size']} projection plans"
    )
    per_layer = sorted(stats["per_layer_time_us"].items(), key=lambda kv: -kv[1])[:4]
    print("modelled per-layer hotspots (us):")
    for name, time_us in per_layer:
        print(f"  {name:44s} {time_us:10.1f}")

    # ------------------------------------------------------------------
    # 4. Async arrival-deadline windows: timing changes, bits do not.
    # ------------------------------------------------------------------
    async_encoder = TransformerEncoder.init(BERT_LARGE, num_layers=num_layers, seed=0)
    sparsify_encoder(async_encoder, VNMSparsifier(n=2, m=8, v=64))
    async_engine = ModelServingEngine(
        async_encoder,
        batcher=AsyncWindowBatcher.exact_length(window_us=500.0),
        warm_buckets=sorted(set(lengths)),
        name="bert-large-async",
    )
    timed = [
        Request(r.request_id, r.activations, arrival_us=i * 120.0)
        for i, r in enumerate(requests)
    ]
    async_results = async_engine.serve_arrivals(timed)
    async_identical = all(
        np.array_equal(async_results[r.request_id], batched[r.request_id]) for r in requests
    )
    print(
        f"\nasync windows (500 us deadline): {async_engine.total_batches} closings, "
        f"outputs bit-identical to the one-window serve: {async_identical}"
    )

    # ------------------------------------------------------------------
    # 5. Padded-bucket serving: ragged lengths share ladder rungs behind
    #    the attention mask — fuller buckets, identical bits.
    # ------------------------------------------------------------------
    padded_encoder = TransformerEncoder.init(BERT_LARGE, num_layers=num_layers, seed=0)
    sparsify_encoder(padded_encoder, VNMSparsifier(n=2, m=8, v=64))
    padded_engine = ModelServingEngine(
        padded_encoder, padding="ladder", name="bert-large-padded"
    )
    padded_results = padded_engine.serve(requests)
    padded_identical = all(
        np.array_equal(padded_results[r.request_id], batched[r.request_id])
        for r in requests
    )
    padded_stats = padded_engine.stats()
    print(
        f"\npadded ladder: the same {padded_stats['requests']} ragged requests close in "
        f"{padded_stats['batches']} padded buckets (exact-length needed {stats['batches']}), "
        f"bucket fill {padded_stats['padding']['fill']:.2f}"
    )
    print(f"padded outputs bit-identical to exact-length serving: {padded_identical}")

    # ------------------------------------------------------------------
    # 6. Continuous batching: no windows — requests join open rungs
    #    between engine steps, completions stream out deterministically.
    # ------------------------------------------------------------------
    cont_encoder = TransformerEncoder.init(BERT_LARGE, num_layers=num_layers, seed=0)
    sparsify_encoder(cont_encoder, VNMSparsifier(n=2, m=8, v=64))
    cont_engine = ModelServingEngine(
        cont_encoder,
        padding="ladder",
        batcher=ContinuousBatcher.ladder(),
        name="bert-large-continuous",
    )
    cont_results = cont_engine.serve_continuous(timed, step_us=100.0)
    cont_identical = all(
        np.array_equal(cont_results[r.request_id], batched[r.request_id])
        for r in requests
    )
    print(
        f"\ncontinuous: {cont_engine.steps_executed} engine steps served "
        f"{len(cont_engine.completions)} requests (no window waits), "
        f"outputs bit-identical to the one-window serve: {cont_identical}"
    )
    sample = cont_engine.completions[requests[-1].request_id]
    print(
        f"completion metadata (deterministic), e.g. {sample.request_id}: "
        f"step {sample.step}, rung {sample.rung}, batch of {sample.batch_size}, "
        f"waited {sample.wait_us:.0f} us"
    )

    # ------------------------------------------------------------------
    # 7. Exact vs padded bucketing x fixed vs async vs continuous
    #    scheduling on the modelled GPU (FFN operand).
    # ------------------------------------------------------------------
    operand = SpmmOperand.from_vnm(
        next(lin for name, lin in encoder.named_sparse_layers() if name.endswith("ffn.output")).sparse_weight,
        name="bert-large.ffn.output",
    )
    sim_requests = [
        SimulatedRequest(f"sim-{i:05d}", tokens=lengths[i % len(lengths)], arrival_us=i * 40.0)
        for i in range(256)
    ]
    windows = [200.0, 1000.0, 5000.0]
    rows = []
    for bucketing in ("exact", "ladder"):
        for policy in ("fixed", "async", "continuous"):
            for report in sweep_batch_windows(
                operand, sim_requests, windows, window_policy=policy, bucketing=bucketing
            ):
                s = report.summary()
                rows.append(
                    [
                        bucketing,
                        policy,
                        f"{report.window_us:.0f} us",
                        s["batches"],
                        s["mean_batch_size"],
                        s["throughput_rps"],
                        s["p95_latency_us"],
                        s["p99_latency_us"],
                    ]
                )
    print()
    print(
        format_table(
            [
                "bucketing", "policy", "window", "kernels", "mean batch",
                "req/s", "p95 lat (us)", "p99 lat (us)",
            ],
            rows,
            title="Bucketing x scheduling policy (RTX 3090 model; continuous ignores the window)",
        )
    )


if __name__ == "__main__":
    main()
