#!/usr/bin/env python3
"""Library comparison sweep: Spatha vs cuBLAS / cuSparseLt / Sputnik / CLASP.

A condensed version of the paper's Figures 12 and 13 on a single BERT-large
weight GEMM: sweeps the sparsity level, measures every library with both the
functional kernels (numerical agreement) and the performance models
(projected speedups on the simulated RTX 3090), and prints the comparison
table together with the energy retained by each pruning policy.

Run with::

    python examples/library_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.evaluation.sweeps import dense_baseline, library_point, spatha_point
from repro.formats import CSRMatrix, CVSEMatrix, NMSparseMatrix, VNMSparseMatrix
from repro.kernels import clasp, cublas, cusparselt, sputnik
from repro.kernels.common import GemmProblem
from repro.kernels.spatha import Spatha
from repro.pruning import (
    apply_mask,
    energy_metric,
    magnitude_mask,
    nm_pattern_for_sparsity,
    vector_wise_mask,
    vnm_mask,
)


def numerical_agreement_demo() -> None:
    """All libraries compute the same product on equivalent pruned operands."""
    print("=== numerical agreement across libraries (32 x 64 @ 64 x 16) ===")
    rng = np.random.default_rng(0)
    dense = rng.normal(size=(32, 64))
    pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=4)).astype(np.float32)
    b = rng.normal(size=(64, 16)).astype(np.float32)
    reference = cublas.gemm(pruned, b)

    outputs = {
        "spatha": Spatha(autotune=False).spmm(VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=4), b),
        "cusparselt": cusparselt.spmm(NMSparseMatrix.from_dense(pruned, 2, 4), b),
        "sputnik": sputnik.spmm(CSRMatrix.from_dense(pruned), b),
        "clasp": clasp.spmm(CVSEMatrix.from_dense(pruned, l=8), b),
    }
    for name, out in outputs.items():
        print(f"  {name:<11s} max |err| vs dense reference: {np.abs(out - reference).max():.2e}")
    print()


def performance_sweep() -> None:
    """Projected speedups over cuBLAS across sparsity levels (Figure 13 style)."""
    print("=== projected speedups on a BERT-large weight GEMM (1024 x 4096 x 8192) ===")
    r, k, c = 1024, 4096, 8192
    v = 128
    spatha = Spatha()
    sparsities = (0.5, 0.75, 0.8, 0.9, 0.95, 0.98)

    rows = []
    for s in sparsities:
        n, m = nm_pattern_for_sparsity(s)
        problem = GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)
        dense = dense_baseline(problem)
        sp = spatha_point(problem, spatha, dense)
        row = [f"{int(s * 100)}% ({n}:{m})", round(sp.speedup_vs_dense, 2)]
        row.append(
            round(library_point(problem, "cusparselt", dense).speedup_vs_dense, 2) if (n, m) == (2, 4) else "-"
        )
        row.append(round(library_point(problem, "sputnik", dense).speedup_vs_dense, 2))
        row.append(round(library_point(problem, "clasp", dense).speedup_vs_dense, 2))
        rows.append(row)
    print(
        format_table(
            ["sparsity (N:M)", "Spatha (128:N:M)", "cuSparseLt", "Sputnik", "CLASP (vw_8)"],
            rows,
            title="speedup over cuBLAS (simulated RTX 3090)",
        )
    )
    print()


def energy_comparison() -> None:
    """How much weight magnitude each pruning policy keeps at 90% sparsity."""
    print("=== retained energy at 90% sparsity (1024 x 4000 synthetic layer) ===")
    rng = np.random.default_rng(3)
    # 4000 columns are divisible by the 2:20 group size the 90% level implies.
    weight = rng.normal(0.0, 0.02, size=(1024, 4000))
    n, m = nm_pattern_for_sparsity(0.9)
    rows = [
        ["unstructured (ideal)", round(energy_metric(weight, magnitude_mask(weight, 0.9)), 3)],
        ["V:N:M, V=128", round(energy_metric(weight, vnm_mask(weight, v=128, n=n, m=m)), 3)],
        ["V:N:M, V=32", round(energy_metric(weight, vnm_mask(weight, v=32, n=n, m=m)), 3)],
        ["vector-wise, l=8", round(energy_metric(weight, vector_wise_mask(weight, 0.9, l=8)), 3)],
        ["vector-wise, l=32", round(energy_metric(weight, vector_wise_mask(weight, 0.9, l=32)), 3)],
    ]
    print(format_table(["policy", "energy"], rows))


def main() -> None:
    numerical_agreement_demo()
    performance_sweep()
    energy_comparison()


if __name__ == "__main__":
    main()
