#!/usr/bin/env python3
"""Second-order V:N:M pruning with the structure-decay scheduler (Section 6).

Demonstrates the accuracy-side contribution of the paper on the synthetic
fine-tuning surrogate (see DESIGN.md for the SQuAD substitution):

* magnitude vs second-order (OBS) mask selection at the same V:N:M pattern,
* the effect of the OBS weight-compensation update,
* one-shot pruning vs the gradual structure-decay scheduler at high
  sparsity,
* the combinatorial vs pair-wise saliency solvers.

Run with::

    python examples/second_order_pruning.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.pruning import apply_mask, vnm_mask
from repro.pruning.second_order import (
    QuadraticTask,
    SecondOrderConfig,
    gradual_vnm_prune,
    one_shot_vnm_prune,
    second_order_vnm_prune,
    structure_decay_schedule,
)


def main() -> None:
    # A synthetic "trained layer" plus per-sample gradients define the
    # quadratic surrogate task whose F1 score stands in for SQuAD.
    task = QuadraticTask.create(rows=128, cols=256, num_grad_samples=48, seed=0)
    weights, grads = task.weights, task.grads
    v, n, m = 64, 2, 16  # 87.5% sparsity, the hardest row of the paper's Table 2

    print(f"dense surrogate F1: {task.f1_score(weights):.2f}")
    print(f"target pattern    : {v}:{n}:{m}  (sparsity {1 - n / m:.3f})")
    print()

    rows = []

    # 1. Magnitude V:N:M pruning (no curvature information).
    magnitude = apply_mask(weights, vnm_mask(weights, v=v, n=n, m=m))
    rows.append(["magnitude V:N:M", round(task.f1_score(magnitude), 2)])

    # 2. Second-order selection without the OBS compensation update.
    no_update = second_order_vnm_prune(
        weights, v=v, n=n, m=m, grads=grads, config=SecondOrderConfig(apply_update=False)
    )
    rows.append(["second-order, no weight update", round(task.f1_of_result(no_update), 2)])

    # 3. Full second-order pruning (selection + OBS update), one shot.
    one_shot = one_shot_vnm_prune(weights, v=v, n_target=n, m=m, grads=grads)
    rows.append(["second-order, one-shot", round(task.f1_of_result(one_shot), 2)])

    # 4. Structure-decay gradual pruning with surrogate fine-tuning between
    #    steps (N decreases toward the target over several steps).
    schedule = structure_decay_schedule(n_target=n, m=m, steps=4)
    gradual = gradual_vnm_prune(
        weights,
        v=v,
        n_target=n,
        m=m,
        steps=4,
        grads=grads,
        recovery_fn=lambda w, step: task.recovery_step(w),
    )
    rows.append([f"second-order, structure decay {schedule}", round(task.f1_of_result(gradual.final), 2)])

    print(
        format_table(
            ["pruning policy", "surrogate F1"],
            rows,
            title=f"Second-order pruning at {v}:{n}:{m} (dense F1 = {task.f1_score(weights):.2f})",
        )
    )
    print()

    # Solver comparison: exact enumeration vs the paper's pair-wise relaxation.
    exact_cfg = SecondOrderConfig(method="combinatorial")
    pairwise_cfg = SecondOrderConfig(method="pairwise")
    exact = second_order_vnm_prune(weights, v=v, n=n, m=m, grads=grads, config=exact_cfg)
    pairwise = second_order_vnm_prune(weights, v=v, n=n, m=m, grads=grads, config=pairwise_cfg)
    print("saliency solver comparison (same Fisher, same pattern):")
    print(f"  m-combinatorial solver F1 : {task.f1_of_result(exact):.2f}")
    print(f"  pair-wise solver F1       : {task.f1_of_result(pairwise):.2f}")
    agreement = float(np.mean(exact.mask == pairwise.mask))
    print(f"  mask agreement            : {agreement:.3f}")


if __name__ == "__main__":
    main()
