#!/usr/bin/env python3
"""End-to-end sparse transformer inference (the paper's Section 7.2 flow).

Builds a small BERT-style encoder, sparsifies every linear-layer weight to
the V:N:M format through the STen-style integration layer (the few-lines
workflow of the paper's Listing 1), verifies the numerical effect on the
model outputs, and then projects the inference latency of the full-size
BERT-large / GPT-2-large / GPT-3 configurations with the Figure 15 latency
model.

Run with::

    python examples/sparse_bert_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.models import (
    BERT_LARGE,
    GPT2_LARGE,
    GPT3_175B,
    SparsityPlan,
    TransformerEncoder,
    latency_breakdown_ms,
    model_inference_trace,
    tiny_config,
)


def functional_demo() -> None:
    """Sparsify a small encoder and measure the activation perturbation."""
    print("=== functional demo: sparsifying a small encoder in place ===")
    cfg = tiny_config(hidden_size=128, num_layers=2, num_heads=4, intermediate_size=256)
    encoder = TransformerEncoder.init(cfg, seed=0)

    rng = np.random.default_rng(1)
    hidden = rng.normal(size=(2, 32, cfg.hidden_size)).astype(np.float32)
    dense_out = encoder.forward(hidden)

    sparsifier = VNMSparsifier(n=2, m=8, v=32)  # 75% sparsity, V=32
    replaced = sparsify_encoder(encoder, sparsifier)
    sparse_out = encoder.forward(hidden)

    rel_err = np.abs(dense_out - sparse_out).mean() / np.abs(dense_out).mean()
    print(f"replaced {len(replaced)} linear layers with Spatha-backed SpMM layers")
    print(f"mean relative change of the encoder output: {rel_err:.3f}")
    print(f"sparse layers now in the model: {encoder.count_sparse_layers()}")
    print()


def latency_projection() -> None:
    """Figure-15-style latency projection for the paper's three models."""
    print("=== latency projection: dense vs V:2:M sparsification ===")
    scenarios = [
        ("BERT-large (bs=32, seq=512)", BERT_LARGE, 32, 512, None),
        ("GPT-2-large (bs=8, seq=1024)", GPT2_LARGE, 8, 1024, None),
        ("GPT-3 single encoder (bs=1, seq=2048)", GPT3_175B, 1, 2048, 1),
    ]
    plans = [SparsityPlan(), SparsityPlan(v=64, n=2, m=8), SparsityPlan(v=64, n=2, m=32)]

    for label, config, batch_size, seq_len, num_layers in scenarios:
        rows = []
        dense_total = None
        for plan in plans:
            trace = model_inference_trace(
                config, batch_size=batch_size, seq_len=seq_len, plan=plan, num_layers=num_layers
            )
            breakdown = latency_breakdown_ms(trace)
            total = trace.total_time_ms
            if plan.label == "dense":
                dense_total = total
            rows.append(
                [
                    plan.label,
                    round(breakdown["gemm"], 1),
                    round(breakdown["matmul"], 1),
                    round(breakdown["softmax"], 1),
                    round(breakdown["other"], 1),
                    round(total, 1),
                    round(dense_total / total, 2) if dense_total else 1.0,
                ]
            )
        print(
            format_table(
                ["plan", "GEMMs ms", "matmul ms", "softmax ms", "others ms", "total ms", "speedup"],
                rows,
                title=label,
            )
        )
        print()


def main() -> None:
    functional_demo()
    latency_projection()


if __name__ == "__main__":
    main()
