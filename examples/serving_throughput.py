#!/usr/bin/env python3
"""Quickstart: multi-backend dispatch + dynamic batching on BERT-large FFN.

This walks the serving subsystem end to end on the paper's flagship
workload shape — the BERT-large FFN output projection
(``hidden x intermediate`` = 1024 x 4096, see
:mod:`repro.models.workloads`):

1. prune the weight to V:N:M and wrap it as a dispatchable operand,
2. let the kernel dispatcher rank the registered backends with the
   tuner/perf-model estimates and pick the fastest,
3. serve a window of ragged requests through the shape-bucketing dynamic
   batcher — verifying that batched execution is bit-identical to serving
   every request alone,
4. sweep the batch window with the serving simulator and report the
   requests/s-vs-window curve on the modelled RTX 3090.

Run with::

    PYTHONPATH=src python examples/serving_throughput.py

This is the *single-operator* view of serving (one FFN projection).  For
the model-level successor — a whole BERT-large-configured encoder served
through :class:`~repro.serving.model_engine.ModelServingEngine`, with
cross-request plan-cache reuse and async arrival-deadline windows — see
``examples/encoder_serving.py``.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels.dispatch import KernelDispatcher, SpmmOperand
from repro.models.config import BERT_LARGE
from repro.serving import (
    Request,
    ServingEngine,
    SimulatedRequest,
    sweep_batch_windows,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. The BERT-large FFN output projection, pruned to 16:2:8 (75%).
    # ------------------------------------------------------------------
    hidden, intermediate = BERT_LARGE.hidden_size, BERT_LARGE.intermediate_size
    v, n, m = 16, 2, 8
    weight = rng.normal(0.0, 0.02, size=(hidden, intermediate)).astype(np.float32)
    sparse = VNMSparseMatrix.from_dense(weight, v=v, n=n, m=m, strict=False)
    operand = SpmmOperand.from_vnm(sparse, name="bert-large.ffn.output")
    bias = rng.normal(0.0, 0.01, size=hidden).astype(np.float32)
    print(f"operand: {hidden}x{intermediate} {v}:{n}:{m} "
          f"(sparsity {sparse.logical_sparsity:.2f}), formats {operand.formats}")

    # ------------------------------------------------------------------
    # 2. Dispatch: rank the backends for a typical decoding batch width.
    # ------------------------------------------------------------------
    dispatcher = KernelDispatcher()
    decision = dispatcher.dispatch(operand, c=128)
    print("\nbackend ranking (modelled us, bucket C=128):")
    for name, time_us in decision.ranking:
        marker = "  <- dispatched" if name == decision.backend else ""
        print(f"  {name:22s} {time_us:10.1f}{marker}")

    # ------------------------------------------------------------------
    # 3. Dynamic batching: ragged requests, one batched kernel per bucket.
    # ------------------------------------------------------------------
    token_counts = [7, 17, 17, 24, 33, 33, 61, 64, 120, 128]
    requests = [
        Request(f"req-{i:03d}", rng.normal(size=(t, intermediate)).astype(np.float32))
        for i, t in enumerate(token_counts)
    ]
    engine = ServingEngine(operand, bias=bias, dispatcher=dispatcher, name="ffn-server")
    batched = engine.serve(requests)

    solo = ServingEngine(operand, bias=bias, dispatcher=dispatcher, name="ffn-solo")
    sequential = {}
    for request in requests:
        sequential.update(solo.serve([request]))
    identical = all(np.array_equal(batched[r.request_id], sequential[r.request_id]) for r in requests)
    stats = engine.stats()
    print(f"\nserved {stats['requests']} ragged requests in {stats['batches']} batched kernels "
          f"(mean batch {stats['mean_batch_size']:.1f})")
    print(f"batched == sequential, bit for bit: {identical}")

    # ------------------------------------------------------------------
    # 4. Requests/s vs batch window (simulated, saturating backlog).
    # ------------------------------------------------------------------
    sim_requests = [
        SimulatedRequest(f"sim-{i:05d}", tokens=token_counts[i % len(token_counts)], arrival_us=0.0)
        for i in range(512)
    ]
    windows = [0.0, 50.0, 200.0, 1000.0, 5000.0]
    reports = sweep_batch_windows(operand, sim_requests, windows, dispatcher=dispatcher)
    rows = []
    for report in reports:
        s = report.summary()
        label = "per-request" if report.window_us <= 0 else f"{report.window_us:.0f} us"
        rows.append([
            label,
            s["batches"],
            s["mean_batch_size"],
            s["throughput_rps"],
            s["mean_latency_us"],
            s["p95_latency_us"],
        ])
    print()
    print(format_table(
        ["batch window", "kernels", "mean batch", "req/s", "mean lat (us)", "p95 lat (us)"],
        rows,
        title="Simulated serving throughput, 512-request backlog (RTX 3090 model)",
    ))
    best = max(reports[1:], key=lambda r: r.throughput_rps)
    gain = best.throughput_rps / reports[0].throughput_rps
    print(f"dynamic batching gain at the best window ({best.window_us:.0f} us): "
          f"{gain:.1f}x requests/s over per-request dispatch")


if __name__ == "__main__":
    main()
