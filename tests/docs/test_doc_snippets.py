"""The docs-cannot-rot gate, in-suite.

Runs the same extraction/execution pass as ``tools/run_doc_snippets.py``
(which CI's docs job invokes as a script) over the repo's markdown docs, so
a renamed API or a stale import in a quickstart fails tier-1 locally — not
just in the CI docs job.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from run_doc_snippets import run_file  # noqa: E402

DOC_FILES = ["README.md", "docs/serving.md"]


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_snippets_execute(doc):
    path = REPO_ROOT / doc
    assert path.exists(), f"{doc} is missing"
    assert run_file(path) >= 1


def test_docs_list_is_complete():
    """Every markdown file under docs/ (subdirectories included) must be in
    the gate (a new guide added without wiring it here would silently rot)."""
    docs_dir = REPO_ROOT / "docs"
    tracked = {d for d in DOC_FILES if d.startswith("docs/")}
    on_disk = {
        p.relative_to(REPO_ROOT).as_posix() for p in docs_dir.rglob("*.md")
    }
    assert on_disk == tracked
