"""Tests for the tensor-parallel latency extension (paper Section 9 discussion)."""

import pytest

from repro.models.config import BERT_LARGE, GPT3_175B
from repro.models.distributed import (
    NVLINK,
    PCIE4,
    InterconnectSpec,
    allreduce_time_us,
    tensor_parallel_study,
    tensor_parallel_trace,
)
from repro.models.latency import SparsityPlan, model_inference_trace


class TestAllreduceModel:
    def test_zero_for_single_device(self):
        assert allreduce_time_us(1e9, 1, NVLINK) == 0.0

    def test_grows_with_message_size(self):
        assert allreduce_time_us(2e8, 4, NVLINK) > allreduce_time_us(1e8, 4, NVLINK)

    def test_slower_link_costs_more(self):
        assert allreduce_time_us(1e8, 4, PCIE4) > allreduce_time_us(1e8, 4, NVLINK)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            allreduce_time_us(-1.0, 2, NVLINK)
        with pytest.raises(ValueError):
            allreduce_time_us(1.0, 0, NVLINK)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth_gbps=0.0)


class TestTensorParallelTrace:
    def test_tp1_matches_single_gpu_model(self):
        tp1 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=1, seq_len=128, num_layers=2)
        single = model_inference_trace(BERT_LARGE, batch_size=8, seq_len=128, num_layers=2)
        assert tp1.total_time_us == pytest.approx(single.total_time_us, rel=1e-6)

    def test_tp_reduces_gemm_time(self):
        tp1 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=1, seq_len=128, num_layers=2)
        tp4 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=4, seq_len=128, num_layers=2)
        assert tp4.gemm_time_us() < tp1.gemm_time_us()

    def test_tp_adds_communication(self):
        tp4 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=4, seq_len=128, num_layers=2)
        comm = [e for e in tp4.executions if e.kernel == "allreduce"]
        assert len(comm) == 2 * 2  # two all-reduces per layer
        assert all(e.time_us > 0 for e in comm)

    def test_invalid_tp_degree(self):
        with pytest.raises(ValueError):
            tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=0)
        with pytest.raises(ValueError):
            tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=3)  # 16 heads % 3 != 0

    def test_sparse_plan_composes_with_tp(self):
        dense = tensor_parallel_trace(GPT3_175B, batch_size=1, tp_degree=4, num_layers=1)
        sparse = tensor_parallel_trace(
            GPT3_175B, batch_size=1, tp_degree=4, num_layers=1, plan=SparsityPlan(v=64, n=2, m=16)
        )
        assert sparse.gemm_time_us() < dense.gemm_time_us()
        # Communication is unchanged by weight sparsity.
        comm_d = sum(e.time_us for e in dense.executions if e.kernel == "allreduce")
        comm_s = sum(e.time_us for e in sparse.executions if e.kernel == "allreduce")
        assert comm_s == pytest.approx(comm_d, rel=1e-9)


class TestTensorParallelStudy:
    def test_study_schema_and_trends(self):
        study = tensor_parallel_study(BERT_LARGE, batch_size=8, tp_degrees=(1, 2, 4),
                                      seq_len=128, num_layers=2)
        assert set(study) == {1, 2, 4}
        assert study[1]["comm_ms"] == 0.0
        # Communication share grows with the TP degree; GEMM time shrinks.
        assert study[4]["comm_fraction"] > study[2]["comm_fraction"] >= 0.0
        assert study[4]["gemm_ms"] < study[1]["gemm_ms"]

    def test_sparsity_increases_comm_fraction(self):
        """Once the GEMMs are sparse, communication weighs relatively more —
        the trade-off the paper's distributed-systems discussion points at."""
        dense = tensor_parallel_study(BERT_LARGE, batch_size=8, tp_degrees=(4,), seq_len=128, num_layers=2)
        sparse = tensor_parallel_study(
            BERT_LARGE, batch_size=8, tp_degrees=(4,), seq_len=128, num_layers=2,
            plan=SparsityPlan(v=64, n=2, m=16),
        )
        assert sparse[4]["comm_fraction"] > dense[4]["comm_fraction"]
