"""Tests for the tensor-parallel latency extension (paper Section 9 discussion)."""

import pytest

from repro.models.config import BERT_LARGE, GPT3_175B
from repro.models.distributed import (
    NVLINK,
    PCIE4,
    InterconnectSpec,
    allreduce_time_us,
    tensor_parallel_study,
    tensor_parallel_trace,
)
from repro.models.latency import SparsityPlan, model_inference_trace


class TestAllreduceModel:
    def test_zero_for_single_device(self):
        assert allreduce_time_us(1e9, 1, NVLINK) == 0.0

    def test_grows_with_message_size(self):
        assert allreduce_time_us(2e8, 4, NVLINK) > allreduce_time_us(1e8, 4, NVLINK)

    def test_slower_link_costs_more(self):
        assert allreduce_time_us(1e8, 4, PCIE4) > allreduce_time_us(1e8, 4, NVLINK)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            allreduce_time_us(-1.0, 2, NVLINK)
        with pytest.raises(ValueError):
            allreduce_time_us(1.0, 0, NVLINK)
        with pytest.raises(ValueError):
            InterconnectSpec(bandwidth_gbps=0.0)


class TestTensorParallelTrace:
    def test_tp1_matches_single_gpu_model(self):
        tp1 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=1, seq_len=128, num_layers=2)
        single = model_inference_trace(BERT_LARGE, batch_size=8, seq_len=128, num_layers=2)
        assert tp1.total_time_us == pytest.approx(single.total_time_us, rel=1e-6)

    def test_tp_reduces_gemm_time(self):
        tp1 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=1, seq_len=128, num_layers=2)
        tp4 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=4, seq_len=128, num_layers=2)
        assert tp4.gemm_time_us() < tp1.gemm_time_us()

    def test_tp_adds_communication(self):
        tp4 = tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=4, seq_len=128, num_layers=2)
        comm = [e for e in tp4.executions if e.kernel == "allreduce"]
        assert len(comm) == 2 * 2  # two all-reduces per layer
        assert all(e.time_us > 0 for e in comm)

    def test_invalid_tp_degree(self):
        with pytest.raises(ValueError):
            tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=0)
        with pytest.raises(ValueError):
            tensor_parallel_trace(BERT_LARGE, batch_size=8, tp_degree=3)  # 16 heads % 3 != 0

    def test_sparse_plan_composes_with_tp(self):
        dense = tensor_parallel_trace(GPT3_175B, batch_size=1, tp_degree=4, num_layers=1)
        sparse = tensor_parallel_trace(
            GPT3_175B, batch_size=1, tp_degree=4, num_layers=1, plan=SparsityPlan(v=64, n=2, m=16)
        )
        assert sparse.gemm_time_us() < dense.gemm_time_us()
        # Communication is unchanged by weight sparsity.
        comm_d = sum(e.time_us for e in dense.executions if e.kernel == "allreduce")
        comm_s = sum(e.time_us for e in sparse.executions if e.kernel == "allreduce")
        assert comm_s == pytest.approx(comm_d, rel=1e-9)


class TestTensorParallelStudy:
    def test_study_schema_and_trends(self):
        study = tensor_parallel_study(BERT_LARGE, batch_size=8, tp_degrees=(1, 2, 4),
                                      seq_len=128, num_layers=2)
        assert set(study) == {1, 2, 4}
        assert study[1]["comm_ms"] == 0.0
        # Communication share grows with the TP degree; GEMM time shrinks.
        assert study[4]["comm_fraction"] > study[2]["comm_fraction"] >= 0.0
        assert study[4]["gemm_ms"] < study[1]["gemm_ms"]

    def test_sparsity_increases_comm_fraction(self):
        """Once the GEMMs are sparse, communication weighs relatively more —
        the trade-off the paper's distributed-systems discussion points at."""
        dense = tensor_parallel_study(BERT_LARGE, batch_size=8, tp_degrees=(4,), seq_len=128, num_layers=2)
        sparse = tensor_parallel_study(
            BERT_LARGE, batch_size=8, tp_degrees=(4,), seq_len=128, num_layers=2,
            plan=SparsityPlan(v=64, n=2, m=16),
        )
        assert sparse[4]["comm_fraction"] > dense[4]["comm_fraction"]

# ----------------------------------------------------------------------
# Layer graphs and balanced min-cut placement (sharded serving)
# ----------------------------------------------------------------------

import random

import numpy as np

from repro.integration import VNMSparsifier, sparsify_encoder
from repro.models import TransformerEncoder, tiny_config
from repro.models.distributed import (
    COLUMN_PARALLEL,
    ROW_PARALLEL,
    CommEvent,
    GraphEdge,
    GraphNode,
    LayerGraph,
    encoder_layer_graph,
    parallelism_style,
    partition_min_cut,
    partition_min_cut_reference,
    partition_round_robin,
    placement_comm_events,
    placement_comm_time_us,
    send_recv_time_us,
)


def random_graph(rng, num_nodes, edge_prob=0.5):
    """A random weighted layer graph on ``num_nodes`` nodes."""
    nodes = tuple(
        GraphNode(
            name=f"n{i}",
            weight=float(rng.integers(1, 10)),
            style=ROW_PARALLEL if rng.random() < 0.3 else COLUMN_PARALLEL,
            out_bytes_per_token=float(rng.integers(1, 64)),
        )
        for i in range(num_nodes)
    )
    edges = []
    for i in range(num_nodes):
        for j in range(num_nodes):
            if i != j and rng.random() < edge_prob:
                edges.append(
                    GraphEdge(f"n{i}", f"n{j}", bytes_per_token=float(rng.integers(1, 64)))
                )
    return LayerGraph(nodes=nodes, edges=tuple(edges))


class TestLayerGraph:
    def test_parallelism_style(self):
        assert parallelism_style("encoder.layer.0.attention.query") == COLUMN_PARALLEL
        assert parallelism_style("encoder.layer.0.attention.output") == ROW_PARALLEL
        assert parallelism_style("encoder.layer.3.ffn.intermediate") == COLUMN_PARALLEL
        assert parallelism_style("encoder.layer.3.ffn.output") == ROW_PARALLEL

    def test_rejects_bad_structure(self):
        node = GraphNode("a", weight=1.0)
        with pytest.raises(ValueError):
            GraphEdge("a", "a", bytes_per_token=1.0)  # self edge
        with pytest.raises(ValueError):
            LayerGraph(nodes=(node, node), edges=())  # duplicate names
        with pytest.raises(ValueError):
            LayerGraph(nodes=(node,), edges=(GraphEdge("a", "b", bytes_per_token=1.0),))

    def test_encoder_graph_shape(self):
        cfg = tiny_config(hidden_size=64, num_layers=2, num_heads=4, intermediate_size=128)
        encoder = TransformerEncoder.init(cfg, seed=0)
        graph = encoder_layer_graph(encoder)
        assert len(graph.nodes) == 6 * 2  # six projections per layer
        # Row-parallel styles land on the output projections only.
        styles = {n.name: n.style for n in graph.nodes}
        assert styles["encoder.layer.0.attention.output"] == ROW_PARALLEL
        assert styles["encoder.layer.0.ffn.output"] == ROW_PARALLEL
        assert styles["encoder.layer.0.attention.query"] == COLUMN_PARALLEL
        # q/k/v fan into attention.output; ffn chain; cross-layer edges exist.
        in_attn = {e.src for e in graph.in_edges("encoder.layer.0.attention.output")}
        assert in_attn == {
            "encoder.layer.0.attention.query",
            "encoder.layer.0.attention.key",
            "encoder.layer.0.attention.value",
        }
        in_q1 = {e.src for e in graph.in_edges("encoder.layer.1.attention.query")}
        assert in_q1 == {"encoder.layer.0.ffn.output"}


class TestPlacement:
    def test_round_robin_assignment(self):
        rng = np.random.default_rng(0)
        graph = random_graph(rng, 6)
        placement = partition_round_robin(graph, 3)
        assert placement.assignment == (0, 1, 2, 0, 1, 2)
        assert placement.policy == "round_robin"
        assert len(placement.shard_loads) == 3

    def test_single_shard_has_no_cut(self):
        rng = np.random.default_rng(1)
        graph = random_graph(rng, 5)
        placement = partition_min_cut(graph, 1)
        assert placement.cut_bytes_per_token == 0.0
        assert placement_comm_events(placement) == ()

    def test_exact_beats_or_ties_round_robin(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            graph = random_graph(rng, 6)
            rr = partition_round_robin(graph, 2)
            exact = partition_min_cut_reference(graph, 2)
            assert exact.cut_bytes_per_token <= rr.cut_bytes_per_token
            # Balance feasibility: never spreads load more than round-robin.
            assert exact.load_spread <= rr.load_spread + 1e-9

    def test_heuristic_matches_exact_on_small_graphs(self):
        """Property test: on graphs small enough to enumerate, the heuristic
        placement must equal the brute-force optimum exactly."""
        rng = np.random.default_rng(3)
        for trial in range(25):
            num_nodes = int(rng.integers(2, 9))  # <= 8 nodes
            num_shards = int(rng.integers(2, 5))  # 2..4 shards
            graph = random_graph(rng, num_nodes, edge_prob=float(rng.uniform(0.2, 0.8)))
            exact = partition_min_cut_reference(graph, num_shards)
            heur = partition_min_cut(graph, num_shards)
            assert heur.assignment == exact.assignment, (
                f"trial {trial}: heuristic {heur.assignment} != exact {exact.assignment}"
            )
            assert heur.cut_bytes_per_token == exact.cut_bytes_per_token

    def test_forced_heuristic_never_worse_than_round_robin(self):
        """With the exhaustive fallback disabled, the refinement loop must
        still never lose to round-robin on cut traffic (it starts there)."""
        rng = np.random.default_rng(4)
        for _ in range(15):
            num_nodes = int(rng.integers(4, 13))
            num_shards = int(rng.integers(2, 5))
            graph = random_graph(rng, num_nodes)
            rr = partition_round_robin(graph, num_shards)
            heur = partition_min_cut(graph, num_shards, exhaustive_limit=0)
            assert heur.cut_bytes_per_token <= rr.cut_bytes_per_token
            assert heur.load_spread <= rr.load_spread + 1e-9

    def test_reference_rejects_huge_spaces(self):
        rng = np.random.default_rng(5)
        graph = random_graph(rng, 30, edge_prob=0.1)
        with pytest.raises(ValueError):
            partition_min_cut_reference(graph, 4)


class TestCommEvents:
    def test_send_recv_model(self):
        assert send_recv_time_us(0.0, NVLINK) == NVLINK.latency_us
        assert send_recv_time_us(2e8, PCIE4) > send_recv_time_us(2e8, NVLINK)

    def test_row_parallel_spanning_inputs_allreduce(self):
        """A row-parallel node whose inputs span shards costs one ring
        all-reduce of its own output, not per-edge send/recvs."""
        nodes = (
            GraphNode("a", weight=1.0, out_bytes_per_token=8.0),
            GraphNode("b", weight=1.0, out_bytes_per_token=8.0),
            GraphNode("out", weight=1.0, style=ROW_PARALLEL, out_bytes_per_token=32.0),
        )
        edges = (
            GraphEdge("a", "out", bytes_per_token=8.0),
            GraphEdge("b", "out", bytes_per_token=8.0),
        )
        graph = LayerGraph(nodes=nodes, edges=edges)
        placement = partition_round_robin(graph, 2)  # a->0, b->1, out->0: spans
        events = placement_comm_events(placement)
        assert len(events) == 1
        (event,) = events
        assert event.kind == "all_reduce"
        assert event.layer == "out"
        assert event.bytes_per_token == 32.0
        assert event.shards == (0, 1)

    def test_column_cut_edge_is_send_recv(self):
        nodes = (
            GraphNode("a", weight=1.0, out_bytes_per_token=8.0),
            GraphNode("b", weight=1.0, out_bytes_per_token=8.0),
        )
        edges = (GraphEdge("a", "b", bytes_per_token=8.0),)
        graph = LayerGraph(nodes=nodes, edges=edges)
        placement = partition_round_robin(graph, 2)
        events = placement_comm_events(placement)
        assert len(events) == 1
        assert events[0].kind == "send_recv"
        assert events[0].shards == (0, 1)

    def test_comm_time_scales_with_tokens_and_link(self):
        cfg = tiny_config(hidden_size=64, num_layers=2, num_heads=4, intermediate_size=128)
        encoder = TransformerEncoder.init(cfg, seed=0)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=4, v=4))
        graph = encoder_layer_graph(encoder)
        placement = partition_min_cut(graph, 2)
        fast = placement_comm_time_us(placement, tokens=128, link=NVLINK)
        slow = placement_comm_time_us(placement, tokens=128, link=PCIE4)
        more = placement_comm_time_us(placement, tokens=256, link=NVLINK)
        assert slow > fast > 0.0
        assert more > fast

    def test_event_validation(self):
        with pytest.raises(ValueError):
            CommEvent(kind="broadcast", layer="x", bytes_per_token=1.0, shards=(0, 1))
        with pytest.raises(ValueError):
            CommEvent(kind="all_reduce", layer="x", bytes_per_token=1.0, shards=(0,))
