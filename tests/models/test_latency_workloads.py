"""Tests for the end-to-end latency model and benchmark workloads."""

import pytest

from repro.hardware.trace import ExecutionTrace
from repro.models.config import BERT_BASE, BERT_LARGE, GPT3_175B
from repro.models.latency import (
    SparsityPlan,
    end_to_end_speedup,
    gemm_time_reduction,
    latency_breakdown_ms,
    model_inference_trace,
)
from repro.models.workloads import (
    FIGURE13_SPARSITIES,
    K_SWEEP,
    bert_base_gemm,
    bert_large_gemm,
    bert_layer_problems,
    divisible_k,
    gpt3_gemm,
    k_sweep_problems,
    synthetic_bert_weight,
)


class TestSparsityPlan:
    def test_dense_plan(self):
        plan = SparsityPlan()
        assert not plan.is_sparse
        assert plan.label == "dense"

    def test_sparse_plan_label(self):
        assert SparsityPlan(v=64, n=2, m=16).label == "64:2:16"


class TestInferenceTrace:
    @pytest.fixture(scope="class")
    def dense_trace(self, ):
        return model_inference_trace(BERT_LARGE, batch_size=8, seq_len=128, num_layers=2)

    @pytest.fixture(scope="class")
    def sparse_trace(self):
        return model_inference_trace(
            BERT_LARGE, batch_size=8, seq_len=128, num_layers=2, plan=SparsityPlan(v=64, n=2, m=16)
        )

    def test_trace_structure(self, dense_trace):
        assert isinstance(dense_trace, ExecutionTrace)
        categories = dense_trace.time_by_category()
        assert all(categories[c] > 0 for c in ("gemm", "matmul", "softmax", "other"))
        # 6 GEMMs + 2 matmuls + softmax + others per layer, 2 layers
        assert len(dense_trace.executions) == 2 * (6 + 2 + 1 + 1)

    def test_gemm_dominates_dense_bert(self, dense_trace):
        breakdown = latency_breakdown_ms(dense_trace)
        assert breakdown["gemm"] > breakdown["matmul"]
        assert breakdown["gemm"] > breakdown["softmax"]

    def test_sparsity_reduces_only_gemm_time(self, dense_trace, sparse_trace):
        d, s = dense_trace.time_by_category(), sparse_trace.time_by_category()
        assert s["gemm"] < d["gemm"]
        assert s["matmul"] == pytest.approx(d["matmul"], rel=1e-6)
        assert s["softmax"] == pytest.approx(d["softmax"], rel=1e-6)
        assert s["other"] == pytest.approx(d["other"], rel=1e-6)

    def test_gemm_reduction_and_speedup(self, dense_trace, sparse_trace):
        reduction = gemm_time_reduction(dense_trace, sparse_trace)
        speedup = end_to_end_speedup(dense_trace, sparse_trace)
        assert reduction > speedup > 1.0
        assert reduction <= 8.0  # bounded by the 2:16 cap

    def test_gpt3_single_layer_gemm_fraction(self):
        """The paper: GEMMs contribute ~80% of a GPT-3 encoder's time."""
        trace = model_inference_trace(GPT3_175B, batch_size=1, num_layers=1)
        frac = trace.gemm_time_us() / trace.total_time_us
        assert frac > 0.7

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            model_inference_trace(BERT_BASE, batch_size=0)
        with pytest.raises(ValueError):
            model_inference_trace(BERT_BASE, batch_size=1, num_layers=0)

    def test_latency_breakdown_units(self, dense_trace):
        breakdown = latency_breakdown_ms(dense_trace)
        assert sum(breakdown.values()) == pytest.approx(dense_trace.total_time_ms)


class TestWorkloads:
    def test_k_sweep_matches_paper_grid(self):
        assert K_SWEEP[0] == 768
        assert K_SWEEP[-1] == 12288
        assert len(K_SWEEP) == 16

    def test_figure13_sparsities(self):
        sparsities = [s for s, _, _ in FIGURE13_SPARSITIES]
        assert sparsities == [0.5, 0.7, 0.75, 0.8, 0.9, 0.95, 0.98]
        for s, n, m in FIGURE13_SPARSITIES:
            assert s == pytest.approx(1 - n / m, abs=0.02)

    def test_gemm_builders(self):
        assert bert_base_gemm(4096).r == BERT_BASE.hidden_size
        assert bert_large_gemm(4096).r == BERT_LARGE.hidden_size
        assert gpt3_gemm().k == GPT3_175B.hidden_size

    def test_k_sweep_problems(self):
        problems = list(k_sweep_problems("bert-large"))
        assert len(problems) == len(K_SWEEP)
        assert all(p.r == 1024 for p in problems)

    def test_bert_layer_problems(self):
        workloads = bert_layer_problems(BERT_BASE, batch_size=8)
        assert len(workloads) == 6
        assert all(w.problem.c == 8 * 512 for w in workloads)

    def test_synthetic_bert_weight_shape(self):
        w = synthetic_bert_weight()
        assert w.shape == (768, 768)

    def test_divisible_k(self):
        assert divisible_k(770, 8) == 776
        assert divisible_k(768, 8) == 768
        with pytest.raises(ValueError):
            divisible_k(0, 8)
