"""Attention-mask plumbing at the model layer.

The padded-bucket serving contract rests on three model-level properties,
each pinned here below the serving layer so a failure localises:

(a) an all-valid mask is *bit-identical* to no mask at all, at every level
    (softmax, attention, encoder layer, encoder stack);
(b) masked softmax assigns **exactly** ``0.0`` weight to padded keys —
    ``exp(-inf)`` is an exact IEEE zero, not a small number;
(c) bucket-boundary lengths (a rung, rung+1, the max rung, beyond the max
    rung) round-trip through the ladder batcher's padded stacking and come
    out bit-for-bit the unpadded forward.

Plus the structural piece the guarantees hang off: right-padding masks are
recognised, causal masks route to the per-position bit-exact path (the one
KV-cached decoding replays — see ``TestCausalMasking``), and anything else
— ALiBi-like biases, scattered ``-inf`` — falls back to the general masked
path.
"""

import numpy as np
import pytest

from repro.integration import VNMSparsifier, sparsify_encoder
from repro.models import TransformerEncoder, tiny_config
from repro.models import LayerKV
from repro.models.functional import (
    attention_scores,
    causal_mask,
    mask_is_causal,
    mask_valid_lengths,
    padding_mask,
    resolve_padding_lengths,
    softmax,
)
from repro.serving import Request, ShapeBucketBatcher

HIDDEN = 64


def make_encoder(num_layers=1, seed=0, sparse=True):
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    if sparse:
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
    return encoder


def padded_batch(rng, lengths, bucket):
    """Right-padded activations + the sequences they were built from."""
    seqs = [rng.normal(size=(t, HIDDEN)).astype(np.float32) for t in lengths]
    hidden = np.zeros((len(lengths), bucket, HIDDEN), dtype=np.float32)
    for i, seq in enumerate(seqs):
        hidden[i, : len(seq)] = seq
    return hidden, seqs


class TestMaskHelpers:
    def test_padding_mask_shape_and_values(self):
        mask = padding_mask([2, 5, 5], 5)
        assert mask.shape == (3, 1, 1, 5)
        assert mask.dtype == np.float32
        assert np.all(mask[0, 0, 0] == [0.0, 0.0, -np.inf, -np.inf, -np.inf])
        assert np.all(mask[1] == 0.0)

    @pytest.mark.parametrize(
        "lengths,total", [([], 4), ([0, 2], 4), ([5], 4), ([-1], 4), ([2], 0)]
    )
    def test_padding_mask_rejects_invalid_lengths(self, lengths, total):
        with pytest.raises(ValueError):
            padding_mask(lengths, total)

    def test_valid_lengths_round_trip(self):
        lengths = [1, 3, 8, 8, 2]
        recovered = mask_valid_lengths(padding_mask(lengths, 8))
        assert recovered.tolist() == lengths

    def test_layer_hook_composes_with_padded_forward(self, rng):
        """With a hook, the stack falls back to per-layer masking so the
        hook still observes full-batch padded-layout outputs — and the
        bits match the hook-free grouped path."""
        encoder = make_encoder(num_layers=2)
        lengths = [2, 5, 8]
        hidden, _ = padded_batch(rng, lengths, bucket=8)
        mask = padding_mask(lengths, 8)
        seen = []
        hooked = encoder.forward(
            hidden, layer_hook=lambda i, h: seen.append((i, h.shape)), attention_mask=mask
        )
        assert seen == [(0, (3, 8, HIDDEN)), (1, (3, 8, HIDDEN))]
        assert np.array_equal(hooked, encoder.forward(hidden, attention_mask=mask))

    def test_non_padding_masks_are_not_misread(self):
        # Causal: per-query structure, never a per-sequence prefix (a 2-D
        # mask broadcasts as (seq_q, seq_k), never as (batch, seq_k)).
        causal = np.triu(np.full((5, 5), -np.inf, dtype=np.float32), k=1)
        assert mask_valid_lengths(causal) is None
        # 3-D masks broadcast their leading axis onto *heads*, so reading
        # it as the batch would contradict the additive path — only the
        # explicit (batch, 1, 1, seq_k) shape is per-sequence.
        assert mask_valid_lengths(padding_mask([3, 4], 5)[:, 0]) is None
        # Scattered -inf: not a prefix.
        holes = padding_mask([3, 4], 5).copy()
        holes[0, 0, 0, 1] = -np.inf
        assert mask_valid_lengths(holes) is None
        # Finite bias (ALiBi-style): not a 0/-inf mask.
        bias = np.zeros((2, 1, 1, 5), dtype=np.float32)
        bias[0, 0, 0, 4] = -0.5
        assert mask_valid_lengths(bias) is None
        # A fully-masked sequence is invalid, not length-0.
        empty = np.full((2, 1, 1, 5), -np.inf, dtype=np.float32)
        empty[1, 0, 0, :3] = 0.0
        assert mask_valid_lengths(empty) is None


class TestMaskedSoftmax:
    def test_all_valid_mask_bit_identical(self, rng):
        x = rng.normal(size=(2, 4, 7, 7)).astype(np.float32)
        assert np.array_equal(softmax(x, mask=padding_mask([7, 7], 7)), softmax(x))
        assert np.array_equal(softmax(x, mask=np.zeros((2, 1, 1, 7), np.float32)), softmax(x))

    def test_padded_keys_get_exactly_zero_weight(self, rng):
        x = (rng.normal(size=(3, 4, 6, 6)) * 30.0).astype(np.float32)  # spread logits
        lengths = [2, 6, 4]
        probs = softmax(x, mask=padding_mask(lengths, 6))
        for b, t in enumerate(lengths):
            assert np.all(probs[b, :, :, t:] == 0.0)  # exact zeros, not tiny
            assert np.allclose(probs[b, :, :, :t].sum(axis=-1), 1.0, atol=1e-6)

    def test_general_masks_also_get_exact_zeros(self, rng):
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        causal = np.triu(np.full((5, 5), -np.inf, dtype=np.float32), k=1)
        probs = softmax(x, mask=causal)
        i, j = np.triu_indices(5, k=1)
        assert np.all(probs[..., i, j] == 0.0)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)

    def test_fully_masked_rows_are_zero_not_nan(self, rng):
        x = rng.normal(size=(1, 1, 2, 3)).astype(np.float32)
        mask = np.full((1, 1, 2, 3), -np.inf, dtype=np.float32)
        mask[0, 0, 0, :2] = 0.0  # row 0 keeps two keys, row 1 none
        probs = softmax(x, mask=mask)
        assert np.all(np.isfinite(probs))
        assert np.all(probs[0, 0, 1] == 0.0)

    def test_attention_scores_additive_mask(self, rng):
        q = rng.normal(size=(1, 2, 4, 8)).astype(np.float32)
        k = rng.normal(size=(1, 2, 4, 8)).astype(np.float32)
        mask = padding_mask([3], 4)
        scores = attention_scores(q, k, mask=mask)
        assert np.all(np.isneginf(scores[..., :, 3]))
        assert np.array_equal(scores[..., :3], attention_scores(q, k)[..., :3])


class TestMaskedForwardBitExactness:
    def test_all_valid_mask_bit_identical_through_stack(self, rng):
        encoder = make_encoder(num_layers=2)
        hidden = rng.normal(size=(3, 9, HIDDEN)).astype(np.float32)
        mask = padding_mask([9, 9, 9], 9)
        layer = encoder.layers[0]
        assert np.array_equal(
            layer.attention.forward(hidden, mask=mask), layer.attention.forward(hidden)
        )
        assert np.array_equal(layer.forward(hidden, attention_mask=mask), layer.forward(hidden))
        assert np.array_equal(
            encoder.forward(hidden, attention_mask=mask), encoder.forward(hidden)
        )

    def test_attention_valid_rows_match_unpadded_bits(self, rng):
        attention = make_encoder().layers[0].attention
        lengths = [1, 3, 7, 7, 8]  # includes the GEMV-shaped single-token case
        hidden, seqs = padded_batch(rng, lengths, bucket=8)
        out, probs = attention.forward(
            hidden, return_probs=True, mask=padding_mask(lengths, 8)
        )
        for i, seq in enumerate(seqs):
            t = len(seq)
            ref_out, ref_probs = attention.forward(seq[None], return_probs=True)
            assert np.array_equal(out[i, :t], ref_out[0])
            assert np.all(out[i, t:] == 0.0)
            assert np.array_equal(probs[i, :, :t, :t], ref_probs[0])
            assert np.all(probs[i, :, :, t:] == 0.0)  # padded keys: exactly zero

    def test_encoder_valid_rows_match_unpadded_bits(self, rng):
        encoder = make_encoder(num_layers=2)
        lengths = [1, 5, 7, 8, 5]
        hidden, seqs = padded_batch(rng, lengths, bucket=8)
        out = encoder.forward(hidden, attention_mask=padding_mask(lengths, 8))
        for i, seq in enumerate(seqs):
            t = len(seq)
            assert np.array_equal(out[i, :t], encoder.forward(seq[None])[0])
            assert np.all(out[i, t:] == 0.0)

    def test_mask_width_mismatch_fails_loudly(self, rng):
        """A padding mask built for the wrong bucket width must raise, not
        silently clamp the claimed lengths to the activations."""
        encoder = make_encoder()
        hidden = rng.normal(size=(2, 6, HIDDEN)).astype(np.float32)
        bad_mask = padding_mask([8, 3], 8)  # claims 8 key positions, seq is 6
        with pytest.raises(ValueError, match="8 key positions.*6 tokens"):
            encoder.forward(hidden, attention_mask=bad_mask)
        with pytest.raises(ValueError, match="8 key positions.*6 tokens"):
            encoder.layers[0].forward(hidden, attention_mask=bad_mask)
        with pytest.raises(ValueError, match="8 key positions.*6 tokens"):
            encoder.layers[0].attention.forward(hidden, mask=bad_mask)

    def test_dense_encoder_also_bit_exact(self, rng):
        encoder = make_encoder(sparse=False)
        lengths = [2, 4, 4, 3]
        hidden, seqs = padded_batch(rng, lengths, bucket=4)
        out = encoder.forward(hidden, attention_mask=padding_mask(lengths, 4))
        for i, seq in enumerate(seqs):
            assert np.array_equal(out[i, : len(seq)], encoder.forward(seq[None])[0])

    def test_general_mask_matches_reference_computation(self, rng):
        """Causal masking (now the per-position path) still agrees with a
        per-row reference softmax over the allowed keys."""
        attention = make_encoder(sparse=False).layers[0].attention
        hidden = rng.normal(size=(2, 5, HIDDEN)).astype(np.float32)
        causal = np.triu(np.full((5, 5), -np.inf, dtype=np.float32), k=1)
        _, probs = attention.forward(hidden, return_probs=True, mask=causal)
        _, raw = attention.forward(hidden, return_probs=True)
        scores = np.log(raw)  # log-probs differ from scores by a per-row constant
        for i in range(5):
            ref = np.exp(scores[..., i, : i + 1])
            ref = ref / ref.sum(axis=-1, keepdims=True)
            assert np.allclose(probs[..., i, : i + 1], ref, atol=1e-6)
            assert np.all(probs[..., i, i + 1 :] == 0.0)


class TestCausalMasking:
    """The causal family: helper structure, softmax row-sum guarantees, the
    per-position path's bits, and the staircase-misclassification guard."""

    def test_causal_mask_structure(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4) and mask.dtype == np.float32
        assert np.all(mask[np.tril_indices(4)] == 0.0)
        assert np.all(np.isneginf(mask[np.triu_indices(4, k=1)]))
        assert mask_is_causal(mask)
        assert mask_is_causal(causal_mask(1))
        with pytest.raises(ValueError):
            causal_mask(0)

    def test_mask_is_causal_rejects_non_causal(self):
        assert not mask_is_causal(padding_mask([2, 3], 3))
        almost = causal_mask(4).copy()
        almost[0, 3] = 0.0  # a future key leaks in
        assert not mask_is_causal(almost)
        assert not mask_is_causal(np.zeros((3, 3), np.float32))  # no mask at all

    def test_causal_softmax_row_sums(self, rng):
        """Every query row's weights are a true distribution: the single-key
        first row sums to EXACTLY 1.0 (exp(0)/1 — no rounding enters), no
        row is ever all-zero (a fully-masked sentinel would decode garbage
        silently), and multi-key rows sum to 1 within float32 rounding."""
        x = (rng.normal(size=(2, 4, 9, 9)) * 10.0).astype(np.float32)
        probs = softmax(x, mask=causal_mask(9))
        sums = probs.sum(axis=-1)
        assert np.all(sums[..., 0] == 1.0)  # step 1 attends only to itself
        assert np.all(sums > 0.0)  # no all-zero (fully-masked) rows, ever
        assert np.allclose(sums, 1.0, atol=1e-6)

    def test_causal_attention_probs_row_sums_at_every_step(self, rng):
        attention = make_encoder().layers[0].attention
        hidden = rng.normal(size=(2, 7, HIDDEN)).astype(np.float32)
        _, probs = attention.forward(hidden, return_probs=True, mask=causal_mask(7))
        for t in range(7):
            row = probs[:, :, t, : t + 1]
            if t == 0:
                assert np.all(row.sum(axis=-1) == 1.0)  # exact, not approx
            assert np.all(row.sum(axis=-1) > 0.0)
            assert np.allclose(row.sum(axis=-1), 1.0, atol=1e-6)
            assert np.all(probs[:, :, t, t + 1 :] == 0.0)  # future keys: exact 0

    def test_forward_step_first_row_sums_exactly_one(self, rng):
        """The decode-side statement of the same fact: step 1 of a fresh
        sequence attends to itself alone, weight exactly 1.0."""
        attention = make_encoder().layers[0].attention
        kv = LayerKV()
        token = rng.normal(size=(1, HIDDEN)).astype(np.float32)
        _, probs = attention.forward_step(token, kv, return_probs=True)
        assert probs.shape == (4, 1)
        assert np.all(probs == 1.0)
        _, probs2 = attention.forward_step(token, kv, return_probs=True)
        assert probs2.shape == (4, 2)
        assert np.all(probs2.sum(axis=-1) > 0.0)
        assert np.allclose(probs2.sum(axis=-1), 1.0, atol=1e-6)

    def test_causal_path_equals_forward_step_bits(self, rng):
        """The causal forward IS the per-position decode loop: running the
        positions through forward_step against a scratch cache reproduces
        the masked forward bit for bit."""
        attention = make_encoder(num_layers=1).layers[0].attention
        hidden = rng.normal(size=(1, 6, HIDDEN)).astype(np.float32)
        full = attention.forward(hidden, mask=causal_mask(6))
        kv = LayerKV()
        stepped = np.concatenate(
            [attention.forward_step(hidden[0, t], kv) for t in range(6)]
        )
        assert np.array_equal(full[0], stepped)

    def test_staircase_mask_is_rejected_not_misclassified(self, rng):
        """A causal mask reshaped to (S, 1, 1, S) is byte-identical to a
        right-padding mask for lengths 1..S.  Misreading it as padding
        would compute per-sequence prefixes instead of per-query ones, so
        the resolver refuses loudly."""
        staircase = np.stack(
            [padding_mask([t + 1], 5)[0] for t in range(5)]
        )  # (5, 1, 1, 5), lengths 1..5
        hidden = rng.normal(size=(5, 5, HIDDEN)).astype(np.float32)
        assert mask_valid_lengths(staircase) is not None  # structurally padding
        with pytest.raises(ValueError, match="causal staircase"):
            resolve_padding_lengths(staircase, hidden)
        with pytest.raises(ValueError, match="causal staircase"):
            make_encoder().forward(hidden, attention_mask=staircase)
        # A genuine staircase batch must use explicit grouping or the 2-D
        # causal mask — but non-staircase padded batches still resolve.
        ok = padding_mask([2, 5, 3], 5)
        assert resolve_padding_lengths(ok, rng.normal(size=(3, 5, HIDDEN)).astype(np.float32)) is not None

    def test_causal_mask_width_mismatch_fails_loudly(self, rng):
        encoder = make_encoder()
        hidden = rng.normal(size=(1, 4, HIDDEN)).astype(np.float32)
        with pytest.raises(ValueError, match="causal mask covers 6 key positions"):
            encoder.layers[0].attention.forward(hidden, mask=causal_mask(6))


class TestLadderRoundTrip:
    """(c) bucket-boundary lengths through the ladder batcher's stacking."""

    def test_ladder_rounds_lengths_up(self):
        batcher = ShapeBucketBatcher.ladder(min_rung=8, max_rung=32)
        assert batcher.token_buckets == (8, 16, 32)
        for tokens, rung in [(1, 8), (8, 8), (9, 16), (16, 16), (17, 32), (32, 32)]:
            assert batcher.token_bucket(tokens) == rung
        assert batcher.token_bucket(33) == 33  # beyond the top rung: exact singleton

    def test_ladder_rejects_bad_rungs(self):
        with pytest.raises(ValueError):
            ShapeBucketBatcher.ladder(min_rung=0)
        with pytest.raises(ValueError):
            ShapeBucketBatcher.ladder(min_rung=16, max_rung=8)

    @pytest.mark.parametrize("tokens", [8, 9, 16, 17])  # rung, rung+1, max, beyond
    def test_boundary_lengths_round_trip_bit_exact(self, rng, tokens):
        encoder = make_encoder()
        batcher = ShapeBucketBatcher.ladder(min_rung=8, max_rung=16)
        request = Request("boundary", rng.normal(size=(tokens, HIDDEN)).astype(np.float32))
        batcher.submit(request)
        (batch,) = batcher.drain()
        bucket = batch.key.token_bucket
        assert bucket == batcher.token_bucket(tokens)
        hidden = batch.stacked_activations()
        assert hidden.shape == (1, bucket, HIDDEN)
        out = encoder.forward(
            hidden, attention_mask=padding_mask(batch.valid_lengths, bucket)
        )
        result = batch.split_hidden(out)["boundary"]
        assert result.shape == (tokens, HIDDEN)
        assert np.array_equal(result, encoder.forward(request.activations[None])[0])

    def test_mixed_boundary_batch_shares_one_bucket(self, rng):
        batcher = ShapeBucketBatcher.ladder(min_rung=8, max_rung=16)
        lengths = [9, 12, 16]
        for i, t in enumerate(lengths):
            batcher.submit(Request(f"r{i}", rng.normal(size=(t, HIDDEN)).astype(np.float32)))
        (batch,) = batcher.drain()  # all round up to the 16 rung
        assert batch.key.token_bucket == 16
        assert batch.valid_lengths == (9, 12, 16)
        assert batch.valid_tokens == 37
        assert batch.padded_tokens == 48
