"""Tests for model configurations and the functional (non-GEMM) operators."""

import numpy as np
import pytest

from repro.models.config import (
    BERT_BASE,
    BERT_LARGE,
    GPT2_LARGE,
    GPT3_175B,
    ModelConfig,
    get_model,
    tiny_config,
)
from repro.models.functional import (
    attention_context,
    attention_scores,
    gelu,
    layer_norm,
    merge_heads,
    softmax,
    split_heads,
)


class TestModelConfig:
    def test_presets_match_published_sizes(self):
        assert (BERT_BASE.hidden_size, BERT_BASE.num_layers, BERT_BASE.num_heads) == (768, 12, 12)
        assert (BERT_LARGE.hidden_size, BERT_LARGE.num_layers, BERT_LARGE.num_heads) == (1024, 24, 16)
        assert (GPT2_LARGE.hidden_size, GPT2_LARGE.num_layers) == (1280, 36)
        assert (GPT3_175B.hidden_size, GPT3_175B.num_layers, GPT3_175B.num_heads) == (12288, 96, 96)

    def test_head_dim(self):
        assert BERT_BASE.head_dim == 64
        assert GPT3_175B.head_dim == 128

    def test_linear_layer_shapes(self):
        shapes = BERT_BASE.linear_layer_shapes()
        assert shapes["attention.query"] == (768, 768)
        assert shapes["ffn.intermediate"] == (3072, 768)
        assert shapes["ffn.output"] == (768, 3072)
        assert len(shapes) == 6

    def test_prunable_parameter_count_bert_base(self):
        """The paper prunes the 85M encoder weights of BERT-base."""
        assert BERT_BASE.prunable_parameters() == pytest.approx(85e6, rel=0.02)

    def test_gemm_problems_token_count(self):
        problems = BERT_BASE.gemm_problems(batch_size=8, seq_len=512)
        assert all(p["c"] == 8 * 512 for p in problems)
        assert len(problems) == 6

    def test_get_model(self):
        assert get_model("bert-large") is BERT_LARGE
        with pytest.raises(KeyError):
            get_model("llama")

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ModelConfig(name="x", hidden_size=100, num_layers=2, num_heads=3, intermediate_size=400)
        with pytest.raises(ValueError):
            ModelConfig(name="x", hidden_size=0, num_layers=2, num_heads=2, intermediate_size=4)

    def test_tiny_config(self):
        cfg = tiny_config()
        assert cfg.hidden_size % cfg.num_heads == 0


class TestFunctionalOps:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(3, 5, 7))
        s = softmax(x, axis=-1)
        assert np.allclose(s.sum(axis=-1), 1.0, atol=1e-6)
        assert np.all(s >= 0)

    def test_softmax_stability_with_large_values(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        s = softmax(x)
        assert np.isfinite(s).all()

    def test_gelu_known_values(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)

    def test_layer_norm_normalises(self, rng):
        x = rng.normal(loc=3.0, scale=5.0, size=(4, 16))
        out = layer_norm(x, np.ones(16), np.zeros(16))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_shape_check(self, rng):
        with pytest.raises(ValueError):
            layer_norm(rng.normal(size=(2, 8)), np.ones(4), np.zeros(4))

    def test_split_merge_heads_roundtrip(self, rng):
        x = rng.normal(size=(2, 6, 16)).astype(np.float32)
        assert np.allclose(merge_heads(split_heads(x, 4)), x)

    def test_split_heads_shape(self, rng):
        out = split_heads(rng.normal(size=(2, 6, 16)), 4)
        assert out.shape == (2, 4, 6, 4)
        with pytest.raises(ValueError):
            split_heads(rng.normal(size=(2, 6, 15)), 4)

    def test_attention_scores_scaled(self, rng):
        q = rng.normal(size=(1, 2, 4, 8))
        k = rng.normal(size=(1, 2, 4, 8))
        scores = attention_scores(q, k)
        expected = q @ np.swapaxes(k, -1, -2) / np.sqrt(8)
        assert np.allclose(scores, expected, atol=1e-5)

    def test_attention_context_shape(self, rng):
        probs = softmax(rng.normal(size=(1, 2, 4, 4)))
        v = rng.normal(size=(1, 2, 4, 8))
        assert attention_context(probs, v).shape == (1, 2, 4, 8)
