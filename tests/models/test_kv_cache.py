"""Paged KV cache: block-table accounting and reference-store equivalence.

The cache is numerics-free bookkeeping — the bits come out of the model's
``forward_step``, whichever store holds them.  These tests pin (a) that the
paged store gathers bit-identical K/V to the reference :class:`SequenceKV`
(so decoding through either is interchangeable), and (b) the explicit
alloc/free/refcount/copy-on-write/eviction mechanics the serving engine's
``cache_stats()`` reports.
"""

import numpy as np
import pytest

from repro.models import (
    LayerKV,
    PagedKVCache,
    SequenceKV,
    TransformerEncoder,
    prompt_fingerprint,
    tiny_config,
)

HEADS, HEAD_DIM = 2, 4


def kv_pair(rng):
    return (
        rng.normal(size=(HEADS, HEAD_DIM)).astype(np.float32),
        rng.normal(size=(HEADS, HEAD_DIM)).astype(np.float32),
    )


def paged(block_size=2, capacity_blocks=8, num_layers=1):
    return PagedKVCache(
        num_layers=num_layers,
        num_heads=HEADS,
        head_dim=HEAD_DIM,
        block_size=block_size,
        capacity_blocks=capacity_blocks,
    )


class TestGatherEquivalence:
    def test_paged_gather_matches_reference(self, rng):
        """Append the same tokens to both stores: every gather is bit-equal
        and comes back as a fresh contiguous (tokens, heads, head_dim)."""
        reference = LayerKV()
        cache = paged(block_size=3)
        seq = cache.create("seq")
        for t in range(8):
            k, v = kv_pair(rng)
            ref_k, ref_v = reference.append(k, v)
            seq.extend()
            got_k, got_v = seq.view(0).append(k, v)
            assert np.array_equal(got_k, ref_k) and np.array_equal(got_v, ref_v)
            for arr in (got_k, got_v):
                assert arr.flags["C_CONTIGUOUS"]
                assert arr.dtype == np.float32
                assert arr.shape == (t + 1, HEADS, HEAD_DIM)

    def test_forward_step_is_store_agnostic(self, rng):
        """The model-level statement: decoding against the reference cache
        and against a paged sequence produces identical bits."""
        cfg = tiny_config(hidden_size=32, num_layers=2, num_heads=4)
        encoder = TransformerEncoder.init(cfg, seed=3)
        tokens = rng.normal(size=(6, 32)).astype(np.float32)
        ref_cache = encoder.new_sequence_kv()
        paged_cache = PagedKVCache(
            num_layers=2, num_heads=4, head_dim=8, block_size=4, capacity_blocks=8
        )
        seq = paged_cache.create("s")
        for t in range(tokens.shape[0]):
            ref_out = encoder.forward_step(tokens[t], ref_cache)
            paged_out = encoder.forward_step(tokens[t], seq)
            assert np.array_equal(ref_out, paged_out)

    def test_reference_store_validates_shapes(self):
        layer = LayerKV()
        with pytest.raises(ValueError, match="matching"):
            layer.append(np.zeros((2, 4), np.float32), np.zeros((2, 5), np.float32))
        seq = SequenceKV(2)
        assert seq.extend() == 0 and seq.length == 1


class TestBlockTable:
    def test_alloc_free_roundtrip(self, rng):
        cache = paged(block_size=2, capacity_blocks=4)
        seq = cache.create("a")
        for _ in range(5):  # 5 tokens at block_size 2 -> 3 blocks
            seq.extend()
            seq.view(0).append(*kv_pair(rng))
        assert cache.blocks_in_use == 3
        assert cache.peak_blocks_in_use == 3
        assert cache.free("a") == 3
        assert cache.blocks_in_use == 0
        assert cache.cache_stats()["sequences"] == 0

    def test_append_requires_extend(self, rng):
        seq = paged().create("a")
        with pytest.raises(RuntimeError, match="extend"):
            seq.view(0).append(*kv_pair(rng))

    def test_exhaustion_raises(self, rng):
        cache = paged(block_size=1, capacity_blocks=2)
        seq = cache.create("a")
        seq.extend(), seq.extend()
        with pytest.raises(RuntimeError, match="exhausted"):
            seq.extend()

    def test_duplicate_sequence_rejected(self):
        cache = paged()
        cache.create("a")
        with pytest.raises(ValueError, match="already exists"):
            cache.create("a")


class TestPrefixSharingMechanics:
    def _prefill(self, cache, seq, rng, tokens):
        for _ in range(tokens):
            seq.extend()
            seq.view(0).append(*kv_pair(rng))

    def test_attach_shares_blocks_and_cow_isolates(self, rng):
        cache = paged(block_size=2, capacity_blocks=8)
        owner = cache.create("owner")
        self._prefill(cache, owner, rng, 3)  # 2 blocks, second half-full
        fp = prompt_fingerprint(np.arange(6, dtype=np.float32).reshape(3, 2))
        cache.register_prefix(fp, "owner", last_output=np.zeros((1, 4), np.float32))
        in_use_before = cache.blocks_in_use

        sharer = cache.create("sharer")
        entry = cache.attach_prefix(fp, "sharer")
        assert entry is not None and entry.length == 3
        assert cache.blocks_in_use == in_use_before  # attached, not copied
        assert cache.cache_stats()["prefix_hits"] == 1

        owner_k_before, _ = cache.sequence("owner").gathered(0)
        sharer.extend()  # lands in the shared partial block -> COW
        sharer.view(0).append(*kv_pair(rng))
        assert cache.cow_copies == 1
        owner_k_after, _ = cache.sequence("owner").gathered(0)
        assert np.array_equal(owner_k_before, owner_k_after)
        # The sharer's first 3 tokens are still the owner's, bit for bit.
        sharer_k, _ = cache.sequence("sharer").gathered(0)
        assert np.array_equal(sharer_k[:3], owner_k_before)

    def test_attach_miss_and_nonempty_rejection(self, rng):
        cache = paged()
        seq = cache.create("busy")
        assert cache.attach_prefix("nope", "busy") is None
        self._prefill(cache, seq, rng, 1)
        cache.register_prefix("fp", "busy", last_output=np.zeros((1, 4), np.float32))
        with pytest.raises(RuntimeError, match="not empty"):
            cache.attach_prefix("fp", "busy")

    def test_register_mid_step_rejected(self, rng):
        cache = paged(num_layers=2)
        seq = cache.create("mid")
        seq.extend()
        seq.view(0).append(*kv_pair(rng))  # layer 1 not yet written
        with pytest.raises(RuntimeError, match="mid-step"):
            cache.register_prefix("fp", "mid", last_output=np.zeros((1, 4), np.float32))

    def test_lru_eviction_frees_prefix_blocks(self, rng):
        cache = paged(block_size=1, capacity_blocks=4)
        for i, name in enumerate(["old", "new"]):
            seq = cache.create(name)
            self._prefill(cache, seq, rng, 1)
            cache.register_prefix(f"fp-{i}", name, np.zeros((1, 4), np.float32))
            cache.free(name)
        assert cache.blocks_in_use == 2  # registry holds both prompts
        grabby = cache.create("grabby")
        self._prefill(cache, grabby, rng, 3)  # forces eviction of "old" first
        stats = cache.cache_stats()
        assert stats["evictions"] == 1
        assert cache.attach_prefix("fp-0", cache.create("probe-a").seq_id) is None
        assert cache.attach_prefix("fp-1", "probe-a") is not None

    def test_fingerprint_is_content_and_shape_keyed(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert prompt_fingerprint(a) == prompt_fingerprint(a.copy())
        assert prompt_fingerprint(a) != prompt_fingerprint(a.reshape(4, 3))
        assert prompt_fingerprint(a) != prompt_fingerprint(a + 1)
