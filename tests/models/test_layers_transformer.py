"""Tests for the layer abstractions, attention and the encoder stack."""

import numpy as np
import pytest

from repro.kernels.spatha import Spatha
from repro.models.attention import MultiHeadAttention
from repro.models.config import tiny_config
from repro.models.layers import DenseLinear, SparseLinear, init_dense_linear
from repro.models.transformer import EncoderLayer, TransformerEncoder


@pytest.fixture(scope="module")
def cfg():
    return tiny_config(hidden_size=64, num_layers=2, num_heads=4, intermediate_size=128)


@pytest.fixture
def hidden(rng, cfg):
    return rng.normal(size=(2, 16, cfg.hidden_size)).astype(np.float32)


class TestDenseLinear:
    def test_forward_matches_matmul(self, rng):
        layer = init_dense_linear(8, 16, seed=0)
        x = rng.normal(size=(3, 16)).astype(np.float32)
        out = layer.forward(x)
        expected = x @ layer.weight.T + layer.bias
        assert np.allclose(out, expected, atol=1e-2)

    def test_forward_keeps_leading_dims(self, rng):
        layer = init_dense_linear(8, 16, seed=0)
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        assert layer.forward(x).shape == (2, 5, 8)

    def test_gemm_problem_dims(self):
        layer = init_dense_linear(8, 16)
        p = layer.gemm_problem(tokens=40)
        assert (p.r, p.k, p.c) == (8, 16, 40)

    def test_kernel_result_positive_time(self, gpu):
        layer = init_dense_linear(64, 64)
        assert layer.kernel_result(tokens=256, gpu=gpu).time_us > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DenseLinear(weight=np.zeros(4))
        with pytest.raises(ValueError):
            DenseLinear(weight=np.zeros((4, 4)), bias=np.zeros(3))


class TestSparseLinear:
    def test_from_dense_applies_vnm_pattern(self):
        dense = init_dense_linear(32, 64, seed=1)
        sparse = SparseLinear.from_dense(dense, v=16, n=2, m=8, spatha=Spatha(autotune=False))
        assert sparse.sparsity == pytest.approx(0.75)
        assert sparse.out_features == 32 and sparse.in_features == 64

    def test_forward_close_to_dense_on_pruned_weight(self, rng):
        dense = init_dense_linear(32, 64, seed=1)
        sparse = SparseLinear.from_dense(dense, v=16, n=2, m=8, spatha=Spatha(autotune=False))
        x = rng.normal(size=(4, 64)).astype(np.float32)
        # The sparse layer equals a dense layer whose weight is the pruned one.
        pruned_dense = DenseLinear(weight=sparse.sparse_weight.to_dense(), bias=dense.bias)
        assert np.allclose(sparse.forward(x), pruned_dense.forward(x), atol=5e-2, rtol=1e-2)

    def test_gemm_problem_carries_pattern(self):
        dense = init_dense_linear(32, 64, seed=1)
        sparse = SparseLinear.from_dense(dense, v=16, n=2, m=8, spatha=Spatha(autotune=False))
        p = sparse.gemm_problem(tokens=128)
        assert (p.n, p.m, p.v) == (2, 8, 16)

    def test_kernel_result_faster_than_dense(self, gpu):
        dense = init_dense_linear(1024, 4096, seed=1)
        sparse = SparseLinear.from_dense(dense, v=128, n=2, m=16, spatha=Spatha(gpu=gpu, autotune=False))
        assert sparse.kernel_result(4096).time_us < dense.kernel_result(4096, gpu=gpu).time_us


class TestMultiHeadAttention:
    def test_forward_shape(self, cfg, hidden):
        mha = MultiHeadAttention.init(cfg, seed=0)
        out = mha.forward(hidden)
        assert out.shape == hidden.shape

    def test_attention_probs_normalised(self, cfg, hidden):
        mha = MultiHeadAttention.init(cfg, seed=0)
        _, probs = mha.forward(hidden, return_probs=True)
        assert probs.shape == (2, cfg.num_heads, 16, 16)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)

    def test_replace_projection(self, cfg):
        mha = MultiHeadAttention.init(cfg, seed=0)
        new = init_dense_linear(cfg.hidden_size, cfg.hidden_size, name="attention.query", seed=99)
        mha.replace_projection("attention.query", new)
        assert mha.query is new
        with pytest.raises(KeyError):
            mha.replace_projection("attention.unknown", new)

    def test_shape_validation(self, cfg, rng):
        mha = MultiHeadAttention.init(cfg, seed=0)
        with pytest.raises(ValueError):
            mha.forward(rng.normal(size=(2, 16, cfg.hidden_size + 1)))

    def test_flop_accounting(self, cfg):
        mha = MultiHeadAttention.init(cfg, seed=0)
        flops = mha.attention_matmul_flops(batch_size=2, seq_len=16)
        d = cfg.head_dim
        expected = 2 * (2 * 16 * d * 16) * cfg.num_heads * 2
        assert flops == pytest.approx(expected)
        assert mha.softmax_elements(2, 16) == 2 * cfg.num_heads * 16 * 16


class TestEncoder:
    def test_forward_preserves_shape(self, cfg, hidden):
        enc = TransformerEncoder.init(cfg, seed=0)
        out = enc.forward(hidden)
        assert out.shape == hidden.shape
        assert np.isfinite(out).all()

    def test_layer_count_override(self, cfg):
        enc = TransformerEncoder.init(cfg, num_layers=1)
        assert len(enc.layers) == 1
        with pytest.raises(ValueError):
            TransformerEncoder.init(cfg, num_layers=0)

    def test_named_linear_layers_complete(self, cfg):
        enc = TransformerEncoder.init(cfg, seed=0)
        names = [name for name, _ in enc.named_linear_layers()]
        assert len(names) == cfg.num_layers * 6
        assert "encoder.layer.0.attention.query" in names
        assert "encoder.layer.1.ffn.output" in names

    def test_replace_linear_by_qualified_name(self, cfg):
        enc = TransformerEncoder.init(cfg, seed=0)
        new = init_dense_linear(cfg.hidden_size, cfg.hidden_size, seed=7)
        enc.replace_linear("encoder.layer.0.attention.key", new)
        assert enc.layers[0].attention.key is new
        with pytest.raises(KeyError):
            enc.replace_linear("decoder.layer.0.attention.key", new)
        with pytest.raises(KeyError):
            enc.replace_linear("encoder.layer.9.attention.key", new)

    def test_apply_to_linears_counts_replacements(self, cfg):
        enc = TransformerEncoder.init(cfg, seed=0)

        def swap_queries(name, layer):
            if name.endswith("attention.query"):
                return init_dense_linear(layer.out_features, layer.in_features, seed=1)
            return None

        replaced = enc.apply_to_linears(swap_queries)
        assert replaced == cfg.num_layers

    def test_sparsity_summary_dense_model(self, cfg):
        enc = TransformerEncoder.init(cfg, seed=0)
        summary = enc.layers[0].sparsity_summary()
        assert set(summary.values()) == {0.0}
        assert enc.count_sparse_layers() == 0

    def test_encoder_layer_forward_changes_activations(self, cfg, hidden):
        layer = EncoderLayer.init(cfg, index=0, seed=0)
        out = layer.forward(hidden)
        assert not np.allclose(out, hidden)
