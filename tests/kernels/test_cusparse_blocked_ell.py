"""Tests for the cuSPARSE Blocked-ELL SpMM baseline."""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.kernels import cublas, cusparse
from repro.kernels.common import GemmProblem, reference_matmul_fp16
from repro.pruning.block_wise import block_wise_mask
from repro.pruning.masks import apply_mask


@pytest.fixture
def operands(rng):
    dense = rng.normal(size=(32, 64))
    pruned = apply_mask(dense, block_wise_mask(dense, 0.75, block=8)).astype(np.float32)
    b = rng.normal(size=(64, 16)).astype(np.float32)
    return BlockedEllMatrix.from_dense(pruned, b=8), pruned, b


class TestFunctional:
    def test_matches_dense_reference(self, operands):
        a_sparse, pruned, b = operands
        out = cusparse.spmm(a_sparse, b)
        assert np.allclose(out, reference_matmul_fp16(pruned, b), atol=2e-2, rtol=1e-2)

    def test_run_wrapper(self, operands, gpu):
        a_sparse, _, b = operands
        res = cusparse.run(a_sparse, b, gpu=gpu)
        assert res.output.shape == (32, 16)
        assert res.kernel == "cusparse_blocked_ell_spmm"

    def test_wrong_operand_type(self, rng):
        with pytest.raises(TypeError):
            cusparse.spmm(rng.normal(size=(4, 8)), rng.normal(size=(8, 2)))

    def test_shape_mismatch(self, operands):
        a_sparse, _, _ = operands
        with pytest.raises(ValueError):
            cusparse.spmm(a_sparse, np.ones((5, 4)))


class TestPerformanceModel:
    def test_time_scales_with_density(self, gpu):
        p_dense = GemmProblem(2048, 2048, 4096, sparsity=0.5)
        p_sparse = GemmProblem(2048, 2048, 4096, sparsity=0.9)
        assert (
            cusparse.estimate_time(p_sparse, gpu=gpu).time_us
            < cusparse.estimate_time(p_dense, gpu=gpu).time_us
        )

    def test_padding_hurts(self, gpu):
        p = GemmProblem(2048, 2048, 4096, sparsity=0.9)
        clean = cusparse.estimate_time(p, gpu=gpu, padding_fraction=0.0)
        padded = cusparse.estimate_time(p, gpu=gpu, padding_fraction=0.4)
        assert padded.time_us > clean.time_us

    def test_slower_than_spatha_at_same_sparsity(self, gpu):
        """Block-wise + cuSPARSE loses to V:N:M + Spatha (the paper's pitch)."""
        from repro.kernels.spatha import estimate_time as spatha_time

        p = GemmProblem.from_nm(1024, 4096, 4096, 2, 20, v=128)
        assert spatha_time(p, gpu=gpu).time_us < cusparse.estimate_time(p, gpu=gpu).time_us

    def test_beats_dense_only_at_high_sparsity(self, gpu):
        dense_time = cublas.estimate_time(GemmProblem(1024, 4096, 4096), gpu=gpu).time_us
        moderate = cusparse.estimate_time(GemmProblem(1024, 4096, 4096, sparsity=0.5), gpu=gpu)
        high = cusparse.estimate_time(GemmProblem(1024, 4096, 4096, sparsity=0.95), gpu=gpu)
        assert moderate.time_us > dense_time
        assert high.time_us < dense_time

    def test_invalid_arguments(self, gpu):
        with pytest.raises(ValueError):
            cusparse.estimate_time(GemmProblem(64, 64, 64, sparsity=0.5), gpu=gpu, padding_fraction=1.0)
        with pytest.raises(ValueError):
            cusparse.CusparseBlockedEllConfig(block_size=0)
        with pytest.raises(ValueError):
            cusparse.CusparseBlockedEllConfig(compute_efficiency=2.0)
