"""Tests for Spatha's kernel configuration and tile decomposition."""

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.kernels.spatha.config import KernelConfig, candidate_configs, default_config
from repro.kernels.spatha.spmm import spmm_reference
from repro.kernels.spatha.tiles import (
    compute_tile_counts,
    condensed_k,
    iterate_output_tiles,
    iterate_warp_tiles,
    simulate_tiled_spmm,
)
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask


class TestKernelConfig:
    def test_default_config_pins_bsr_to_v(self):
        assert default_config(64).bs_r == 64
        assert default_config(128).bs_r == 128

    def test_warp_and_thread_counts(self):
        cfg = KernelConfig(bs_r=128, bs_c=64, ws_r=32, ws_c=32)
        assert cfg.warps_per_block == (128 // 32) * (64 // 32)
        assert cfg.threads_per_block == cfg.warps_per_block * 32

    def test_invalid_divisibility(self):
        with pytest.raises(ValueError):
            KernelConfig(bs_r=100, ws_r=32)
        with pytest.raises(ValueError):
            KernelConfig(ws_c=12)  # not a multiple of mma.n=8
        with pytest.raises(ValueError):
            KernelConfig(bs_k=48, ws_k=32)
        with pytest.raises(ValueError):
            KernelConfig(batch_size=0)

    def test_smem_fits_hardware_limit(self, gpu):
        for cfg in candidate_configs(128, 4096):
            assert cfg.smem_bytes() <= gpu.smem.capacity_bytes

    def test_register_estimate_bounded(self):
        for cfg in candidate_configs(64, 4096):
            assert 0 < cfg.registers_per_thread() <= 255

    def test_block_resources(self):
        cfg = default_config(128)
        res = cfg.block_resources()
        assert res.threads == cfg.threads_per_block
        assert res.smem_bytes == cfg.smem_bytes()

    def test_with_options(self):
        cfg = default_config(64)
        narrow = cfg.with_options(wide_output_stores=False)
        assert not narrow.wide_output_stores
        assert cfg.wide_output_stores

    def test_describe_mentions_key_parameters(self):
        text = default_config(128).describe()
        assert "BS=128" in text and "m16n8k32" in text

    def test_candidate_space_nonempty_for_small_v(self):
        assert len(candidate_configs(16, 64)) >= 1


class TestTileArithmetic:
    def test_condensed_k(self):
        assert condensed_k(4096, 8) == 2048
        assert condensed_k(4096, 16) == 1024

    def test_condensed_k_padding(self):
        # 770 columns with M=8 -> 97 groups padded.
        assert condensed_k(770, 8) == 97 * 4
        with pytest.raises(ValueError):
            condensed_k(770, 8, pad=False)

    def test_tile_counts_cover_problem(self):
        cfg = default_config(128, bs_c=64)
        counts = compute_tile_counts(1024, 4096, 4096, 8, cfg)
        assert counts.grid_rows == 1024 // 128
        assert counts.grid_cols == 4096 // 64
        assert counts.total_blocks == counts.grid_rows * counts.grid_cols
        assert counts.k_steps == condensed_k(4096, 8) // cfg.bs_k
        assert counts.total_mma_instructions > 0

    def test_r_must_divide_by_v(self):
        cfg = default_config(128)
        with pytest.raises(ValueError):
            compute_tile_counts(1000, 4096, 4096, 8, cfg)

    def test_mma_count_consistent_with_flops(self):
        """Total mma.sp instructions x FLOPs per instruction >= logical work."""
        cfg = default_config(64, bs_c=32)
        r, k, c, m = 128, 256, 64, 8
        counts = compute_tile_counts(r, k, c, m, cfg)
        logical_flops = 2 * r * condensed_k(k, m) * c
        covered = counts.total_mma_instructions * cfg.mma.flops
        assert covered >= logical_flops

    def test_output_tiles_partition_output(self):
        cfg = KernelConfig(bs_r=16, bs_c=8, ws_r=16, ws_c=8)
        covered = np.zeros((32, 24), dtype=int)
        for rows, cols in iterate_output_tiles(32, 24, cfg):
            covered[rows, cols] += 1
        assert np.all(covered == 1)

    def test_warp_tiles_partition_block(self):
        cfg = KernelConfig(bs_r=32, bs_c=16, ws_r=16, ws_c=8)
        covered = np.zeros((32, 16), dtype=int)
        for wr, wc in iterate_warp_tiles(slice(0, 32), slice(0, 16), cfg):
            covered[wr, wc] += 1
        assert np.all(covered == 1)


class TestTiledExecution:
    def test_tiled_simulation_matches_reference(self, rng):
        v, n, m = 16, 2, 8
        dense = rng.normal(size=(32, 64))
        pruned = apply_mask(dense, vnm_mask(dense, v=v, n=n, m=m)).astype(np.float32)
        a = VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m)
        b = rng.normal(size=(64, 24)).astype(np.float32)
        cfg = KernelConfig(bs_r=16, bs_c=8, ws_r=16, ws_c=8, bs_k=32, ws_k=32)
        out = simulate_tiled_spmm(a, b, cfg)
        assert np.allclose(out, spmm_reference(a, b), atol=2e-2, rtol=1e-2)

    def test_bsr_must_match_v(self, vnm_matrix, activations):
        cfg = KernelConfig(bs_r=16, bs_c=8, ws_r=16, ws_c=8)
        with pytest.raises(ValueError):
            simulate_tiled_spmm(vnm_matrix, activations, cfg)  # v=8 != bs_r=16

    def test_shape_mismatch(self, rng):
        dense = rng.normal(size=(16, 32))
        pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=8)).astype(np.float32)
        a = VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=8)
        cfg = KernelConfig(bs_r=16, bs_c=8, ws_r=16, ws_c=8)
        with pytest.raises(ValueError):
            simulate_tiled_spmm(a, np.ones((7, 3)), cfg)
